//! Statistical regression harness: the discrete-event simulator must
//! reproduce the analytic call-blocking of small BPP models within a 99%
//! confidence interval, at fixed seeds, for every burstiness regime — and
//! the observability layer's offer/block accounting must balance exactly
//! against the simulator's own report.
//!
//! The analytic reference is the *call-average* acceptance (the paper's
//! time-average `B_r` corrected by the arrival theorem), which is what a
//! blocked/offered ratio estimates; for the non-Poisson classes the two
//! differ measurably, so covering the right one is itself a regression
//! check on the measure plumbing.

use std::sync::Arc;

use xbar::{
    solve, Algorithm, CrossbarSim, Dims, Model, RunConfig, SimConfig, TrafficClass, Workload,
};

struct Scenario {
    label: &'static str,
    n1: u32,
    n2: u32,
    class: TrafficClass,
    seed: u64,
}

/// Three small models spanning the burstiness regimes; the smooth one is
/// rectangular (`N1 != N2`) so the non-square code path is exercised too.
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            label: "smooth-bernoulli-rect",
            n1: 4,
            n2: 8,
            // Z < 1: finite source population S = alpha/|beta| = 16.
            class: TrafficClass::bpp(0.64, -0.04, 1.0),
            seed: 7001,
        },
        Scenario {
            label: "poisson-square",
            n1: 8,
            n2: 8,
            class: TrafficClass::poisson(0.05),
            seed: 7002,
        },
        Scenario {
            label: "peaky-pascal-square",
            n1: 8,
            n2: 8,
            // Z = 2 peakedness.
            class: TrafficClass::bpp(0.025, 0.5, 1.0),
            seed: 7003,
        },
    ]
}

fn run_scenario(sc: &Scenario, duration: f64) -> (f64, xbar::sim::SimReport) {
    let model = Model::new(
        Dims::new(sc.n1, sc.n2),
        Workload::new().with(sc.class.clone()),
    )
    .expect("valid scenario model");
    let sol = solve(&model, Algorithm::Auto).expect("solvable");
    let analytic_call_blocking = 1.0 - sol.call_acceptance(0);

    let cfg = SimConfig::new(sc.n1, sc.n2).with_exp_class(sc.class.clone());
    let mut sim = CrossbarSim::new(cfg, sc.seed);
    let rep = sim.run(RunConfig {
        warmup: duration / 50.0,
        duration,
        batches: 20,
    });
    (analytic_call_blocking, rep)
}

#[test]
fn per_class_blocking_lands_in_the_99_percent_ci() {
    for sc in scenarios() {
        let (analytic, rep) = run_scenario(&sc, 60_000.0);
        let est = &rep.classes[0].blocking_99;
        assert!(
            est.covers(analytic),
            "{}: analytic {analytic} outside sim 99% CI {} ± {}",
            sc.label,
            est.mean,
            est.half_width
        );
        // The 99% interval must really be the wider one.
        assert!(est.half_width >= rep.classes[0].blocking.half_width);
    }
}

#[test]
fn obs_accounting_balances_exactly_against_the_report() {
    for sc in scenarios() {
        // Scoped registry: parallel tests share the global one.
        let reg = Arc::new(xbar::obs::Registry::new());
        let rep = {
            let _g = xbar::obs::scope(&reg);
            run_scenario(&sc, 10_000.0).1
        };
        let snap = reg.snapshot();
        let counter = |name: &str| snap.counter(name).unwrap_or(0);

        let offered: u64 = rep.classes.iter().map(|c| c.offered).sum();
        let accepted: u64 = rep.classes.iter().map(|c| c.accepted).sum();
        let blocked: u64 = rep.classes.iter().map(|c| c.blocked).sum();
        assert_eq!(counter("sim.offers"), offered, "{}", sc.label);
        assert_eq!(counter("sim.admitted"), accepted, "{}", sc.label);
        assert_eq!(
            counter("sim.blocked.capacity") + counter("sim.blocked.fault"),
            blocked,
            "{}",
            sc.label
        );
        // The invariant the CLI enforces on every --metrics run.
        assert_eq!(
            counter("sim.offers"),
            counter("sim.admitted")
                + counter("sim.blocked.capacity")
                + counter("sim.blocked.fault"),
            "{}",
            sc.label
        );
        // No fault injection configured, so no fault blocking.
        assert_eq!(counter("sim.blocked.fault"), 0, "{}", sc.label);
        assert_eq!(counter("sim.runs"), 1, "{}", sc.label);
        assert!(counter("sim.events") > 0, "{}", sc.label);
    }
}

#[test]
fn poisson_call_blocking_equals_time_blocking_but_bpp_does_not() {
    // PASTA: for the Poisson class the call-average and time-average
    // blocking coincide; for the Pascal (peaky) class the arrival theorem
    // makes call blocking strictly worse than `1 - B_r`.
    let mk = |class: TrafficClass| {
        let model = Model::new(Dims::square(8), Workload::new().with(class)).unwrap();
        let sol = solve(&model, Algorithm::Auto).unwrap();
        (1.0 - sol.call_acceptance(0), sol.blocking(0))
    };
    let (call, time) = mk(TrafficClass::poisson(0.05));
    assert!((call - time).abs() < 1e-12, "{call} vs {time}");
    let (call, time) = mk(TrafficClass::bpp(0.025, 0.5, 1.0));
    assert!(call > time, "peaky call blocking {call} !> time {time}");
}

//! Statistical regression harness: the discrete-event simulator must
//! reproduce the analytic call-blocking of small BPP models within a 99%
//! confidence interval, at fixed seeds, for every burstiness regime — and
//! the observability layer's offer/block accounting must balance exactly
//! against the simulator's own report.
//!
//! The analytic reference is the *call-average* acceptance (the paper's
//! time-average `B_r` corrected by the arrival theorem), which is what a
//! blocked/offered ratio estimates; for the non-Poisson classes the two
//! differ measurably, so covering the right one is itself a regression
//! check on the measure plumbing.
//!
//! Since PR 10 the coverage test runs on the parallel replication
//! harness with adaptive stopping ([`xbar::run_sim_until_ci`]): short
//! independent replications accumulate only until the merged
//! across-replication interval is tight enough for the assertion, which
//! cuts wall-clock versus the old single 60k-duration path while keeping
//! the run fully deterministic (per-replication seeds derive from
//! `(master_seed, index)` alone, so thread count cannot change results).

use std::sync::Arc;

use xbar::{
    run_sim_replications, run_sim_until_ci, solve, Algorithm, CiTarget, CrossbarSim, Dims, Model,
    RepConfig, RunConfig, SimConfig, TrafficClass, Workload,
};

struct Scenario {
    label: &'static str,
    n1: u32,
    n2: u32,
    class: TrafficClass,
    seed: u64,
}

/// Three small models spanning the burstiness regimes; the smooth one is
/// rectangular (`N1 != N2`) so the non-square code path is exercised too.
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            label: "smooth-bernoulli-rect",
            n1: 4,
            n2: 8,
            // Z < 1: finite source population S = alpha/|beta| = 16.
            class: TrafficClass::bpp(0.64, -0.04, 1.0),
            seed: 7001,
        },
        Scenario {
            label: "poisson-square",
            n1: 8,
            n2: 8,
            class: TrafficClass::poisson(0.05),
            seed: 7002,
        },
        Scenario {
            label: "peaky-pascal-square",
            n1: 8,
            n2: 8,
            // Z = 2 peakedness.
            class: TrafficClass::bpp(0.025, 0.5, 1.0),
            seed: 7003,
        },
    ]
}

fn analytic_call_blocking(sc: &Scenario) -> f64 {
    let model = Model::new(
        Dims::new(sc.n1, sc.n2),
        Workload::new().with(sc.class.clone()),
    )
    .expect("valid scenario model");
    let sol = solve(&model, Algorithm::Auto).expect("solvable");
    1.0 - sol.call_acceptance(0)
}

fn sim_config(sc: &Scenario) -> SimConfig {
    SimConfig::new(sc.n1, sc.n2).with_exp_class(sc.class.clone())
}

fn run_scenario(sc: &Scenario, duration: f64) -> (f64, xbar::sim::SimReport) {
    let cfg = sim_config(sc);
    let mut sim = CrossbarSim::new(cfg, sc.seed);
    let rep = sim.run(RunConfig {
        warmup: duration / 50.0,
        duration,
        batches: 20,
    });
    (analytic_call_blocking(sc), rep)
}

#[test]
fn per_class_blocking_lands_in_the_99_percent_ci() {
    // Replications of 8k time units each, grown adaptively until the
    // merged 99% blocking interval is tight — replaces the fixed single
    // 60k-duration run of the pre-harness version of this test.
    let run = RunConfig {
        warmup: 200.0,
        duration: 8_000.0,
        batches: 10,
    };
    for sc in scenarios() {
        let analytic = analytic_call_blocking(&sc);
        let rep = RepConfig {
            replications: 0, // ignored by the adaptive path
            master_seed: sc.seed,
            confidence: xbar::sim::Confidence::P99,
        };
        let merged = run_sim_until_ci(&sim_config(&sc), &run, &rep, CiTarget::new(8e-3))
            .expect("valid scenario sim");
        let est = &merged.classes[0].blocking;
        assert!(
            est.covers(analytic),
            "{}: analytic {analytic} outside merged 99% CI {} ± {} ({} replications)",
            sc.label,
            est.mean,
            est.half_width,
            merged.replications
        );
        // Adaptive stopping really stopped on the target (or the cap).
        assert!(
            est.half_width <= 8e-3 || merged.replications == 64,
            "{}: stopped at width {} after {} replications",
            sc.label,
            est.half_width,
            merged.replications
        );
    }
}

#[test]
fn obs_accounting_balances_exactly_against_the_report() {
    for sc in scenarios() {
        // Scoped registry: parallel tests share the global one.
        let reg = Arc::new(xbar::obs::Registry::new());
        let rep = {
            let _g = xbar::obs::scope(&reg);
            run_scenario(&sc, 10_000.0).1
        };
        let snap = reg.snapshot();
        let counter = |name: &str| snap.counter(name).unwrap_or(0);

        let offered: u64 = rep.classes.iter().map(|c| c.offered).sum();
        let accepted: u64 = rep.classes.iter().map(|c| c.accepted).sum();
        let blocked: u64 = rep.classes.iter().map(|c| c.blocked).sum();
        assert_eq!(counter("sim.offers"), offered, "{}", sc.label);
        assert_eq!(counter("sim.admitted"), accepted, "{}", sc.label);
        assert_eq!(
            counter("sim.blocked.capacity") + counter("sim.blocked.fault"),
            blocked,
            "{}",
            sc.label
        );
        // The invariant the CLI enforces on every --metrics run.
        assert_eq!(
            counter("sim.offers"),
            counter("sim.admitted")
                + counter("sim.blocked.capacity")
                + counter("sim.blocked.fault"),
            "{}",
            sc.label
        );
        // No fault injection configured, so no fault blocking.
        assert_eq!(counter("sim.blocked.fault"), 0, "{}", sc.label);
        assert_eq!(counter("sim.runs"), 1, "{}", sc.label);
        assert!(counter("sim.events") > 0, "{}", sc.label);
    }
}

#[test]
fn replicated_obs_accounting_balances_across_the_merge() {
    // Same ledger invariant, through the replication harness: workers
    // re-install the caller's scope, so counters from every replication
    // land here, and the harness adds its own sim.rep.* series.
    let sc = &scenarios()[1]; // poisson-square
    let run = RunConfig {
        warmup: 100.0,
        duration: 2_000.0,
        batches: 10,
    };
    let rep = RepConfig {
        replications: 3,
        master_seed: sc.seed,
        confidence: xbar::sim::Confidence::P99,
    };
    let reg = Arc::new(xbar::obs::Registry::new());
    let merged = {
        let _g = xbar::obs::scope(&reg);
        run_sim_replications(&sim_config(sc), &run, &rep).expect("valid scenario sim")
    };
    let snap = reg.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);

    assert_eq!(counter("sim.runs"), 3);
    assert_eq!(counter("sim.rep.runs"), 1);
    assert_eq!(counter("sim.rep.replications"), 3);
    assert_eq!(counter("sim.rep.rounds"), 1);
    assert_eq!(counter("sim.rep.events"), merged.events);
    // The per-event ledger still balances exactly against the merged sums.
    assert_eq!(counter("sim.offers"), merged.classes[0].offered);
    assert_eq!(counter("sim.admitted"), merged.classes[0].accepted);
    assert_eq!(counter("sim.blocked.capacity"), merged.classes[0].blocked);
    assert_eq!(
        counter("sim.offers"),
        counter("sim.admitted") + counter("sim.blocked.capacity") + counter("sim.blocked.fault"),
    );
}

#[test]
fn poisson_call_blocking_equals_time_blocking_but_bpp_does_not() {
    // PASTA: for the Poisson class the call-average and time-average
    // blocking coincide; for the Pascal (peaky) class the arrival theorem
    // makes call blocking strictly worse than `1 - B_r`.
    let mk = |class: TrafficClass| {
        let model = Model::new(Dims::square(8), Workload::new().with(class)).unwrap();
        let sol = solve(&model, Algorithm::Auto).unwrap();
        (1.0 - sol.call_acceptance(0), sol.blocking(0))
    };
    let (call, time) = mk(TrafficClass::poisson(0.05));
    assert!((call - time).abs() < 1e-12, "{call} vs {time}");
    let (call, time) = mk(TrafficClass::bpp(0.025, 0.5, 1.0));
    assert!(call > time, "peaky call blocking {call} !> time {time}");
}

//! Every qualitative claim of the paper's §7, asserted end-to-end through
//! the experiment harness (the same code paths that regenerate the
//! figures and tables).

use xbar_experiments::{compare_baselines, fig1, fig2, fig3, fig4, table2};

#[test]
fn figure1_smooth_traffic_bounded_by_poisson() {
    // "the degenerate case provides an upper bound for the smooth arrival
    // traffic" — at every plotted size.
    for n in [1u32, 3, 9, 27, 81, 128] {
        let poisson = fig1::blocking_at(n, 0.0);
        for &b in &fig1::BETA_TILDES[1..] {
            assert!(fig1::blocking_at(n, b) <= poisson, "N={n}, beta={b}");
        }
    }
}

#[test]
fn figure1_operating_point() {
    // α̃ = .0024 "drives the non-blocking probability to approximately
    // 99.5%" at the large end.
    let b = fig1::blocking_at(128, 0.0);
    assert!((0.0025..0.0075).contains(&b), "{b}");
}

#[test]
fn figure2_peaky_traffic_dramatic_impact() {
    // Pascal ≥ Poisson always; at sustained per-pair peakedness the
    // effect is multiplicative.
    for n in [2u32, 16, 128] {
        let p = fig1::blocking_at(n, 0.0);
        assert!(fig2::blocking_fixed_beta(n, 1.2e-3) >= p);
        assert!(fig2::blocking_fixed_z(n, 2.0) >= p);
    }
    assert!(fig2::blocking_fixed_z(128, 2.0) > 2.0 * fig1::blocking_at(128, 0.0));
}

#[test]
fn figure3_poisson_class_shifts_operating_point() {
    for n in [4u32, 64] {
        for &b in &fig3::BETA_TILDES {
            assert!(fig3::blocking_at(true, n, b) > fig3::blocking_at(false, n, b));
        }
    }
}

#[test]
fn figure4_wide_requests_block_more_at_equal_total_load() {
    // "traffic ρ̃2 with a2 = 2 results in a significantly higher blocking
    // probability as compared to traffic ρ̃1 with a1 = 1".
    for row in fig4::rows() {
        assert!(
            row.blocking_a2 > 1.5 * row.blocking_a1,
            "N={}: a2 blocking {} not significantly above a1 {}",
            row.n,
            row.blocking_a2,
            row.blocking_a1
        );
    }
}

#[test]
fn table1_matches_printed_loads() {
    let (r1, r2) = fig4::table1_loads(16);
    assert!((r1 - 0.000150).abs() < 1e-9);
    assert!((r2 - 0.0000400).abs() < 1e-9);
}

#[test]
fn table2_revenue_falls_as_bursty_load_rises() {
    // "the overall weighted throughput decreases as load β̃2/μ2 is
    // increased, resulting in a loss of revenue" — and the gradient is
    // negative from N = 4 up.
    for &n in &[4u32, 16, 64, 256] {
        let r1 = table2::row(table2::SETS[0], n);
        let r2 = table2::row(table2::SETS[1], n);
        assert!(r1.grad_beta2 < 0.0, "N={n}");
        assert!(r2.revenue <= r1.revenue, "N={n}");
        assert!(r2.blocking >= r1.blocking, "N={n}");
    }
}

#[test]
fn table2_increasing_alpha_costs_more_revenue_than_increasing_beta() {
    // "increasing α̃2 causes a greater decrease in revenue … compared to
    // that resulting from the proportional increase in β̃2": set3 (3×
    // load) earns less than set2 (3× burstiness). Holds up to N = 128 in
    // the stated model; at N = 256 the full β effect (which the paper's
    // own numbers understate — see DESIGN.md) makes burstiness the more
    // expensive of the two, flipping the ordering.
    for &n in &[8u32, 32, 128] {
        let set2 = table2::row(table2::SETS[1], n);
        let set3 = table2::row(table2::SETS[2], n);
        assert!(
            set3.revenue < set2.revenue,
            "N={n}: set3 {} !< set2 {}",
            set3.revenue,
            set2.revenue
        );
    }
}

#[test]
fn table2_anchor_rows_are_exact() {
    // The β-insensitive N = 1 rows match the printed digits exactly.
    for &set in &table2::SETS {
        let r = table2::row(set, 1);
        let (_, _, pblk, pw) = table2::paper_row(set.label, 1);
        assert!((r.blocking - pblk).abs() < 1e-7);
        assert!((r.revenue - pw).abs() < 1e-5);
    }
}

#[test]
fn crossbars_beat_multistage_networks() {
    // §1's architectural motivation, quantified by Validation C.
    for r in compare_baselines::rows(3) {
        assert!(
            r.omega_sim > r.xbar_analytic,
            "load {}: omega {} !> crossbar {}",
            r.load,
            r.omega_sim,
            r.xbar_analytic
        );
    }
}

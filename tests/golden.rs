//! Golden-file regression tests: the CSV artefacts of the batched
//! experiment drivers are snapshotted under `tests/golden/` and must match
//! byte-for-byte. Every solve is deterministic (the wavefront sweep is
//! bit-for-bit identical at any thread count) and the simulated sweep runs
//! at a fixed seed, so any diff is a real behaviour change.
//!
//! To refresh after an intentional change:
//! `XBAR_UPDATE_GOLDEN=1 cargo test -p xbar --test golden`.

use std::path::PathBuf;

use xbar_experiments::{fig1, fig2, fig3, fig4, hotspot_sweep, plan_frontier, rectangular, replay};

/// Short, fixed-seed hot-spot sweep (the 100k-duration CLI default would
/// dominate test wall-clock without changing what is being locked down).
const HOTSPOT_DURATION: f64 = 20_000.0;
const HOTSPOT_SEED: u64 = 33;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("XBAR_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert!(
        expected == actual,
        "{name} drifted from its golden snapshot \
         (XBAR_UPDATE_GOLDEN=1 refreshes after an intentional change); \
         expected {} bytes, got {} bytes",
        expected.len(),
        actual.len()
    );
}

#[test]
fn fig1_csv_matches_golden() {
    check("fig1.csv", &fig1::table(&fig1::rows()).to_csv());
}

#[test]
fn fig2_csv_matches_golden() {
    check("fig2.csv", &fig2::table(&fig2::rows()).to_csv());
}

#[test]
fn fig3_csv_matches_golden() {
    check("fig3.csv", &fig3::table(&fig3::rows()).to_csv());
}

#[test]
fn fig4_csv_matches_golden() {
    let rows = fig4::rows();
    check("fig4.csv", &fig4::table(&rows).to_csv());
    check("table1.csv", &fig4::table1(&rows).to_csv());
}

#[test]
fn rectangular_csv_matches_golden() {
    check(
        "rectangular.csv",
        &rectangular::table(&rectangular::rows()).to_csv(),
    );
}

#[test]
fn hotspot_csv_matches_golden() {
    let rows = hotspot_sweep::rows(HOTSPOT_DURATION, HOTSPOT_SEED);
    check("hotspot.csv", &hotspot_sweep::table(&rows).to_csv());
}

/// Admission-replay summary: the event stream is a fixed-seed jump chain
/// and every anchor solve is deterministic, so the per-policy decision
/// split must be byte-identical run to run (and across `XBAR_THREADS`).
#[test]
fn replay_csv_matches_golden() {
    let rows = replay::rows(replay::EVENTS, replay::SEED);
    check("replay.csv", &replay::table(&rows).to_csv());
}

/// Repricing differential: the anchor-once and per-batch-repriced shadow
/// replays of the same fixed-seed stream. Byte-identical run to run and
/// across `XBAR_THREADS` — repricing re-derives thresholds from the same
/// extended-range gradients, so even the decision columns must match the
/// anchor-once rows exactly.
#[test]
fn reprice_csv_matches_golden() {
    let rows = replay::reprice_rows(replay::EVENTS, replay::SEED);
    check("reprice.csv", &replay::reprice_table(&rows).to_csv());
}

/// Capacity-planning artefacts: every cell of the design-space search is
/// an analytic product-form solve and the optimum's tie-break is
/// canonical, so both the Pareto frontier and the full contour must be
/// byte-identical at any `XBAR_THREADS` and on the fleet-warmed path
/// (which is how [`plan_frontier::run`] evaluates).
#[test]
fn plan_frontier_and_contour_csvs_match_golden() {
    let report = plan_frontier::run();
    check(
        "plan_frontier.csv",
        &plan_frontier::frontier_table(&plan_frontier::frontier_rows(&report)).to_csv(),
    );
    check(
        "plan_contour.csv",
        &plan_frontier::contour_table(&plan_frontier::contour_rows(&report)).to_csv(),
    );
}

//! Workspace-level integration: the full pipeline through the `xbar`
//! facade — traffic specification → analytic solution (every algorithm) →
//! simulation → agreement.

use xbar::analytic::brute::Brute;
use xbar::{
    solve, Algorithm, CrossbarSim, Dims, Model, RunConfig, ServiceDist, SimConfig, TildeClass,
    TrafficClass, Workload,
};

fn close(a: f64, b: f64, tol: f64) {
    let scale = a.abs().max(b.abs()).max(1e-12);
    assert!((a - b).abs() / scale < tol, "{a} vs {b}");
}

#[test]
fn facade_exposes_the_full_pipeline() {
    // Specify in tilde parameters (like the paper), solve, simulate.
    let dims = Dims::new(6, 8);
    let workload = Workload::from_tilde(
        &[
            TildeClass::poisson(0.5).with_weight(1.0),
            TildeClass::bpp(0.3, 0.15, 1.0).with_weight(0.2),
        ],
        dims.n2,
    );
    let model = Model::new(dims, workload).unwrap();

    // Every algorithm and the brute-force oracle agree.
    let brute = Brute::new(&model);
    for alg in [
        Algorithm::Auto,
        Algorithm::Alg1F64,
        Algorithm::Alg1Scaled,
        Algorithm::Alg1Ext,
        Algorithm::Mva,
    ] {
        let sol = solve(&model, alg).unwrap();
        for r in 0..2 {
            close(sol.nonblocking(r), brute.nonblocking(r), 1e-8);
            close(sol.concurrency(r), brute.concurrency(r), 1e-8);
        }
        close(sol.revenue(), brute.revenue(), 1e-8);
    }

    // The simulator (driven through the same facade types) agrees too.
    let sol = solve(&model, Algorithm::Auto).unwrap();
    let cfg = SimConfig::new(dims.n1, dims.n2)
        .with_exp_class(model.workload().classes()[0].clone())
        .with_class(
            model.workload().classes()[1].clone(),
            // …and by insensitivity, even with a non-exponential law.
            ServiceDist::LogNormal {
                mean: 1.0,
                cv2: 2.0,
            },
        );
    let rep = CrossbarSim::new(cfg, 99).run(RunConfig {
        warmup: 500.0,
        duration: 60_000.0,
        batches: 20,
    });
    for r in 0..2 {
        assert!(
            rep.classes[r]
                .availability
                .covers_with_slack(sol.nonblocking(r), 0.012),
            "class {r}: sim {:?} vs analytic {}",
            rep.classes[r].availability,
            sol.nonblocking(r)
        );
    }
}

#[test]
fn large_switch_table2_regime_is_stable_end_to_end() {
    // The N = 256 regime of Table 2 exercises the extended-range backend;
    // all large-size algorithms must agree with each other there.
    let n = 256u32;
    let workload = Workload::from_tilde(
        &[
            TildeClass::poisson(0.0012).with_weight(1.0),
            TildeClass::bpp(0.0012, 0.0012, 1.0).with_weight(0.0001),
        ],
        n,
    );
    let model = Model::new(Dims::square(n), workload).unwrap();
    let ext = solve(&model, Algorithm::Alg1Ext).unwrap();
    let mva = solve(&model, Algorithm::Mva).unwrap();
    let scaled = solve(&model, Algorithm::Alg1Scaled).unwrap();
    for r in 0..2 {
        close(ext.blocking(r), mva.blocking(r), 1e-7);
        close(ext.blocking(r), scaled.blocking(r), 1e-6);
    }
    close(ext.revenue(), mva.revenue(), 1e-7);
    // Plain f64 must refuse rather than return garbage.
    assert!(solve(&model, Algorithm::Alg1F64).is_err());
}

#[test]
fn revenue_machinery_is_consistent() {
    let workload = Workload::new()
        .with(TrafficClass::poisson(0.08).with_weight(1.0))
        .with(TrafficClass::bpp(0.04, 0.2, 1.0).with_weight(0.3));
    let model = Model::new(Dims::square(10), workload).unwrap();
    let sol = solve(&model, Algorithm::Auto).unwrap();

    // Revenue equals the weighted concurrencies.
    let direct: f64 = (0..2)
        .map(|r| model.workload().classes()[r].weight * sol.concurrency(r))
        .sum();
    close(sol.revenue(), direct, 1e-12);

    // Closed-form and FD rho-gradients agree to FD accuracy here (the
    // bursty class makes the closed form first-order, but at these loads
    // the difference is far below the tolerance).
    let fd = sol.revenue_gradient_rho_fd(0).unwrap();
    close(sol.revenue_gradient_rho(0), fd, 1e-3);

    // Shadow cost = W(N) − W(N − a·I) by definition.
    let sub = sol.measures_at(Dims::square(9)).revenue;
    close(sol.shadow_cost(0), sol.revenue() - sub, 1e-12);
}

#[test]
fn burstiness_helpers_round_trip_through_the_model() {
    // fit → class → model → measures, all via the facade.
    let class = TrafficClass::from_mean_peakedness(1.5, 2.0, 1.0);
    assert_eq!(class.burstiness(), xbar::Burstiness::Peaky);
    let model = Model::new(Dims::square(8), Workload::new().with(class)).unwrap();
    let sol = solve(&model, Algorithm::Auto).unwrap();
    assert!(sol.blocking(0) > 0.0 && sol.blocking(0) < 1.0);
}

#[test]
fn one_by_n_crossbar_is_an_erlang_loss_system() {
    // A 1×N crossbar with a single Poisson class has capacity 1 and
    // aggregate offered load N·ρ, so its blocking is Erlang-B(1, N·ρ) —
    // the analytic model must collapse to the textbook anchor exactly.
    use xbar::baselines::erlang_b;
    for n in [1u32, 4, 16, 57] {
        for rho_total in [0.1f64, 0.8, 3.0] {
            let rho = rho_total / n as f64;
            let model = Model::new(
                Dims::new(1, n),
                Workload::new().with(TrafficClass::poisson(rho)),
            )
            .unwrap();
            let sol = solve(&model, Algorithm::Auto).unwrap();
            close(sol.blocking(0), erlang_b(1, rho_total), 1e-12);
        }
    }
}

#[test]
fn occupancy_and_marginal_apis_work_through_the_facade() {
    let workload = Workload::new()
        .with(TrafficClass::poisson(0.2))
        .with(TrafficClass::bpp(0.1, 0.05, 1.0).with_bandwidth(2));
    let model = Model::new(Dims::square(6), workload).unwrap();
    let sol = solve(&model, Algorithm::Convolution).unwrap();
    let occ = sol.occupancy_distribution();
    close(occ.iter().sum::<f64>(), 1.0, 1e-10);
    // Odd occupancies are reachable (class 0 has a = 1).
    assert!(occ[1] > 0.0);
    let marg = sol.class_marginal(1);
    close(marg.iter().sum::<f64>(), 1.0, 1e-10);
    // Class 1 (a = 2) can hold at most 3 connections on 6 ports.
    assert_eq!(marg.len(), 4);
}

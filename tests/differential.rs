//! Cross-backend differential battery.
//!
//! Property-generated models (N1, N2 ≤ 12, up to 4 classes mixing smooth
//! Bernoulli, Poisson and peaky Pascal traffic) must produce the *same*
//! answers from every layer of the stack:
//!
//! 1. brute-force enumeration of the product form,
//! 2. Algorithm 1 (all numeric backends) and Algorithm 2 / MVA,
//! 3. the online admission engine's incrementally maintained state after
//!    replaying a random event sequence,
//! 4. (tier 7) the capacity planner's optimum over random small design
//!    spaces against a brute-force argmax that solves every candidate
//!    independently.
//!
//! Tolerances are tiered by the numeric quality of each pair: extended-
//! range and MVA backends agree with enumeration to 1e-9; the plain f64
//! backend is allowed 1e-7 on the largest switches (its recursion loses a
//! couple of digits near underflow); the engine's incremental log-weight
//! is a pure running sum, checked to 1e-8 absolute-relative.
//!
//! The case budget reads `PROPTEST_CASES` (CI pins it for reproducible
//! runtime); default is 48 cases per property.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xbar_admission::{AdmissionEngine, Decision, EngineConfig, PolicySpec};
use xbar_core::brute::Brute;
use xbar_core::policy::solve_policy;
use xbar_core::sensitivity::{sensitivity, sensitivity_fd};
use xbar_core::{solve, Algorithm, Dims, Model, SweepSolver};
use xbar_numeric::permutation;
use xbar_plan::{DesignSpace, PlanConfig, PlanError, RhoAxis, Slo, Strategy as PlanStrategy};
use xbar_sim::{replay, ReplayConfig};
use xbar_traffic::{TrafficClass, Workload};

/// Per-property case budget: `PROPTEST_CASES` env override, else 48.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-12);
    (a - b).abs() / scale < tol
}

/// A random valid traffic class for a switch with `max_n` ports: smooth
/// (Bernoulli, β < 0), Poisson (β = 0) or peaky (Pascal, β > 0).
fn arb_class(max_n: u32) -> impl Strategy<Value = TrafficClass> {
    let poisson =
        (0.001f64..2.0, 0.2f64..3.0, 1u32..3, 0.01f64..2.0).prop_map(|(rho, mu, a, w)| {
            TrafficClass::bpp(rho * mu, 0.0, mu)
                .with_bandwidth(a)
                .with_weight(w)
        });
    let pascal = (
        0.001f64..1.5,
        0.05f64..0.9,
        0.5f64..2.0,
        1u32..3,
        0.01f64..2.0,
    )
        .prop_map(|(alpha, frac, mu, a, w)| {
            TrafficClass::bpp(alpha, frac * mu, mu)
                .with_bandwidth(a)
                .with_weight(w)
        });
    let bernoulli = (1u64..6, 0.01f64..0.5, 0.5f64..2.0, 0.01f64..2.0).prop_map(
        move |(extra, p_rate, mu, w)| {
            // S = max_n + extra sources ⇒ λ stays positive in-state.
            let s = (max_n as u64 + extra) as f64;
            TrafficClass::bpp(s * p_rate, -p_rate, mu).with_weight(w)
        },
    );
    prop_oneof![poisson, pascal, bernoulli]
}

/// Models up to the issue's differential envelope: N1, N2 ≤ 12, R ≤ 4.
fn arb_model() -> impl Strategy<Value = Model> {
    (2u32..=12, 2u32..=12).prop_flat_map(|(n1, n2)| {
        let max_n = n1.max(n2);
        prop::collection::vec(arb_class(max_n), 1..=4).prop_filter_map(
            "classes must fit switch",
            move |classes| {
                let min_n = n1.min(n2);
                if classes.iter().any(|c| c.bandwidth > min_n) {
                    return None;
                }
                Model::new(Dims::new(n1, n2), Workload::from_classes(classes)).ok()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Tier 1 of the battery: every analytic backend against exact
    /// enumeration, with per-pair tolerances.
    #[test]
    fn backends_agree_with_enumeration_tiered(model in arb_model()) {
        let brute = Brute::new(&model);
        let r_count = model.num_classes();
        // (algorithm, tolerance vs brute): f64 recursions get the loose
        // tier, extended-range/MVA the tight one.
        let tiers = [
            (Algorithm::Alg1F64, 1e-7),
            (Algorithm::Alg1Scaled, 1e-8),
            (Algorithm::Alg1Ext, 1e-9),
            (Algorithm::Mva, 1e-9),
            (Algorithm::Convolution, 1e-7),
        ];
        for (alg, tol) in tiers {
            let sol = solve(&model, alg).unwrap();
            for r in 0..r_count {
                prop_assert!(
                    close(sol.nonblocking(r), brute.nonblocking(r), tol),
                    "alg {alg} B_{r}: {} vs {} (tol {tol})",
                    sol.nonblocking(r), brute.nonblocking(r)
                );
                prop_assert!(
                    close(sol.concurrency(r), brute.concurrency(r), tol),
                    "alg {alg} E_{r}: {} vs {} (tol {tol})",
                    sol.concurrency(r), brute.concurrency(r)
                );
            }
            prop_assert!(close(sol.revenue(), brute.revenue(), tol));
        }
        // The tight backends must also agree with *each other* at 1e-9
        // (a failure here with brute agreement points at the comparison,
        // not the solvers).
        let mva = solve(&model, Algorithm::Mva).unwrap();
        let ext = solve(&model, Algorithm::Alg1Ext).unwrap();
        for r in 0..r_count {
            prop_assert!(close(mva.nonblocking(r), ext.nonblocking(r), 1e-9));
        }
    }

    /// Tier 2: the admission engine's incremental state after a random
    /// event sequence must equal (a) the capacity rule's reference
    /// occupancy, (b) brute-force `ln(π(k)/π(0))`, and (c) the closed-form
    /// tuple availability — all without a single re-anchor being *needed*
    /// (drift checks run but the running sum stays within 1e-8).
    #[test]
    fn engine_replay_matches_enumeration(
        model in arb_model(),
        events in prop::collection::vec((prop::bool::ANY, 0u8..4), 1..200),
    ) {
        let r_count = model.num_classes();
        let dims = model.dims();
        let cap = dims.min_n();
        let bw: Vec<u32> = model.workload().classes().iter().map(|c| c.bandwidth).collect();
        let mut engine = AdmissionEngine::new(&model, EngineConfig::default()).unwrap();
        let mut k_ref = vec![0u32; r_count];
        let mut ka_ref = 0u32;
        for &(arrival, pick) in &events {
            let r = pick as usize % r_count;
            if arrival {
                let fits = ka_ref + bw[r] <= cap;
                let decision = engine.offer(r).unwrap();
                prop_assert_eq!(
                    decision == Decision::Admit,
                    fits,
                    "class {} at k·A = {}: {:?}",
                    r, ka_ref, decision
                );
                if fits {
                    k_ref[r] += 1;
                    ka_ref += bw[r];
                }
            } else if k_ref[r] > 0 {
                engine.depart(r).unwrap();
                k_ref[r] -= 1;
                ka_ref -= bw[r];
            } else {
                prop_assert!(engine.depart(r).is_err());
            }
        }
        prop_assert_eq!(engine.state(), &k_ref[..]);
        prop_assert_eq!(engine.occupancy(), ka_ref);

        let brute = Brute::new(&model);
        let want = (brute.pi(&k_ref) / brute.pi(&vec![0; r_count])).ln();
        let tol = 1e-8 * (1.0 + want.abs());
        prop_assert!(
            (engine.log_weight() - want).abs() < tol,
            "incremental {} vs brute {}",
            engine.log_weight(), want
        );
        prop_assert!((engine.log_weight() - engine.exact_log_weight()).abs() < tol);

        for (r, &b) in bw.iter().enumerate() {
            let a = b as u64;
            let want = permutation((dims.n1 - ka_ref) as u64, a)
                * permutation((dims.n2 - ka_ref) as u64, a)
                / (permutation(dims.n1 as u64, a) * permutation(dims.n2 as u64, a));
            prop_assert!(
                (engine.availability(r) - want).abs() < 1e-12,
                "availability class {r}: {} vs {want}",
                engine.availability(r)
            );
        }
    }

    /// Tier 4: the incremental sweep solver against fresh full solves.
    /// A random base model takes a random sequence of single-class edits
    /// (new `α`, `β`, `μ`, `a_r`, weight — including `a_r` changes and
    /// `β_r → 0` crossings, since the replacement class is drawn from the
    /// same smooth/Poisson/peaky mix as the base); each recombined point
    /// must match a fresh solve of the edited model. ExtFloat rays follow
    /// the exact same recurrence as the full lattice but associate the
    /// convolution differently, so agreement is to rounding (1e-11), not
    /// bit-for-bit; scaled-f64 rays get 1e-9.
    #[test]
    fn sweep_class_edits_match_fresh_full_solves(
        (model, edits) in arb_model().prop_flat_map(|m| {
            let max_n = m.dims().max_n();
            let r_count = m.num_classes();
            (
                Just(m),
                prop::collection::vec(
                    ((0..r_count), arb_class(max_n)),
                    1..6,
                ),
            )
        })
    ) {
        let ext = SweepSolver::new(&model, Algorithm::Alg1Ext).unwrap();
        // The scaled backend can refuse (operating envelope); skip it then.
        let scaled = SweepSolver::new(&model, Algorithm::Alg1Scaled).ok();
        let min_n = model.dims().min_n();
        for (r, class) in edits {
            if class.bandwidth > min_n {
                continue; // the edited model would be invalid
            }
            let mut classes = model.workload().classes().to_vec();
            classes[r] = class.clone();
            let edited = Model::new(model.dims(), Workload::from_classes(classes)).unwrap();

            let full = solve(&edited, Algorithm::Alg1Ext).unwrap();
            let point = ext.solve_with_class(r, class.clone()).unwrap();
            for q in 0..edited.num_classes() {
                prop_assert!(
                    close(point.nonblocking(q), full.nonblocking(q), 1e-11),
                    "ext B_{q}: sweep {} vs full {}",
                    point.nonblocking(q), full.nonblocking(q)
                );
                prop_assert!(
                    close(point.concurrency(q), full.concurrency(q), 1e-11),
                    "ext E_{q}: sweep {} vs full {}",
                    point.concurrency(q), full.concurrency(q)
                );
            }
            prop_assert!(close(point.revenue(), full.revenue(), 1e-11));

            if let Some(scaled) = &scaled {
                if let Ok(point) = scaled.solve_with_class(r, class) {
                    for q in 0..edited.num_classes() {
                        prop_assert!(
                            close(point.nonblocking(q), full.nonblocking(q), 1e-9),
                            "scaled B_{q}: sweep {} vs full {}",
                            point.nonblocking(q), full.nonblocking(q)
                        );
                    }
                    prop_assert!(close(point.revenue(), full.revenue(), 1e-9));
                }
            }
        }
    }

    /// Tier 5: the exact analytic sensitivity against the retained
    /// finite-difference oracle, across random BPP mixes. Central
    /// differences carry step-size error, so the tolerance is
    /// `1e-9 + 1e-6·scale` per entry.
    #[test]
    fn sweep_exact_sensitivity_matches_fd_oracle(model in arb_model()) {
        let fd_close = |a: f64, b: f64| (a - b).abs() <= 1e-9 + 1e-6 * a.abs().max(b.abs());
        let exact = sensitivity(&model, Algorithm::Alg1Ext).unwrap();
        let fd = sensitivity_fd(&model, Algorithm::Alg1Ext).unwrap();
        let r_count = model.num_classes();
        for s in 0..r_count {
            for r in 0..r_count {
                prop_assert!(
                    fd_close(exact.nonblocking_by_rho[r][s], fd.nonblocking_by_rho[r][s]),
                    "dB_{r}/drho_{s}: exact {} vs fd {}",
                    exact.nonblocking_by_rho[r][s], fd.nonblocking_by_rho[r][s]
                );
                prop_assert!(
                    fd_close(exact.concurrency_by_rho[r][s], fd.concurrency_by_rho[r][s]),
                    "dE_{r}/drho_{s}: exact {} vs fd {}",
                    exact.concurrency_by_rho[r][s], fd.concurrency_by_rho[r][s]
                );
            }
            prop_assert!(
                fd_close(exact.revenue_by_rho[s], fd.revenue_by_rho[s]),
                "dW/drho_{s}: exact {} vs fd {}",
                exact.revenue_by_rho[s], fd.revenue_by_rho[s]
            );
            prop_assert!(
                fd_close(exact.revenue_by_beta[s], fd.revenue_by_beta[s]),
                "dW/dbeta_{s}: exact {} vs fd {}",
                exact.revenue_by_beta[s], fd.revenue_by_beta[s]
            );
        }
    }

    /// Tier 6: sweep-aware online repricing. A shadow-price engine with
    /// per-batch repricing enabled must (a) make bit-identical admit/deny
    /// decisions to a plain engine priced once at anchor time, across
    /// ≥10k random events, and (b) finish every batch with a threshold
    /// vector identical to one derived from a *fresh* full
    /// [`sensitivity`] solve — the cached per-anchor gradients and the
    /// fresh solve are the same extended-range rays, so the thresholds
    /// are exact, not merely close. The backend tiers frame the margin
    /// that exactness rides on: scaled-f64 gradients agree with the
    /// extended-range ones to 1e-9 (ext is self-identical at 1e-11), so
    /// integer thresholds can only diverge when a revenue gradient sits
    /// inside that band around zero.
    #[test]
    fn repriced_engine_matches_fresh_sensitivity_pricing(
        model in arb_model(),
        seed in 0u64..1 << 48,
        reserve in 1u32..4,
        batch in 1u64..300,
    ) {
        let policy = PolicySpec::ShadowPrice { reserve };
        let cfg = |reprice_batch| EngineConfig {
            policy: policy.clone(),
            algorithm: Algorithm::Alg1Ext,
            reprice_batch,
            ..EngineConfig::default()
        };
        let mut plain = AdmissionEngine::new(&model, cfg(None)).unwrap();
        let mut repriced = AdmissionEngine::new(&model, cfg(Some(batch))).unwrap();
        prop_assert_eq!(plain.thresholds(), repriced.thresholds());

        let r_count = model.num_classes();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..10_000u64 {
            let r = rng.gen::<u64>() as usize % r_count;
            if rng.gen::<f64>() < 0.55 {
                let a = plain.offer(r).unwrap();
                let b = repriced.offer(r).unwrap();
                prop_assert_eq!(a, b, "event {i}: decisions diverged for class {r}");
            } else if plain.state()[r] > 0 {
                plain.depart(r).unwrap();
                repriced.depart(r).unwrap();
            } else {
                prop_assert!(plain.depart(r).is_err());
                prop_assert!(repriced.depart(r).is_err());
            }
            prop_assert_eq!(plain.state(), repriced.state());
        }

        // The model never changed, so every repricing pass re-derived the
        // anchor thresholds: passes ran, none of them moved a threshold.
        let stats = repriced.stats();
        prop_assert!(stats.reprice_batches > 0);
        prop_assert_eq!(stats.reprice_updates, 0);
        prop_assert_eq!(plain.stats().reprice_batches, 0);

        // (b): the repriced thresholds equal a fresh full solve's.
        let fresh = sensitivity(&model, Algorithm::Alg1Ext).unwrap();
        let want = policy.thresholds_from_sensitivity(r_count, &fresh).unwrap();
        prop_assert_eq!(repriced.thresholds(), &want[..]);
        prop_assert_eq!(plain.thresholds(), &want[..]);

        // Backend tolerance tiers behind the integer exactness: scaled
        // gradients within 1e-9 of ext, and equal thresholds whenever no
        // revenue gradient sits inside that band around zero.
        if let Ok(scaled) = sensitivity(&model, Algorithm::Alg1Scaled) {
            let mut sign_safe = true;
            for s in 0..r_count {
                prop_assert!(
                    close(scaled.revenue_by_rho[s], fresh.revenue_by_rho[s], 1e-9),
                    "dW/drho_{s}: scaled {} vs ext {}",
                    scaled.revenue_by_rho[s], fresh.revenue_by_rho[s]
                );
                let margin = 1e-9 * fresh.revenue_by_rho[s].abs().max(1e-12);
                sign_safe &= fresh.revenue_by_rho[s].abs() > margin;
            }
            if sign_safe {
                let scaled_t = policy
                    .thresholds_from_sensitivity(r_count, &scaled)
                    .unwrap();
                prop_assert_eq!(&scaled_t[..], &want[..]);
            }
        }
    }

    /// Tier 7: the capacity planner against brute force. Every candidate
    /// of a random small design space is solved independently with a
    /// fresh full [`solve`]; the brute-force argmax over SLO-feasible
    /// candidates (earliest index on ties — the planner's canonical
    /// tie-break) must agree with the planner's optimum to 1e-9, on the
    /// pruned and unpruned search paths alike. `Infeasible` must mean
    /// brute force found nothing feasible either.
    #[test]
    fn plan_optimum_matches_brute_force_argmax(space in arb_plan_space()) {
        let brute = brute_force_plan(&space);
        for prune in [false, true] {
            let result = xbar_plan::plan(&space, &PlanConfig {
                strategy: PlanStrategy::Exhaustive { prune, batch: false },
                ..PlanConfig::default()
            });
            match (&brute, result) {
                (Some((bi, bw)), Ok(report)) => {
                    let opt = &report.optimum;
                    prop_assert!(
                        close(opt.objective, *bw, 1e-9),
                        "prune={prune}: plan W {} vs brute W {bw}",
                        opt.objective
                    );
                    // Same design unless another candidate sits within
                    // the 1e-9 band of the maximum (then either is a
                    // legitimate argmax).
                    let near_ties = (0..space.num_candidates())
                        .filter(|&i| i != *bi)
                        .filter_map(|i| brute_objective(&space, i))
                        .filter(|&(_, w)| close(w, *bw, 1e-9))
                        .count();
                    if near_ties == 0 {
                        prop_assert_eq!(
                            opt.candidate.index, *bi,
                            "prune={}: unique argmax disagrees", prune
                        );
                    }
                }
                (None, Err(PlanError::Infeasible { evaluated, .. })) => {
                    prop_assert!(evaluated > 0);
                }
                (b, r) => prop_assert!(
                    false,
                    "prune={prune}: brute {b:?} vs plan {:?} disagree on feasibility",
                    r.map(|rep| rep.optimum.candidate.index)
                ),
            }
        }
    }
}

/// A random small design space for the tier-7 brute-force differential:
/// 2-class base on a 3..6-port square, 1–2 geometries, one offered-load
/// axis, one SLO landing anywhere from easily-satisfied to impossible.
fn arb_plan_space() -> impl Strategy<Value = DesignSpace> {
    (
        (
            3u32..7,
            0.002f64..0.05,
            0.002f64..0.04,
            0.0f64..0.5,
            0.1f64..3.0,
        ),
        (prop::bool::ANY, 0usize..2, 2usize..5, 0.02f64..0.9),
    )
        .prop_filter_map(
            "valid space",
            |((n, rho0, alpha1, frac1, w1), (two_geos, axis_class, steps, slo))| {
                let w = Workload::new()
                    .with(TrafficClass::poisson(rho0))
                    .with(TrafficClass::bpp(alpha1, frac1 * 1.0, 1.0).with_weight(w1));
                let base = Model::new(Dims::square(n), w).ok()?;
                let mut space = DesignSpace::new(base).with_geometry(Dims::square(n));
                if two_geos && n > 3 {
                    space = space.with_geometry(Dims::square(n - 1));
                }
                Some(
                    space
                        .with_axis(RhoAxis {
                            class: axis_class,
                            lo: 0.003,
                            hi: 0.024,
                            steps,
                        })
                        .with_slo(Slo {
                            class: 1 - axis_class,
                            max_blocking: slo,
                        }),
                )
            },
        )
}

/// Solve candidate `i` with a fresh full solve; `Some((i, revenue))` iff
/// it satisfies every SLO.
fn brute_objective(space: &DesignSpace, i: u64) -> Option<(u64, f64)> {
    let model = space
        .model_for(&space.candidate(i))
        .expect("valid candidate");
    let sol = solve(&model, Algorithm::Auto).expect("solvable");
    let feasible = space
        .slos
        .iter()
        .all(|s| 1.0 - sol.call_acceptance(s.class) <= s.max_blocking);
    feasible.then(|| (i, sol.revenue()))
}

/// Brute-force argmax over all candidates: strictly-greater keeps the
/// earliest index on exact ties, mirroring the planner's canonical order.
fn brute_force_plan(space: &DesignSpace) -> Option<(u64, f64)> {
    let mut best: Option<(u64, f64)> = None;
    for i in 0..space.num_candidates() {
        if let Some((i, w)) = brute_objective(space, i) {
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((i, w));
            }
        }
    }
    best
}

/// Tier 3: a *policy-constrained* replay against the numerically solved
/// reservation chain — the trunk-reservation engine must reproduce the
/// per-class acceptance of [`solve_policy`] within its 99% CI.
#[test]
fn trunk_replay_acceptance_matches_solved_reservation_chain() {
    let w = Workload::new()
        .with(TrafficClass::poisson(0.2))
        .with(TrafficClass::bpp(0.15, 0.05, 1.0));
    let model = Model::new(Dims::square(4), w).unwrap();
    let thresholds = vec![0u32, 1];
    let analytic = solve_policy(&model, &thresholds);
    let rep = replay(
        &model,
        &ReplayConfig {
            events: 400_000,
            seed: 20_260_807,
            batches: 20,
            engine: EngineConfig {
                policy: PolicySpec::TrunkReservation(thresholds),
                ..EngineConfig::default()
            },
        },
    )
    .unwrap();
    for (r, c) in rep.classes.iter().enumerate() {
        assert!(
            c.acceptance.covers_with_slack(analytic.acceptance[r], 2e-3),
            "class {r}: replay {:?} vs solve_policy {}",
            c.acceptance,
            analytic.acceptance[r]
        );
    }
    // The throttled class really was throttled.
    assert!(rep.classes[1].denied_policy > 0);
}

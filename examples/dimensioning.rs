//! Capacity dimensioning: how much load can a crossbar of each size carry
//! at a 0.5% blocking objective (the paper's chosen operating point), and
//! how much of that capacity does traffic burstiness destroy?
//!
//! For each `N` the example bisects the offered load `α̃` to the target
//! blocking under three peakedness regimes, then reports the carried load
//! and the "burstiness tax" — the capacity you must hold back when the
//! same mean load arrives peaky instead of smooth.
//!
//! Run with: `cargo run --release -p xbar --example dimensioning`

use xbar::{solve, Algorithm, Dims, Model, TrafficClass, Workload};

/// Blocking of a single class with per-pair `α = α̃/N` and per-pair `β`
/// chosen for peakedness `z` at `μ = 1`.
fn blocking(n: u32, alpha_tilde: f64, z: f64) -> f64 {
    let beta = 1.0 - 1.0 / z;
    let class = TrafficClass::bpp(alpha_tilde / n as f64, beta, 1.0);
    let model = Model::new(Dims::square(n), Workload::new().with(class)).expect("valid");
    solve(&model, Algorithm::Auto)
        .expect("solvable")
        .blocking(0)
}

/// Smooth case: Bernoulli with a finite source population (S = 4N, a
/// moderately thin subscriber pool), scaled to offered mean `α̃`.
fn blocking_smooth(n: u32, alpha_tilde: f64) -> f64 {
    let s = (4 * n) as f64;
    let p = alpha_tilde / n as f64 / s; // per-source rate so that α = α̃/N
    let class = TrafficClass::bpp(s * p, -p, 1.0);
    let model = Model::new(Dims::square(n), Workload::new().with(class)).expect("valid");
    solve(&model, Algorithm::Auto)
        .expect("solvable")
        .blocking(0)
}

/// Bisect `α̃` to the blocking target.
fn capacity_at<F: Fn(f64) -> f64>(target: f64, f: F) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while f(hi) < target {
        hi *= 2.0;
        assert!(hi < 1e6);
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn main() {
    let target = 0.005; // the paper's ≈0.5% operating point
    println!("offered load alpha-tilde achieving {target:.1}% blocking:\n");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>14}",
        "N", "smooth", "poisson", "peaky(Z=2)", "burstiness tax"
    );
    for n in [2u32, 4, 8, 16, 32, 64] {
        let smooth = capacity_at(target, |a| blocking_smooth(n, a));
        let poisson = capacity_at(target, |a| blocking(n, a, 1.0));
        let peaky = capacity_at(target, |a| blocking(n, a, 2.0));
        let tax = 1.0 - peaky / smooth;
        println!(
            "{n:>5} {smooth:>12.5} {poisson:>12.5} {peaky:>12.5} {:>13.1}%",
            tax * 100.0
        );
        // The paper's ordering, as a capacity statement: at equal blocking,
        // smooth traffic fits the most load and peaky the least.
        assert!(smooth >= poisson && poisson >= peaky);
    }
    println!(
        "\nReading: at the same 0.5% objective, a switch sized for smooth \
         subscriber traffic\nmust shed the shown percentage of load if the \
         traffic turns peaky (Z = 2)."
    );
}

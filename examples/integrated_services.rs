//! Integrated-services scenario from the paper's introduction: one optical
//! crossbar carrying voice, interactive data, and video with different
//! bandwidths, burstiness, and revenue — then using the §4 machinery
//! (shadow costs, revenue gradients) to answer an admission-policy
//! question.
//!
//! Run with: `cargo run --release -p xbar --example integrated_services`

use xbar::{solve, Algorithm, Burstiness, Dims, Model, TildeClass, Workload};

fn main() {
    let dims = Dims::square(32);

    // The §1 traffic mix: "voice, video, interactive data, each with
    // different arrival and service statistics … different bandwidth
    // requirements".
    // Loads aim at ≈60% port utilisation: voice ≈ 8 connections, data ≈ 4,
    // video ≈ 4 (×2 ports). Remember the tilde convention: for a = 2 the
    // rate aggregates over each of the C(32,2) input *sets*, so video's α̃
    // is much smaller than its port share suggests.
    let tilde = [
        // Voice: smooth (finite subscriber population of 2500), long
        // holding times, cheap per connection.
        TildeClass::bpp(0.125, -5.0e-5, 0.5).with_weight(0.5),
        // Interactive data: Poisson, short holding times, mid value.
        TildeClass::poisson(0.125).with_weight(1.0),
        // Video: peaky and wide — needs 2 ports per connection, pays most.
        TildeClass::bpp(0.0005, 0.00025, 0.25)
            .with_bandwidth(2)
            .with_weight(4.0),
    ];
    let names = ["voice", "data", "video"];
    let workload = Workload::from_tilde(&tilde, dims.n2);
    let model = Model::new(dims, workload).expect("valid model");
    let sol = solve(&model, Algorithm::Auto).expect("solvable");

    println!("integrated services on a {dims} crossbar\n");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "class", "regime", "blocking", "E[conns]", "throughput", "Z-factor"
    );
    for (r, name) in names.iter().enumerate() {
        let class = &model.workload().classes()[r];
        let regime = match class.burstiness() {
            Burstiness::Smooth => "smooth",
            Burstiness::Regular => "regular",
            Burstiness::Peaky => "peaky",
        };
        println!(
            "{name:>6} {regime:>10} {:>10.5} {:>12.3} {:>12.3} {:>10.4}",
            sol.blocking(r),
            sol.concurrency(r),
            sol.throughput(r),
            class.z_factor(),
        );
    }
    println!("\nrevenue W = {:.4}", sol.revenue());

    // §4's economic interpretation: a class is worth admitting more of iff
    // its per-connection revenue w_r exceeds the shadow cost ΔW of the
    // ports it occupies.
    println!("\nadmission economics (paper §4):");
    for (r, name) in names.iter().enumerate() {
        let w = model.workload().classes()[r].weight;
        let shadow = sol.shadow_cost(r);
        let gradient = sol.revenue_gradient_rho(r);
        let verdict = if w > shadow { "grow it" } else { "cap it" };
        println!(
            "  {name:>6}: w = {w:.2}, shadow cost = {shadow:.4}, dW/drho = {gradient:+.2}  -> {verdict}"
        );
    }

    // What does burstiness cost? The paper's Table 2 question, asked of
    // this mix: forward-difference gradients of W in each class's beta/mu.
    // Voice turning bursty displaces everyone, so that gradient must be
    // negative; video's own burstiness can *help* W because video is the
    // top earner — the sign flip is exactly the shadow-price economics.
    let g_voice = sol
        .revenue_gradient_beta_fd(0)
        .expect("gradient computable");
    let g_video = sol
        .revenue_gradient_beta_fd(2)
        .expect("gradient computable");
    println!(
        "\nsensitivity of revenue to burstiness: voice dW/d(beta/mu) = {g_voice:+.3}, \
         video dW/d(beta/mu) = {g_video:+.3}"
    );
    assert!(g_voice < 0.0, "losing voice smoothness must cost revenue");
}

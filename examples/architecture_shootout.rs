//! Architecture shoot-out: the §1 motivation quantified. A free-space
//! optical crossbar is internally non-blocking; the cheaper `O(N log N)`
//! Omega multistage network is not. This example pits the analytic
//! asynchronous crossbar, the synchronous slotted crossbar, and a
//! simulated Omega MIN against each other at matched per-input load.
//!
//! Run with: `cargo run --release -p xbar --example architecture_shootout`

use xbar::baselines::omega::{OmegaConfig, OmegaSim};
use xbar::baselines::slotted::slotted_acceptance;
use xbar::{solve, Algorithm, Dims, Model, ServiceDist, TrafficClass, Workload};

fn main() {
    let n: u32 = 16;
    let stages = (n as f64).log2() as u32;
    println!("blocking at matched per-input load, N = {n}:\n");
    println!(
        "{:>6} {:>14} {:>16} {:>12} {:>18}",
        "load", "async crossbar", "slotted crossbar", "omega MIN", "MIN internal part"
    );

    for u in [0.1f64, 0.2, 0.4, 0.6, 0.8] {
        // Asynchronous crossbar (exact product form).
        let lambda = u / n as f64;
        let model = Model::new(
            Dims::square(n),
            Workload::new().with(TrafficClass::poisson(lambda)),
        )
        .unwrap();
        let async_xbar = solve(&model, Algorithm::Auto).unwrap().blocking(0);

        // Slotted crossbar (closed form, Patel).
        let slotted = 1.0 - slotted_acceptance(n, n, u);

        // Omega MIN (simulation).
        let rep = OmegaSim::new(
            OmegaConfig {
                stages,
                lambda,
                service: ServiceDist::Exponential { mean: 1.0 },
            },
            7,
        )
        .run(300.0, 20_000.0, 10);
        let internal = rep.blocking.mean - rep.crossbar_blocking.mean;

        println!(
            "{u:>6.2} {async_xbar:>14.5} {slotted:>16.5} {:>12.5} {internal:>18.5}",
            rep.blocking.mean
        );

        // The motivating claim: the MIN pays internal blocking on top of
        // the end-port contention any switch has.
        assert!(rep.blocking.mean > rep.crossbar_blocking.mean);
    }

    println!(
        "\nReading: the Omega network's extra column is blocking that a \
         (non-blocking) crossbar\nnever exhibits — the cost of O(N log N) \
         hardware, and the reason the paper's authors\nlook to optical \
         crossbars instead."
    );
}

//! Quickstart: model one crossbar, read every measure, and cross-check the
//! analytic answer against the discrete-event simulator.
//!
//! Run with: `cargo run --release -p xbar --example quickstart`

use xbar::{
    solve, Algorithm, CrossbarSim, Dims, Model, RunConfig, SimConfig, TildeClass, Workload,
};

fn main() {
    // A 16×16 asynchronous crossbar. Two classes:
    //  - class 0: smooth (Bernoulli) "voice" traffic, 1 port/connection;
    //  - class 1: peaky (Pascal) "bursty data", 1 port/connection.
    // Tilde parameters are aggregated per input set over all outputs,
    // exactly as in the paper's experiments.
    let dims = Dims::square(16);
    let workload = Workload::from_tilde(
        &[
            TildeClass::bpp(0.4, -4.0e-4, 1.0), // S = 1000 sources
            TildeClass::bpp(0.2, 0.2, 1.0),
        ],
        dims.n2,
    );
    let model = Model::new(dims, workload).expect("valid model");

    // Solve analytically. `Auto` picks the paper's Algorithm 1 in plain
    // f64 here; large switches transparently switch to extended-range.
    let sol = solve(&model, Algorithm::Auto).expect("solvable");

    println!("analytic measures on {dims}:");
    for (r, name) in ["smooth voice", "peaky data"].iter().enumerate() {
        println!(
            "  class {r} ({name}): blocking = {:.5}, E[connections] = {:.3}, \
             call acceptance = {:.5}",
            sol.blocking(r),
            sol.concurrency(r),
            sol.call_acceptance(r),
        );
    }
    println!(
        "  throughput = {:.3} connections/unit-time, revenue W = {:.4}",
        sol.total_throughput(),
        sol.revenue()
    );
    println!(
        "  shadow cost of one more voice connection: {:.6}",
        sol.shadow_cost(0)
    );

    // Cross-check with the simulator (same classes, exponential holding).
    let cfg = SimConfig::new(dims.n1, dims.n2)
        .with_exp_class(model.workload().classes()[0].clone())
        .with_exp_class(model.workload().classes()[1].clone());
    let mut sim = CrossbarSim::new(cfg, 42);
    let report = sim.run(RunConfig {
        warmup: 500.0,
        duration: 50_000.0,
        batches: 20,
    });

    println!("\nsimulation ({} events):", report.events);
    for (r, c) in report.classes.iter().enumerate() {
        println!(
            "  class {r}: availability = {:.5} ± {:.5} (analytic B = {:.5}), \
             E = {:.3} ± {:.3} (analytic {:.3})",
            c.availability.mean,
            c.availability.half_width,
            sol.nonblocking(r),
            c.concurrency.mean,
            c.concurrency.half_width,
            sol.concurrency(r),
        );
        assert!(
            c.availability.covers_with_slack(sol.nonblocking(r), 0.01),
            "simulation drifted from analytics"
        );
    }
    println!("\nanalytics and simulation agree.");
}

//! Operations playbook: the extension APIs in one realistic sequence —
//! cold-start transient, steady-state solve, cross-class sensitivity,
//! and a trunk-reservation decision.
//!
//! Run with: `cargo run --release -p xbar --example operations_playbook`

use xbar::analytic::policy::solve_policy;
use xbar::analytic::sensitivity::sensitivity;
use xbar::analytic::transient::Transient;
use xbar::{solve, Algorithm, Dims, Model, TrafficClass, Workload};

fn main() {
    // A small edge switch: premium circuits vs best-effort bulk.
    let dims = Dims::square(6);
    let workload = Workload::new()
        .with(TrafficClass::poisson(0.02).with_weight(1.0))
        .with(TrafficClass::bpp(0.06, 0.02, 1.0).with_weight(0.05));
    let model = Model::new(dims, workload).expect("valid model");

    // 1. How long after power-on until measurements are meaningful?
    let tr = Transient::new(&model);
    let t_ready = tr.relaxation_time(1e-3);
    println!("cold start: within 1e-3 of stationarity after t = {t_ready:.2} holding times");
    for t in [0.5, 2.0, 8.0] {
        println!(
            "  t = {t:>4}: premium availability = {:.4}",
            tr.availability_at(t, 0)
        );
    }

    // 2. Steady state.
    let sol = solve(&model, Algorithm::Auto).expect("solvable");
    println!(
        "\nsteady state: premium blocking = {:.4}, bulk blocking = {:.4}, W = {:.4}",
        sol.blocking(0),
        sol.blocking(1),
        sol.revenue()
    );
    let occ = sol.occupancy_distribution();
    let busiest = occ
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "mode of the occupancy distribution: {} of {} ports busy (p = {:.3})",
        busiest.0,
        dims.min_n(),
        busiest.1
    );

    // 3. Which knob matters? Full Jacobian of the §4 gradients.
    let sens = sensitivity(&model, Algorithm::Auto).expect("sensitivity");
    println!("\nsensitivities:");
    for (s, name) in ["premium", "bulk"].iter().enumerate() {
        println!(
            "  d(premium availability)/d(rho_{name}) = {:+.3}, dW/d(rho_{name}) = {:+.3}",
            sens.nonblocking_by_rho[0][s], sens.revenue_by_rho[s]
        );
    }

    // 4. Should we reserve capacity against bulk? Sweep the threshold.
    println!("\ntrunk reservation against bulk:");
    let mut best = (0u32, f64::MIN);
    for t in 0..=dims.min_n() {
        let pol = solve_policy(&model, &[0, t]);
        println!(
            "  t = {t}: premium blocking = {:.4}, bulk blocking = {:.4}, W = {:.4}",
            pol.blocking[0], pol.blocking[1], pol.revenue
        );
        if pol.revenue > best.1 {
            best = (t, pol.revenue);
        }
    }
    println!(
        "\nrecommendation: reserve {} slot(s) against bulk (W = {:.4})",
        best.0, best.1
    );
    // Sanity for CI use of this example: the laissez-faire revenue must
    // never exceed the swept optimum.
    assert!(best.1 >= solve_policy(&model, &[0, 0]).revenue);
}

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Online admission control for the asynchronous multi-rate crossbar.
//!
//! The paper evaluates its measures — the non-blocking probabilities
//! `B_r`, the MVA ratios `F_i(N) = Q(N−1_i)/Q(N)` and the §4 shadow
//! prices — in offline batch sweeps. This crate turns them into the
//! quantities a switch controller consults *at call-setup time*: an
//! [`AdmissionEngine`] ingests a stream of per-class arrival/departure
//! events and answers admit/deny in `O(R)` work per event.
//!
//! The engine is **seeded** from one analytic solve (Alg2/MVA by
//! default, fetched through the process-wide
//! [`SolveCache`](xbar_core::SolveCache)) which provides the per-class
//! non-blocking state (`B_r`, call acceptance, shadow costs). Between
//! events it maintains, incrementally:
//!
//! - the occupancy vector `k` and the port occupancy `k·A`;
//! - the log stationary weight `ln π̃(k) = ln(π(k)/π(0))` of the current
//!   state, updated with one `O(a_r)` delta per event (the product-form
//!   birth/death ratio `Ψ(k+1_r)/Ψ(k) · λ_r(k_r)/((k_r+1)μ_r)`);
//! - per-class instantaneous tuple availability, derivable in `O(a_r)`
//!   from `k·A` alone.
//!
//! The incremental log-weight is a long sum of floating-point deltas, so
//! it drifts. Every `check_interval` events the engine recomputes the
//! weight exactly (an `O(N)` scan) and, when the gap exceeds
//! `drift_tol`, **re-anchors**: the incremental state is reset from the
//! exact recomputation and the analytic anchor is refreshed through the
//! solve cache (a cache hit unless the cache was evicted under pressure).
//!
//! Three [`PolicySpec`]s are pluggable: complete sharing (the paper's
//! model), per-class trunk reservation (the semantics of
//! [`xbar_core::policy::solve_policy`]), and revenue-aware shadow-price
//! thresholding derived from [`xbar_core::sensitivity`].

pub mod engine;
pub mod policy;

pub use engine::{
    AdmissionEngine, AdmissionError, ClassStats, Decision, DenyReason, EngineConfig, EngineState,
    EngineStats, Event,
};
pub use policy::PolicySpec;

//! The online admission engine: `O(R)` admit/deny per event over
//! incrementally maintained product-form state.

use std::sync::Arc;
use std::time::{Duration, Instant};

use xbar_core::sensitivity::{sensitivity_from, Sensitivity};
use xbar_core::{solve_cached, Algorithm, Model, Solution, SolveError, SweepSolver};
use xbar_numeric::permutation;

use crate::policy::PolicySpec;

/// One call-level event offered to the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A class-`class` call requests admission.
    Arrival {
        /// Class index in model order.
        class: usize,
    },
    /// A previously admitted class-`class` call completes.
    Departure {
        /// Class index in model order.
        class: usize,
    },
}

/// The engine's answer to an arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// The call is admitted (and the engine state was advanced).
    Admit,
    /// The call is denied.
    Deny(DenyReason),
}

/// Why an arrival was denied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenyReason {
    /// The ports do not fit: `k·A + a_r > min(N1,N2)` (or the drawn
    /// port tuple was busy, for callers that model tuple selection).
    Capacity,
    /// The ports fit but the policy's reservation threshold forbids the
    /// admission: `min(N1,N2) − k·A < a_r + t_r`.
    Policy,
}

/// A typed admission-engine failure.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionError {
    /// The anchor solve failed.
    Solve(SolveError),
    /// A class index outside `0..R`.
    UnknownClass {
        /// The offending index.
        class: usize,
        /// Number of classes in the model.
        classes: usize,
    },
    /// A departure for a class with no connection in progress.
    NoConnection {
        /// The offending class.
        class: usize,
    },
    /// A trunk-reservation threshold vector of the wrong arity.
    ThresholdArity {
        /// Thresholds supplied.
        got: usize,
        /// Classes in the model.
        want: usize,
    },
    /// A restored occupancy vector of the wrong arity.
    StateArity {
        /// Classes in the restored state.
        got: usize,
        /// Classes in the model.
        want: usize,
    },
    /// A restored occupancy vector whose port usage exceeds capacity.
    StateOverCapacity {
        /// Restored port occupancy `k·A`.
        ka: u64,
        /// Connection-slot capacity `min(N1, N2)`.
        cap: u32,
    },
    /// Repricing refused: the per-anchor pricing gradient is older than
    /// the configured deadline, and the shadow policy must not price on
    /// a stale gradient (re-anchor to refresh it).
    StalePrices {
        /// Age of the cached gradient when pricing was attempted, in ms.
        age_ms: u64,
        /// The configured staleness deadline, in ms.
        deadline_ms: u64,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Solve(e) => write!(f, "anchor solve failed: {e}"),
            AdmissionError::UnknownClass { class, classes } => {
                write!(f, "unknown class {class} (model has {classes})")
            }
            AdmissionError::NoConnection { class } => {
                write!(
                    f,
                    "departure for class {class} with no connection in progress"
                )
            }
            AdmissionError::ThresholdArity { got, want } => {
                write!(
                    f,
                    "policy needs one threshold per class: got {got}, want {want}"
                )
            }
            AdmissionError::StateArity { got, want } => {
                write!(
                    f,
                    "restored state needs one occupancy per class: got {got}, want {want}"
                )
            }
            AdmissionError::StateOverCapacity { ka, cap } => {
                write!(
                    f,
                    "restored state occupies {ka} ports but capacity is {cap}"
                )
            }
            AdmissionError::StalePrices {
                age_ms,
                deadline_ms,
            } => {
                write!(
                    f,
                    "pricing gradient is stale: {age_ms} ms old, deadline {deadline_ms} ms \
                     (re-anchor to refresh)"
                )
            }
        }
    }
}

impl std::error::Error for AdmissionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdmissionError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The admission policy.
    pub policy: PolicySpec,
    /// Algorithm for the anchor solve (Alg2/MVA by default — one lattice
    /// pass seeds every per-class measure the policies consult).
    pub algorithm: Algorithm,
    /// Events between exact drift checks of the incremental log-weight
    /// (`0` disables periodic checks; [`AdmissionEngine::re_anchor`]
    /// remains available).
    pub check_interval: u64,
    /// Relative drift tolerance: the engine re-anchors when
    /// `|inc − exact| > drift_tol · max(1, |exact|)`.
    pub drift_tol: f64,
    /// Events per online repricing batch: every `n` events the engine
    /// re-derives the policy thresholds from the per-anchor pricing
    /// state ([`AdmissionEngine::reprice_now`]). Event-count-driven so a
    /// WAL replay reproduces the cadence exactly. `None` (or `Some(0)`)
    /// disables repricing — thresholds refresh only at re-anchor, the
    /// pre-repricing behaviour.
    pub reprice_batch: Option<u64>,
    /// Maximum age of the per-anchor pricing gradient: a reprice due
    /// after this deadline refuses with
    /// [`AdmissionError::StalePrices`] instead of silently pricing on
    /// the stale gradient. `None` = no deadline (gradients only depend
    /// on the model, so they never *drift* — the deadline bounds how
    /// long a supervisor may serve prices without a fresh anchor).
    pub price_deadline: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            policy: PolicySpec::CompleteSharing,
            algorithm: Algorithm::Mva,
            check_interval: 4096,
            drift_tol: 1e-9,
            reprice_batch: None,
            price_deadline: None,
        }
    }
}

/// Per-class decision counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Arrivals offered.
    pub offered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals denied for capacity (ports don't fit / tuple busy).
    pub denied_capacity: u64,
    /// Arrivals denied by the reservation policy.
    pub denied_policy: u64,
}

/// Whole-engine counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events processed (arrivals, external blocks and departures).
    pub events: u64,
    /// Departures processed.
    pub departures: u64,
    /// Times the engine re-anchored from the solve cache.
    pub re_anchors: u64,
    /// Times a non-finite incremental delta forced an exact snap-back
    /// recomputation of the log-weight (λ = 0 transitions, propagated
    /// non-finite state). Silent before PR 6; see `admission.reanchor.*`.
    pub snap_backs: u64,
    /// Re-anchor attempts that failed (anchor solve or policy resolution
    /// error) — the engine surfaces the error but also counts it, so a
    /// supervisor can watch the failure rate without parsing errors.
    pub re_anchor_failures: u64,
    /// Per-batch repricing passes attempted (successful or refused).
    pub reprice_batches: u64,
    /// Repricing passes that actually changed the threshold vector
    /// (always `≤ reprice_batches` — the exit-6 metrics invariant).
    pub reprice_updates: u64,
    /// Per-class decision split.
    pub per_class: Vec<ClassStats>,
}

impl EngineStats {
    /// Total arrivals offered.
    pub fn offered(&self) -> u64 {
        self.per_class.iter().map(|c| c.offered).sum()
    }

    /// Total arrivals admitted.
    pub fn admitted(&self) -> u64 {
        self.per_class.iter().map(|c| c.admitted).sum()
    }

    /// Total capacity denials.
    pub fn denied_capacity(&self) -> u64 {
        self.per_class.iter().map(|c| c.denied_capacity).sum()
    }

    /// Total policy denials.
    pub fn denied_policy(&self) -> u64 {
        self.per_class.iter().map(|c| c.denied_policy).sum()
    }
}

/// A portable capture of everything an [`AdmissionEngine`] accumulates at
/// runtime — the occupancy vector, the incremental log-weight (bit-exact),
/// and the decision counters. Everything *else* an engine holds (anchor
/// solution, thresholds, capacities) is a pure function of the model and
/// [`EngineConfig`], so `new` + [`AdmissionEngine::restore_state`]
/// reconstructs an engine that behaves identically to the captured one —
/// the durability contract `xbar-serve` snapshots rely on.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineState {
    /// Occupancy vector `k` (one entry per class).
    pub k: Vec<u32>,
    /// The incrementally maintained `ln(π(k)/π(0))`, bit-exact: restoring
    /// it (rather than recomputing) reproduces the original engine's
    /// subsequent drift checks event-for-event.
    pub log_weight: f64,
    /// The effective spare-slot thresholds at capture time — the
    /// *pricing state*. Deterministic given the model and config, but
    /// captured explicitly so a recovered engine provably serves the
    /// same prices it served before the crash.
    pub thresholds: Vec<u32>,
    /// Events into the current repricing batch at capture time, so a
    /// recovered engine's next reprice fires after exactly the same
    /// event as the uninterrupted run's.
    pub reprice_events: u64,
    /// Decision and event counters.
    pub stats: EngineStats,
}

/// The per-anchor pricing state: the sweep solver built at re-anchor
/// time, the §4 gradients assembled from it, and when it was built (for
/// the staleness deadline). Gradients depend only on the model, so the
/// cached matrix stays exact until the next re-anchor; the solver is
/// retained so future occupancy- or edit-aware pricing can recombine
/// fresh gradients at `O(C²/a)` cost without a precompute.
struct Pricer {
    #[allow(dead_code)]
    sweep: SweepSolver,
    sens: Sensitivity,
    built: Instant,
}

/// The online admission-control engine. See the crate docs for the
/// incremental state it maintains and the re-anchoring contract.
pub struct AdmissionEngine {
    model: Model,
    cfg: EngineConfig,
    /// `min(N1, N2)` — the connection-slot capacity.
    cap: u32,
    /// Per-class bandwidth `a_r`.
    bw: Vec<u32>,
    /// `P(N1,a_r)·P(N2,a_r)` per class (availability denominator).
    tuple_count: Vec<f64>,
    /// Effective spare-slot thresholds (resolved from the policy).
    thresholds: Vec<u32>,
    /// Occupancy vector `k`.
    k: Vec<u32>,
    /// Port occupancy `k·A`.
    ka: u32,
    /// Incremental `ln(π(k)/π(0))`.
    log_weight: f64,
    /// The anchor solution (refreshed on re-anchor).
    anchor: Arc<Solution>,
    /// Per-anchor pricing state (present iff repricing is enabled and
    /// the policy consults gradients).
    pricer: Option<Pricer>,
    /// Events into the current repricing batch.
    reprice_events: u64,
    stats: EngineStats,
}

impl AdmissionEngine {
    /// Build an engine for `model`, seeding the per-class non-blocking
    /// state from one cached analytic solve.
    pub fn new(model: &Model, cfg: EngineConfig) -> Result<Self, AdmissionError> {
        let anchor = solve_cached(model, cfg.algorithm).map_err(AdmissionError::Solve)?;
        let (pricer, thresholds) = Self::build_pricing(model, &cfg, &anchor)?;
        let dims = model.dims();
        let classes = model.workload().classes();
        let bw: Vec<u32> = classes.iter().map(|c| c.bandwidth).collect();
        let tuple_count = bw
            .iter()
            .map(|&a| permutation(dims.n1 as u64, a as u64) * permutation(dims.n2 as u64, a as u64))
            .collect();
        let r_count = classes.len();
        Ok(AdmissionEngine {
            model: model.clone(),
            cap: dims.min_n(),
            bw,
            tuple_count,
            thresholds,
            k: vec![0; r_count],
            ka: 0,
            log_weight: 0.0,
            anchor,
            pricer,
            reprice_events: 0,
            stats: EngineStats {
                per_class: vec![ClassStats::default(); r_count],
                ..EngineStats::default()
            },
            cfg,
        })
    }

    /// Whether per-batch repricing is configured on.
    fn reprice_enabled(cfg: &EngineConfig) -> bool {
        matches!(cfg.reprice_batch, Some(n) if n > 0)
    }

    /// Resolve the policy thresholds for a (new or refreshed) anchor,
    /// building the per-anchor pricing state when repricing is on and
    /// the policy consults gradients. The thresholds come from the same
    /// gradients either way — [`sensitivity_from`] on the held solver is
    /// bit-identical to the fresh `sensitivity()` the plain path pays.
    fn build_pricing(
        model: &Model,
        cfg: &EngineConfig,
        anchor: &Solution,
    ) -> Result<(Option<Pricer>, Vec<u32>), AdmissionError> {
        if Self::reprice_enabled(cfg) && cfg.policy.needs_sensitivity() {
            let sweep = SweepSolver::new(model, cfg.algorithm).map_err(AdmissionError::Solve)?;
            let sens = sensitivity_from(&sweep);
            let thresholds = cfg
                .policy
                .thresholds_from_sensitivity(model.num_classes(), &sens)?;
            Ok((
                Some(Pricer {
                    sweep,
                    sens,
                    built: Instant::now(),
                }),
                thresholds,
            ))
        } else {
            Ok((None, cfg.policy.thresholds(model, cfg.algorithm, anchor)?))
        }
    }

    fn check_class(&self, class: usize) -> Result<(), AdmissionError> {
        if class >= self.k.len() {
            return Err(AdmissionError::UnknownClass {
                class,
                classes: self.k.len(),
            });
        }
        Ok(())
    }

    /// The pure policy decision for a class-`class` arrival in the
    /// current state — no state change, no accounting.
    pub fn decide(&self, class: usize) -> Result<Decision, AdmissionError> {
        self.check_class(class)?;
        let a = self.bw[class];
        if self.ka + a > self.cap {
            return Ok(Decision::Deny(DenyReason::Capacity));
        }
        if self.cap - self.ka < a + self.thresholds[class] {
            return Ok(Decision::Deny(DenyReason::Policy));
        }
        Ok(Decision::Admit)
    }

    /// Offer a class-`class` arrival: decide, advance the state if
    /// admitted, and account the outcome.
    pub fn offer(&mut self, class: usize) -> Result<Decision, AdmissionError> {
        let decision = self.decide(class)?;
        self.stats.per_class[class].offered += 1;
        match decision {
            Decision::Admit => {
                self.stats.per_class[class].admitted += 1;
                self.apply_arrival(class);
            }
            Decision::Deny(DenyReason::Capacity) => {
                self.stats.per_class[class].denied_capacity += 1
            }
            Decision::Deny(DenyReason::Policy) => self.stats.per_class[class].denied_policy += 1,
        }
        self.tick()?;
        Ok(decision)
    }

    /// Account a class-`class` arrival blocked *outside* the engine — a
    /// caller that models port-tuple selection found the drawn tuple
    /// busy. Counted as a capacity denial; no state change.
    pub fn record_blocked(&mut self, class: usize) -> Result<(), AdmissionError> {
        self.check_class(class)?;
        self.stats.per_class[class].offered += 1;
        self.stats.per_class[class].denied_capacity += 1;
        self.tick()
    }

    /// A previously admitted class-`class` call completes.
    pub fn depart(&mut self, class: usize) -> Result<(), AdmissionError> {
        self.check_class(class)?;
        if self.k[class] == 0 {
            return Err(AdmissionError::NoConnection { class });
        }
        self.apply_departure(class);
        self.stats.departures += 1;
        self.tick()
    }

    /// Apply one event; arrivals return the decision.
    pub fn apply(&mut self, event: Event) -> Result<Option<Decision>, AdmissionError> {
        match event {
            Event::Arrival { class } => self.offer(class).map(Some),
            Event::Departure { class } => self.depart(class).map(|()| None),
        }
    }

    /// The product-form log ratio for the transition `k → k + 1_class`
    /// taken from a state with `k_before` class connections and `ka_before`
    /// busy ports: `ln Ψ(k+1)/Ψ(k) + ln λ(k_before) − ln((k_before+1)μ)`.
    fn delta_log(&self, class: usize, k_before: u32, ka_before: u32) -> f64 {
        let dims = self.model.dims();
        let a = self.bw[class];
        let c = &self.model.workload().classes()[class];
        let mut d = 0.0f64;
        for j in ka_before..ka_before + a {
            d += ((dims.n1 - j) as f64).ln() + ((dims.n2 - j) as f64).ln();
        }
        d + c.lambda(k_before as u64).ln() - ((k_before + 1) as f64 * c.mu).ln()
    }

    fn apply_arrival(&mut self, class: usize) {
        let d = self.delta_log(class, self.k[class], self.ka);
        self.k[class] += 1;
        self.ka += self.bw[class];
        if d.is_finite() && self.log_weight.is_finite() {
            self.log_weight += d;
        } else {
            // λ = 0 transitions land in zero-probability states
            // (ln π = −∞); resolve exactly rather than propagating NaN.
            self.stats.snap_backs += 1;
            self.log_weight = self.exact_log_weight();
        }
    }

    fn apply_departure(&mut self, class: usize) {
        self.k[class] -= 1;
        self.ka -= self.bw[class];
        let d = self.delta_log(class, self.k[class], self.ka);
        if d.is_finite() && self.log_weight.is_finite() {
            self.log_weight -= d;
        } else {
            self.stats.snap_backs += 1;
            self.log_weight = self.exact_log_weight();
        }
    }

    /// Per-event bookkeeping: periodic exact drift check, then the
    /// per-batch repricing pass. Repricing runs *last* so that when it
    /// refuses ([`AdmissionError::StalePrices`]), the event itself has
    /// already been fully applied and accounted — the caller only lost
    /// the threshold refresh, not the event.
    fn tick(&mut self) -> Result<(), AdmissionError> {
        self.stats.events += 1;
        if self.cfg.check_interval > 0 && self.stats.events.is_multiple_of(self.cfg.check_interval)
        {
            let exact = self.exact_log_weight();
            let drift = (self.log_weight - exact).abs();
            // Negated so NaN drift (incomparable) also re-anchors.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(drift <= self.cfg.drift_tol * exact.abs().max(1.0)) {
                self.re_anchor()?;
            }
        }
        if let Some(batch) = self.cfg.reprice_batch {
            if batch > 0 {
                self.reprice_events += 1;
                if self.reprice_events >= batch {
                    // Reset *before* pricing so a refused reprice retries
                    // after a full fresh batch, not on every event.
                    self.reprice_events = 0;
                    self.reprice_now()?;
                }
            }
        }
        Ok(())
    }

    /// Re-derive the policy thresholds from the per-anchor pricing state
    /// — the per-batch repricing pass. `O(R)` when the pricer holds
    /// cached gradients (the [`SweepSolver`] + [`sensitivity_from`]
    /// assembly already ran at anchor time); static policies just
    /// re-resolve their threshold vector. Returns whether the thresholds
    /// changed.
    ///
    /// If a [`EngineConfig::price_deadline`] is set and the cached
    /// gradient is at least that old, the pass refuses with
    /// [`AdmissionError::StalePrices`] rather than silently serving
    /// prices from a gradient a supervisor should have refreshed —
    /// the attempt is still counted in [`EngineStats::reprice_batches`].
    pub fn reprice_now(&mut self) -> Result<bool, AdmissionError> {
        self.stats.reprice_batches += 1;
        let thresholds = match &self.pricer {
            Some(p) => {
                if let Some(deadline) = self.cfg.price_deadline {
                    let age = p.built.elapsed();
                    if age >= deadline {
                        return Err(AdmissionError::StalePrices {
                            age_ms: age.as_millis() as u64,
                            deadline_ms: deadline.as_millis() as u64,
                        });
                    }
                }
                self.cfg
                    .policy
                    .thresholds_from_sensitivity(self.k.len(), &p.sens)?
            }
            None => self
                .cfg
                .policy
                .thresholds(&self.model, self.cfg.algorithm, &self.anchor)?,
        };
        let changed = thresholds != self.thresholds;
        if changed {
            self.stats.reprice_updates += 1;
            self.thresholds = thresholds;
        }
        Ok(changed)
    }

    /// Reset the incremental state from an exact recomputation and
    /// refresh the analytic anchor through the solve cache. Failures
    /// (anchor solve, policy resolution) are returned *and* counted in
    /// [`EngineStats::re_anchor_failures`], so a supervisor watching the
    /// counters sees the failure rate without parsing errors.
    pub fn re_anchor(&mut self) -> Result<(), AdmissionError> {
        let refreshed = solve_cached(&self.model, self.cfg.algorithm)
            .map_err(AdmissionError::Solve)
            .and_then(|anchor| {
                Self::build_pricing(&self.model, &self.cfg, &anchor)
                    .map(|(pricer, thresholds)| (anchor, pricer, thresholds))
            });
        match refreshed {
            Ok((anchor, pricer, thresholds)) => {
                self.anchor = anchor;
                self.pricer = pricer;
                self.thresholds = thresholds;
                self.log_weight = self.exact_log_weight();
                self.stats.re_anchors += 1;
                // Note: `reprice_events` is deliberately *not* reset — the
                // repricing cadence is purely event-count-driven so a WAL
                // replay reproduces it exactly regardless of when drift
                // checks happened to re-anchor.
                Ok(())
            }
            Err(e) => {
                self.stats.re_anchor_failures += 1;
                Err(e)
            }
        }
    }

    /// Reset only the incremental log-weight from an exact recomputation,
    /// *without* refreshing the analytic anchor. This is the cheap
    /// degraded-mode fallback a deadline-bound supervisor uses when a full
    /// [`AdmissionEngine::re_anchor`] has blown its latency budget: drift
    /// is corrected, the (stale) anchor keeps serving.
    pub fn reset_weight(&mut self) {
        self.log_weight = self.exact_log_weight();
    }

    /// `ln(π(k)/π(0))` recomputed from scratch (`O(k·A + Σ_r k_r)`):
    /// `ln Ψ(k) + Σ_r Σ_{l=1..k_r} [ln λ_r(l−1) − ln(l·μ_r)]`.
    pub fn exact_log_weight(&self) -> f64 {
        let dims = self.model.dims();
        let mut s = 0.0f64;
        for j in 0..self.ka {
            s += ((dims.n1 - j) as f64).ln() + ((dims.n2 - j) as f64).ln();
        }
        for (r, c) in self.model.workload().classes().iter().enumerate() {
            for l in 1..=self.k[r] {
                s += c.lambda((l - 1) as u64).ln() - (l as f64 * c.mu).ln();
            }
        }
        s
    }

    /// The incrementally maintained `ln(π(k)/π(0))`.
    pub fn log_weight(&self) -> f64 {
        self.log_weight
    }

    /// Probability that a uniformly drawn class-`class` port tuple is
    /// fully idle in the current state —
    /// `P(N1−k·A, a)·P(N2−k·A, a) / (P(N1,a)·P(N2,a))`, the state-wise
    /// integrand of the paper's `B_r`.
    pub fn availability(&self, class: usize) -> f64 {
        let dims = self.model.dims();
        let a = self.bw[class] as u64;
        permutation((dims.n1 - self.ka) as u64, a) * permutation((dims.n2 - self.ka) as u64, a)
            / self.tuple_count[class]
    }

    /// The anchor's analytic call acceptance for `class` (the
    /// arrival-theorem-corrected `1 − B_r^{call}` a complete-sharing
    /// replay should reproduce).
    pub fn analytic_acceptance(&self, class: usize) -> f64 {
        self.anchor.call_acceptance(class)
    }

    /// Current occupancy vector `k`.
    pub fn state(&self) -> &[u32] {
        &self.k
    }

    /// Current port occupancy `k·A`.
    pub fn occupancy(&self) -> u32 {
        self.ka
    }

    /// Connection-slot capacity `min(N1, N2)`.
    pub fn capacity(&self) -> u32 {
        self.cap
    }

    /// The model this engine serves.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The anchor solution.
    pub fn anchor(&self) -> &Solution {
        &self.anchor
    }

    /// Effective per-class spare-slot thresholds.
    pub fn thresholds(&self) -> &[u32] {
        &self.thresholds
    }

    /// Decision and event counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Capture the engine's runtime state for durable snapshots.
    pub fn export_state(&self) -> EngineState {
        EngineState {
            k: self.k.clone(),
            log_weight: self.log_weight,
            thresholds: self.thresholds.clone(),
            reprice_events: self.reprice_events,
            stats: self.stats.clone(),
        }
    }

    /// Restore a previously [exported](AdmissionEngine::export_state)
    /// runtime state into this engine (built with the *same* model and
    /// config). The occupancy vector is validated against the model —
    /// wrong arity or over-capacity port usage is a typed error and leaves
    /// the engine untouched. The log-weight is restored bit-exactly, not
    /// recomputed, so replaying the same events afterwards reproduces the
    /// original run's drift checks and counters exactly.
    pub fn restore_state(&mut self, state: &EngineState) -> Result<(), AdmissionError> {
        if state.k.len() != self.k.len() || state.stats.per_class.len() != self.k.len() {
            return Err(AdmissionError::StateArity {
                got: state.k.len(),
                want: self.k.len(),
            });
        }
        if state.thresholds.len() != self.k.len() {
            return Err(AdmissionError::ThresholdArity {
                got: state.thresholds.len(),
                want: self.k.len(),
            });
        }
        let ka: u64 = state
            .k
            .iter()
            .zip(&self.bw)
            .map(|(&k, &a)| k as u64 * a as u64)
            .sum();
        if ka > self.cap as u64 {
            return Err(AdmissionError::StateOverCapacity { ka, cap: self.cap });
        }
        self.k = state.k.clone();
        self.ka = ka as u32;
        self.log_weight = state.log_weight;
        self.thresholds = state.thresholds.clone();
        self.reprice_events = state.reprice_events;
        self.stats = state.stats.clone();
        Ok(())
    }

    /// Flush the decision counters into the active observability sink
    /// (aggregate totals plus the per-class admit/deny split). Call once
    /// per run, like the simulator does — the hot path stays untouched.
    pub fn flush_obs(&self) {
        if !xbar_obs::enabled() {
            return;
        }
        xbar_obs::add("admission.events", self.stats.events);
        xbar_obs::add("admission.offers", self.stats.offered());
        xbar_obs::add("admission.admitted", self.stats.admitted());
        xbar_obs::add("admission.denied.capacity", self.stats.denied_capacity());
        xbar_obs::add("admission.denied.policy", self.stats.denied_policy());
        xbar_obs::add("admission.departures", self.stats.departures);
        xbar_obs::add("admission.reanchors", self.stats.re_anchors);
        xbar_obs::add("admission.reanchor.count", self.stats.re_anchors);
        xbar_obs::add("admission.reanchor.snap_backs", self.stats.snap_backs);
        xbar_obs::add("admission.reanchor.failures", self.stats.re_anchor_failures);
        xbar_obs::add("admission.reprice.batches", self.stats.reprice_batches);
        xbar_obs::add("admission.reprice.updates", self.stats.reprice_updates);
        for (r, c) in self.stats.per_class.iter().enumerate() {
            xbar_obs::add(&format!("admission.admit.class{r}"), c.admitted);
            xbar_obs::add(
                &format!("admission.deny.capacity.class{r}"),
                c.denied_capacity,
            );
            xbar_obs::add(&format!("admission.deny.policy.class{r}"), c.denied_policy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::brute::Brute;
    use xbar_core::Dims;
    use xbar_traffic::{TrafficClass, Workload};

    fn two_class_model() -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.15).with_weight(1.0))
            .with(TrafficClass::bpp(0.1, 0.05, 1.0).with_weight(0.1));
        Model::new(Dims::square(5), w).unwrap()
    }

    fn engine(model: &Model, policy: PolicySpec) -> AdmissionEngine {
        AdmissionEngine::new(
            model,
            EngineConfig {
                policy,
                ..EngineConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn complete_sharing_admits_to_capacity_then_denies() {
        let m = two_class_model();
        let mut e = engine(&m, PolicySpec::CompleteSharing);
        for i in 0..5 {
            assert_eq!(e.offer(0).unwrap(), Decision::Admit, "call {i}");
        }
        assert_eq!(e.occupancy(), 5);
        assert_eq!(e.offer(0).unwrap(), Decision::Deny(DenyReason::Capacity));
        assert_eq!(e.offer(1).unwrap(), Decision::Deny(DenyReason::Capacity));
        e.depart(0).unwrap();
        assert_eq!(e.offer(1).unwrap(), Decision::Admit);
        let s = e.stats();
        assert_eq!(s.offered(), 8);
        assert_eq!(s.admitted(), 6);
        assert_eq!(s.denied_capacity(), 2);
        assert_eq!(s.denied_policy(), 0);
        assert_eq!(s.departures, 1);
    }

    #[test]
    fn trunk_reservation_denies_with_policy_reason() {
        let m = two_class_model();
        let mut e = engine(&m, PolicySpec::TrunkReservation(vec![0, 2]));
        // Fill to cap − 2: class 1 still fits by capacity but not policy.
        for _ in 0..3 {
            assert_eq!(e.offer(0).unwrap(), Decision::Admit);
        }
        assert_eq!(e.offer(1).unwrap(), Decision::Deny(DenyReason::Policy));
        assert_eq!(e.offer(0).unwrap(), Decision::Admit);
        // Now ka = 4, cap = 5: class 1 fits by neither; capacity wins the
        // classification only when the ports genuinely don't fit.
        assert_eq!(e.offer(0).unwrap(), Decision::Admit);
        assert_eq!(e.offer(1).unwrap(), Decision::Deny(DenyReason::Capacity));
    }

    #[test]
    fn boundary_state_at_full_occupancy_denies_everything() {
        // k·A = min(N1,N2) exactly: every class must be denied Capacity.
        let m = two_class_model();
        let mut e = engine(&m, PolicySpec::CompleteSharing);
        while e.occupancy() < e.capacity() {
            e.offer(0).unwrap();
        }
        for r in 0..2 {
            assert_eq!(e.decide(r).unwrap(), Decision::Deny(DenyReason::Capacity));
            assert_eq!(e.availability(r), 0.0);
        }
    }

    #[test]
    fn log_weight_matches_brute_force_ratio() {
        let m = two_class_model();
        let brute = Brute::new(&m);
        let mut e = engine(&m, PolicySpec::CompleteSharing);
        let seq: [(bool, usize); 9] = [
            (true, 0),
            (true, 1),
            (true, 0),
            (false, 0),
            (true, 1),
            (true, 0),
            (false, 1),
            (true, 0),
            (true, 1),
        ];
        for &(arrival, class) in &seq {
            if arrival {
                e.offer(class).unwrap();
            } else {
                e.depart(class).unwrap();
            }
        }
        let pi0 = brute.pi(&[0, 0]);
        let pik = brute.pi(e.state());
        let want = (pik / pi0).ln();
        assert!(
            (e.log_weight() - want).abs() < 1e-10,
            "{} vs {}",
            e.log_weight(),
            want
        );
        assert!((e.log_weight() - e.exact_log_weight()).abs() < 1e-10);
    }

    #[test]
    fn errors_are_typed() {
        let m = two_class_model();
        let mut e = engine(&m, PolicySpec::CompleteSharing);
        assert_eq!(
            e.decide(7),
            Err(AdmissionError::UnknownClass {
                class: 7,
                classes: 2
            })
        );
        assert_eq!(e.depart(0), Err(AdmissionError::NoConnection { class: 0 }));
        assert_eq!(
            AdmissionEngine::new(
                &m,
                EngineConfig {
                    policy: PolicySpec::TrunkReservation(vec![0]),
                    ..EngineConfig::default()
                }
            )
            .err(),
            Some(AdmissionError::ThresholdArity { got: 1, want: 2 })
        );
    }

    #[test]
    fn shadow_policy_throttles_only_unprofitable_classes() {
        // A cheap, hungry class next to a valuable one: the §4 gradient is
        // negative for the cheap class, so the shadow policy must assign
        // it (and only it) the reserve threshold.
        let w = Workload::new()
            .with(TrafficClass::poisson(0.25).with_weight(1.0))
            .with(TrafficClass::poisson(0.5).with_weight(0.01));
        let m = Model::new(Dims::square(4), w).unwrap();
        let e = engine(&m, PolicySpec::ShadowPrice { reserve: 2 });
        assert_eq!(e.thresholds(), &[0, 2]);
    }

    #[test]
    fn re_anchor_resets_weight_and_counts() {
        let m = two_class_model();
        let mut e = engine(&m, PolicySpec::CompleteSharing);
        e.offer(0).unwrap();
        e.offer(1).unwrap();
        e.re_anchor().unwrap();
        assert_eq!(e.stats().re_anchors, 1);
        assert_eq!(e.log_weight(), e.exact_log_weight());
    }

    #[test]
    fn drift_check_re_anchors_automatically() {
        // check_interval 1 + zero tolerance: any representable drift
        // between the incremental sum and the exact recomputation forces
        // a re-anchor; after enough events under an inexact λ some must
        // fire, and the state stays exactly consistent.
        let m = two_class_model();
        let mut e = AdmissionEngine::new(
            &m,
            EngineConfig {
                check_interval: 1,
                drift_tol: 0.0,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for i in 0..200u32 {
            let class = (i % 2) as usize;
            if e.decide(class).unwrap() == Decision::Admit && i % 3 != 2 {
                e.offer(class).unwrap();
            } else if e.state()[class] > 0 {
                e.depart(class).unwrap();
            }
        }
        assert_eq!(e.log_weight(), e.exact_log_weight());
        assert!(e.stats().re_anchors > 0, "no drift in 200 events");
    }

    #[test]
    fn bernoulli_fill_drain_cycle_returns_to_zero_weight() {
        // S = 5 sources saturating a 5×5 switch: the last admitted call
        // uses the smallest λ the model permits (λ(4) = β·1). A full
        // fill/drain cycle must retrace the weight back to ln π̃(0) = 0
        // without accumulating error.
        let w = Workload::new().with(TrafficClass::bpp(0.5, -0.1, 1.0));
        let m = Model::new(Dims::square(5), w).unwrap();
        let mut e = engine(&m, PolicySpec::CompleteSharing);
        for _ in 0..5 {
            assert_eq!(e.offer(0).unwrap(), Decision::Admit);
        }
        assert_eq!(e.offer(0).unwrap(), Decision::Deny(DenyReason::Capacity));
        assert!((e.log_weight() - e.exact_log_weight()).abs() < 1e-10);
        for _ in 0..5 {
            e.depart(0).unwrap();
        }
        assert!(e.log_weight().abs() < 1e-10, "{}", e.log_weight());
    }

    #[test]
    fn export_restore_round_trips_bit_exactly() {
        let m = two_class_model();
        let mut e = engine(&m, PolicySpec::CompleteSharing);
        for i in 0..7u32 {
            let class = (i % 2) as usize;
            if e.decide(class).unwrap() == Decision::Admit {
                e.offer(class).unwrap();
            }
        }
        e.depart(0).unwrap();
        let state = e.export_state();
        // Restore into a fresh engine and drive both through the same
        // suffix: decisions, counters and the weight must stay identical.
        let mut f = engine(&m, PolicySpec::CompleteSharing);
        f.restore_state(&state).unwrap();
        assert_eq!(f.state(), e.state());
        assert_eq!(f.occupancy(), e.occupancy());
        assert_eq!(f.log_weight().to_bits(), e.log_weight().to_bits());
        assert_eq!(f.stats(), e.stats());
        for i in 0..20u32 {
            let class = (i % 2) as usize;
            assert_eq!(e.decide(class).unwrap(), f.decide(class).unwrap());
            if e.decide(class).unwrap() == Decision::Admit {
                e.offer(class).unwrap();
                f.offer(class).unwrap();
            } else if e.state()[class] > 0 {
                e.depart(class).unwrap();
                f.depart(class).unwrap();
            }
        }
        assert_eq!(f.log_weight().to_bits(), e.log_weight().to_bits());
        assert_eq!(f.stats(), e.stats());
    }

    #[test]
    fn restore_rejects_wrong_arity_and_over_capacity() {
        let m = two_class_model();
        let mut e = engine(&m, PolicySpec::CompleteSharing);
        let mut bad = e.export_state();
        bad.k = vec![0; 3];
        bad.stats.per_class = vec![ClassStats::default(); 3];
        assert_eq!(
            e.restore_state(&bad),
            Err(AdmissionError::StateArity { got: 3, want: 2 })
        );
        let mut over = e.export_state();
        over.k = vec![9, 0]; // 9 ports > cap 5
        assert_eq!(
            e.restore_state(&over),
            Err(AdmissionError::StateOverCapacity { ka: 9, cap: 5 })
        );
        // Failed restores leave the engine untouched.
        assert_eq!(e.state(), &[0, 0]);
    }

    #[test]
    fn snap_backs_are_counted_not_silent() {
        // Model validation keeps λ positive inside the lattice, so the
        // non-finite guard's reachable trigger is a poisoned *weight* —
        // e.g. a corrupted snapshot restored into a healthy engine. The
        // next event must snap back to the exact recomputation (healing
        // the state) and count it instead of doing so silently.
        let m = two_class_model();
        let mut e = engine(&m, PolicySpec::CompleteSharing);
        e.offer(0).unwrap();
        let mut poisoned = e.export_state();
        poisoned.log_weight = f64::NAN;
        e.restore_state(&poisoned).unwrap();
        assert_eq!(e.stats().snap_backs, 0);
        assert_eq!(e.offer(0).unwrap(), Decision::Admit);
        assert_eq!(e.stats().snap_backs, 1, "snap-back not counted");
        assert_eq!(e.log_weight(), e.exact_log_weight());
        // Healed: subsequent events are finite and do not snap back again.
        e.offer(1).unwrap();
        assert_eq!(e.stats().snap_backs, 1);
    }

    #[test]
    fn reset_weight_corrects_drift_without_touching_the_anchor() {
        let m = two_class_model();
        let mut e = engine(&m, PolicySpec::CompleteSharing);
        e.offer(0).unwrap();
        e.offer(1).unwrap();
        let anchors_before = e.stats().re_anchors;
        e.reset_weight();
        assert_eq!(e.log_weight(), e.exact_log_weight());
        assert_eq!(e.stats().re_anchors, anchors_before, "anchor refreshed");
    }

    #[test]
    fn flush_obs_exports_the_decision_split() {
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let m = two_class_model();
        {
            let _g = xbar_obs::scope(&reg);
            let mut e = engine(&m, PolicySpec::TrunkReservation(vec![0, 2]));
            for _ in 0..4 {
                e.offer(0).unwrap();
            }
            e.offer(1).unwrap(); // policy deny at ka = 4
            e.offer(0).unwrap(); // admit (ka 4 → 5)
            e.offer(0).unwrap(); // capacity deny
            e.re_anchor().unwrap();
            e.flush_obs();
        }
        let snap = reg.snapshot();
        let c = |n: &str| snap.counter(n).unwrap_or(0);
        assert_eq!(c("admission.offers"), 7);
        assert_eq!(c("admission.admitted"), 5);
        assert_eq!(c("admission.denied.capacity"), 1);
        assert_eq!(c("admission.denied.policy"), 1);
        assert_eq!(c("admission.reanchors"), 1);
        assert_eq!(c("admission.admit.class0"), 5);
        assert_eq!(c("admission.deny.policy.class1"), 1);
        assert_eq!(
            c("admission.offers"),
            c("admission.admitted") + c("admission.denied.capacity") + c("admission.denied.policy"),
        );
    }

    fn shadow_model() -> Model {
        // Same cheap-hungry vs valuable pair as the shadow-policy test,
        // so the repriced thresholds are non-trivial ([0, reserve]).
        let w = Workload::new()
            .with(TrafficClass::poisson(0.25).with_weight(1.0))
            .with(TrafficClass::poisson(0.5).with_weight(0.01));
        Model::new(Dims::square(4), w).unwrap()
    }

    #[test]
    fn repriced_thresholds_match_a_fresh_sensitivity_anchor() {
        // Per-batch repricing must serve the *same* thresholds a fresh
        // full sensitivity() anchor would — bit-identical, since the
        // cached gradients depend only on the model.
        let m = shadow_model();
        let policy = PolicySpec::ShadowPrice { reserve: 2 };
        let mut repriced = AdmissionEngine::new(
            &m,
            EngineConfig {
                policy: policy.clone(),
                reprice_batch: Some(3),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let fresh = engine(&m, policy);
        assert_eq!(repriced.thresholds(), fresh.thresholds());
        for i in 0..30u32 {
            let class = (i % 2) as usize;
            if repriced.decide(class).unwrap() == Decision::Admit && i % 3 != 2 {
                repriced.offer(class).unwrap();
            } else if repriced.state()[class] > 0 {
                repriced.depart(class).unwrap();
            } else {
                repriced.record_blocked(class).unwrap();
            }
            assert_eq!(repriced.thresholds(), fresh.thresholds(), "event {i}");
        }
        let s = repriced.stats();
        assert_eq!(s.reprice_batches, s.events / 3, "one pass per batch");
        // The model never changes, so the prices never move.
        assert_eq!(s.reprice_updates, 0);
        assert!(s.reprice_updates <= s.reprice_batches);
    }

    #[test]
    fn reprice_counters_respect_the_updates_le_batches_invariant() {
        // Static policies reprice too (to the same static vector), so
        // batches advance while updates stay at zero.
        let m = two_class_model();
        let mut e = AdmissionEngine::new(
            &m,
            EngineConfig {
                policy: PolicySpec::TrunkReservation(vec![0, 2]),
                reprice_batch: Some(2),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for _ in 0..8 {
            e.offer(0).unwrap();
        }
        let s = e.stats();
        assert_eq!(s.reprice_batches, 4);
        assert_eq!(s.reprice_updates, 0);
        assert!(s.reprice_updates <= s.reprice_batches);
        assert!(e.reprice_now().is_ok());
        assert_eq!(e.stats().reprice_batches, 5);
    }

    #[test]
    fn stale_prices_are_refused_not_served() {
        // Regression for the silent-staleness gap: with a zero deadline
        // every reprice attempt finds the gradient already expired and
        // must refuse with the typed error instead of pricing on it.
        // The triggering event is still fully applied and accounted.
        let m = shadow_model();
        let mut e = AdmissionEngine::new(
            &m,
            EngineConfig {
                policy: PolicySpec::ShadowPrice { reserve: 2 },
                reprice_batch: Some(1),
                price_deadline: Some(Duration::ZERO),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let err = e.offer(0).unwrap_err();
        assert!(
            matches!(err, AdmissionError::StalePrices { deadline_ms: 0, .. }),
            "{err:?}"
        );
        // The arrival itself landed before the refusal.
        assert_eq!(e.stats().per_class[0].offered, 1);
        assert_eq!(e.stats().per_class[0].admitted, 1);
        assert_eq!(e.state(), &[1, 0]);
        assert_eq!(e.stats().reprice_batches, 1);
        assert_eq!(e.stats().reprice_updates, 0);
        // A fresh re-anchor rebuilds the pricer; without the deadline the
        // same engine would price normally — prove the refusal is purely
        // the deadline by relaxing it.
        e.re_anchor().unwrap();
        let mut relaxed = AdmissionEngine::new(
            &m,
            EngineConfig {
                policy: PolicySpec::ShadowPrice { reserve: 2 },
                reprice_batch: Some(1),
                price_deadline: None,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(relaxed.offer(0).unwrap(), Decision::Admit);
        assert_eq!(relaxed.stats().reprice_batches, 1);
    }

    #[test]
    fn failed_reprice_retries_after_a_full_batch() {
        // The batch counter resets before the pricing attempt, so a
        // refused pass doesn't turn into a per-event refusal storm.
        let m = shadow_model();
        let mut e = AdmissionEngine::new(
            &m,
            EngineConfig {
                policy: PolicySpec::ShadowPrice { reserve: 2 },
                reprice_batch: Some(3),
                price_deadline: Some(Duration::ZERO),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(e.offer(0).unwrap(), Decision::Admit);
        assert_eq!(e.offer(1).unwrap(), Decision::Admit);
        assert!(e.offer(0).is_err(), "batch boundary must refuse");
        // Two more events pass quietly before the next refusal.
        e.depart(0).unwrap();
        e.depart(1).unwrap();
        assert!(e.depart(0).is_err());
        assert_eq!(e.stats().reprice_batches, 2);
    }

    #[test]
    fn export_restore_round_trips_the_pricing_state() {
        let m = shadow_model();
        let cfg = EngineConfig {
            policy: PolicySpec::ShadowPrice { reserve: 2 },
            reprice_batch: Some(5),
            ..EngineConfig::default()
        };
        let mut e = AdmissionEngine::new(&m, cfg.clone()).unwrap();
        for i in 0..7u32 {
            let class = (i % 2) as usize;
            if e.decide(class).unwrap() == Decision::Admit {
                e.offer(class).unwrap();
            } else {
                e.record_blocked(class).unwrap();
            }
        }
        let state = e.export_state();
        assert_eq!(state.thresholds, e.thresholds());
        assert_eq!(state.reprice_events, 2, "7 events into batches of 5");
        let mut f = AdmissionEngine::new(&m, cfg).unwrap();
        f.restore_state(&state).unwrap();
        // Drive both to the next batch boundary: the recovered engine's
        // reprice must fire on exactly the same event.
        for i in 0..6u32 {
            let class = (i % 2) as usize;
            if e.decide(class).unwrap() == Decision::Admit {
                e.offer(class).unwrap();
                f.offer(class).unwrap();
            } else {
                e.record_blocked(class).unwrap();
                f.record_blocked(class).unwrap();
            }
        }
        assert_eq!(f.stats(), e.stats());
        assert_eq!(f.thresholds(), e.thresholds());
        assert_eq!(f.export_state(), e.export_state());
        // Arity of the restored thresholds is validated.
        let mut bad = e.export_state();
        bad.thresholds = vec![0; 3];
        assert_eq!(
            f.restore_state(&bad),
            Err(AdmissionError::ThresholdArity { got: 3, want: 2 })
        );
    }

    #[test]
    fn flush_obs_exports_reprice_counters() {
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let m = shadow_model();
        {
            let _g = xbar_obs::scope(&reg);
            let mut e = AdmissionEngine::new(
                &m,
                EngineConfig {
                    policy: PolicySpec::ShadowPrice { reserve: 2 },
                    reprice_batch: Some(2),
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            for _ in 0..6 {
                let _ = e.offer(0).unwrap();
            }
            e.flush_obs();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("admission.reprice.batches"), Some(3));
        assert_eq!(snap.counter("admission.reprice.updates"), Some(0));
    }
}

//! Pluggable admission policies.
//!
//! Every policy reduces to a per-class spare-slot threshold vector `t`:
//! class `r` is admitted in state `k` iff
//! `min(N1,N2) − k·A ≥ a_r + t_r`. This is exactly the admission rule of
//! [`xbar_core::policy::solve_policy`], so the engine's decisions can be
//! cross-checked against the numerically solved reservation chain, and
//! `t ≡ 0` recovers the paper's complete-sharing model.

use xbar_core::sensitivity::{sensitivity, Sensitivity};
use xbar_core::{Algorithm, Model, Solution};

use crate::engine::AdmissionError;

/// Which admission policy the engine applies.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicySpec {
    /// The paper's baseline: admit whenever the ports fit
    /// (`k·A + a_r ≤ min(N1,N2)`).
    CompleteSharing,
    /// Per-class trunk reservation: class `r` must leave `t_r` spare
    /// connection slots behind (one threshold per class, in class order).
    TrunkReservation(Vec<u32>),
    /// Revenue-aware shadow-price thresholding: classes whose revenue
    /// gradient `∂W/∂ρ_r` (via [`xbar_core::sensitivity`]) is negative —
    /// i.e. whose §4 shadow cost exceeds their weight — are throttled
    /// with a reservation threshold of `reserve` slots; profitable
    /// classes share completely.
    ShadowPrice {
        /// Spare slots demanded from unprofitable classes.
        reserve: u32,
    },
}

impl PolicySpec {
    /// Parse a CLI-style policy spec:
    /// `cs` | `complete-sharing` | `trunk:t0,t1,...` | `shadow` |
    /// `shadow:reserve=N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "cs" | "complete-sharing" => return Ok(PolicySpec::CompleteSharing),
            "shadow" => return Ok(PolicySpec::ShadowPrice { reserve: 1 }),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("trunk:") {
            let thresholds = rest
                .split(',')
                .map(|p| {
                    p.parse::<u32>()
                        .map_err(|_| format!("bad trunk threshold '{p}' in '{s}'"))
                })
                .collect::<Result<Vec<u32>, String>>()?;
            if thresholds.is_empty() {
                return Err(format!("trunk policy '{s}' needs at least one threshold"));
            }
            return Ok(PolicySpec::TrunkReservation(thresholds));
        }
        if let Some(rest) = s.strip_prefix("shadow:") {
            let reserve = rest
                .strip_prefix("reserve=")
                .ok_or_else(|| format!("shadow policy options must be 'reserve=N', got '{s}'"))?
                .parse::<u32>()
                .map_err(|_| format!("bad reserve in '{s}'"))?;
            return Ok(PolicySpec::ShadowPrice { reserve });
        }
        Err(format!(
            "unknown policy '{s}' (expected cs | trunk:t0,t1,... | shadow[:reserve=N])"
        ))
    }

    /// Whether this policy prices its thresholds off the §4 sensitivity
    /// gradients (and therefore needs a gradient source at re-anchor /
    /// reprice time).
    pub fn needs_sensitivity(&self) -> bool {
        matches!(self, PolicySpec::ShadowPrice { .. })
    }

    /// Resolve the policy to one spare-slot threshold per class from an
    /// already-computed sensitivity analysis.
    ///
    /// This is the pricing rule itself, factored out so the online
    /// repricing path can apply it to the per-anchor *cached* gradients
    /// ([`xbar_core::sensitivity_from`]) instead of paying a fresh
    /// [`sensitivity`] solve per call — the two are bit-identical for
    /// the same model.
    pub fn thresholds_from_sensitivity(
        &self,
        r_count: usize,
        sens: &Sensitivity,
    ) -> Result<Vec<u32>, AdmissionError> {
        match self {
            PolicySpec::CompleteSharing | PolicySpec::TrunkReservation(_) => {
                self.thresholds_static(r_count)
            }
            PolicySpec::ShadowPrice { reserve } => Ok(sens
                .revenue_by_rho
                .iter()
                .map(|&g| if g < 0.0 { *reserve } else { 0 })
                .collect()),
        }
    }

    /// Threshold resolution for the policies that never consult
    /// gradients (complete sharing, trunk reservation).
    fn thresholds_static(&self, r_count: usize) -> Result<Vec<u32>, AdmissionError> {
        match self {
            PolicySpec::CompleteSharing => Ok(vec![0; r_count]),
            PolicySpec::TrunkReservation(t) => {
                if t.len() != r_count {
                    return Err(AdmissionError::ThresholdArity {
                        got: t.len(),
                        want: r_count,
                    });
                }
                Ok(t.clone())
            }
            PolicySpec::ShadowPrice { .. } => {
                unreachable!("shadow-price thresholds need a sensitivity source")
            }
        }
    }

    /// Resolve the policy to one spare-slot threshold per class for
    /// `model`, consulting the anchor solve / sensitivity analysis where
    /// the policy demands it.
    pub(crate) fn thresholds(
        &self,
        model: &Model,
        algorithm: Algorithm,
        _anchor: &Solution,
    ) -> Result<Vec<u32>, AdmissionError> {
        let r_count = model.num_classes();
        if self.needs_sensitivity() {
            let sens = sensitivity(model, algorithm).map_err(AdmissionError::Solve)?;
            self.thresholds_from_sensitivity(r_count, &sens)
        } else {
            self.thresholds_static(r_count)
        }
    }
}

impl std::fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicySpec::CompleteSharing => write!(f, "complete-sharing"),
            PolicySpec::TrunkReservation(t) => {
                write!(f, "trunk:")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            PolicySpec::ShadowPrice { reserve } => write!(f, "shadow:reserve={reserve}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_forms() {
        assert_eq!(
            PolicySpec::parse("cs").unwrap(),
            PolicySpec::CompleteSharing
        );
        assert_eq!(
            PolicySpec::parse("complete-sharing").unwrap(),
            PolicySpec::CompleteSharing
        );
        assert_eq!(
            PolicySpec::parse("trunk:0,2,1").unwrap(),
            PolicySpec::TrunkReservation(vec![0, 2, 1])
        );
        assert_eq!(
            PolicySpec::parse("shadow").unwrap(),
            PolicySpec::ShadowPrice { reserve: 1 }
        );
        assert_eq!(
            PolicySpec::parse("shadow:reserve=3").unwrap(),
            PolicySpec::ShadowPrice { reserve: 3 }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "nope",
            "trunk:",
            "trunk:1,x",
            "shadow:reserve=",
            "shadow:res=2",
            "shadow:reserve=-1",
            "",
        ] {
            assert!(PolicySpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_round_trips() {
        for s in ["complete-sharing", "trunk:0,2", "shadow:reserve=2"] {
            let p = PolicySpec::parse(s).unwrap();
            assert_eq!(PolicySpec::parse(&p.to_string()).unwrap(), p);
        }
    }
}

#![warn(missing_docs)]

//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! crate cannot be vendored; this shim provides source-compatible
//! [`Rng`] / [`SeedableRng`] traits and a deterministic [`rngs::StdRng`]
//! built on xoshiro256++ (seeded through SplitMix64, the construction the
//! xoshiro authors recommend). The *stream* differs from upstream
//! `StdRng` (which is ChaCha12), but every consumer in this workspace
//! only relies on determinism-given-seed, not on a specific stream.

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled "standardly" (the shim's analogue of
/// `Standard: Distribution<T>`). `f64`/`f32` sample uniformly in `[0, 1)`.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiplication (bias is
/// `O(span / 2^64)`, negligible for every use in this workspace).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty sample range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value interface (auto-implemented for every
/// [`RngCore`], like upstream `rand`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` (uniform `[0,1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for upstream's
    /// ChaCha12-based `StdRng`; same trait surface, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 output finalizer (Stafford's mix13 variant, the one the
    /// reference SplitMix64 uses). Pure bijection on `u64`.
    fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(*state)
    }

    /// Counter-based SplitMix64 generator with explicit *stream* support.
    ///
    /// A stream is a deterministic function of `(master_seed, stream_index)`
    /// alone — never of thread identity or spawn order — so work fanned out
    /// over any number of workers reproduces bit-identical results as long
    /// as each unit of work owns stream `i`. The stream axis is decorrelated
    /// from the sequence axis by folding the index through two finalizer
    /// rounds with an odd multiplier distinct from the Weyl increment the
    /// sequence steps by.
    #[derive(Clone, Debug)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Generator whose sequence starts at `seed` (stream 0 semantics of
        /// the reference SplitMix64).
        pub fn new(seed: u64) -> Self {
            SplitMix64 { state: seed }
        }

        /// The `stream`-th derived generator of `master_seed`.
        pub fn stream(master_seed: u64, stream: u64) -> Self {
            let folded = mix64(
                master_seed
                    ^ mix64(
                        stream
                            .wrapping_mul(0xA24B_AED4_963E_E407)
                            .wrapping_add(0x9E37_79B9_7F4A_7C15),
                    ),
            );
            SplitMix64 { state: folded }
        }

        /// Convenience: the first output of [`SplitMix64::stream`], used as a
        /// `u64` seed for downstream generators that take one (e.g. a
        /// replication harness handing each replication its own `StdRng`
        /// seed derived purely from `(master_seed, rep_index)`).
        pub fn stream_seed(master_seed: u64, stream: u64) -> u64 {
            Self::stream(master_seed, stream).next_u64()
        }
    }

    impl SeedableRng for SplitMix64 {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SplitMix64 {
                state: u64::from_le_bytes(seed),
            }
        }

        fn seed_from_u64(state: u64) -> Self {
            SplitMix64 { state }
        }
    }

    impl RngCore for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // All-zero is the one invalid xoshiro state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }

    impl StdRng {
        /// The `stream`-th xoshiro256++ generator of `master_seed`: state
        /// words are drawn from [`SplitMix64::stream`], so the result
        /// depends only on `(master_seed, stream)` — the derivation the
        /// xoshiro authors recommend, applied per stream instead of per
        /// seed. `from_stream(s, 0)` is intentionally *not* the same
        /// generator as `seed_from_u64(s)`: streams live in their own
        /// index space so existing single-stream seeds stay untouched.
        pub fn from_stream(master_seed: u64, stream: u64) -> Self {
            let mut sm = SplitMix64::stream(master_seed, stream);
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&sm.next_u64().to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        use super::rngs::SplitMix64;
        // Pure function of (master, index): re-deriving yields the same
        // sequence, which is what makes fan-out thread-count independent.
        let mut a = SplitMix64::stream(42, 3);
        let mut b = SplitMix64::stream(42, 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Distinct indices and distinct masters give distinct seeds.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(SplitMix64::stream_seed(42, i)));
            assert!(seen.insert(SplitMix64::stream_seed(43, i)));
        }
        // Adjacent indices should differ in roughly half the bits, not
        // just a counter's low bits.
        let mut total = 0u32;
        for i in 0..256u64 {
            let x = SplitMix64::stream_seed(7, i);
            let y = SplitMix64::stream_seed(7, i + 1);
            total += (x ^ y).count_ones();
        }
        let avg = f64::from(total) / 256.0;
        assert!((20.0..44.0).contains(&avg), "poor stream avalanche: {avg}");
    }

    #[test]
    fn std_rng_streams_differ_from_plain_seeding() {
        let mut direct = StdRng::seed_from_u64(9);
        let mut stream0 = StdRng::from_stream(9, 0);
        let mut stream1 = StdRng::from_stream(9, 1);
        let (d, s0, s1) = (
            direct.gen::<u64>(),
            stream0.gen::<u64>(),
            stream1.gen::<u64>(),
        );
        assert_ne!(d, s0);
        assert_ne!(s0, s1);
        // And re-derivation reproduces the stream exactly.
        let mut again = StdRng::from_stream(9, 1);
        assert_eq!(again.gen::<u64>(), s1);
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..=4);
            assert!(v == 3 || v == 4);
        }
        let x = rng.gen_range(-2.0f64..3.0);
        assert!((-2.0..3.0).contains(&x));
    }
}

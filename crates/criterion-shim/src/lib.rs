#![warn(missing_docs)]

//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace's benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (both plain and
//! `name/config/targets` forms).
//!
//! Statistics are deliberately simple — warm up for the configured time,
//! then time batches until the measurement window closes and report the
//! mean — because these benches exist to keep *relative* regressions
//! visible, not to produce publication-grade distributions.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// `true` when the bench binary was invoked in smoke mode
/// (`cargo bench -- --smoke`, or `XBAR_BENCH_SMOKE=1`): every benchmark
/// body runs exactly once, so CI can catch panics/regressions in the bench
/// harnesses themselves in seconds instead of minutes.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("XBAR_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Top-level benchmark driver (a configuration holder in this shim).
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 100,
            smoke: smoke_mode(),
        }
    }
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the nominal sample count (only scales the measurement window
    /// heuristically in this shim).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.warm_up, self.measurement, self.smoke, id, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Reduce/raise the nominal sample count for slow/fast benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declare per-iteration throughput. The shim records nothing (it
    /// reports plain ns/iter), but keeps the call site source-compatible
    /// with upstream criterion.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Set the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    fn label(&self, id: &str) -> String {
        format!("{}/{}", self.name, id)
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = self.label(id.as_ref());
        run_one(
            self.criterion.warm_up,
            self.criterion.measurement,
            self.criterion.smoke,
            &label,
            f,
        );
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = self.label(&id.0);
        run_one(
            self.criterion.warm_up,
            self.criterion.measurement,
            self.criterion.smoke,
            &label,
            |b| f(b, input),
        );
        self
    }

    /// Close the group (no-op beyond matching the upstream API).
    pub fn finish(self) {}
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

/// Per-iteration work declaration (accepted for source compatibility;
/// the shim's reporting ignores it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code under
/// test.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    smoke: bool,
    /// Filled in by `iter`: (iterations, total elapsed).
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time `f`, repeatedly, for the configured window (once, in smoke
    /// mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            let t0 = Instant::now();
            black_box(f());
            self.result = Some((1, t0.elapsed()));
            return;
        }
        // Warm-up, and discover a batch size targeting ~1ms per batch so
        // the Instant overhead stays negligible for fast bodies.
        let warm_end = Instant::now() + self.warm_up;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_end {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((1.0e-3 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 20);

        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += t0.elapsed();
            iters += batch;
        }
        self.result = Some((iters, elapsed));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    warm_up: Duration,
    measurement: Duration,
    smoke: bool,
    label: &str,
    mut f: F,
) {
    let mut b = Bencher {
        warm_up,
        measurement,
        smoke,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((iters, elapsed)) if smoke => {
            let mean_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
            println!("{label:<60} {:>14} (smoke: ran once)", fmt_ns(mean_ns));
        }
        Some((iters, elapsed)) => {
            let mean_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
            println!(
                "{label:<60} {:>14} /iter   ({iters} iters)",
                fmt_ns(mean_ns)
            );
        }
        None => println!("{label:<60} (no iterations run)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark entry function from a config expression and target
/// functions. Both upstream forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_body_exactly_once() {
        let mut count = 0u32;
        run_one(
            Duration::from_millis(5),
            Duration::from_millis(10),
            true,
            "smoke-test",
            |b| b.iter(|| count += 1),
        );
        assert_eq!(count, 1);
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.bench_function("add", |b| b.iter(|| black_box(1u64 + 2)));
        g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(3u64.pow(2))));
    }
}

//! Property battery for the durable codecs: WAL frames and tenant
//! snapshots must round-trip arbitrary states exactly, and *any*
//! truncation or byte corruption must degrade to a clean prefix (WAL) or
//! a clean rejection (snapshot) — never a panic, never a silently wrong
//! record.

use proptest::prelude::*;
use xbar_admission::{ClassStats, EngineState, EngineStats};
use xbar_serve::snapshot::{self, TenantSnapshot};
use xbar_serve::wal::{self, RecordKind, Wal, WalRecord};
use xbar_serve::ServeCounters;

fn tmp_wal(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xbar_prop_wal_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{tag}.wal"))
}

fn kind_from(i: u8) -> RecordKind {
    match i % 4 {
        0 => RecordKind::Arrival,
        1 => RecordKind::Departure,
        2 => RecordKind::Shed,
        _ => RecordKind::Rejected,
    }
}

fn record_strategy() -> impl Strategy<Value = WalRecord> {
    (0u64..u64::MAX, 0u8..4, 0u16..u16::MAX, proptest::bool::ANY).prop_map(
        |(seq, kind, class, skewed)| WalRecord {
            seq,
            kind: kind_from(kind),
            class,
            skewed,
        },
    )
}

fn engine_state_strategy() -> impl Strategy<Value = EngineState> {
    use proptest::num::f64::{INFINITE, NORMAL, QUIET_NAN, SUBNORMAL, ZERO};
    (
        proptest::collection::vec(0u32..64, 1..6),
        NORMAL | ZERO | SUBNORMAL | INFINITE | QUIET_NAN,
        0u64..1 << 40,
    )
        .prop_map(|(k, log_weight, events)| {
            let per_class = k
                .iter()
                .enumerate()
                .map(|(i, &ki)| ClassStats {
                    offered: events / 2 + i as u64,
                    admitted: ki as u64,
                    denied_capacity: events / 3,
                    denied_policy: i as u64 * 7,
                })
                .collect();
            let thresholds = k.iter().map(|&ki| ki % 5).collect();
            EngineState {
                k,
                log_weight,
                thresholds,
                reprice_events: events % 23,
                stats: EngineStats {
                    events,
                    departures: events / 4,
                    re_anchors: events % 17,
                    snap_backs: events % 3,
                    re_anchor_failures: events % 2,
                    reprice_batches: events % 13,
                    reprice_updates: events % 7,
                    per_class,
                },
            }
        })
}

fn snapshot_strategy() -> impl Strategy<Value = TenantSnapshot> {
    (
        0u64..u64::MAX,
        0u64..1 << 30,
        0u64..u64::MAX,
        engine_state_strategy(),
        proptest::collection::vec(0u64..1 << 40, 7),
        proptest::bool::ANY,
    )
        .prop_map(
            |(seq, wal_records, model_fp, engine, c, quarantined)| TenantSnapshot {
                seq,
                wal_records,
                model_fp,
                engine,
                counters: ServeCounters {
                    shed: c[0],
                    rejected: c[1],
                    skewed: c[2],
                    restarts: c[3],
                    stale_reanchors: c[4],
                    stale_reprices: c[5],
                    snapshots: c[6],
                },
                quarantined,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary record lists round-trip through append + recover, across
    /// a reopen.
    #[test]
    fn wal_round_trips_arbitrary_records(
        recs in proptest::collection::vec(record_strategy(), 0..80),
        tag in 0u64..1 << 32,
    ) {
        let path = tmp_wal(tag);
        let _ = std::fs::remove_file(&path);
        {
            let (mut w, rec0) = Wal::open(&path, 0).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert!(rec0.records.is_empty());
            for r in &recs {
                w.append(r).map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
            prop_assert_eq!(w.records(), recs.len() as u64);
        }
        let (_, recovery) = Wal::open(&path, 0).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&recovery.records, &recs);
        prop_assert!(!recovery.damaged);
        let _ = std::fs::remove_file(&path);
    }

    /// Truncating a WAL byte stream anywhere recovers a clean prefix of
    /// the original records: never a panic, never a mangled record, and
    /// `damaged` is set exactly when bytes were left over.
    #[test]
    fn wal_truncation_recovers_a_clean_prefix(
        recs in proptest::collection::vec(record_strategy(), 1..40),
        cut_frac in 0.0f64..1.0,
        tag in 0u64..1 << 32,
    ) {
        let path = tmp_wal(0x1_0000_0000 + tag);
        let _ = std::fs::remove_file(&path);
        {
            let (mut w, _) = Wal::open(&path, 0).map_err(|e| TestCaseError::fail(e.to_string()))?;
            for r in &recs {
                w.append(r).map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
        }
        let bytes = std::fs::read(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let recovery = wal::recover(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(recovery.records.len() <= recs.len());
        prop_assert_eq!(&recovery.records[..], &recs[..recovery.records.len()]);
        prop_assert_eq!(recovery.damaged, (recovery.valid_bytes as usize) < cut);
        // And Wal::open repairs in place (its own recovery still reports
        // the pre-repair damage): the scan *after* it is clean.
        let (_, reopened) = Wal::open(&path, 0).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reopened.damaged, recovery.damaged);
        let rescanned = wal::recover(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(!rescanned.damaged);
        prop_assert_eq!(&rescanned.records[..], &recs[..recovery.records.len()]);
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping any single byte recovers a clean (possibly shorter)
    /// prefix — the CRC catches every single-byte corruption before a
    /// wrong record can be produced.
    #[test]
    fn wal_single_byte_corruption_never_yields_a_wrong_record(
        recs in proptest::collection::vec(record_strategy(), 1..30),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
        tag in 0u64..1 << 32,
    ) {
        let path = tmp_wal(0x2_0000_0000 + tag);
        let _ = std::fs::remove_file(&path);
        {
            let (mut w, _) = Wal::open(&path, 0).map_err(|e| TestCaseError::fail(e.to_string()))?;
            for r in &recs {
                w.append(r).map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
        }
        let mut bytes = std::fs::read(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let recovery = wal::recover(&path).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(recovery.records.len() <= recs.len());
        prop_assert_eq!(&recovery.records[..], &recs[..recovery.records.len()]);
        // The corrupted frame itself can never survive.
        let frame = pos / (8 + 12);
        prop_assert!(recovery.records.len() <= frame, "corrupt frame {frame} survived");
        let _ = std::fs::remove_file(&path);
    }

    /// Snapshots round-trip arbitrary states exactly (log-weight compared
    /// by bit pattern: NaN and signed zero must survive).
    #[test]
    fn snapshot_round_trips_arbitrary_states(snap in snapshot_strategy()) {
        let bytes = snapshot::encode(&snap);
        let back = snapshot::decode(&bytes);
        prop_assert!(back.is_some());
        let back = match back { Some(b) => b, None => unreachable!() };
        prop_assert_eq!(
            back.engine.log_weight.to_bits(),
            snap.engine.log_weight.to_bits()
        );
        prop_assert_eq!(back.engine.k, snap.engine.k.clone());
        prop_assert_eq!(back.engine.thresholds, snap.engine.thresholds.clone());
        prop_assert_eq!(back.engine.reprice_events, snap.engine.reprice_events);
        prop_assert_eq!(back.engine.stats, snap.engine.stats.clone());
        prop_assert_eq!(back.counters, snap.counters);
        prop_assert_eq!(back.seq, snap.seq);
        prop_assert_eq!(back.wal_records, snap.wal_records);
        prop_assert_eq!(back.quarantined, snap.quarantined);
    }

    /// Any truncation or single-byte flip of an encoded snapshot decodes
    /// to `None` (degrade to full WAL replay) — never a panic, never a
    /// silently different state.
    #[test]
    fn snapshot_corruption_is_always_rejected(
        snap in snapshot_strategy(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = snapshot::encode(&snap);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        let mut flipped = bytes.clone();
        flipped[pos] ^= flip;
        prop_assert_eq!(snapshot::decode(&flipped), None);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert_eq!(snapshot::decode(&bytes[..cut]), None);
        }
    }
}

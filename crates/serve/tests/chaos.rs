//! The chaos battery: deterministic fault plans against the daemon,
//! asserting two invariants after every storm:
//!
//! 1. **Exact accounting** — `offers = admitted + denied(capacity) +
//!    denied(policy) + shed` holds to the event (the exit-6 metrics
//!    invariant), whatever was killed, truncated, corrupted, overloaded,
//!    malformed, or clock-skewed.
//! 2. **Byte-identical recovery** — with durable ordering intact (no
//!    bounded-queue shedding racing the crash), a killed-and-recovered
//!    daemon fed the same stream ends in exactly the state of an
//!    uninterrupted run: same occupancy vectors, same decision counters,
//!    same log-weight *bits*.
//!
//! Every plan is a pure function of its seed (see `xbar_serve::chaos`),
//! so a failure here replays exactly.

use std::path::PathBuf;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xbar_admission::PolicySpec;
use xbar_core::{Dims, Model};
use xbar_serve::chaos::{fault_schedule, BurstPlan, FaultAction, StreamPlan};
use xbar_serve::tenant::Tenant;
use xbar_serve::{Daemon, DaemonConfig, TenantConfig};
use xbar_traffic::{TrafficClass, Workload};

fn model() -> Model {
    Model::new(
        Dims::square(6),
        Workload::new()
            .with(TrafficClass::poisson(0.8))
            .with(TrafficClass::bpp(0.5, 0.1, 1.0).with_bandwidth(2)),
    )
    .unwrap()
}

fn dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("xbar_chaos_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Deterministic config: frequent snapshots so kills land between them,
/// drift checks off (their cadence is process-local, which would make the
/// byte-identical comparison depend on where the kill landed — drift
/// handling has its own tests).
fn tenant_cfg() -> TenantConfig {
    TenantConfig {
        check_interval: 0,
        snapshot_interval: 37,
        ..TenantConfig::default()
    }
}

fn daemon_cfg() -> DaemonConfig {
    DaemonConfig {
        tenant: tenant_cfg(),
        ..DaemonConfig::default()
    }
}

/// Collect the comparable end state: per-tenant engine state plus the
/// durable serve counters (shed/rejected/skewed — process-local counters
/// like snapshots-written are excluded).
fn end_state(daemon: &Daemon) -> Vec<(String, String)> {
    daemon
        .tenants()
        .map(|(name, t)| {
            let s = t.engine().export_state();
            let c = t.counters();
            (
                name.clone(),
                format!(
                    "k={:?} thr={:?} re={} lw={:016x} stats={:?} shed={} rejected={} \
                     skewed={} stale_rp={} q={}",
                    s.k,
                    s.thresholds,
                    s.reprice_events,
                    s.log_weight.to_bits(),
                    s.stats,
                    c.shed,
                    c.rejected,
                    c.skewed,
                    c.stale_reprices,
                    t.quarantined()
                ),
            )
        })
        .collect()
}

fn assert_accounting(daemon: &Daemon) {
    let acc = daemon.accounting();
    assert!(
        acc.holds(),
        "offers accounting violated: {} != {} + {} + {} + {} ({acc:?})",
        acc.offers,
        acc.admitted,
        acc.denied_capacity,
        acc.denied_policy,
        acc.shed
    );
}

/// The baseline storm: malformed lines, invalid departures, clock skew,
/// multi-tenant interleaving — applied synchronously, accounting exact.
#[test]
fn seeded_stream_with_injected_faults_keeps_exact_accounting() {
    let d = dir("stream");
    let plan = StreamPlan {
        lines: 3000,
        ..StreamPlan::default()
    };
    let lines = plan.generate_lines();
    let (mut daemon, _) = Daemon::open(&d, &model(), daemon_cfg()).unwrap();
    for line in &lines {
        daemon.ingest_line(line).unwrap();
    }
    daemon.drain().unwrap();
    assert_accounting(&daemon);
    let c = daemon.serve_counters();
    assert!(c.skewed > 0, "plan injects clock skew");
    assert!(c.rejected > 0, "plan injects invalid departures");
    assert!(
        daemon.counters().malformed > 0,
        "plan injects malformed lines"
    );
    let acc = daemon.accounting();
    assert!(acc.offers > 1000, "most lines were valid offers");
}

/// Kill -9 (drop without shutdown) at seeded points, then recover and
/// re-feed the same stream from the top: the end state must be
/// byte-identical to an uninterrupted run — occupancy, counters, and
/// log-weight bits.
#[test]
fn kill_and_recover_is_byte_identical_to_uninterrupted_run() {
    let plan = StreamPlan {
        lines: 2000,
        malformed_p: 0.02,
        invalid_p: 0.02,
        ..StreamPlan::default()
    };
    let lines = plan.generate_lines();

    // Golden: one uninterrupted run.
    let golden_dir = dir("kill_golden");
    let (mut golden, _) = Daemon::open(&golden_dir, &model(), daemon_cfg()).unwrap();
    for line in &lines {
        golden.ingest_line(line).unwrap();
    }
    golden.drain().unwrap();
    let want = end_state(&golden);

    // Chaos: kill at 5 seeded points, recovering and resuming from the
    // top each time (a resumed tailer re-reads the whole file; the resume
    // watermark deduplicates the durable prefix).
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let d = dir("kill_chaos");
    let mut cuts: Vec<usize> = (0..5).map(|_| rng.gen_range(1..lines.len())).collect();
    cuts.sort_unstable();
    let mut killed = 0;
    for &cut in &cuts {
        let (mut daemon, _) = Daemon::open(&d, &model(), daemon_cfg()).unwrap();
        for line in &lines[..cut] {
            daemon.ingest_line(line).unwrap();
        }
        daemon.drain().unwrap();
        // kill -9: drop with no shutdown, no final snapshot, queues lost.
        drop(daemon);
        killed += 1;
    }
    assert_eq!(killed, 5);
    let (mut daemon, reports) = Daemon::open(&d, &model(), daemon_cfg()).unwrap();
    assert!(!reports.is_empty(), "tenants recovered from durable state");
    for line in &lines {
        daemon.ingest_line(line).unwrap();
    }
    daemon.drain().unwrap();
    assert_accounting(&daemon);
    assert_eq!(end_state(&daemon), want, "recovery must be byte-identical");
    assert!(
        daemon.counters().duplicates > 0,
        "the durable prefix deduplicated"
    );
}

/// Kill -9 **mid-repricing-batch**: with per-batch shadow repricing on
/// (batch length coprime to the snapshot interval, so every seeded kill
/// lands with the batch phase partway through), a recovered daemon fed
/// the same stream must end with byte-identical thresholds, batch phase
/// (`reprice_events`), and `admission.reprice.*` counters — the pricing
/// state round-trips through snapshot V2 and WAL replay like any other
/// engine state.
#[test]
fn kill_mid_repricing_batch_recovers_byte_identical_thresholds_and_counters() {
    let shadow_model = || {
        Model::new(
            Dims::square(4),
            Workload::new()
                .with(TrafficClass::poisson(0.25))
                .with(TrafficClass::poisson(0.5).with_weight(0.01)),
        )
        .unwrap()
    };
    let plan = StreamPlan {
        lines: 2000,
        malformed_p: 0.02,
        invalid_p: 0.02,
        ..StreamPlan::default()
    };
    let lines = plan.generate_lines();
    let mut cfg = daemon_cfg();
    cfg.tenant.policy = PolicySpec::ShadowPrice { reserve: 1 };
    cfg.tenant.reprice_batch = Some(23); // coprime to snapshot_interval 37

    // Golden: one uninterrupted run, with the repricing path genuinely
    // live (passes ran, and the shadow policy holds a nonzero reserve).
    let golden_dir = dir("reprice_golden");
    let (mut golden, _) = Daemon::open(&golden_dir, &shadow_model(), cfg.clone()).unwrap();
    for line in &lines {
        golden.ingest_line(line).unwrap();
    }
    golden.drain().unwrap();
    let want = end_state(&golden);
    assert!(golden
        .tenants()
        .any(|(_, t)| t.engine().stats().reprice_batches > 0));
    assert!(
        golden
            .tenants()
            .any(|(_, t)| t.engine().thresholds().iter().any(|&x| x > 0)),
        "the shadow policy must actually reserve slots"
    );

    // Chaos: kill -9 at 5 seeded points (each almost surely mid-batch),
    // recover, resume from the top.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let d = dir("reprice_chaos");
    let mut cuts: Vec<usize> = (0..5).map(|_| rng.gen_range(1..lines.len())).collect();
    cuts.sort_unstable();
    for &cut in &cuts {
        let (mut daemon, _) = Daemon::open(&d, &shadow_model(), cfg.clone()).unwrap();
        for line in &lines[..cut] {
            daemon.ingest_line(line).unwrap();
        }
        daemon.drain().unwrap();
        drop(daemon); // kill -9: no shutdown, no final snapshot
    }
    let (mut daemon, reports) = Daemon::open(&d, &shadow_model(), cfg).unwrap();
    assert!(!reports.is_empty(), "tenants recovered from durable state");
    for line in &lines {
        daemon.ingest_line(line).unwrap();
    }
    daemon.drain().unwrap();
    assert_accounting(&daemon);
    assert_eq!(
        end_state(&daemon),
        want,
        "repriced recovery must be byte-identical (thresholds, phase, counters)"
    );
}

/// Crash with events still in the bounded queues: in-memory events die
/// with the process, but re-feeding the stream heals them exactly — the
/// per-record dedupe set re-applies queued-but-lost events instead of
/// swallowing everything below the resume watermark — and the durable
/// accounting stays exact.
#[test]
fn bounded_queue_crash_loses_at_most_the_queue_contents() {
    const QUEUE_CAP: usize = 16;
    let plan = StreamPlan {
        lines: 1500,
        malformed_p: 0.0,
        ..StreamPlan::default()
    };
    let lines = plan.generate_lines();
    let d = dir("bounded_loss");
    let cfg = DaemonConfig {
        queue_cap: QUEUE_CAP,
        ..daemon_cfg()
    };
    let queued_at_crash;
    {
        let (mut daemon, _) = Daemon::open(&d, &model(), cfg.clone()).unwrap();
        for line in &lines[..1000] {
            daemon.ingest_line(line).unwrap();
        }
        // Pump only partially: queues still hold events at the "crash".
        daemon.pump(100).unwrap();
        queued_at_crash = daemon.queued();
        assert!(queued_at_crash > 0, "crash must catch events in flight");
        drop(daemon); // kill -9
    }
    let (mut daemon, _) = Daemon::open(&d, &model(), cfg).unwrap();
    for line in &lines {
        daemon.ingest_line(line).unwrap();
    }
    daemon.drain().unwrap();
    assert_accounting(&daemon);
    // Every line is a valid event here (malformed_p = 0). Each either
    // landed durably before the crash (and deduplicates on re-feed) or
    // died in a queue — and the re-feed re-applies exactly the dead ones,
    // so the full stream reconciles: nothing lost, nothing doubled.
    let acc = daemon.accounting();
    let absorbed = acc.offers + acc.departures + acc.rejected;
    let total = lines.len() as u64;
    assert!(queued_at_crash as u64 <= total);
    assert_eq!(
        absorbed, total,
        "re-feed must heal the {queued_at_crash} events queued at crash"
    );
}

/// Truncate and corrupt WAL tails between kills: recovery chops to the
/// valid prefix, the re-fed stream heals the difference, and accounting
/// stays exact. The schedule itself comes from the seeded fault plan.
#[test]
fn wal_truncation_and_corruption_between_kills_recovers() {
    let plan = StreamPlan {
        lines: 1200,
        tenants: 3,
        ..StreamPlan::default()
    };
    let lines = plan.generate_lines();
    let schedule = fault_schedule(42, 6, 400);
    let d = dir("wal_faults");
    let mut fed = 0usize;
    for action in &schedule {
        let (mut daemon, _) = Daemon::open(&d, &model(), daemon_cfg()).unwrap();
        // Feed a fresh slice of the stream each round (resume dedupes the
        // durable prefix).
        fed = (fed + lines.len() / 8).min(lines.len());
        for line in &lines[..fed] {
            daemon.ingest_line(line).unwrap();
        }
        daemon.drain().unwrap();
        assert_accounting(&daemon);
        drop(daemon); // kill
                      // Damage a durable file per the schedule.
        let victim = Tenant::wal_path(&d, "t1");
        match action {
            FaultAction::TruncateWalTail(n) => {
                if let Ok(meta) = std::fs::metadata(&victim) {
                    let keep = meta.len().saturating_sub(*n);
                    let f = std::fs::OpenOptions::new()
                        .write(true)
                        .open(&victim)
                        .unwrap();
                    f.set_len(keep).unwrap();
                }
            }
            FaultAction::CorruptWalByte(off) => {
                if let Ok(mut bytes) = std::fs::read(&victim) {
                    if !bytes.is_empty() {
                        let i = bytes.len() - 1 - (*off as usize % bytes.len());
                        bytes[i] ^= 0xFF;
                        std::fs::write(&victim, &bytes).unwrap();
                    }
                }
            }
            FaultAction::KillAfter(_) => {} // the drop above was the kill
        }
    }
    // Final full feed: everything durable must reconcile exactly.
    let (mut daemon, _) = Daemon::open(&d, &model(), daemon_cfg()).unwrap();
    for line in &lines {
        daemon.ingest_line(line).unwrap();
    }
    daemon.drain().unwrap();
    assert_accounting(&daemon);
    let acc = daemon.accounting();
    assert!(acc.offers > 0 && acc.admitted > 0);
}

/// Port-failure bursts from the simulator's fault layer: failures appear
/// as synchronized departure storms (torn-down circuits), repairs as
/// retry waves. The daemon absorbs both; over-departing is rejected
/// durably, accounting stays exact.
#[test]
fn port_failure_bursts_are_absorbed_with_exact_accounting() {
    let d = dir("bursts");
    let stream = StreamPlan {
        lines: 800,
        tenants: 1,
        malformed_p: 0.0,
        invalid_p: 0.0,
        ..StreamPlan::default()
    };
    let bursts = BurstPlan {
        seed: 11,
        mtbf: 10.0,
        mttr: 2.0,
        n1: 6,
        n2: 6,
        transitions: 30,
        tenant: 0,
        burst: 8,
        classes: 2,
    };
    let (mut daemon, _) = Daemon::open(&d, &model(), daemon_cfg()).unwrap();
    for line in stream
        .generate_lines()
        .iter()
        .chain(bursts.generate_lines().iter())
    {
        daemon.ingest_line(line).unwrap();
    }
    daemon.drain().unwrap();
    assert_accounting(&daemon);
    let c = daemon.serve_counters();
    assert!(
        c.rejected > 0,
        "departure storms over-depart and must be rejected durably"
    );
}

/// A tenant fed garbage until quarantine stops serving but keeps exact
/// accounting — and the rest of the fleet is untouched.
#[test]
fn quarantined_tenant_is_isolated_from_the_fleet() {
    let d = dir("quarantine");
    let mut cfg = daemon_cfg();
    cfg.tenant.max_failures = 4;
    let (mut daemon, _) = Daemon::open(&d, &model(), cfg).unwrap();
    // Healthy traffic on t0, poison on t1 (departures with nothing in
    // flight, back to back).
    for i in 0..40 {
        daemon.ingest_line(&format!("t0 a {} @{i}", i % 2)).unwrap();
        daemon.ingest_line(&format!("t1 d 0 @{i}")).unwrap();
    }
    daemon.drain().unwrap();
    assert_eq!(daemon.quarantined_tenants(), 1);
    assert!(daemon.tenant("t1").unwrap().quarantined());
    assert!(!daemon.tenant("t0").unwrap().quarantined());
    // t0 served everything; t1's garbage is all durably rejected.
    assert_eq!(daemon.tenant("t0").unwrap().engine().stats().offered(), 40);
    assert_eq!(daemon.tenant("t1").unwrap().counters().rejected, 40);
    assert_accounting(&daemon);
    // Quarantine survives a restart.
    drop(daemon);
    let mut cfg = daemon_cfg();
    cfg.tenant.max_failures = 4;
    let (daemon, _) = Daemon::open(&d, &model(), cfg).unwrap();
    assert!(daemon.tenant("t1").unwrap().quarantined());
    assert_accounting(&daemon);
}

/// The whole battery through the runtime's file source, including a clean
/// shutdown — then a crash-recovery pass over the same trace file.
#[test]
fn file_source_end_to_end_with_recovery() {
    let d = dir("file_e2e");
    let trace = d.join("trace.txt");
    let plan = StreamPlan {
        lines: 1000,
        ..StreamPlan::default()
    };
    let mut body = plan.generate_lines().join("\n");
    body.push('\n');
    std::fs::write(&trace, &body).unwrap();

    let data = d.join("data");
    let (mut daemon, _) = Daemon::open(&data, &model(), daemon_cfg()).unwrap();
    let report = xbar_serve::run_source(
        &mut daemon,
        &xbar_serve::Source::File(trace.clone()),
        Duration::ZERO,
    )
    .unwrap();
    assert_eq!(report.lines, 1000);
    assert_accounting(&daemon);
    let want = end_state(&daemon);
    drop(daemon);

    // Run the same trace again against the same durable state: everything
    // deduplicates, the end state is unchanged.
    let (mut daemon, _) = Daemon::open(&data, &model(), daemon_cfg()).unwrap();
    let report = xbar_serve::run_source(
        &mut daemon,
        &xbar_serve::Source::File(trace),
        Duration::ZERO,
    )
    .unwrap();
    assert_eq!(report.applied, 0, "every event deduplicated");
    assert_eq!(end_state(&daemon), want);
    assert_accounting(&daemon);
}

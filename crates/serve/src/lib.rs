#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! `xbar-serve`: a fault-tolerant multi-tenant admission daemon.
//!
//! The [`xbar_admission::AdmissionEngine`] answers admit/deny in `O(R)`
//! per event — but a process that *runs* one is a different artifact from
//! the engine itself. This crate wraps one engine per tenant in the four
//! layers a production admission controller needs:
//!
//! 1. **Durability** ([`wal`], [`snapshot`]) — every event that durably
//!    happened to a tenant (applied, shed, or rejected) lands in an
//!    append-only CRC-framed WAL; periodic snapshots capture the engine's
//!    exact runtime state (occupancy vector, bit-exact log-weight,
//!    counters) so a `kill -9` recovers to byte-identical accounting by
//!    restoring the snapshot and replaying the WAL suffix. The WAL is the
//!    source of truth: a corrupt or stale snapshot degrades to a full
//!    replay, never to data loss.
//! 2. **Supervision** ([`tenant`]) — engine integrity failures (anchor
//!    solve errors, corrupted restored state, non-finite drift) restart
//!    the tenant from durable storage under capped exponential backoff;
//!    after `max_failures` consecutive failures the tenant is
//!    **quarantined**: arrivals shed durably, departures rejected, the
//!    rest of the fleet unaffected.
//! 3. **Graceful degradation** ([`daemon`]) — per-tenant ingest queues
//!    are bounded; overflow is *load-shed with a durable record* (so the
//!    exit-6 accounting invariant `offers = admitted + denied(capacity) +
//!    denied(policy) + shed` holds exactly across crashes), and drift
//!    re-anchors that blow a configured deadline fall back to correcting
//!    the weight against the **stale anchor** (tracked by the
//!    `serve.anchor_stale` gauge) instead of stalling the event loop.
//! 4. **Deterministic chaos** ([`chaos`]) — seeded fault plans (kill
//!    points, WAL truncation/corruption, malformed lines, clock-skewed
//!    batches, port-failure bursts reusing the simulator's fault layer)
//!    drive the `tests/chaos.rs` battery, which asserts bounded loss and
//!    exact post-recovery accounting.
//!
//! The binary entry point is `xbar serve` (see `crates/xbar`); this crate
//! holds everything testable in-process.

pub mod chaos;
pub mod daemon;
pub mod runtime;
pub mod snapshot;
pub mod tenant;
pub mod wal;

pub use daemon::{Daemon, DaemonConfig, DaemonCounters, ParsedEvent, ParsedLine};
pub use runtime::{run_source, Source};
pub use snapshot::{model_fingerprint, TenantSnapshot};
pub use tenant::{Outcome, RecoveryReport, ServeCounters, Tenant, TenantConfig};
pub use wal::{RecordKind, Wal, WalRecord, WalRecovery};

use std::path::Path;

use xbar_admission::AdmissionError;

/// A typed `xbar-serve` failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error, rendered.
        detail: String,
    },
    /// The admission engine failed in a way supervision could not absorb
    /// (construction failure, or quarantine-threshold integrity errors).
    Admission(AdmissionError),
    /// A configuration problem (bad policy spec, bad model, bad option).
    Config(String),
    /// Durable state failed validation beyond what recovery tolerates.
    Corrupt {
        /// The file involved.
        path: String,
        /// What was wrong.
        detail: String,
    },
}

impl ServeError {
    /// Wrap an I/O error with the path it happened on.
    pub fn io(path: &Path, err: &std::io::Error) -> Self {
        ServeError::Io {
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { path, detail } => write!(f, "i/o error on {path}: {detail}"),
            ServeError::Admission(e) => write!(f, "admission engine: {e}"),
            ServeError::Config(msg) => write!(f, "configuration: {msg}"),
            ServeError::Corrupt { path, detail } => write!(f, "corrupt state in {path}: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<AdmissionError> for ServeError {
    fn from(e: AdmissionError) -> Self {
        ServeError::Admission(e)
    }
}

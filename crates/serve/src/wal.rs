//! The append-only event WAL.
//!
//! One WAL file per tenant records every event that *durably happened* to
//! that tenant — applied arrivals and departures, load-shed arrivals, and
//! rejected (semantically invalid) events — as CRC-framed fixed-layout
//! records. The WAL, not the snapshot, is the source of truth: a snapshot
//! only accelerates recovery by letting replay start mid-file, and a
//! corrupt or missing snapshot degrades to a full-WAL replay with no data
//! loss.
//!
//! # Frame format
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! payload = seq: u64 LE | kind: u8 | flags: u8 | class: u16 LE
//! ```
//!
//! `crc32` is IEEE CRC-32 over the payload. A reader accepts frames until
//! the first violation — short header, implausible length, short payload,
//! or CRC mismatch — and reports the byte offset of the last good frame.
//! [`Wal::open`] then **repairs** the file by truncating it there, so a
//! `kill -9` mid-append (or a corrupted tail) costs at most the partially
//! written suffix: every complete frame before it survives.
//!
//! Records are written in *apply order*: the engine applies an event
//! first, then the WAL appends it. A crash between the two loses that one
//! in-flight event (it was never durable), never corrupts state, and can
//! never leave a poison record that re-fails on every recovery replay.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::ServeError;

/// What a WAL record says happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// An arrival was offered to the engine (decision re-derivable by
    /// replay: engine state is deterministic).
    Arrival,
    /// An admitted call completed.
    Departure,
    /// An arrival was load-shed (never reached the engine) — counted as a
    /// denied-for-overload offer so accounting stays exact across crashes.
    Shed,
    /// A semantically invalid event (departure with nothing in progress,
    /// unknown class) was rejected without touching the engine.
    Rejected,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Arrival => 0,
            RecordKind::Departure => 1,
            RecordKind::Shed => 2,
            RecordKind::Rejected => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => RecordKind::Arrival,
            1 => RecordKind::Departure,
            2 => RecordKind::Shed,
            3 => RecordKind::Rejected,
            _ => return None,
        })
    }
}

/// One durable event record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Global ingest sequence number (assigned by the daemon; strictly
    /// increasing within a tenant's stream).
    pub seq: u64,
    /// What happened.
    pub kind: RecordKind,
    /// Class index (0 for [`RecordKind::Rejected`] records whose class
    /// could not be parsed).
    pub class: u16,
    /// The event arrived in a clock-skewed batch (its timestamp ran
    /// backwards); recorded durably so the skew counter survives crashes.
    pub skewed: bool,
}

/// Payload bytes per record (fixed layout, see module docs).
const PAYLOAD_LEN: usize = 12;
/// Sanity bound on the frame length field: a larger value means the
/// header itself is garbage (torn write), not a future format.
const MAX_FRAME: u32 = 1024;

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`), computed bitwise —
/// WAL frames are tiny and this keeps the crate dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn encode_payload(rec: &WalRecord) -> [u8; PAYLOAD_LEN] {
    let mut p = [0u8; PAYLOAD_LEN];
    p[0..8].copy_from_slice(&rec.seq.to_le_bytes());
    p[8] = rec.kind.to_byte();
    p[9] = u8::from(rec.skewed);
    p[10..12].copy_from_slice(&rec.class.to_le_bytes());
    p
}

fn decode_payload(p: &[u8]) -> Option<WalRecord> {
    if p.len() != PAYLOAD_LEN {
        return None;
    }
    let seq = u64::from_le_bytes(p[0..8].try_into().ok()?);
    let kind = RecordKind::from_byte(p[8])?;
    let skewed = match p[9] {
        0 => false,
        1 => true,
        _ => return None,
    };
    let class = u16::from_le_bytes(p[10..12].try_into().ok()?);
    Some(WalRecord {
        seq,
        kind,
        class,
        skewed,
    })
}

/// Outcome of scanning a WAL file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Every record up to the first damaged frame, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix.
    pub valid_bytes: u64,
    /// `true` iff bytes past `valid_bytes` existed (truncated or corrupt
    /// tail that [`Wal::open`] chops off).
    pub damaged: bool,
}

/// Scan `path`, accepting frames until the first violation. A missing
/// file recovers as empty and undamaged.
pub fn recover(path: &Path) -> Result<WalRecovery, ServeError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalRecovery::default()),
        Err(e) => return Err(ServeError::io(path, &e)),
    };
    let mut out = WalRecovery::default();
    let mut at = 0usize;
    while bytes.len() - at >= 8 {
        let len = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        let crc = u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
        if len > MAX_FRAME || bytes.len() - at - 8 < len as usize {
            break;
        }
        let payload = &bytes[at + 8..at + 8 + len as usize];
        if crc32(payload) != crc {
            break;
        }
        let Some(rec) = decode_payload(payload) else {
            break;
        };
        out.records.push(rec);
        at += 8 + len as usize;
        out.valid_bytes = at as u64;
    }
    out.damaged = (at as u64) < bytes.len() as u64;
    Ok(out)
}

/// An open, append-only WAL.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    records: u64,
    appends_since_sync: u64,
    /// `fsync` cadence: sync after every `sync_every` appends (0 = rely on
    /// the OS page cache; process crashes still keep every write, only
    /// whole-machine loss can drop the unsynced tail).
    sync_every: u64,
}

impl Wal {
    /// Recover `path` (truncating any damaged tail in place) and open it
    /// for appending. Returns the WAL plus what survived.
    pub fn open(path: &Path, sync_every: u64) -> Result<(Wal, WalRecovery), ServeError> {
        let recovery = recover(path)?;
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)
            .map_err(|e| ServeError::io(path, &e))?;
        if recovery.damaged {
            // Repair: chop the torn tail so future scans are clean.
            file.set_len(recovery.valid_bytes)
                .map_err(|e| ServeError::io(path, &e))?;
        }
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                len: recovery.valid_bytes,
                records: recovery.records.len() as u64,
                appends_since_sync: 0,
                sync_every,
            },
            recovery,
        ))
    }

    /// Append one record (frame + payload in a single `write_all`).
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), ServeError> {
        let payload = encode_payload(rec);
        let mut frame = [0u8; 8 + PAYLOAD_LEN];
        frame[0..4].copy_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
        frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        frame[8..].copy_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| ServeError::io(&self.path, &e))?;
        self.len += frame.len() as u64;
        self.records += 1;
        self.appends_since_sync += 1;
        if self.sync_every > 0 && self.appends_since_sync >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Force the file to stable storage.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.appends_since_sync = 0;
        self.file
            .sync_data()
            .map_err(|e| ServeError::io(&self.path, &e))
    }

    /// Bytes of valid WAL currently on disk.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Records on disk (recovered + appended) — the position snapshots
    /// store so recovery replays by file position, not by sequence number
    /// (durable appends need not be in sequence order: overflow sheds for
    /// late events land before earlier queued events are applied).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// `true` iff no record has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The file path this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-read the whole file (tests and audits; not on any hot path).
    pub fn read_all(&self) -> Result<Vec<u8>, ServeError> {
        let mut f = File::open(&self.path).map_err(|e| ServeError::io(&self.path, &e))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)
            .map_err(|e| ServeError::io(&self.path, &e))?;
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xbar_wal_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.wal")
    }

    fn rec(seq: u64, kind: RecordKind, class: u16) -> WalRecord {
        WalRecord {
            seq,
            kind,
            class,
            skewed: seq.is_multiple_of(3),
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let path = tmp("roundtrip");
        let recs: Vec<WalRecord> = (0..50)
            .map(|i| {
                rec(
                    i,
                    match i % 4 {
                        0 => RecordKind::Arrival,
                        1 => RecordKind::Departure,
                        2 => RecordKind::Shed,
                        _ => RecordKind::Rejected,
                    },
                    (i % 5) as u16,
                )
            })
            .collect();
        {
            let (mut wal, recovery) = Wal::open(&path, 0).unwrap();
            assert!(recovery.records.is_empty() && !recovery.damaged);
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let (wal, recovery) = Wal::open(&path, 0).unwrap();
        assert_eq!(recovery.records, recs);
        assert!(!recovery.damaged);
        assert_eq!(wal.len(), 50 * (8 + PAYLOAD_LEN) as u64);
    }

    #[test]
    fn truncated_tail_recovers_the_prefix_and_repairs() {
        let path = tmp("truncate");
        {
            let (mut wal, _) = Wal::open(&path, 0).unwrap();
            for i in 0..10 {
                wal.append(&rec(i, RecordKind::Arrival, 0)).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Chop mid-frame: 9 full frames plus half a frame.
        let cut = 9 * (8 + PAYLOAD_LEN) + 5;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (wal, recovery) = Wal::open(&path, 0).unwrap();
        assert_eq!(recovery.records.len(), 9);
        assert!(recovery.damaged);
        assert_eq!(recovery.valid_bytes, 9 * (8 + PAYLOAD_LEN) as u64);
        // The file was repaired in place.
        assert_eq!(
            std::fs::metadata(wal.path()).unwrap().len(),
            recovery.valid_bytes
        );
        let again = recover(&path).unwrap();
        assert!(!again.damaged);
    }

    #[test]
    fn corrupt_byte_stops_the_scan_at_the_frame_boundary() {
        let path = tmp("corrupt");
        {
            let (mut wal, _) = Wal::open(&path, 0).unwrap();
            for i in 0..10 {
                wal.append(&rec(i, RecordKind::Departure, 1)).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside frame 6 (0-based): CRC must catch it.
        let off = 6 * (8 + PAYLOAD_LEN) + 8 + 3;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let recovery = recover(&path).unwrap();
        assert_eq!(recovery.records.len(), 6);
        assert!(recovery.damaged);
        for (i, r) in recovery.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn garbage_length_field_is_rejected_not_trusted() {
        let path = tmp("garbage");
        std::fs::write(&path, u32::MAX.to_le_bytes()).unwrap();
        let recovery = recover(&path).unwrap();
        assert!(recovery.records.is_empty());
        assert!(recovery.damaged);
        assert_eq!(recovery.valid_bytes, 0);
    }

    #[test]
    fn missing_file_recovers_empty() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        let recovery = recover(&path).unwrap();
        assert_eq!(recovery, WalRecovery::default());
    }
}

//! Durable tenant snapshots.
//!
//! A snapshot captures everything a [`crate::tenant::Tenant`] accumulates
//! at runtime — the engine's [`EngineState`] (occupancy vector, bit-exact
//! log-weight, decision counters), the serve-level counters, the highest
//! durable sequence number, and the quarantine flag — so recovery can
//! restore it and replay only the WAL records past `seq` instead of the
//! whole file.
//!
//! Snapshots are strictly an **optimization**. The loader returns `None`
//! (degrade to full WAL replay) rather than an error whenever anything is
//! off: bad magic, unknown version, short file, CRC mismatch, or a model
//! fingerprint that doesn't match the serving model (the operator changed
//! the model between runs — the old engine state is meaningless for it).
//! Only genuine I/O failures surface as errors.
//!
//! # Format
//!
//! ```text
//! [magic "XSNP"] [version u32 LE] [body_len u32 LE] [crc32 u32 LE] [body]
//! ```
//!
//! The body is a fixed-order little-endian field list (see `encode_body`);
//! floats travel as IEEE-754 bit patterns so the restored log-weight is
//! bit-exact. Writes go through a temp file + atomic rename, so a crash
//! mid-snapshot leaves the previous snapshot intact.

use std::io::Write;
use std::path::Path;

use xbar_admission::{ClassStats, EngineState, EngineStats, PolicySpec};
use xbar_core::{Algorithm, Model};

use crate::tenant::ServeCounters;
use crate::wal::crc32;
use crate::ServeError;

/// File magic.
pub const MAGIC: &[u8; 4] = b"XSNP";
/// Snapshot codec version. Version 2 added the engine's pricing state
/// (threshold vector, repricing batch offset, reprice counters) and the
/// serve-level stale-reprice counter; version-1 snapshots decode to
/// `None` and recovery degrades to a full WAL replay — which rebuilds
/// exactly that pricing state, so an upgrade is lossless, just slower
/// on its first start.
pub const VERSION: u32 = 2;

/// FNV-1a 64-bit hash of everything that determines engine behaviour:
/// switch geometry, every class's parameter bits, the policy, and the
/// anchor algorithm. A snapshot taken under one fingerprint is only
/// restored into an engine with the same fingerprint.
pub fn model_fingerprint(model: &Model, policy: &PolicySpec, algorithm: Algorithm) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let dims = model.dims();
    eat(&dims.n1.to_le_bytes());
    eat(&dims.n2.to_le_bytes());
    let classes = model.workload().classes();
    eat(&(classes.len() as u32).to_le_bytes());
    for c in classes {
        eat(&c.alpha.to_bits().to_le_bytes());
        eat(&c.beta.to_bits().to_le_bytes());
        eat(&c.mu.to_bits().to_le_bytes());
        eat(&c.bandwidth.to_le_bytes());
        eat(&c.weight.to_bits().to_le_bytes());
    }
    // Policies and algorithms are small closed enums; their Debug forms
    // are stable within a build and capture every parameter.
    eat(format!("{policy:?}").as_bytes());
    eat(format!("{algorithm:?}").as_bytes());
    h
}

/// A decoded tenant snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSnapshot {
    /// Highest sequence number durably absorbed when the snapshot was
    /// taken — the crash-resume dedupe watermark.
    pub seq: u64,
    /// WAL records on disk when the snapshot was taken — recovery
    /// replays by *file position* (records past this count), because
    /// durable appends are not in sequence order: an overflow shed for a
    /// late event is written before earlier queued events are applied.
    pub wal_records: u64,
    /// [`model_fingerprint`] of the model/policy/algorithm that produced
    /// the state.
    pub model_fp: u64,
    /// The engine's runtime state (restored bit-exactly).
    pub engine: EngineState,
    /// Serve-level counters (shed, rejected, skew, restarts, ...).
    pub counters: ServeCounters,
    /// Whether the tenant was quarantined.
    pub quarantined: bool,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64_bits(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
}

fn encode_body(snap: &TenantSnapshot) -> Vec<u8> {
    let mut b = Vec::with_capacity(256);
    b.extend_from_slice(&snap.seq.to_le_bytes());
    b.extend_from_slice(&snap.wal_records.to_le_bytes());
    b.extend_from_slice(&snap.model_fp.to_le_bytes());
    // Engine state: k, log-weight bits, whole-engine stats, per-class stats.
    b.extend_from_slice(&(snap.engine.k.len() as u32).to_le_bytes());
    for &k in &snap.engine.k {
        b.extend_from_slice(&k.to_le_bytes());
    }
    b.extend_from_slice(&(snap.engine.thresholds.len() as u32).to_le_bytes());
    for &t in &snap.engine.thresholds {
        b.extend_from_slice(&t.to_le_bytes());
    }
    b.extend_from_slice(&snap.engine.log_weight.to_bits().to_le_bytes());
    b.extend_from_slice(&snap.engine.reprice_events.to_le_bytes());
    let s = &snap.engine.stats;
    for v in [
        s.events,
        s.departures,
        s.re_anchors,
        s.snap_backs,
        s.re_anchor_failures,
        s.reprice_batches,
        s.reprice_updates,
    ] {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b.extend_from_slice(&(s.per_class.len() as u32).to_le_bytes());
    for c in &s.per_class {
        for v in [c.offered, c.admitted, c.denied_capacity, c.denied_policy] {
            b.extend_from_slice(&v.to_le_bytes());
        }
    }
    let c = &snap.counters;
    for v in [
        c.shed,
        c.rejected,
        c.skewed,
        c.restarts,
        c.stale_reanchors,
        c.stale_reprices,
        c.snapshots,
    ] {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b.push(u8::from(snap.quarantined));
    b
}

fn decode_body(body: &[u8]) -> Option<TenantSnapshot> {
    let mut c = Cursor { bytes: body, at: 0 };
    let seq = c.u64()?;
    let wal_records = c.u64()?;
    let model_fp = c.u64()?;
    let k_len = c.u32()? as usize;
    // A length field large enough to overrun the body is corruption, not a
    // huge model.
    if k_len > body.len() {
        return None;
    }
    let mut k = Vec::with_capacity(k_len);
    for _ in 0..k_len {
        k.push(c.u32()?);
    }
    let t_len = c.u32()? as usize;
    if t_len > body.len() {
        return None;
    }
    let mut thresholds = Vec::with_capacity(t_len);
    for _ in 0..t_len {
        thresholds.push(c.u32()?);
    }
    let log_weight = c.f64_bits()?;
    let reprice_events = c.u64()?;
    let mut stats = EngineStats {
        events: c.u64()?,
        departures: c.u64()?,
        re_anchors: c.u64()?,
        snap_backs: c.u64()?,
        re_anchor_failures: c.u64()?,
        reprice_batches: c.u64()?,
        reprice_updates: c.u64()?,
        per_class: Vec::new(),
    };
    let pc_len = c.u32()? as usize;
    if pc_len > body.len() {
        return None;
    }
    for _ in 0..pc_len {
        stats.per_class.push(ClassStats {
            offered: c.u64()?,
            admitted: c.u64()?,
            denied_capacity: c.u64()?,
            denied_policy: c.u64()?,
        });
    }
    let counters = ServeCounters {
        shed: c.u64()?,
        rejected: c.u64()?,
        skewed: c.u64()?,
        restarts: c.u64()?,
        stale_reanchors: c.u64()?,
        stale_reprices: c.u64()?,
        snapshots: c.u64()?,
    };
    let quarantined = match c.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    if c.at != body.len() {
        return None; // trailing garbage
    }
    Some(TenantSnapshot {
        seq,
        wal_records,
        model_fp,
        engine: EngineState {
            k,
            log_weight,
            thresholds,
            reprice_events,
            stats,
        },
        counters,
        quarantined,
    })
}

/// Encode a snapshot to its full on-disk byte form (header + body).
pub fn encode(snap: &TenantSnapshot) -> Vec<u8> {
    let body = encode_body(snap);
    let mut out = Vec::with_capacity(16 + body.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode on-disk bytes; `None` means "unusable — fall back to full WAL
/// replay" (any framing, CRC, version, or body-shape violation).
pub fn decode(bytes: &[u8]) -> Option<TenantSnapshot> {
    if bytes.len() < 16 || &bytes[0..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if version != VERSION {
        return None;
    }
    let body_len = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().ok()?);
    let body = bytes.get(16..16 + body_len)?;
    if bytes.len() != 16 + body_len || crc32(body) != crc {
        return None;
    }
    decode_body(body)
}

/// Write a snapshot atomically: temp file in the same directory, flush,
/// then rename over `path`. A crash at any point leaves either the old
/// snapshot or the new one, never a torn file.
pub fn write(path: &Path, snap: &TenantSnapshot) -> Result<(), ServeError> {
    let bytes = encode(snap);
    let tmp = path.with_extension("snap.tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| ServeError::io(&tmp, &e))?;
        f.write_all(&bytes).map_err(|e| ServeError::io(&tmp, &e))?;
        f.sync_data().map_err(|e| ServeError::io(&tmp, &e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| ServeError::io(path, &e))
}

/// Load a snapshot; `Ok(None)` when the file is missing or unusable
/// (recovery then replays the full WAL).
pub fn load(path: &Path) -> Result<Option<TenantSnapshot>, ServeError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ServeError::io(path, &e)),
    };
    Ok(decode(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TenantSnapshot {
        TenantSnapshot {
            seq: 12345,
            wal_records: 140,
            model_fp: 0xDEAD_BEEF_CAFE_F00D,
            engine: EngineState {
                k: vec![3, 0, 7],
                log_weight: -12.625_f64,
                thresholds: vec![0, 2, 1],
                reprice_events: 17,
                stats: EngineStats {
                    events: 100,
                    departures: 40,
                    re_anchors: 2,
                    snap_backs: 1,
                    re_anchor_failures: 0,
                    reprice_batches: 12,
                    reprice_updates: 3,
                    per_class: vec![
                        ClassStats {
                            offered: 30,
                            admitted: 20,
                            denied_capacity: 6,
                            denied_policy: 4,
                        },
                        ClassStats::default(),
                        ClassStats {
                            offered: 30,
                            admitted: 30,
                            denied_capacity: 0,
                            denied_policy: 0,
                        },
                    ],
                },
            },
            counters: ServeCounters {
                shed: 5,
                rejected: 2,
                skewed: 1,
                restarts: 1,
                stale_reanchors: 3,
                stale_reprices: 4,
                snapshots: 9,
            },
            quarantined: false,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        assert_eq!(decode(&encode(&snap)), Some(snap));
    }

    #[test]
    fn log_weight_round_trips_bit_exactly_including_specials() {
        for w in [0.0, -0.0, f64::NAN, f64::INFINITY, 1e-300, -1.0 / 3.0] {
            let mut snap = sample();
            snap.engine.log_weight = w;
            let back = decode(&encode(&snap)).unwrap();
            assert_eq!(back.engine.log_weight.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn corruption_degrades_to_none_never_panics() {
        let bytes = encode(&sample());
        // Every single-byte flip must be caught (magic, version, length,
        // CRC, or body hash).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x5A;
            assert_eq!(decode(&bad), None, "flip at byte {i} went undetected");
        }
        // Every truncation too.
        for n in 0..bytes.len() {
            assert_eq!(decode(&bytes[..n]), None, "truncation to {n} bytes");
        }
        // Trailing garbage as well.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(decode(&long), None);
    }

    #[test]
    fn older_codec_versions_degrade_to_full_replay() {
        // A pre-repricing (version-1) snapshot must decode to `None`, not
        // mis-read: its body lacks the pricing state, so recovery falls
        // back to the WAL, which rebuilds exactly that state.
        let mut bytes = encode(&sample());
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        assert_eq!(decode(&bytes), None);
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = std::env::temp_dir().join(format!("xbar_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.snap");
        assert_eq!(load(&path).unwrap(), None);
        let snap = sample();
        write(&path, &snap).unwrap();
        assert_eq!(load(&path).unwrap(), Some(snap.clone()));
        // Overwrite with a newer snapshot.
        let mut newer = snap;
        newer.seq = 99999;
        write(&path, &newer).unwrap();
        assert_eq!(load(&path).unwrap().unwrap().seq, 99999);
    }

    #[test]
    fn fingerprint_separates_models_policies_and_algorithms() {
        use xbar_core::{Dims, Model};
        use xbar_traffic::{TrafficClass, Workload};
        let m1 = Model::new(
            Dims::square(8),
            Workload::new().with(TrafficClass::poisson(0.5)),
        )
        .unwrap();
        let m2 = Model::new(
            Dims::square(8),
            Workload::new().with(TrafficClass::poisson(0.6)),
        )
        .unwrap();
        let m3 = Model::new(
            Dims::new(8, 9),
            Workload::new().with(TrafficClass::poisson(0.5)),
        )
        .unwrap();
        let cs = PolicySpec::CompleteSharing;
        let tr = PolicySpec::TrunkReservation(vec![1]);
        let a = Algorithm::Mva;
        let fp = model_fingerprint(&m1, &cs, a);
        assert_eq!(fp, model_fingerprint(&m1, &cs, a), "deterministic");
        assert_ne!(fp, model_fingerprint(&m2, &cs, a), "rho differs");
        assert_ne!(fp, model_fingerprint(&m3, &cs, a), "dims differ");
        assert_ne!(fp, model_fingerprint(&m1, &tr, a), "policy differs");
    }
}

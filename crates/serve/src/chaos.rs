//! Deterministic chaos plans for the fault-injection battery.
//!
//! Everything here is a pure function of a seed: the same
//! [`StreamPlan`]/[`BurstPlan`] always generates the same protocol lines
//! and the same fault schedule, so a chaos test that fails replays
//! exactly from its seed. Three generators:
//!
//! - [`StreamPlan`] — a multi-tenant event stream with configurable rates
//!   of invalid departures (semantic failures), malformed lines, and
//!   clock-skewed batches. The generator tracks per-tenant in-flight
//!   approximations so departures are valid except where the plan
//!   *chooses* to inject an invalid one.
//! - [`BurstPlan`] — port-failure bursts reusing the simulator's fault
//!   layer ([`xbar_sim::faults`]): each sampled port failure tears down
//!   the circuits holding it, which at the admission daemon appears as a
//!   synchronized **departure burst**; each repair is followed by a
//!   re-offered **arrival burst** (the retry wave after an outage).
//! - [`FaultAction`] — the kill/corruption schedule: at which applied
//!   event to kill the daemon, how many bytes to tear off a WAL tail, or
//!   which byte to flip.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xbar_sim::faults::{FaultConfig, FaultLayer};

/// A seeded multi-tenant stream generator.
#[derive(Clone, Debug)]
pub struct StreamPlan {
    /// Deterministic seed.
    pub seed: u64,
    /// Number of tenants (`t0`, `t1`, ...).
    pub tenants: usize,
    /// Number of classes per tenant.
    pub classes: usize,
    /// Total protocol lines to generate.
    pub lines: usize,
    /// Probability a generated event is a departure (valid when the
    /// tenant has calls in flight).
    pub departure_p: f64,
    /// Probability of an *invalid* departure injection (nothing in
    /// flight, or an unknown class) — exercises durable rejection.
    pub invalid_p: f64,
    /// Probability of a malformed line.
    pub malformed_p: f64,
    /// Probability a timestamp runs backwards (clock-skewed batch).
    pub skew_p: f64,
}

impl Default for StreamPlan {
    fn default() -> Self {
        StreamPlan {
            seed: 0xC805,
            tenants: 4,
            classes: 2,
            lines: 1000,
            departure_p: 0.35,
            invalid_p: 0.01,
            malformed_p: 0.01,
            skew_p: 0.02,
        }
    }
}

impl StreamPlan {
    /// Generate the protocol lines. Deterministic in `self`.
    ///
    /// The in-flight tracker is an *upper bound* (it counts generated
    /// arrivals, not admitted ones), so a nominally "valid" departure can
    /// still be rejected by the engine when the matching arrival was
    /// denied — which is exactly the kind of data a robust daemon must
    /// absorb. Deliberately invalid departures and malformed lines are
    /// injected on top at the configured rates.
    pub fn generate_lines(&self) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut in_flight = vec![vec![0u64; self.classes]; self.tenants];
        let mut clock = vec![0.0f64; self.tenants];
        let mut out = Vec::with_capacity(self.lines);
        for _ in 0..self.lines {
            let tenant = rng.gen_range(0..self.tenants);
            if rng.gen_bool(self.malformed_p) {
                out.push(match rng.gen_range(0..4u32) {
                    0 => format!("t{tenant} x 0"),
                    1 => format!("t{tenant} a"),
                    2 => format!("t{tenant} a zero"),
                    _ => "%%garbage%%".to_string(),
                });
                continue;
            }
            clock[tenant] += 0.01;
            let t = if rng.gen_bool(self.skew_p) {
                // A batch stamped before the tenant's high-water mark.
                (clock[tenant] - 1.0).max(0.0)
            } else {
                clock[tenant]
            };
            if rng.gen_bool(self.invalid_p) {
                // Unknown class or impossible departure.
                if rng.gen_bool(0.5) {
                    out.push(format!("t{tenant} a {} @{t}", self.classes + 7));
                } else {
                    out.push(format!(
                        "t{tenant} d {} @{t}",
                        rng.gen_range(0..self.classes)
                    ));
                }
                continue;
            }
            let class = rng.gen_range(0..self.classes);
            let departures_possible = in_flight[tenant][class] > 0;
            if departures_possible && rng.gen_bool(self.departure_p) {
                in_flight[tenant][class] -= 1;
                out.push(format!("t{tenant} d {class} @{t}"));
            } else {
                in_flight[tenant][class] += 1;
                out.push(format!("t{tenant} a {class} @{t}"));
            }
        }
        out
    }
}

/// A port-failure burst schedule derived from the simulator's fault
/// layer. Failures tear down the circuits that held the failed port
/// (departure bursts); repairs trigger retry waves (arrival bursts).
#[derive(Clone, Debug)]
pub struct BurstPlan {
    /// Deterministic seed.
    pub seed: u64,
    /// Mean time between failures per port (drives the fault layer).
    pub mtbf: f64,
    /// Mean time to repair per port.
    pub mttr: f64,
    /// Switch geometry the fault process runs over.
    pub n1: u32,
    /// Output ports.
    pub n2: u32,
    /// Fault transitions to sample.
    pub transitions: usize,
    /// Tenant the bursts land on.
    pub tenant: usize,
    /// Events per burst.
    pub burst: usize,
    /// Classes in the tenant's model.
    pub classes: usize,
}

impl BurstPlan {
    /// Generate the burst lines by sampling the simulator's fault
    /// process: each failure emits a departure burst, each repair an
    /// arrival burst. Deterministic in `self`.
    pub fn generate_lines(&self) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cfg = FaultConfig::from_mtbf_mttr(self.mtbf, self.mttr);
        let mut layer = FaultLayer::new(cfg, self.n1, self.n2);
        let mut out = Vec::new();
        let mut clock = 0.0f64;
        for _ in 0..self.transitions {
            if layer.transition_rate() <= 0.0 {
                break;
            }
            let transition = layer.sample_transition(&mut rng);
            clock += 1.0;
            let class = rng.gen_range(0..self.classes);
            let op = if transition.is_failure { "d" } else { "a" };
            for i in 0..self.burst {
                out.push(format!(
                    "t{} {op} {class} @{}",
                    self.tenant,
                    clock + i as f64 * 1e-6
                ));
            }
        }
        out
    }
}

/// One scheduled fault against the daemon or its durable files.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Abort the process after exactly this many applied events
    /// (wire into [`crate::daemon::DaemonConfig::kill_after`]).
    KillAfter(u64),
    /// Tear this many bytes off the end of a tenant's WAL (torn write).
    TruncateWalTail(u64),
    /// XOR a WAL byte at this offset-from-end with `0xFF` (bit rot).
    CorruptWalByte(u64),
}

/// A seeded schedule of fault actions for a multi-round chaos run.
pub fn fault_schedule(seed: u64, rounds: usize, events_per_round: u64) -> Vec<FaultAction> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17);
    (0..rounds)
        .map(|_| match rng.gen_range(0..3u32) {
            0 => FaultAction::KillAfter(rng.gen_range(1..events_per_round.max(2))),
            1 => FaultAction::TruncateWalTail(rng.gen_range(1..64u64)),
            _ => FaultAction::CorruptWalByte(rng.gen_range(0..256u64)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_plan_is_deterministic_in_its_seed() {
        let plan = StreamPlan::default();
        assert_eq!(plan.generate_lines(), plan.generate_lines());
        let other = StreamPlan {
            seed: 99,
            ..StreamPlan::default()
        };
        assert_ne!(plan.generate_lines(), other.generate_lines());
    }

    #[test]
    fn stream_plan_injects_each_fault_kind() {
        let plan = StreamPlan {
            lines: 5000,
            ..StreamPlan::default()
        };
        let lines = plan.generate_lines();
        assert_eq!(lines.len(), 5000);
        let malformed = lines
            .iter()
            .filter(|l| crate::daemon::parse_line(l).is_err())
            .count();
        assert!(malformed > 0, "malformed lines present");
        let unknown_class = lines
            .iter()
            .filter(|l| l.split_whitespace().nth(2) == Some("9"))
            .count();
        assert!(unknown_class > 0, "unknown-class injections present");
    }

    #[test]
    fn burst_plan_reuses_the_sim_fault_layer_deterministically() {
        let plan = BurstPlan {
            seed: 7,
            mtbf: 10.0,
            mttr: 2.0,
            n1: 8,
            n2: 8,
            transitions: 20,
            tenant: 0,
            burst: 5,
            classes: 2,
        };
        let lines = plan.generate_lines();
        assert_eq!(lines, plan.generate_lines());
        assert_eq!(lines.len(), 20 * 5);
        // Bursts contain both failure (departure) and repair (arrival)
        // waves over 20 transitions of a fast-failing process.
        assert!(lines.iter().any(|l| l.contains(" d ")));
        assert!(lines.iter().any(|l| l.contains(" a ")));
        // Every generated line parses (bursts are protocol-valid; the
        // *semantic* invalidity of departing more than is in flight is the
        // point).
        for l in &lines {
            assert!(crate::daemon::parse_line(l).unwrap().is_some());
        }
    }

    #[test]
    fn fault_schedule_is_deterministic_and_varied() {
        let s = fault_schedule(1, 50, 1000);
        assert_eq!(s, fault_schedule(1, 50, 1000));
        assert_ne!(s, fault_schedule(2, 50, 1000));
        let kills = s
            .iter()
            .filter(|a| matches!(a, FaultAction::KillAfter(_)))
            .count();
        assert!(kills > 0 && kills < 50, "mix of fault kinds");
    }
}

//! The multi-tenant daemon: line-protocol ingest, bounded per-tenant
//! queues with durable load shedding, the apply pump, and the fleet-wide
//! accounting that the exit-6 metrics invariant checks.
//!
//! # Line protocol
//!
//! One event per line:
//!
//! ```text
//! <tenant> a|d <class> [@<t>]
//! ```
//!
//! `a` = arrival, `d` = departure, `<class>` a 0-based class index,
//! `@<t>` an optional monotone batch timestamp — a line whose `t` runs
//! *backwards* within its tenant's stream is flagged clock-skewed (it is
//! still applied; the skew is counted durably so operators see upstream
//! batchers misbehaving). Blank lines and `#` comments are skipped.
//! Every raw line — including blanks, comments, and malformed input —
//! consumes one sequence number, so sequence numbers are stable across
//! re-reads of the same file: a re-fed line whose sequence number already
//! has a durable WAL record deduplicates, and one that was queued but
//! lost at a crash re-applies. That numbering contract assumes the source
//! re-feeds from the top after a restart (file, tail); a socket feeds
//! only *fresh* events, so the socket runtime first seeks the counter
//! past the durable watermark ([`Daemon::seek_past_durable`]) — otherwise
//! the first events after a restart would collide with durable sequence
//! numbers and be swallowed as duplicates.
//!
//! # Degradation
//!
//! Each tenant has a bounded ingest queue. When it is full an arrival is
//! **shed, durably**: a `Shed` WAL record is appended and the arrival is
//! counted as an offer denied for overload — so
//! `offers = admitted + denied(capacity) + denied(policy) + shed` holds
//! exactly even while the daemon is drowning. Departures are never shed
//! (dropping one would wedge the occupancy vector); they keep queueing
//! past the cap up to a hard bound of
//! [`DEPARTURE_QUEUE_SLACK`]` * queue_cap`, past which they are durably
//! *rejected* so a departure flood cannot exhaust memory. Malformed
//! lines cannot be attributed to a tenant reliably, so they are counted
//! (`serve.malformed`) but not durable.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};

use xbar_admission::Event;
use xbar_core::Model;

use crate::tenant::{Outcome, RecoveryReport, ServeCounters, Tenant, TenantConfig};
use crate::ServeError;

/// A parsed event, pre-queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParsedEvent {
    /// The engine event.
    pub event: Event,
    /// Optional batch timestamp (`@t`).
    pub t: Option<f64>,
}

/// A parsed protocol line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedLine {
    /// Tenant name.
    pub tenant: String,
    /// The event.
    pub event: ParsedEvent,
}

/// Parse one protocol line. `Ok(None)` = blank or comment;
/// `Err` = malformed, with a reason.
pub fn parse_line(raw: &str) -> Result<Option<ParsedLine>, String> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let tenant = parts.next().ok_or("missing tenant")?.to_string();
    if !tenant
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(format!("bad tenant name '{tenant}'"));
    }
    let op = parts.next().ok_or("missing op (a|d)")?;
    let class_s = parts.next().ok_or("missing class index")?;
    let class: usize = class_s
        .parse()
        .map_err(|_| format!("bad class index '{class_s}'"))?;
    if class > u16::MAX as usize {
        return Err(format!("class index {class} out of range"));
    }
    let mut t = None;
    if let Some(tok) = parts.next() {
        let ts = tok
            .strip_prefix('@')
            .ok_or_else(|| format!("unexpected token '{tok}'"))?;
        let v: f64 = ts.parse().map_err(|_| format!("bad timestamp '{ts}'"))?;
        if !v.is_finite() {
            return Err(format!("non-finite timestamp '{ts}'"));
        }
        t = Some(v);
    }
    if let Some(extra) = parts.next() {
        return Err(format!("trailing token '{extra}'"));
    }
    let event = match op {
        "a" => Event::Arrival { class },
        "d" => Event::Departure { class },
        _ => return Err(format!("bad op '{op}' (expected a|d)")),
    };
    Ok(Some(ParsedLine {
        tenant,
        event: ParsedEvent { event, t },
    }))
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Per-tenant supervision config.
    pub tenant: TenantConfig,
    /// Per-tenant ingest queue bound (0 = unbounded; overflow sheds
    /// durably).
    pub queue_cap: usize,
    /// Events applied per [`Daemon::pump`] call from the file/socket
    /// runtime (`u64::MAX` = keep up with ingest synchronously).
    pub pump_budget: u64,
    /// Chaos hook: `std::process::abort()` after exactly this many events
    /// applied by this process — a deterministic `kill -9`.
    pub kill_after: Option<u64>,
    /// Honour restart backoffs with real sleeps (CLI mode). Tests leave
    /// this off and read the recorded backoff total instead.
    pub sleep_on_backoff: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            tenant: TenantConfig::default(),
            queue_cap: 0,
            pump_budget: u64::MAX,
            kill_after: None,
            sleep_on_backoff: false,
        }
    }
}

/// Fleet-level (non-durable) counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonCounters {
    /// Raw lines ingested (including blanks/comments/malformed).
    pub lines: u64,
    /// Malformed lines (counted, not durable — no reliable tenant).
    pub malformed: u64,
    /// Events applied by the pump in this process's lifetime.
    pub applied: u64,
    /// Events skipped as duplicates of durable state (crash resume).
    pub duplicates: u64,
    /// Total restart backoff accumulated (nanoseconds), whether or not it
    /// was slept.
    pub backoff_ns: u64,
    /// Drift-triggered re-anchors completed through a coalesced fleet
    /// batch (rather than inline, one solve at a time).
    pub batched_reanchors: u64,
    /// Fleet batches issued to complete pending re-anchors. Always
    /// `<= batched_reanchors` (every batch completes at least one).
    pub reanchor_batches: u64,
}

/// The fleet-wide accounting the exit-6 metrics invariant checks:
/// `offers = admitted + denied_capacity + denied_policy + shed`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Accounting {
    /// Arrivals offered (engine offers + durable sheds).
    pub offers: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals denied for capacity.
    pub denied_capacity: u64,
    /// Arrivals denied by policy.
    pub denied_policy: u64,
    /// Arrivals shed (overload or quarantine), durably recorded.
    pub shed: u64,
    /// Departures applied.
    pub departures: u64,
    /// Invalid events durably rejected (outside the offers identity).
    pub rejected: u64,
}

impl Accounting {
    /// Whether the offers identity holds exactly.
    pub fn holds(&self) -> bool {
        self.offers == self.admitted + self.denied_capacity + self.denied_policy + self.shed
    }
}

/// How far past `queue_cap` departures may stack up before they are
/// durably rejected instead of queued. Departures are never *shed*
/// (dropping one wedges the occupancy vector), but an unbounded pile-up
/// against a stalled pump is a memory-exhaustion vector — this keeps the
/// per-tenant queue hard-bounded at `queue_cap * DEPARTURE_QUEUE_SLACK`.
pub const DEPARTURE_QUEUE_SLACK: usize = 4;

struct Queued {
    seq: u64,
    event: Event,
    skewed: bool,
}

/// The multi-tenant admission daemon.
pub struct Daemon {
    dir: PathBuf,
    model: Model,
    cfg: DaemonConfig,
    tenants: BTreeMap<String, Tenant>,
    queues: BTreeMap<String, VecDeque<Queued>>,
    last_t: BTreeMap<String, f64>,
    next_line: u64,
    counters: DaemonCounters,
}

impl Daemon {
    /// Open a daemon over `dir`, recovering every tenant that left durable
    /// state there (`<tenant>.wal`). Returns per-tenant recovery reports.
    pub fn open(
        dir: &Path,
        model: &Model,
        cfg: DaemonConfig,
    ) -> Result<(Daemon, Vec<(String, RecoveryReport)>), ServeError> {
        std::fs::create_dir_all(dir).map_err(|e| ServeError::io(dir, &e))?;
        let mut daemon = Daemon {
            dir: dir.to_path_buf(),
            model: model.clone(),
            cfg,
            tenants: BTreeMap::new(),
            queues: BTreeMap::new(),
            last_t: BTreeMap::new(),
            next_line: 0,
            counters: DaemonCounters::default(),
        };
        let mut reports = Vec::new();
        let mut names = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| ServeError::io(dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| ServeError::io(dir, &e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("wal") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        for name in names {
            let report = daemon.open_tenant(&name)?;
            reports.push((name, report));
        }
        Ok((daemon, reports))
    }

    fn open_tenant(&mut self, name: &str) -> Result<RecoveryReport, ServeError> {
        // Daemon-owned tenants defer drift re-anchors so each pump pass
        // can coalesce them into one fleet solve.
        let mut tcfg = self.cfg.tenant.clone();
        tcfg.coalesce_reanchors = true;
        let (tenant, report) = Tenant::open(name, &self.dir, &self.model, tcfg)?;
        self.tenants.insert(name.to_string(), tenant);
        self.queues.insert(name.to_string(), VecDeque::new());
        Ok(report)
    }

    /// Advance the line counter past every recovered tenant's durable
    /// watermark. Call this before feeding a source that does **not**
    /// re-feed the stream from the top after a restart (the unix socket):
    /// fresh events then take sequence numbers above every resume
    /// watermark, so none can be misread as a duplicate of the durable
    /// prefix. File and tail sources re-read from the top, where per-line
    /// numbering must restart at 1 for dedupe to line up — do not call it
    /// for those.
    pub fn seek_past_durable(&mut self) {
        let max = self
            .tenants
            .values()
            .map(Tenant::resume_seq)
            .max()
            .unwrap_or(0);
        self.next_line = self.next_line.max(max);
    }

    /// Ingest one raw protocol line. The line consumes a sequence number
    /// whatever it contains; valid events are enqueued (or durably shed on
    /// overflow), malformed lines are counted.
    pub fn ingest_line(&mut self, raw: &str) -> Result<(), ServeError> {
        self.next_line += 1;
        let seq = self.next_line;
        self.counters.lines += 1;
        let parsed = match parse_line(raw) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            Err(_) => {
                self.counters.malformed += 1;
                xbar_obs::inc("serve.malformed");
                return Ok(());
            }
        };
        if !self.tenants.contains_key(&parsed.tenant) {
            self.open_tenant(&parsed.tenant)?;
        }
        // Clock-skew detection: a timestamp that runs backwards within the
        // tenant's stream flags the event (last_t only advances).
        let mut skewed = false;
        if let Some(t) = parsed.event.t {
            match self.last_t.get_mut(&parsed.tenant) {
                Some(last) if t < *last => skewed = true,
                Some(last) => *last = t,
                None => {
                    self.last_t.insert(parsed.tenant.clone(), t);
                }
            }
        }
        let tenant = self
            .tenants
            .get_mut(&parsed.tenant)
            .expect("tenant opened above");
        // Crash-resume dedupe: a durable record from before this process
        // started — skip before it costs queue space. (A seq merely below
        // the resume watermark with no record was queued-but-lost at the
        // crash; it falls through and applies.)
        if tenant.is_durable(seq) {
            self.counters.duplicates += 1;
            return Ok(());
        }
        let queue = self
            .queues
            .get_mut(&parsed.tenant)
            .expect("queue exists with tenant");
        if self.cfg.queue_cap > 0 && queue.len() >= self.cfg.queue_cap {
            // Bounded queue full: deny-with-reason, durably. Departures
            // are never shed (dropping one would wedge the occupancy
            // vector forever), so they may keep queueing past the cap —
            // but only up to DEPARTURE_QUEUE_SLACK × the cap. Past that
            // hard bound a departure flood against a stalled pump would
            // exhaust memory, so the departure is durably *rejected*
            // (counted outside the offers identity; the occupancy vector
            // may stay overstated — the documented cost of staying alive).
            let class = match parsed.event.event {
                Event::Arrival { class } | Event::Departure { class } => class,
            };
            match parsed.event.event {
                Event::Arrival { .. } => {
                    tenant.shed(seq, class as u16, skewed)?;
                    xbar_obs::inc("serve.shed");
                }
                Event::Departure { .. } => {
                    let hard_cap = self.cfg.queue_cap.saturating_mul(DEPARTURE_QUEUE_SLACK);
                    if queue.len() >= hard_cap {
                        tenant.reject(seq, class as u16, skewed)?;
                        xbar_obs::inc("serve.departure_overflow");
                    } else {
                        queue.push_back(Queued {
                            seq,
                            event: parsed.event.event,
                            skewed,
                        });
                    }
                }
            }
            return Ok(());
        }
        queue.push_back(Queued {
            seq,
            event: parsed.event.event,
            skewed,
        });
        Ok(())
    }

    /// Apply up to `budget` queued events, round-robin across tenants.
    /// Returns how many were applied. Honours the chaos `kill_after` hook
    /// and per-tenant restart backoffs.
    pub fn pump(&mut self, budget: u64) -> Result<u64, ServeError> {
        let mut applied = 0u64;
        while applied < budget {
            let mut progressed = false;
            for (name, queue) in self.queues.iter_mut() {
                if applied >= budget {
                    break;
                }
                let Some(q) = queue.pop_front() else { continue };
                let tenant = self.tenants.get_mut(name).expect("tenant exists");
                let outcome = tenant.apply(q.seq, q.event, q.skewed)?;
                if outcome == Outcome::Duplicate {
                    self.counters.duplicates += 1;
                } else {
                    applied += 1;
                    self.counters.applied += 1;
                    if let Some(kill_after) = self.cfg.kill_after {
                        if self.counters.applied >= kill_after {
                            // Deterministic kill -9: no unwinding, no
                            // drop glue, no flushes.
                            std::process::abort();
                        }
                    }
                }
                if let Some(backoff) = tenant.take_backoff() {
                    self.counters.backoff_ns += backoff.as_nanos() as u64;
                    if self.cfg.sleep_on_backoff {
                        std::thread::sleep(backoff);
                    }
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        self.complete_pending_reanchors()?;
        Ok(applied)
    }

    /// Complete every deferred drift re-anchor in one fleet batch: a
    /// single [`xbar_core::solve_fleet`] call pre-warms the global solve
    /// cache (deduped, sharded over the worker pool), so each tenant's
    /// own `re_anchor` below is a cache hit instead of a fresh
    /// sequential solve. Per-tenant failure supervision is untouched —
    /// fleet errors are not consumed here; the tenant's re-anchor hits
    /// the same error and walks its own restart/quarantine ladder.
    fn complete_pending_reanchors(&mut self) -> Result<(), ServeError> {
        let due: Vec<String> = self
            .tenants
            .iter()
            .filter(|(_, t)| t.reanchor_pending() && !t.quarantined())
            .map(|(n, _)| n.clone())
            .collect();
        if due.is_empty() {
            return Ok(());
        }
        let models: Vec<Model> = due
            .iter()
            .map(|n| self.tenants[n].model().clone())
            .collect();
        let _ = xbar_core::solve_fleet(&models, self.cfg.tenant.algorithm);
        self.counters.batched_reanchors += due.len() as u64;
        self.counters.reanchor_batches += 1;
        xbar_obs::record("serve.reanchor.batch_size", due.len() as f64);
        for name in due {
            let tenant = self.tenants.get_mut(&name).expect("tenant exists");
            tenant.complete_pending_reanchor()?;
            if let Some(backoff) = tenant.take_backoff() {
                self.counters.backoff_ns += backoff.as_nanos() as u64;
                if self.cfg.sleep_on_backoff {
                    std::thread::sleep(backoff);
                }
            }
        }
        Ok(())
    }

    /// Apply everything queued.
    pub fn drain(&mut self) -> Result<u64, ServeError> {
        self.pump(u64::MAX)
    }

    /// Drain, snapshot, and sync every tenant (clean shutdown).
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.drain()?;
        for tenant in self.tenants.values_mut() {
            tenant.shutdown()?;
        }
        Ok(())
    }

    /// Fleet-wide accounting (sums every tenant).
    pub fn accounting(&self) -> Accounting {
        let mut acc = Accounting::default();
        for t in self.tenants.values() {
            let s = t.engine().stats();
            acc.offers += t.offers();
            acc.admitted += s.admitted();
            acc.denied_capacity += s.denied_capacity();
            acc.denied_policy += s.denied_policy();
            acc.shed += t.counters().shed;
            acc.departures += s.departures;
            acc.rejected += t.counters().rejected;
        }
        acc
    }

    /// Sum of serve counters across tenants.
    pub fn serve_counters(&self) -> ServeCounters {
        let mut out = ServeCounters::default();
        for t in self.tenants.values() {
            let c = t.counters();
            out.shed += c.shed;
            out.rejected += c.rejected;
            out.skewed += c.skewed;
            out.restarts += c.restarts;
            out.stale_reanchors += c.stale_reanchors;
            out.stale_reprices += c.stale_reprices;
            out.snapshots += c.snapshots;
        }
        out
    }

    /// Number of quarantined tenants.
    pub fn quarantined_tenants(&self) -> usize {
        self.tenants.values().filter(|t| t.quarantined()).count()
    }

    /// Flush fleet counters into the active observability sink, including
    /// the `serve.anchor_stale` gauge (tenants currently serving off a
    /// stale anchor).
    pub fn flush_obs(&self) {
        if !xbar_obs::enabled() {
            return;
        }
        let acc = self.accounting();
        let c = self.serve_counters();
        xbar_obs::add("serve.offers", acc.offers);
        xbar_obs::add("serve.admitted", acc.admitted);
        xbar_obs::add("serve.denied.capacity", acc.denied_capacity);
        xbar_obs::add("serve.denied.policy", acc.denied_policy);
        xbar_obs::add("serve.departures", acc.departures);
        xbar_obs::add("serve.shed.total", c.shed);
        xbar_obs::add("serve.rejected", c.rejected);
        xbar_obs::add("serve.skewed", c.skewed);
        xbar_obs::add("serve.restarts.total", c.restarts);
        xbar_obs::add("serve.reanchor.stale.total", c.stale_reanchors);
        xbar_obs::add("serve.reprice.stale.total", c.stale_reprices);
        xbar_obs::add("serve.reanchor.batched", self.counters.batched_reanchors);
        xbar_obs::add("serve.reanchor.batches", self.counters.reanchor_batches);
        xbar_obs::add("serve.snapshots", c.snapshots);
        xbar_obs::add("serve.lines", self.counters.lines);
        xbar_obs::add("serve.malformed.total", self.counters.malformed);
        xbar_obs::add("serve.duplicates", self.counters.duplicates);
        xbar_obs::add("serve.tenants", self.tenants.len() as u64);
        xbar_obs::add("serve.quarantined", self.quarantined_tenants() as u64);
        let stale = self.tenants.values().filter(|t| t.anchor_stale()).count();
        xbar_obs::set_gauge("serve.anchor_stale", stale as u64);
        for t in self.tenants.values() {
            t.engine().flush_obs();
        }
    }

    /// Fleet counters.
    pub fn counters(&self) -> &DaemonCounters {
        &self.counters
    }

    /// The configured per-line pump budget.
    pub fn pump_budget(&self) -> u64 {
        self.cfg.pump_budget
    }

    /// The tenants, by name (read access).
    pub fn tenants(&self) -> impl Iterator<Item = (&String, &Tenant)> {
        self.tenants.iter()
    }

    /// Look up one tenant.
    pub fn tenant(&self, name: &str) -> Option<&Tenant> {
        self.tenants.get(name)
    }

    /// Queued (not yet applied) events across all tenants.
    pub fn queued(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// The durable-state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::Dims;
    use xbar_traffic::{TrafficClass, Workload};

    fn model() -> Model {
        Model::new(
            Dims::square(4),
            Workload::new().with(TrafficClass::poisson(0.7)),
        )
        .unwrap()
    }

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("xbar_daemon_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn parse_accepts_the_protocol_and_rejects_garbage() {
        let p = parse_line("tenant-1 a 0 @1.5").unwrap().unwrap();
        assert_eq!(p.tenant, "tenant-1");
        assert_eq!(p.event.event, Event::Arrival { class: 0 });
        assert_eq!(p.event.t, Some(1.5));
        assert_eq!(
            parse_line("t d 3").unwrap().unwrap().event.event,
            Event::Departure { class: 3 }
        );
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("  # comment").unwrap(), None);
        for bad in [
            "t x 0",
            "t a",
            "t a notanum",
            "t a 0 extra",
            "t a 0 @nan",
            "t a 0 @inf",
            "t a 99999999",
            "bad/name a 0",
            "t a 0 1.5", // timestamp without @
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?} should be malformed");
        }
    }

    #[test]
    fn accounting_identity_holds_with_shedding() {
        let d = dir("identity");
        let m = model();
        let cfg = DaemonConfig {
            queue_cap: 4,
            ..DaemonConfig::default()
        };
        let (mut daemon, _) = Daemon::open(&d, &m, cfg).unwrap();
        // Burst far past the queue bound without pumping: overflow sheds.
        for i in 0..50 {
            daemon
                .ingest_line(&format!("t1 a 0 @{}", i as f64))
                .unwrap();
        }
        assert!(daemon.queued() <= 4);
        daemon.drain().unwrap();
        let acc = daemon.accounting();
        assert_eq!(acc.offers, 50);
        assert!(acc.shed >= 46, "everything past the bound shed durably");
        assert!(acc.holds(), "offers identity: {acc:?}");
    }

    #[test]
    fn departures_are_never_shed_by_the_bounded_queue() {
        let d = dir("dep_not_shed");
        let m = model();
        let cfg = DaemonConfig {
            queue_cap: 2,
            ..DaemonConfig::default()
        };
        let (mut daemon, _) = Daemon::open(&d, &m, cfg).unwrap();
        daemon.ingest_line("t1 a 0").unwrap();
        daemon.ingest_line("t1 a 0").unwrap();
        // Queue is now full; a departure must still be queued, an arrival
        // must shed.
        daemon.ingest_line("t1 d 0").unwrap();
        daemon.ingest_line("t1 a 0").unwrap();
        assert_eq!(daemon.queued(), 3);
        daemon.drain().unwrap();
        let acc = daemon.accounting();
        assert_eq!(acc.shed, 1);
        assert_eq!(acc.departures, 1);
        assert!(acc.holds());
    }

    #[test]
    fn malformed_lines_are_counted_and_consume_sequence_numbers() {
        let d = dir("malformed");
        let m = model();
        let (mut daemon, _) = Daemon::open(&d, &m, DaemonConfig::default()).unwrap();
        daemon.ingest_line("t1 a 0").unwrap();
        daemon.ingest_line("this is not the protocol").unwrap();
        daemon.ingest_line("# a comment").unwrap();
        daemon.ingest_line("t1 a 0").unwrap();
        daemon.drain().unwrap();
        assert_eq!(daemon.counters().malformed, 1);
        assert_eq!(daemon.counters().lines, 4);
        // Seq numbers 1 and 4 were used for the two valid events.
        assert_eq!(daemon.tenant("t1").unwrap().durable_seq(), 4);
    }

    #[test]
    fn clock_skew_is_flagged_per_tenant() {
        let d = dir("skew");
        let m = model();
        let (mut daemon, _) = Daemon::open(&d, &m, DaemonConfig::default()).unwrap();
        daemon.ingest_line("t1 a 0 @1.0").unwrap();
        daemon.ingest_line("t1 a 0 @2.0").unwrap();
        daemon.ingest_line("t1 a 0 @1.5").unwrap(); // backwards: skewed
        daemon.ingest_line("t2 a 0 @0.5").unwrap(); // different tenant: fine
        daemon.drain().unwrap();
        assert_eq!(daemon.serve_counters().skewed, 1);
    }

    #[test]
    fn socket_style_resume_numbers_fresh_events_past_the_durable_prefix() {
        let d = dir("socket_resume");
        let m = model();
        {
            let (mut daemon, _) = Daemon::open(&d, &m, DaemonConfig::default()).unwrap();
            for i in 0..10 {
                daemon.ingest_line(&format!("t1 a 0 @{i}")).unwrap();
            }
            daemon.drain().unwrap();
            // Crash: no shutdown.
        }
        // A socket feeds only fresh events after the restart — nothing
        // re-feeds from the top. Without seeking past the durable prefix,
        // the first 10 fresh events would collide with durable seqs 1..10
        // and be swallowed as duplicates.
        let (mut daemon, _) = Daemon::open(&d, &m, DaemonConfig::default()).unwrap();
        daemon.seek_past_durable();
        for i in 10..15 {
            daemon.ingest_line(&format!("t1 a 0 @{i}")).unwrap();
        }
        daemon.drain().unwrap();
        assert_eq!(
            daemon.counters().duplicates,
            0,
            "fresh events are not duplicates"
        );
        let acc = daemon.accounting();
        assert_eq!(acc.offers, 15, "10 recovered + 5 fresh");
        assert!(acc.holds());
    }

    #[test]
    fn crash_lost_queued_events_are_healed_on_refeed() {
        let d = dir("healed");
        let m = model();
        let cfg = DaemonConfig {
            queue_cap: 2,
            ..DaemonConfig::default()
        };
        {
            let (mut daemon, _) = Daemon::open(&d, &m, cfg.clone()).unwrap();
            // Seqs 1 and 2 queue; 3..6 overflow and shed durably — durable
            // appends jump the queue, so the WAL's max seq (6) exceeds the
            // still-queued seqs 1 and 2.
            for i in 0..6 {
                daemon.ingest_line(&format!("t1 a 0 @{i}")).unwrap();
            }
            assert_eq!(daemon.queued(), 2);
            drop(daemon); // kill -9: queued events die, sheds survive
        }
        let (mut daemon, _) = Daemon::open(&d, &m, cfg).unwrap();
        assert_eq!(daemon.tenant("t1").unwrap().resume_seq(), 6);
        // Re-feed from the top: seqs 3..6 have durable records and
        // deduplicate; seqs 1 and 2 were lost in the queues and must
        // re-apply — a blanket `seq <= resume_seq` watermark would have
        // swallowed them forever.
        for i in 0..6 {
            daemon.ingest_line(&format!("t1 a 0 @{i}")).unwrap();
        }
        daemon.drain().unwrap();
        assert_eq!(daemon.counters().duplicates, 4);
        let acc = daemon.accounting();
        assert_eq!(acc.offers, 6, "every event accounted exactly once");
        assert!(acc.holds());
    }

    #[test]
    fn departure_flood_past_the_hard_bound_is_rejected_durably() {
        let d = dir("dep_flood");
        let m = model();
        let cfg = DaemonConfig {
            queue_cap: 2,
            ..DaemonConfig::default()
        };
        let (mut daemon, _) = Daemon::open(&d, &m, cfg).unwrap();
        daemon.ingest_line("t1 a 0").unwrap();
        daemon.ingest_line("t1 a 0").unwrap();
        // The queue is full: departures may stack only up to the hard
        // bound, the rest are durably rejected (memory stays bounded even
        // with a stalled pump).
        for _ in 0..30 {
            daemon.ingest_line("t1 d 0").unwrap();
        }
        let hard_cap = 2 * DEPARTURE_QUEUE_SLACK;
        assert_eq!(daemon.queued(), hard_cap);
        assert_eq!(
            daemon.serve_counters().rejected,
            30 - (hard_cap - 2) as u64,
            "overflow departures rejected durably at ingest"
        );
        daemon.drain().unwrap();
        assert!(daemon.accounting().holds());
        // The durable rejections survive a restart.
        let total_rejected = daemon.serve_counters().rejected;
        drop(daemon);
        let (daemon, _) = Daemon::open(
            &d,
            &m,
            DaemonConfig {
                queue_cap: 2,
                ..DaemonConfig::default()
            },
        )
        .unwrap();
        assert_eq!(daemon.serve_counters().rejected, total_rejected);
    }

    #[test]
    fn reopen_resumes_and_deduplicates_the_same_stream() {
        let d = dir("resume");
        let m = model();
        let lines: Vec<String> = (0..30)
            .map(|i| {
                if i % 3 == 2 {
                    format!("t1 d 0 @{i}")
                } else {
                    format!("t1 a 0 @{i}")
                }
            })
            .collect();
        {
            let (mut daemon, _) = Daemon::open(&d, &m, DaemonConfig::default()).unwrap();
            for line in &lines[..20] {
                daemon.ingest_line(line).unwrap();
            }
            daemon.drain().unwrap();
            // Crash: no shutdown.
        }
        // Restart and re-feed the whole stream from the top, as a resumed
        // tailer would: the durable prefix deduplicates, the tail applies.
        let (mut daemon, reports) = Daemon::open(&d, &m, DaemonConfig::default()).unwrap();
        assert_eq!(reports.len(), 1);
        for line in &lines {
            daemon.ingest_line(line).unwrap();
        }
        daemon.drain().unwrap();
        assert_eq!(daemon.counters().duplicates, 20);
        let acc = daemon.accounting();
        assert_eq!(acc.offers + acc.departures + acc.rejected, 30);
        assert!(acc.holds());
    }

    #[test]
    fn drift_reanchors_coalesce_into_one_fleet_batch_per_pump() {
        let d = dir("coalesce");
        let m = model();
        // A negative tolerance makes every drift check trip (drift >= 0
        // can never be <= a negative bound), so each applied event
        // requests a re-anchor deterministically.
        let cfg = DaemonConfig {
            tenant: TenantConfig {
                drift_tol: -1.0,
                check_interval: 1,
                ..TenantConfig::default()
            },
            ..DaemonConfig::default()
        };
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let (mut daemon, _) = Daemon::open(&d, &m, cfg).unwrap();
        {
            let _g = xbar_obs::scope(&reg);
            for t in ["t1", "t2", "t3"] {
                daemon.ingest_line(&format!("{t} a 0")).unwrap();
            }
            daemon.drain().unwrap();
        }
        // One batch completed all three pending re-anchors...
        assert_eq!(daemon.counters().reanchor_batches, 1);
        assert_eq!(daemon.counters().batched_reanchors, 3);
        // ...through a single fleet solve (identical models dedupe), and
        // each tenant re-anchored exactly once despite drifting on every
        // event in the pass.
        let snap = reg.snapshot();
        assert_eq!(snap.counter("fleet.solves"), Some(1));
        for t in ["t1", "t2", "t3"] {
            let tenant = daemon.tenant(t).unwrap();
            assert!(!tenant.reanchor_pending());
            assert_eq!(tenant.engine().stats().re_anchors, 1, "{t}");
            assert!(!tenant.anchor_stale());
        }
    }

    #[test]
    fn coalesced_completion_still_honours_the_stale_deadline() {
        let d = dir("coalesce_stale");
        let m = model();
        let cfg = DaemonConfig {
            tenant: TenantConfig {
                drift_tol: -1.0,
                check_interval: 1,
                reanchor_deadline: Some(std::time::Duration::ZERO),
                ..TenantConfig::default()
            },
            ..DaemonConfig::default()
        };
        let (mut daemon, _) = Daemon::open(&d, &m, cfg).unwrap();
        daemon.ingest_line("t1 a 0").unwrap();
        daemon.ingest_line("t2 a 0").unwrap();
        daemon.drain().unwrap();
        // Completion went through the batch, but the per-tenant deadline
        // ladder still forced the stale-anchor path for both.
        assert_eq!(daemon.counters().batched_reanchors, 2);
        assert_eq!(daemon.serve_counters().stale_reanchors, 2);
        for t in ["t1", "t2"] {
            let tenant = daemon.tenant(t).unwrap();
            assert!(tenant.anchor_stale(), "{t}");
            assert_eq!(tenant.engine().stats().re_anchors, 0, "{t}");
        }
        assert!(
            daemon.counters().reanchor_batches <= daemon.counters().batched_reanchors,
            "batches can never exceed batched re-anchors"
        );
    }
}

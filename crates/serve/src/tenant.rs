//! One supervised tenant: an [`AdmissionEngine`] plus its durable state
//! (WAL + snapshot), failure supervision, and degraded-mode fallbacks.
//!
//! # Durability contract
//!
//! Events are **applied first, then logged**: a WAL record exists only
//! for events the engine (or the shed/reject path) actually absorbed, so
//! replay can never hit an error the original run didn't, and a crash
//! between apply and append loses at most that single in-flight event.
//! Recovery = restore the newest usable snapshot (validated by CRC and
//! [model fingerprint](crate::snapshot::model_fingerprint)), then replay
//! the WAL records past the snapshot's sequence number. Because the
//! engine is deterministic and the snapshot restores the log-weight
//! bit-exactly, the recovered tenant's counters are *byte-identical* to
//! an uninterrupted run over the same durable prefix.
//!
//! # Supervision
//!
//! Semantically invalid events (unknown class, departure with nothing in
//! progress) are rejected durably and counted — they are data problems,
//! not engine problems. Integrity failures (re-anchor solve errors) are
//! engine problems: the tenant restarts from durable storage and reports
//! a capped-exponential backoff for the caller to honour. Either kind
//! increments a consecutive-failure count (any success resets it); at
//! `max_failures` the tenant is **quarantined**: arrivals shed durably,
//! departures rejected, everything still accounted, the process and the
//! other tenants unaffected.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use xbar_admission::{
    AdmissionEngine, AdmissionError, Decision, DenyReason, EngineConfig, Event, PolicySpec,
};
use xbar_core::{Algorithm, Model};

use crate::snapshot::{self, model_fingerprint, TenantSnapshot};
use crate::wal::{RecordKind, Wal, WalRecord};
use crate::ServeError;

/// Per-tenant serve configuration.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Admission policy.
    pub policy: PolicySpec,
    /// Anchor-solve algorithm.
    pub algorithm: Algorithm,
    /// Applied events between drift checks of the incremental log-weight
    /// (0 disables; the serve layer drives checks itself so restarts and
    /// deadlines stay under supervision, the engine's internal periodic
    /// check is always off).
    pub check_interval: u64,
    /// Relative drift tolerance (same contract as
    /// [`EngineConfig::drift_tol`]).
    pub drift_tol: f64,
    /// Applied events between durable snapshots (0 = only on shutdown).
    pub snapshot_interval: u64,
    /// Consecutive failures before the tenant is quarantined.
    pub max_failures: u32,
    /// First restart backoff; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Latency budget for a drift-triggered full re-anchor. When the
    /// budget is already spent by the time the drift check completes, the
    /// tenant falls back to correcting the weight against the **stale
    /// anchor** (an `O(N)` exact recompute) instead of paying for a fresh
    /// solve — the event loop keeps its deadline, the
    /// `serve.anchor_stale` gauge reports the degradation. `None` means
    /// no deadline (always re-anchor fully); `Some(ZERO)` deterministically
    /// forces the stale path, which is what the chaos tests pin.
    pub reanchor_deadline: Option<Duration>,
    /// WAL fsync cadence (records per sync; 0 = OS page cache only).
    pub sync_every: u64,
    /// Defer drift-triggered re-anchors instead of completing them
    /// inline: `maintain` records the detection time and returns, and the
    /// owner (the daemon) batches every pending re-anchor into one fleet
    /// solve per pump pass via [`Tenant::complete_pending_reanchor`]. The
    /// `reanchor_deadline` budget still measures from detection. Off by
    /// default so a standalone tenant corrects drift immediately.
    pub coalesce_reanchors: bool,
    /// Applied events per online repricing batch (plumbed to
    /// [`EngineConfig::reprice_batch`]): the engine re-derives the policy
    /// thresholds from its per-anchor pricing state every `n` absorbed
    /// events. The `reanchor_deadline` doubles as the engine's
    /// `price_deadline`, so a gradient older than the deadline refuses to
    /// price and is routed through the (possibly coalesced) re-anchor
    /// path instead. `None` disables repricing.
    pub reprice_batch: Option<u64>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            policy: PolicySpec::CompleteSharing,
            algorithm: Algorithm::Mva,
            check_interval: 1024,
            drift_tol: 1e-9,
            snapshot_interval: 4096,
            max_failures: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(5),
            reanchor_deadline: None,
            sync_every: 0,
            coalesce_reanchors: false,
            reprice_batch: None,
        }
    }
}

/// Serve-level counters (everything the engine itself doesn't count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Arrivals load-shed before reaching the engine (queue overflow or
    /// quarantine) — durable, and part of the offers accounting.
    pub shed: u64,
    /// Semantically invalid events rejected durably.
    pub rejected: u64,
    /// Events that arrived in clock-skewed batches (timestamp ran
    /// backwards within the tenant's stream).
    pub skewed: u64,
    /// Supervised engine restarts from durable storage.
    pub restarts: u64,
    /// Drift corrections that kept a stale anchor (re-anchor deadline
    /// exceeded).
    pub stale_reanchors: u64,
    /// Repricing passes the engine refused because the pricing gradient
    /// outlived the deadline ([`AdmissionError::StalePrices`]); each one
    /// routes a re-anchor through the drift-correction path.
    pub stale_reprices: u64,
    /// Snapshots written.
    pub snapshots: u64,
}

/// What recovery found when a tenant was opened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A usable snapshot was restored (otherwise: full WAL replay).
    pub snapshot_used: bool,
    /// WAL records replayed on top of the restored state.
    pub replayed: u64,
    /// The WAL had a damaged tail that was truncated away.
    pub wal_damaged: bool,
    /// Highest durable sequence number after recovery.
    pub durable_seq: u64,
}

/// The tenant's answer for one ingested event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Arrival admitted.
    Admitted,
    /// Arrival denied by the engine.
    Denied(DenyReason),
    /// Departure applied.
    Departed,
    /// Arrival load-shed (quarantine or queue overflow), durably recorded.
    Shed,
    /// Durably rejected without touching the engine: a semantically
    /// invalid event, or a departure past the hard queue bound.
    Rejected,
    /// `seq` was already durable (replay after crash) — skipped.
    Duplicate,
    /// The event was absorbed but this apply tripped the quarantine
    /// threshold (integrity failures, not this event's fault).
    Quarantined,
}

/// One supervised tenant.
pub struct Tenant {
    name: String,
    model: Model,
    cfg: TenantConfig,
    fp: u64,
    engine: AdmissionEngine,
    wal: Wal,
    snap_path: PathBuf,
    counters: ServeCounters,
    /// Highest sequence number ever durably absorbed (snapshot watermark).
    durable_seq: u64,
    /// Crash-resume dedupe watermark, **fixed at open**: the highest
    /// sequence number durable before this process started. It
    /// deliberately does not advance with `durable_seq`: durable appends
    /// are not in sequence order (an overflow shed for a late event lands
    /// before earlier queued events are applied), and a live high-water
    /// mark would wrongly swallow those still-queued events.
    ///
    /// The watermark alone is NOT a durability proof: an event below it
    /// may have been queued-but-lost at the crash (its shed neighbour
    /// jumped the queue into the WAL). Dedupe therefore also consults
    /// [`Tenant::is_durable`]'s per-record set — a re-fed event below the
    /// watermark that has no durable record is *applied*, not swallowed.
    resume_seq: u64,
    /// Sorted sequence numbers with a durable WAL record at or below
    /// `resume_seq` (rebuilt at open; extended when a re-fed gap event
    /// lands durably). Gaps are legitimate — blanks, comments, malformed
    /// lines, and other tenants' lines all consume global sequence
    /// numbers — so only a present record proves durability.
    durable_below_resume: Vec<u64>,
    quarantined: bool,
    consecutive_failures: u32,
    events_since_check: u64,
    events_since_snapshot: u64,
    anchor_stale: bool,
    pending_backoff: Option<Duration>,
    /// Detection time of a deferred re-anchor (coalescing mode); the
    /// earliest detection wins so the deadline covers the worst case.
    pending_reanchor: Option<Instant>,
}

fn engine_cfg(cfg: &TenantConfig) -> EngineConfig {
    EngineConfig {
        policy: cfg.policy.clone(),
        algorithm: cfg.algorithm,
        // The serve layer drives drift checks so failures stay supervised;
        // the engine's own periodic check must never fire mid-apply.
        check_interval: 0,
        drift_tol: cfg.drift_tol,
        reprice_batch: cfg.reprice_batch,
        // The re-anchor latency budget doubles as the pricing freshness
        // deadline: a supervisor that bounds how stale an anchor may get
        // bounds how stale the served prices may get by the same amount.
        price_deadline: cfg.reanchor_deadline,
    }
}

impl Tenant {
    /// WAL path for tenant `name` under `dir`.
    pub fn wal_path(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.wal"))
    }

    /// Snapshot path for tenant `name` under `dir`.
    pub fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.snap"))
    }

    /// Open (and recover) tenant `name` with durable state under `dir`.
    pub fn open(
        name: &str,
        dir: &Path,
        model: &Model,
        cfg: TenantConfig,
    ) -> Result<(Tenant, RecoveryReport), ServeError> {
        let fp = model_fingerprint(model, &cfg.policy, cfg.algorithm);
        let (wal, recovery) = Wal::open(&Self::wal_path(dir, name), cfg.sync_every)?;
        let engine = AdmissionEngine::new(model, engine_cfg(&cfg))?;
        let snap_path = Self::snapshot_path(dir, name);
        let mut tenant = Tenant {
            name: name.to_string(),
            model: model.clone(),
            cfg,
            fp,
            engine,
            wal,
            snap_path,
            counters: ServeCounters::default(),
            durable_seq: 0,
            resume_seq: 0,
            durable_below_resume: Vec::new(),
            quarantined: false,
            consecutive_failures: 0,
            events_since_check: 0,
            events_since_snapshot: 0,
            anchor_stale: false,
            pending_backoff: None,
            pending_reanchor: None,
        };
        let mut report = RecoveryReport {
            wal_damaged: recovery.damaged,
            ..RecoveryReport::default()
        };
        // A snapshot is used only when its CRC survives (load), its model
        // fingerprint matches, AND the engine accepts its state; anything
        // else degrades to a full WAL replay — never a refusal to start.
        let mut skip = 0usize;
        if let Some(snap) = snapshot::load(&tenant.snap_path)? {
            if snap.model_fp == fp && tenant.engine.restore_state(&snap.engine).is_ok() {
                tenant.counters = snap.counters;
                tenant.quarantined = snap.quarantined;
                tenant.durable_seq = snap.seq;
                // Replay by file position: the snapshot covers the first
                // `wal_records` records, whatever their sequence numbers.
                skip = snap.wal_records.min(recovery.records.len() as u64) as usize;
                report.snapshot_used = true;
            }
        }
        for rec in recovery.records.iter().skip(skip) {
            tenant.replay_record(rec);
            report.replayed += 1;
        }
        // The resume watermark covers *every* durable record, replayed or
        // snapshot-covered — and the per-record set remembers exactly
        // which sequence numbers below it actually landed, so a re-fed
        // event that was queued-but-lost at the crash is re-applied
        // rather than misread as a duplicate.
        let max_rec_seq = recovery.records.iter().map(|r| r.seq).max().unwrap_or(0);
        tenant.durable_seq = tenant.durable_seq.max(max_rec_seq);
        tenant.resume_seq = tenant.durable_seq;
        let mut seqs: Vec<u64> = recovery.records.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        tenant.durable_below_resume = seqs;
        report.durable_seq = tenant.durable_seq;
        Ok((tenant, report))
    }

    /// Re-apply one recovered WAL record. Replay is infallible by
    /// construction — the WAL holds only events that were absorbed — so a
    /// failing record means the durable state predates a semantic change
    /// and is counted as rejected rather than wedging recovery.
    fn replay_record(&mut self, rec: &WalRecord) {
        if rec.skewed {
            self.counters.skewed += 1;
        }
        match rec.kind {
            RecordKind::Arrival => match self.engine.offer(rec.class as usize) {
                Ok(_) => {}
                // Repricing refusals absorb the event (the refusal is the
                // tick's last step) — count them exactly as the live run
                // did so recovery stays byte-identical.
                Err(AdmissionError::StalePrices { .. }) => self.counters.stale_reprices += 1,
                Err(_) => self.counters.rejected += 1,
            },
            RecordKind::Departure => match self.engine.depart(rec.class as usize) {
                Ok(()) => {}
                Err(AdmissionError::StalePrices { .. }) => self.counters.stale_reprices += 1,
                Err(_) => self.counters.rejected += 1,
            },
            RecordKind::Shed => self.counters.shed += 1,
            RecordKind::Rejected => self.counters.rejected += 1,
        }
        self.durable_seq = self.durable_seq.max(rec.seq);
    }

    fn append(
        &mut self,
        seq: u64,
        kind: RecordKind,
        class: u16,
        skewed: bool,
    ) -> Result<(), ServeError> {
        self.wal.append(&WalRecord {
            seq,
            kind,
            class,
            skewed,
        })?;
        self.durable_seq = self.durable_seq.max(seq);
        if seq <= self.resume_seq {
            // A healed gap event (queued-but-lost at the crash, re-fed
            // now): record it so the dedupe set stays exact.
            if let Err(at) = self.durable_below_resume.binary_search(&seq) {
                self.durable_below_resume.insert(at, seq);
            }
        }
        Ok(())
    }

    /// Whether `seq` already has a durable WAL record from before this
    /// process started (crash-resume dedupe). A sequence number merely
    /// *below* the resume watermark is not enough: it may have been
    /// queued-but-lost at the crash while a later overflow shed jumped
    /// the queue into the WAL — such an event must re-apply on re-feed.
    pub fn is_durable(&self, seq: u64) -> bool {
        seq <= self.resume_seq && self.durable_below_resume.binary_search(&seq).is_ok()
    }

    /// Durably shed an arrival that never reaches the engine (queue
    /// overflow, quarantine). Part of the offers accounting.
    pub fn shed(&mut self, seq: u64, class: u16, skewed: bool) -> Result<Outcome, ServeError> {
        if self.is_durable(seq) {
            return Ok(Outcome::Duplicate);
        }
        self.append(seq, RecordKind::Shed, class, skewed)?;
        self.counters.shed += 1;
        if skewed {
            self.counters.skewed += 1;
        }
        Ok(Outcome::Shed)
    }

    /// Durably reject an event without touching the engine: semantic
    /// failures from the apply path, and departures past the hard queue
    /// bound (see the daemon's degradation docs). Counted outside the
    /// offers identity.
    pub fn reject(&mut self, seq: u64, class: u16, skewed: bool) -> Result<Outcome, ServeError> {
        if self.is_durable(seq) {
            return Ok(Outcome::Duplicate);
        }
        self.append(seq, RecordKind::Rejected, class, skewed)?;
        self.counters.rejected += 1;
        if skewed {
            self.counters.skewed += 1;
        }
        Ok(Outcome::Rejected)
    }

    /// Apply one event under supervision. `seq` must be the stream
    /// sequence number; events with a durable record from before this
    /// process started are deduplicated (crash-replay safety, see
    /// [`Tenant::is_durable`]).
    pub fn apply(&mut self, seq: u64, event: Event, skewed: bool) -> Result<Outcome, ServeError> {
        if self.is_durable(seq) {
            return Ok(Outcome::Duplicate);
        }
        let (kind, class) = match event {
            Event::Arrival { class } => (RecordKind::Arrival, class),
            Event::Departure { class } => (RecordKind::Departure, class),
        };
        let class16 = u16::try_from(class).unwrap_or(u16::MAX);
        if self.quarantined {
            return match kind {
                RecordKind::Arrival => self.shed(seq, class16, skewed),
                _ => self.reject(seq, class16, skewed),
            };
        }
        // Captured so a repricing refusal (which arrives *after* the event
        // was fully applied) can reconstruct the decision from the
        // counter delta.
        let before = self
            .engine
            .stats()
            .per_class
            .get(class)
            .copied()
            .unwrap_or_default();
        match self.engine.apply(event) {
            Ok(decision) => {
                // Apply-then-append: the record is written only for events
                // the engine absorbed.
                self.append(seq, kind, class16, skewed)?;
                if skewed {
                    self.counters.skewed += 1;
                }
                self.consecutive_failures = 0;
                let tripped = self.after_apply()?;
                Ok(if tripped {
                    Outcome::Quarantined
                } else {
                    match decision {
                        Some(Decision::Admit) => Outcome::Admitted,
                        Some(Decision::Deny(r)) => Outcome::Denied(r),
                        None => Outcome::Departed,
                    }
                })
            }
            Err(AdmissionError::StalePrices { .. }) => {
                // Repricing runs last in the engine's tick, so the event
                // itself was fully applied and accounted before the
                // refusal — record it durably like any absorbed event.
                // The refusal is a *freshness* problem, not an integrity
                // one: count it and route a re-anchor through the
                // (possibly coalesced) drift-correction path so the
                // pricing gradient gets refreshed under the same deadline
                // supervision as any other anchor work.
                self.append(seq, kind, class16, skewed)?;
                if skewed {
                    self.counters.skewed += 1;
                }
                self.consecutive_failures = 0;
                self.counters.stale_reprices += 1;
                xbar_obs::inc("serve.reprice.stale");
                let mut tripped = if self.cfg.coalesce_reanchors {
                    self.pending_reanchor.get_or_insert(Instant::now());
                    false
                } else {
                    self.finish_reanchor(Instant::now())?
                };
                if self.after_apply()? {
                    tripped = true;
                }
                Ok(if tripped {
                    Outcome::Quarantined
                } else {
                    match kind {
                        RecordKind::Arrival => {
                            let after = self.engine.stats().per_class[class];
                            if after.admitted > before.admitted {
                                Outcome::Admitted
                            } else if after.denied_capacity > before.denied_capacity {
                                Outcome::Denied(DenyReason::Capacity)
                            } else {
                                Outcome::Denied(DenyReason::Policy)
                            }
                        }
                        _ => Outcome::Departed,
                    }
                })
            }
            Err(e) => self.supervise_apply_error(seq, class16, skewed, e),
        }
    }

    /// An `apply` error is a *data* problem (unknown class, departure with
    /// nothing in progress): reject durably, count a failure, quarantine
    /// at the threshold.
    fn supervise_apply_error(
        &mut self,
        seq: u64,
        class: u16,
        skewed: bool,
        _e: AdmissionError,
    ) -> Result<Outcome, ServeError> {
        self.consecutive_failures += 1;
        let out = self.reject(seq, class, skewed)?;
        if self.consecutive_failures >= self.cfg.max_failures {
            self.enter_quarantine()?;
            return Ok(Outcome::Quarantined);
        }
        Ok(out)
    }

    /// Post-apply bookkeeping: drift checks (with restart supervision and
    /// the deadline-bound stale-anchor fallback) and periodic snapshots.
    /// Returns `true` when this apply tripped the quarantine threshold.
    fn after_apply(&mut self) -> Result<bool, ServeError> {
        self.events_since_check += 1;
        if self.cfg.check_interval > 0 && self.events_since_check >= self.cfg.check_interval {
            self.events_since_check = 0;
            if self.maintain()? {
                return Ok(true);
            }
        }
        self.events_since_snapshot += 1;
        if self.cfg.snapshot_interval > 0
            && self.events_since_snapshot >= self.cfg.snapshot_interval
        {
            self.events_since_snapshot = 0;
            self.write_snapshot()?;
        }
        Ok(false)
    }

    /// Exact drift check, with the degraded-mode ladder:
    /// within tolerance → nothing; drifted and inside the deadline →
    /// full re-anchor (restart supervision on failure); drifted but the
    /// deadline is already spent → correct the weight against the stale
    /// anchor and report it. In coalescing mode a detected drift is
    /// deferred to [`Tenant::complete_pending_reanchor`] instead of
    /// corrected inline. Returns `true` on quarantine.
    fn maintain(&mut self) -> Result<bool, ServeError> {
        let start = Instant::now();
        let exact = self.engine.exact_log_weight();
        let drift = (self.engine.log_weight() - exact).abs();
        // Negated comparison so NaN drift also triggers correction.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(drift <= self.cfg.drift_tol * exact.abs().max(1.0)) {
            if self.cfg.coalesce_reanchors {
                // Defer: the daemon completes every pending re-anchor in
                // one fleet batch after the pump pass. Keep the earliest
                // detection so the deadline covers the worst case.
                self.pending_reanchor.get_or_insert(start);
                return Ok(false);
            }
            return self.finish_reanchor(start);
        }
        Ok(false)
    }

    /// Whether a deferred re-anchor is waiting for the owner to complete.
    pub fn reanchor_pending(&self) -> bool {
        self.pending_reanchor.is_some()
    }

    /// Complete a deferred re-anchor (coalescing mode). No-op when
    /// nothing is pending or the tenant is quarantined. Returns `true`
    /// when completion tripped the quarantine threshold.
    pub fn complete_pending_reanchor(&mut self) -> Result<bool, ServeError> {
        let Some(detected) = self.pending_reanchor.take() else {
            return Ok(false);
        };
        if self.quarantined {
            return Ok(false);
        }
        self.finish_reanchor(detected)
    }

    /// The degraded-mode tail of a drift correction, measured from the
    /// drift-detection time: inside the deadline → full re-anchor
    /// (restart supervision on failure); deadline already spent → correct
    /// the weight against the stale anchor and report it. Returns `true`
    /// on quarantine.
    fn finish_reanchor(&mut self, detected: Instant) -> Result<bool, ServeError> {
        let budget_spent = match self.cfg.reanchor_deadline {
            Some(d) => detected.elapsed() >= d,
            None => false,
        };
        if budget_spent {
            // Deadline blown before we could even start the solve:
            // cheap exact weight reset, anchor stays stale.
            self.engine.reset_weight();
            self.counters.stale_reanchors += 1;
            self.anchor_stale = true;
            xbar_obs::inc("serve.reanchor.stale");
        } else {
            match self.engine.re_anchor() {
                Ok(()) => self.anchor_stale = false,
                Err(e) => return self.supervise_integrity_error(e).map(|()| self.quarantined),
            }
        }
        Ok(false)
    }

    /// An integrity failure (anchor solve error, poisoned state) restarts
    /// the tenant from durable storage under capped exponential backoff;
    /// at the threshold it quarantines instead.
    fn supervise_integrity_error(&mut self, e: AdmissionError) -> Result<(), ServeError> {
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.cfg.max_failures {
            let _ = e;
            self.enter_quarantine()?;
            return Ok(());
        }
        self.restart_from_disk()?;
        let shift = (self.consecutive_failures - 1).min(32);
        let backoff = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << shift.min(31))
            .min(self.cfg.backoff_cap);
        self.pending_backoff = Some(backoff);
        xbar_obs::inc("serve.restarts");
        Ok(())
    }

    /// Rebuild the engine from the snapshot + WAL, exactly like
    /// [`Tenant::open`]. Counters are reconstructed from durable state;
    /// the restart count itself is carried forward (it describes this
    /// process's life, not the durable history).
    fn restart_from_disk(&mut self) -> Result<(), ServeError> {
        let restarts = self.counters.restarts;
        self.engine = AdmissionEngine::new(&self.model, engine_cfg(&self.cfg))?;
        self.counters = ServeCounters::default();
        self.durable_seq = 0;
        let mut skip = 0usize;
        if let Some(snap) = snapshot::load(&self.snap_path)? {
            if snap.model_fp == self.fp && self.engine.restore_state(&snap.engine).is_ok() {
                self.counters = snap.counters;
                self.quarantined = snap.quarantined;
                self.durable_seq = snap.seq;
                skip = snap.wal_records as usize;
            }
        }
        let recovery = crate::wal::recover(self.wal.path())?;
        for rec in recovery.records.iter().skip(skip) {
            self.replay_record(rec);
        }
        let max_rec_seq = recovery.records.iter().map(|r| r.seq).max().unwrap_or(0);
        self.durable_seq = self.durable_seq.max(max_rec_seq);
        // resume_seq and the dedupe set stay what open() computed: the
        // in-memory queues survived this in-process restart, so events
        // above the original watermark must still apply.
        self.counters.restarts = restarts + 1;
        Ok(())
    }

    fn enter_quarantine(&mut self) -> Result<(), ServeError> {
        self.quarantined = true;
        xbar_obs::inc("serve.quarantines");
        // Quarantine is durable: a restart must not resurrect the tenant.
        self.write_snapshot()
    }

    /// Write a durable snapshot of the current state.
    pub fn write_snapshot(&mut self) -> Result<(), ServeError> {
        // Snapshot ordering: the WAL must be at least as new as the
        // snapshot claims, so sync it first.
        self.wal.sync()?;
        let snap = TenantSnapshot {
            seq: self.durable_seq,
            wal_records: self.wal.records(),
            model_fp: self.fp,
            engine: self.engine.export_state(),
            counters: self.counters,
            quarantined: self.quarantined,
        };
        snapshot::write(&self.snap_path, &snap)?;
        self.counters.snapshots += 1;
        Ok(())
    }

    /// Flush, snapshot, and sync for clean shutdown.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.write_snapshot()
    }

    /// Take (and clear) the backoff the caller should honour before
    /// feeding this tenant again — set when supervision restarted the
    /// engine.
    pub fn take_backoff(&mut self) -> Option<Duration> {
        self.pending_backoff.take()
    }

    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The supervised engine (read access for audits and tests).
    pub fn engine(&self) -> &AdmissionEngine {
        &self.engine
    }

    /// The tenant's traffic model (read access for fleet batching).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Serve-level counters.
    pub fn counters(&self) -> &ServeCounters {
        &self.counters
    }

    /// Highest durable sequence number.
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// The crash-resume dedupe watermark (fixed at open): the highest
    /// sequence number durable before this process started. Not every
    /// sequence number below it was durable — use [`Tenant::is_durable`]
    /// for the per-record answer.
    pub fn resume_seq(&self) -> u64 {
        self.resume_seq
    }

    /// Whether the tenant is quarantined.
    pub fn quarantined(&self) -> bool {
        self.quarantined
    }

    /// Whether the last drift correction kept a stale anchor.
    pub fn anchor_stale(&self) -> bool {
        self.anchor_stale
    }

    /// Total offers for the accounting invariant:
    /// `offers = admitted + denied(capacity) + denied(policy) + shed`.
    pub fn offers(&self) -> u64 {
        self.engine.stats().offered() + self.counters.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::Dims;
    use xbar_traffic::{TrafficClass, Workload};

    fn model() -> Model {
        Model::new(
            Dims::square(6),
            Workload::new()
                .with(TrafficClass::poisson(0.8))
                .with(TrafficClass::bpp(0.5, 0.1, 1.0).with_bandwidth(2)),
        )
        .unwrap()
    }

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("xbar_tenant_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn cfg() -> TenantConfig {
        TenantConfig {
            check_interval: 7,
            snapshot_interval: 13,
            ..TenantConfig::default()
        }
    }

    /// A deterministic event mix: arrivals with departures of whatever is
    /// in flight, plus some invalid departures. The pattern is a function
    /// of the absolute sequence number, so feeding `[0, 230)` then
    /// `[230, 500)` produces the same stream as `[0, 500)`.
    fn feed(t: &mut Tenant, seq_base: u64, n: u64) {
        for seq in seq_base + 1..=seq_base + n {
            let i = seq - 1;
            let class = (i % 2) as usize;
            let ev = if i % 3 == 2 {
                Event::Departure { class }
            } else {
                Event::Arrival { class }
            };
            t.apply(seq, ev, i % 11 == 10).unwrap();
        }
    }

    #[test]
    fn recovery_is_byte_identical_to_uninterrupted_run() {
        let d = dir("identical");
        let m = model();
        // Uninterrupted run.
        let golden_dir = dir("identical_golden");
        let (mut golden, _) = Tenant::open("t", &golden_dir, &m, cfg()).unwrap();
        feed(&mut golden, 0, 500);
        // Interrupted run: same events, but drop the tenant (kill -9
        // equivalent: no shutdown, no final snapshot) halfway.
        {
            let (mut t, _) = Tenant::open("t", &d, &m, cfg()).unwrap();
            feed(&mut t, 0, 230);
            // no shutdown: simulated crash
        }
        let (mut t, report) = Tenant::open("t", &d, &m, cfg()).unwrap();
        assert!(report.snapshot_used, "periodic snapshot should be usable");
        assert!(report.replayed > 0, "WAL suffix past the snapshot replays");
        assert_eq!(t.durable_seq(), 230);
        feed(&mut t, 230, 270);
        assert_eq!(t.engine().export_state(), golden.engine().export_state());
        assert_eq!(t.counters().shed, golden.counters().shed);
        assert_eq!(t.counters().rejected, golden.counters().rejected);
        assert_eq!(t.counters().skewed, golden.counters().skewed);
        assert_eq!(
            t.engine().log_weight().to_bits(),
            golden.engine().log_weight().to_bits(),
            "log-weight restores bit-exactly"
        );
    }

    #[test]
    fn full_wal_replay_when_snapshot_is_corrupt() {
        let d = dir("corrupt_snap");
        let m = model();
        {
            let (mut t, _) = Tenant::open("t", &d, &m, cfg()).unwrap();
            feed(&mut t, 0, 100);
            t.shutdown().unwrap();
        }
        // Corrupt the snapshot: recovery must fall back to the WAL.
        let snap_path = Tenant::snapshot_path(&d, "t");
        let mut bytes = std::fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap_path, &bytes).unwrap();
        let (t, report) = Tenant::open("t", &d, &m, cfg()).unwrap();
        assert!(!report.snapshot_used);
        assert_eq!(report.replayed, 100, "every WAL record replays");
        assert_eq!(t.durable_seq(), 100);
        assert_eq!(t.engine().stats().events, t.engine().stats().events);
        // Accounting invariant still holds.
        let s = t.engine().stats();
        assert_eq!(
            t.offers(),
            s.admitted() + s.denied_capacity() + s.denied_policy() + t.counters().shed
        );
    }

    #[test]
    fn snapshot_from_a_different_model_is_ignored() {
        let d = dir("model_change");
        let m = model();
        {
            let (mut t, _) = Tenant::open("t", &d, &m, cfg()).unwrap();
            feed(&mut t, 0, 60);
            t.shutdown().unwrap();
        }
        // Same WAL, different model: the snapshot fingerprint mismatches,
        // and the WAL replays into the *new* model's engine.
        let m2 = Model::new(
            Dims::square(6),
            Workload::new()
                .with(TrafficClass::poisson(0.9))
                .with(TrafficClass::bpp(0.5, 0.1, 1.0).with_bandwidth(2)),
        )
        .unwrap();
        let (t, report) = Tenant::open("t", &d, &m2, cfg()).unwrap();
        assert!(!report.snapshot_used);
        assert_eq!(report.replayed, 60);
        assert_eq!(t.durable_seq(), 60);
    }

    #[test]
    fn consecutive_invalid_events_quarantine_and_stay_durable() {
        let d = dir("quarantine");
        let m = model();
        let mut c = cfg();
        c.max_failures = 3;
        let (mut t, _) = Tenant::open("t", &d, &m, c.clone()).unwrap();
        // Departures with nothing in flight: semantic failures.
        assert_eq!(
            t.apply(1, Event::Departure { class: 0 }, false).unwrap(),
            Outcome::Rejected
        );
        assert_eq!(
            t.apply(2, Event::Departure { class: 0 }, false).unwrap(),
            Outcome::Rejected
        );
        assert_eq!(
            t.apply(3, Event::Departure { class: 0 }, false).unwrap(),
            Outcome::Quarantined
        );
        assert!(t.quarantined());
        // Quarantined: arrivals shed durably, departures rejected.
        assert_eq!(
            t.apply(4, Event::Arrival { class: 0 }, false).unwrap(),
            Outcome::Shed
        );
        assert_eq!(
            t.apply(5, Event::Departure { class: 0 }, false).unwrap(),
            Outcome::Rejected
        );
        assert_eq!(t.counters().shed, 1);
        assert_eq!(t.counters().rejected, 4);
        // Quarantine survives a restart (it was snapshotted).
        drop(t);
        let (t, _) = Tenant::open("t", &d, &m, c).unwrap();
        assert!(t.quarantined(), "quarantine is durable");
        assert_eq!(t.counters().shed, 1);
        assert_eq!(t.counters().rejected, 4);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let d = dir("streak");
        let m = model();
        let mut c = cfg();
        c.max_failures = 3;
        let (mut t, _) = Tenant::open("t", &d, &m, c).unwrap();
        for round in 0..5u64 {
            let base = round * 3;
            t.apply(base + 1, Event::Departure { class: 0 }, false)
                .unwrap();
            t.apply(base + 2, Event::Departure { class: 0 }, false)
                .unwrap();
            // A valid arrival resets the streak before it reaches 3.
            assert_eq!(
                t.apply(base + 3, Event::Arrival { class: 0 }, false)
                    .unwrap(),
                Outcome::Admitted
            );
        }
        assert!(!t.quarantined());
    }

    #[test]
    fn zero_deadline_forces_the_stale_anchor_path() {
        let d = dir("stale");
        let m = model();
        let mut c = cfg();
        c.check_interval = 1; // check after every event
        c.reanchor_deadline = Some(Duration::ZERO);
        let (mut t, _) = Tenant::open("t", &d, &m, c).unwrap();
        // Poison the incremental weight so the drift check trips, via the
        // restore path (the supported way to inject state).
        t.apply(1, Event::Arrival { class: 0 }, false).unwrap();
        let mut st = t.engine.export_state();
        st.log_weight += 1.0; // definite drift
        t.engine.restore_state(&st).unwrap();
        t.apply(2, Event::Arrival { class: 0 }, false).unwrap();
        assert!(t.anchor_stale(), "deadline ZERO must take the stale path");
        assert_eq!(t.counters().stale_reanchors, 1);
        // The weight itself was corrected exactly.
        assert_eq!(
            t.engine().log_weight().to_bits(),
            t.engine().exact_log_weight().to_bits()
        );
        // With no deadline, the same drift does a full re-anchor and
        // clears the stale flag.
        let mut st = t.engine.export_state();
        st.log_weight += 1.0;
        t.engine.restore_state(&st).unwrap();
        t.cfg.reanchor_deadline = None;
        t.apply(3, Event::Arrival { class: 0 }, false).unwrap();
        assert!(!t.anchor_stale());
        assert_eq!(t.engine().stats().re_anchors, 1);
    }

    #[test]
    fn stale_reprices_absorb_the_event_and_route_a_coalesced_reanchor() {
        let d = dir("stale_reprice");
        let m = model();
        let mut c = cfg();
        c.policy = PolicySpec::ShadowPrice { reserve: 1 };
        c.reprice_batch = Some(1);
        c.reanchor_deadline = Some(Duration::ZERO); // every reprice refuses
        c.coalesce_reanchors = true;
        let (mut t, _) = Tenant::open("t", &d, &m, c).unwrap();
        // The refusal happens after the event landed: outcome, engine
        // state, and the WAL all reflect the absorbed arrival.
        assert_eq!(
            t.apply(1, Event::Arrival { class: 0 }, false).unwrap(),
            Outcome::Admitted
        );
        assert_eq!(t.counters().stale_reprices, 1);
        assert_eq!(t.counters().rejected, 0, "not an integrity failure");
        assert!(!t.quarantined());
        assert_eq!(t.engine().stats().offered(), 1);
        assert_eq!(t.engine().state(), &[1, 0]);
        assert_eq!(t.durable_seq(), 1);
        // The refusal routed a re-anchor through the coalesced path; the
        // zero budget then takes the stale-anchor ladder.
        assert!(t.reanchor_pending());
        t.complete_pending_reanchor().unwrap();
        assert_eq!(t.counters().stale_reanchors, 1);
        // Departures reconstruct their outcome the same way.
        assert_eq!(
            t.apply(2, Event::Departure { class: 0 }, false).unwrap(),
            Outcome::Departed
        );
        assert_eq!(t.counters().stale_reprices, 2);
        assert_eq!(t.engine().stats().departures, 1);
        // Replay counts refusals identically: reopen and compare.
        drop(t);
        let mut c2 = cfg();
        c2.policy = PolicySpec::ShadowPrice { reserve: 1 };
        c2.reprice_batch = Some(1);
        c2.reanchor_deadline = Some(Duration::ZERO);
        c2.coalesce_reanchors = true;
        let (t2, report) = Tenant::open("t", &d, &m, c2).unwrap();
        assert!(!report.snapshot_used, "no snapshot was due yet");
        assert_eq!(t2.counters().stale_reprices, 2);
        assert_eq!(t2.engine().stats().reprice_batches, 2);
    }

    #[test]
    fn resume_deduplicates_the_durable_prefix_after_reopen() {
        let d = dir("dedupe");
        let m = model();
        {
            let (mut t, _) = Tenant::open("t", &d, &m, cfg()).unwrap();
            for seq in 1..=5 {
                t.apply(seq, Event::Arrival { class: 0 }, false).unwrap();
            }
            // crash: no shutdown
        }
        let (mut t, _) = Tenant::open("t", &d, &m, cfg()).unwrap();
        assert_eq!(t.resume_seq(), 5);
        // A resumed tailer re-feeds from the top: the durable prefix
        // deduplicates, fresh events apply.
        for seq in 1..=5 {
            assert_eq!(
                t.apply(seq, Event::Arrival { class: 0 }, false).unwrap(),
                Outcome::Duplicate
            );
        }
        assert_eq!(
            t.apply(6, Event::Departure { class: 0 }, false).unwrap(),
            Outcome::Departed
        );
        assert_eq!(t.engine().stats().offered(), 5);
    }
}

//! Ingest sources and the serve event loop.
//!
//! Three ways to feed a [`Daemon`]:
//!
//! - **File** — read a trace once, apply synchronously, shut down. The
//!   deterministic mode: same file, same config → same counters, which is
//!   what the chaos battery and the CI crash-recovery smoke rely on.
//! - **Tail** — follow a growing file (poll for appended bytes), until a
//!   `!stop` control line or `idle_timeout` with no new data.
//! - **Socket** — accept connections on a unix-domain socket; a pool of
//!   reader threads (sized by the solver thread plumbing, so
//!   `XBAR_THREADS` governs it like everything else) parses connections
//!   and forwards lines over a channel to the single apply loop. Engines
//!   stay single-owner: ingestion parallelism never races tenant state.
//!   Unlike file/tail, a socket does not re-feed the durable prefix
//!   after a restart, so sequence numbering resumes *past* the durable
//!   watermark ([`Daemon::seek_past_durable`]) instead of relying on
//!   re-feed deduplication.
//!
//! A line consisting of `!stop` cleanly shuts the daemon down from any
//! source (drain, snapshot, sync).

use std::io::{BufRead, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::daemon::Daemon;
use crate::ServeError;

/// Where events come from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// Read a trace file once and shut down.
    File(PathBuf),
    /// Follow a growing file until `!stop` or idle timeout.
    Tail(PathBuf),
    /// Accept line streams on a unix-domain socket until `!stop`.
    Socket(PathBuf),
}

/// The control line that cleanly shuts the daemon down.
pub const STOP_LINE: &str = "!stop";

/// What a run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Raw lines ingested.
    pub lines: u64,
    /// Events applied.
    pub applied: u64,
    /// The run ended on a `!stop` control line (vs EOF / idle timeout).
    pub stopped: bool,
}

fn feed_line(daemon: &mut Daemon, line: &str, report: &mut RunReport) -> Result<bool, ServeError> {
    if line.trim() == STOP_LINE {
        report.stopped = true;
        return Ok(false);
    }
    daemon.ingest_line(line)?;
    report.lines += 1;
    let budget = daemon.pump_budget();
    report.applied += daemon.pump(budget)?;
    Ok(true)
}

/// Run the daemon over `source` until it is exhausted or stopped, then
/// shut down cleanly (drain + snapshot + sync).
pub fn run_source(
    daemon: &mut Daemon,
    source: &Source,
    idle_timeout: Duration,
) -> Result<RunReport, ServeError> {
    let mut report = RunReport::default();
    match source {
        Source::File(path) => {
            let file = std::fs::File::open(path).map_err(|e| ServeError::io(path, &e))?;
            for line in BufReader::new(file).lines() {
                let line = line.map_err(|e| ServeError::io(path, &e))?;
                if !feed_line(daemon, &line, &mut report)? {
                    break;
                }
            }
        }
        Source::Tail(path) => tail_file(daemon, path, idle_timeout, &mut report)?,
        Source::Socket(path) => {
            // A socket never re-feeds the durable prefix after a restart:
            // number fresh events past it, or they would be misread as
            // duplicates of the recovered stream.
            daemon.seek_past_durable();
            serve_socket(daemon, path, idle_timeout, &mut report)?;
        }
    }
    report.applied += daemon.drain()?;
    daemon.shutdown()?;
    Ok(report)
}

/// Follow `path`, applying lines as they are appended. Stops on a `!stop`
/// line or after `idle_timeout` with no growth. Partial trailing lines
/// (a writer mid-append) are left unread until their newline arrives.
fn tail_file(
    daemon: &mut Daemon,
    path: &Path,
    idle_timeout: Duration,
    report: &mut RunReport,
) -> Result<(), ServeError> {
    let mut offset = 0u64;
    let mut buf = String::new();
    let mut last_progress = Instant::now();
    loop {
        let len = std::fs::metadata(path)
            .map(|m| m.len())
            .map_err(|e| ServeError::io(path, &e))?;
        if len > offset {
            let mut file = std::fs::File::open(path).map_err(|e| ServeError::io(path, &e))?;
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| ServeError::io(path, &e))?;
            let mut chunk = String::new();
            file.read_to_string(&mut chunk)
                .map_err(|e| ServeError::io(path, &e))?;
            buf.push_str(&chunk);
            offset = len;
            last_progress = Instant::now();
            // Apply every complete line; keep any partial tail for the
            // writer's next append.
            while let Some(nl) = buf.find('\n') {
                let line: String = buf.drain(..=nl).collect();
                if !feed_line(daemon, line.trim_end_matches('\n'), report)? {
                    return Ok(());
                }
            }
        } else if last_progress.elapsed() >= idle_timeout {
            return Ok(());
        } else {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Accept unix-socket connections; reader threads parse them into lines
/// and forward over a channel to this (single) apply loop.
fn serve_socket(
    daemon: &mut Daemon,
    path: &Path,
    idle_timeout: Duration,
    report: &mut RunReport,
) -> Result<(), ServeError> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| ServeError::io(path, &e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::io(path, &e))?;
    let (tx, rx) = mpsc::channel::<String>();
    // Reader pool cap from the shared thread plumbing (XBAR_THREADS).
    let max_readers = xbar_core::parallel::effective_threads();
    let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut last_progress = Instant::now();
    loop {
        readers.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _)) if readers.len() < max_readers => {
                let tx = tx.clone();
                readers.push(std::thread::spawn(move || {
                    for line in BufReader::new(stream).lines() {
                        let Ok(line) = line else { break };
                        let stop = line.trim() == STOP_LINE;
                        if tx.send(line).is_err() || stop {
                            break;
                        }
                    }
                }));
            }
            Ok(_) => {
                // Pool full: the connection is dropped (refused); callers
                // retry. Bounded behaviour beats unbounded threads.
                xbar_obs::inc("serve.conn_refused");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => return Err(ServeError::io(path, &e)),
        }
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(line) => {
                last_progress = Instant::now();
                if !feed_line(daemon, &line, report)? {
                    let _ = std::fs::remove_file(path);
                    return Ok(());
                }
                // Drain whatever else is already buffered before polling
                // the listener again.
                while let Ok(line) = rx.try_recv() {
                    if !feed_line(daemon, &line, report)? {
                        let _ = std::fs::remove_file(path);
                        return Ok(());
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if last_progress.elapsed() >= idle_timeout {
                    let _ = std::fs::remove_file(path);
                    return Ok(());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("tx kept alive above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonConfig;
    use std::io::Write;
    use xbar_core::{Dims, Model};
    use xbar_traffic::{TrafficClass, Workload};

    fn model() -> Model {
        Model::new(
            Dims::square(4),
            Workload::new().with(TrafficClass::poisson(0.7)),
        )
        .unwrap()
    }

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("xbar_runtime_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn file_source_applies_everything_and_shuts_down() {
        let d = dir("file");
        let trace = d.join("trace.txt");
        let mut f = std::fs::File::create(&trace).unwrap();
        for i in 0..40 {
            if i % 4 == 3 {
                writeln!(f, "t1 d 0").unwrap();
            } else {
                writeln!(f, "t1 a 0").unwrap();
            }
        }
        drop(f);
        let data = d.join("data");
        let (mut daemon, _) = Daemon::open(&data, &model(), DaemonConfig::default()).unwrap();
        let report = run_source(&mut daemon, &Source::File(trace), Duration::ZERO).unwrap();
        assert_eq!(report.lines, 40);
        assert!(!report.stopped);
        let acc = daemon.accounting();
        assert_eq!(acc.offers, 30);
        assert!(acc.holds());
        // Clean shutdown wrote a snapshot.
        assert!(crate::tenant::Tenant::snapshot_path(&data, "t1").exists());
    }

    #[test]
    fn stop_line_ends_a_file_run_early() {
        let d = dir("stop");
        let trace = d.join("trace.txt");
        std::fs::write(&trace, "t1 a 0\n!stop\nt1 a 0\n").unwrap();
        let (mut daemon, _) =
            Daemon::open(&d.join("data"), &model(), DaemonConfig::default()).unwrap();
        let report = run_source(&mut daemon, &Source::File(trace), Duration::ZERO).unwrap();
        assert!(report.stopped);
        assert_eq!(daemon.accounting().offers, 1, "line after !stop unread");
    }

    #[test]
    fn tail_source_follows_appends_until_stop() {
        let d = dir("tail");
        let trace = d.join("trace.txt");
        std::fs::write(&trace, "").unwrap();
        let writer_path = trace.clone();
        let writer = std::thread::spawn(move || {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&writer_path)
                .unwrap();
            for i in 0..20 {
                writeln!(f, "t1 a 0 @{i}").unwrap();
                f.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
            writeln!(f, "{STOP_LINE}").unwrap();
        });
        let (mut daemon, _) =
            Daemon::open(&d.join("data"), &model(), DaemonConfig::default()).unwrap();
        let report =
            run_source(&mut daemon, &Source::Tail(trace), Duration::from_secs(30)).unwrap();
        writer.join().unwrap();
        assert!(report.stopped);
        assert_eq!(report.lines, 20);
        assert_eq!(daemon.accounting().offers, 20);
    }

    #[test]
    fn socket_restart_does_not_swallow_fresh_events() {
        use std::os::unix::net::UnixStream;
        let d = dir("socket_restart");
        let data = d.join("data");
        let run = |sock: PathBuf, range: std::ops::Range<u32>, data: &PathBuf| {
            let sock_for_client = sock.clone();
            let client = std::thread::spawn(move || {
                let mut stream = loop {
                    match UnixStream::connect(&sock_for_client) {
                        Ok(s) => break s,
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                };
                for i in range {
                    writeln!(stream, "t1 a 0 @{i}").unwrap();
                }
                writeln!(stream, "{STOP_LINE}").unwrap();
            });
            let (mut daemon, _) = Daemon::open(data, &model(), DaemonConfig::default()).unwrap();
            let report =
                run_source(&mut daemon, &Source::Socket(sock), Duration::from_secs(30)).unwrap();
            client.join().unwrap();
            (daemon, report)
        };
        let (daemon, report) = run(d.join("a.sock"), 0..10, &data);
        assert_eq!(report.applied, 10);
        drop(daemon);
        // Restart over the same durable state: a socket only delivers
        // *fresh* events (no re-feed from the top), and every one of them
        // must apply — not be mistaken for a duplicate of seqs 1..10.
        let (daemon, report) = run(d.join("b.sock"), 10..25, &data);
        assert_eq!(report.applied, 15, "every fresh event applied");
        assert_eq!(daemon.counters().duplicates, 0);
        let acc = daemon.accounting();
        assert_eq!(acc.offers, 25, "10 recovered + 15 fresh");
        assert!(acc.holds());
    }

    #[test]
    fn socket_source_accepts_streams_until_stop() {
        use std::os::unix::net::UnixStream;
        let d = dir("socket");
        let sock = d.join("xbar.sock");
        let sock_for_client = sock.clone();
        let client = std::thread::spawn(move || {
            // Retry until the listener is up.
            let mut stream = loop {
                match UnixStream::connect(&sock_for_client) {
                    Ok(s) => break s,
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            };
            for i in 0..25 {
                writeln!(stream, "t1 a 0 @{i}").unwrap();
            }
            writeln!(stream, "{STOP_LINE}").unwrap();
        });
        let (mut daemon, _) =
            Daemon::open(&d.join("data"), &model(), DaemonConfig::default()).unwrap();
        let report =
            run_source(&mut daemon, &Source::Socket(sock), Duration::from_secs(30)).unwrap();
        client.join().unwrap();
        assert!(report.stopped);
        assert_eq!(daemon.accounting().offers, 25);
        assert!(daemon.accounting().holds());
    }
}

//! Pareto frontier and contour extraction from a finished search.
//!
//! Both are plain row vectors — the `xbar-experiments` crate renders
//! them through its shared `Table` type so the artefacts flow through
//! the same golden-CSV pipeline as every figure
//! (`tests/golden/plan_frontier.csv`, `plan_contour.csv`).

use crate::objective::Evaluation;
use crate::search::PlanReport;
use crate::space::DesignSpace;

/// One non-dominated design: maximal revenue among designs at or below
/// its worst SLO'd-class call blocking.
#[derive(Clone, Debug)]
pub struct FrontierRow {
    /// Canonical candidate index ([`crate::space::OFF_GRID`] for
    /// gradient iterates).
    pub index: u64,
    /// Geometry.
    pub n1: u32,
    /// Geometry.
    pub n2: u32,
    /// Per-axis `ρ` values.
    pub rho: Vec<f64>,
    /// Objective value (revenue `W`).
    pub objective: f64,
    /// Worst call blocking over SLO'd classes (all classes when no
    /// SLOs) — the frontier's cost coordinate.
    pub worst_blocking: f64,
    /// Whether this row is the reported optimum.
    pub optimal: bool,
}

/// One evaluated grid cell (for contour plots of `W` over the space).
#[derive(Clone, Debug)]
pub struct ContourRow {
    /// Canonical candidate index.
    pub index: u64,
    /// Geometry.
    pub n1: u32,
    /// Geometry.
    pub n2: u32,
    /// Per-axis `ρ` values.
    pub rho: Vec<f64>,
    /// Objective value.
    pub objective: f64,
    /// Worst SLO'd-class call blocking.
    pub worst_blocking: f64,
    /// SLO verdict.
    pub feasible: bool,
}

/// Extract the Pareto frontier over the *feasible* evaluations:
/// maximise revenue, minimise worst blocking. Rows come out in
/// descending-revenue order (ties broken by evaluation order), each with
/// strictly lower worst blocking than every richer row.
pub fn frontier(space: &DesignSpace, report: &PlanReport) -> Vec<FrontierRow> {
    let mut feasible: Vec<(usize, &Evaluation)> = report
        .evaluations
        .iter()
        .enumerate()
        .filter(|(_, e)| e.feasible)
        .collect();
    // Stable sort: revenue descending, evaluation order on ties.
    feasible.sort_by(|(ia, a), (ib, b)| {
        b.objective
            .partial_cmp(&a.objective)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ia.cmp(ib))
    });
    let mut rows = Vec::new();
    let mut best_blocking = f64::INFINITY;
    for (_, e) in feasible {
        let wb = e.worst_blocking(space);
        if wb < best_blocking {
            best_blocking = wb;
            rows.push(FrontierRow {
                index: e.candidate.index,
                n1: e.candidate.geometry.n1,
                n2: e.candidate.geometry.n2,
                rho: e.candidate.rho.clone(),
                objective: e.objective,
                worst_blocking: wb,
                optimal: e.candidate == report.optimum.candidate
                    && e.objective == report.optimum.objective,
            });
        }
    }
    rows
}

/// Every evaluated cell as a contour row, in evaluation (canonical
/// grid) order.
pub fn contour(space: &DesignSpace, report: &PlanReport) -> Vec<ContourRow> {
    report
        .evaluations
        .iter()
        .map(|e| ContourRow {
            index: e.candidate.index,
            n1: e.candidate.geometry.n1,
            n2: e.candidate.geometry.n2,
            rho: e.candidate.rho.clone(),
            objective: e.objective,
            worst_blocking: e.worst_blocking(space),
            feasible: e.feasible,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{plan, PlanConfig};
    use crate::space::{RhoAxis, Slo};
    use xbar_core::{Dims, Model};
    use xbar_traffic::{TrafficClass, Workload};

    fn space() -> DesignSpace {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.02))
            .with(TrafficClass::bpp(0.008, 0.004, 1.0).with_weight(2.0));
        DesignSpace::new(Model::new(Dims::square(8), w).unwrap())
            .with_geometry(Dims::square(6))
            .with_geometry(Dims::square(8))
            .with_axis(RhoAxis {
                class: 0,
                lo: 0.002,
                hi: 0.08,
                steps: 7,
            })
            .with_slo(Slo {
                class: 1,
                max_blocking: 0.40,
            })
    }

    #[test]
    fn frontier_is_pareto_and_contains_the_optimum() {
        let space = space();
        let report = plan(&space, &PlanConfig::default()).unwrap();
        let rows = frontier(&space, &report);
        assert!(!rows.is_empty());
        // Pareto shape: revenue strictly decreasing, blocking strictly
        // decreasing (each row trades revenue for availability).
        for w in rows.windows(2) {
            assert!(w[0].objective >= w[1].objective);
            assert!(w[0].worst_blocking > w[1].worst_blocking);
        }
        // The richest row is the optimum.
        assert!(rows[0].optimal);
        assert!((rows[0].objective - report.optimum.objective).abs() < 1e-15);
        // No feasible evaluation dominates any frontier row.
        for e in report.evaluations.iter().filter(|e| e.feasible) {
            for r in &rows {
                let dominates =
                    e.objective > r.objective && e.worst_blocking(&space) <= r.worst_blocking;
                assert!(!dominates, "frontier row dominated");
            }
        }
    }

    #[test]
    fn contour_covers_every_evaluation() {
        let space = space();
        let report = plan(&space, &PlanConfig::default()).unwrap();
        let rows = contour(&space, &report);
        assert_eq!(rows.len(), report.evaluations.len());
    }
}

//! The design space: what the planner is allowed to vary and what it
//! must respect.
//!
//! A [`DesignSpace`] is a *base* [`Model`] plus three kinds of freedom:
//!
//! * a set of candidate geometries (`Dims`) — the integer knobs;
//! * per-class offered-load axes ([`RhoAxis`]) — the continuous knobs,
//!   discretised into `steps` grid points for exhaustive search and
//!   treated as a box `[lo, hi]` by the gradient strategy;
//! * per-class blocking SLOs ([`Slo`]) — the constraints.
//!
//! Candidates are indexed canonically in mixed radix: geometry is the
//! outermost digit, axes follow in declaration order with the **last
//! axis innermost**. Within an innermost scanline only the swept class's
//! own parameters change, which is exactly the sharing
//! [`xbar_core::SweepGrid`] exploits — a whole scanline recombines
//! against one leave-one-out precompute.

use xbar_core::{Dims, Model, ModelError};

/// One continuous knob: class `class`'s per-set offered load `ρ` ranges
/// over `[lo, hi]`, discretised into `steps` evenly spaced grid points
/// (`steps == 1` pins the axis at `lo`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RhoAxis {
    /// Which class's `ρ` this axis sweeps.
    pub class: usize,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
    /// Grid points for exhaustive enumeration (≥ 1).
    pub steps: usize,
}

impl RhoAxis {
    /// The `i`-th grid value, `i < steps`, ascending.
    pub fn value(&self, i: usize) -> f64 {
        debug_assert!(i < self.steps);
        if self.steps <= 1 {
            return self.lo;
        }
        self.lo + (self.hi - self.lo) * (i as f64) / ((self.steps - 1) as f64)
    }

    /// Clamp `x` into `[lo, hi]`.
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }
}

/// One constraint: class `class`'s **call blocking** (`1 −` call-level
/// acceptance, the paper's `P_r`-weighted per-call measure — identical
/// to tuple blocking for Poisson classes) must not exceed
/// `max_blocking`. The bound is inclusive: a design sitting exactly on
/// the boundary is feasible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slo {
    /// Which class the SLO protects.
    pub class: usize,
    /// Maximum tolerated call blocking (inclusive).
    pub max_blocking: f64,
}

/// A malformed design space (caught by [`DesignSpace::validate`] before
/// any solving starts).
#[derive(Clone, Debug, PartialEq)]
pub enum SpaceError {
    /// An axis or SLO names a class the base model does not have.
    ClassOutOfRange(usize),
    /// Two axes sweep the same class.
    DuplicateAxis(usize),
    /// An axis has `lo > hi`, a non-finite bound, a negative `lo`, or
    /// zero steps.
    BadAxis(usize),
    /// An SLO bound is outside `[0, 1]`.
    BadSlo(usize),
    /// A listed geometry cannot carry the base workload.
    BadGeometry(Dims, ModelError),
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::ClassOutOfRange(r) => write!(f, "class {r} out of range"),
            SpaceError::DuplicateAxis(r) => write!(f, "class {r} swept by two axes"),
            SpaceError::BadAxis(i) => {
                write!(f, "axis {i} malformed (need 0 <= lo <= hi, steps >= 1)")
            }
            SpaceError::BadSlo(i) => write!(f, "slo {i} bound outside [0, 1]"),
            SpaceError::BadGeometry(d, e) => {
                write!(f, "geometry {}x{} rejects the workload: {e}", d.n1, d.n2)
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// One point of the design space: a geometry plus a value per axis.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Canonical mixed-radix index (`u64::MAX` for off-grid points
    /// produced by the gradient strategy).
    pub index: u64,
    /// The chosen geometry.
    pub geometry: Dims,
    /// Per-axis `ρ` values, parallel to [`DesignSpace::axes`].
    pub rho: Vec<f64>,
}

/// Index of a gradient-strategy iterate that is not a grid point.
pub const OFF_GRID: u64 = u64::MAX;

/// The full search problem (see module docs).
#[derive(Clone, Debug)]
pub struct DesignSpace {
    /// Workload template; its dims are used when `geometries` is empty.
    pub base: Model,
    /// Candidate geometries (empty → just `base.dims()`).
    pub geometries: Vec<Dims>,
    /// Continuous knobs (may be empty: geometry-only search).
    pub axes: Vec<RhoAxis>,
    /// Constraints (may be empty: unconstrained revenue maximisation).
    pub slos: Vec<Slo>,
}

impl DesignSpace {
    /// A space over the base model's own geometry with no axes or SLOs.
    pub fn new(base: Model) -> Self {
        DesignSpace {
            base,
            geometries: Vec::new(),
            axes: Vec::new(),
            slos: Vec::new(),
        }
    }

    /// Builder: add a candidate geometry.
    pub fn with_geometry(mut self, dims: Dims) -> Self {
        self.geometries.push(dims);
        self
    }

    /// Builder: add a `ρ` axis.
    pub fn with_axis(mut self, axis: RhoAxis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Builder: add an SLO.
    pub fn with_slo(mut self, slo: Slo) -> Self {
        self.slos.push(slo);
        self
    }

    /// The effective geometry list (falls back to the base dims).
    pub fn geometries(&self) -> Vec<Dims> {
        if self.geometries.is_empty() {
            vec![self.base.dims()]
        } else {
            self.geometries.clone()
        }
    }

    /// Check every structural invariant up front so the search itself
    /// can only fail numerically.
    pub fn validate(&self) -> Result<(), SpaceError> {
        let classes = self.base.num_classes();
        for (i, a) in self.axes.iter().enumerate() {
            if a.class >= classes {
                return Err(SpaceError::ClassOutOfRange(a.class));
            }
            if self.axes[..i].iter().any(|b| b.class == a.class) {
                return Err(SpaceError::DuplicateAxis(a.class));
            }
            if !(a.lo.is_finite() && a.hi.is_finite() && a.lo >= 0.0 && a.lo <= a.hi)
                || a.steps == 0
            {
                return Err(SpaceError::BadAxis(i));
            }
        }
        for (i, s) in self.slos.iter().enumerate() {
            if s.class >= classes {
                return Err(SpaceError::ClassOutOfRange(s.class));
            }
            if !(s.max_blocking.is_finite() && (0.0..=1.0).contains(&s.max_blocking)) {
                return Err(SpaceError::BadSlo(i));
            }
        }
        for &d in &self.geometries {
            if let Err(e) = self.base.with_dims(d) {
                return Err(SpaceError::BadGeometry(d, e));
            }
        }
        Ok(())
    }

    /// Total number of grid candidates
    /// (`|geometries| × Π_axes steps`).
    pub fn num_candidates(&self) -> u64 {
        let geos = if self.geometries.is_empty() {
            1
        } else {
            self.geometries.len() as u64
        };
        self.axes
            .iter()
            .fold(geos, |acc, a| acc.saturating_mul(a.steps as u64))
    }

    /// Decode the canonical candidate at `index` (geometry outermost,
    /// last axis innermost).
    pub fn candidate(&self, index: u64) -> Candidate {
        debug_assert!(index < self.num_candidates());
        let mut rem = index;
        let mut digits = vec![0usize; self.axes.len()];
        for (slot, a) in digits.iter_mut().zip(&self.axes).rev() {
            *slot = (rem % a.steps as u64) as usize;
            rem /= a.steps as u64;
        }
        let geometries = self.geometries();
        let geometry = geometries[rem as usize];
        let rho = digits
            .iter()
            .zip(&self.axes)
            .map(|(&i, a)| a.value(i))
            .collect();
        Candidate {
            index,
            geometry,
            rho,
        }
    }

    /// Materialise the model a candidate describes. Geometry validity was
    /// checked by [`DesignSpace::validate`]; `ρ` edits skip re-validation
    /// (they act on the analytic continuation like
    /// [`Model::with_rho`]).
    pub fn model_for(&self, c: &Candidate) -> Result<Model, ModelError> {
        let mut model = self.base.with_dims(c.geometry)?;
        for (a, &x) in self.axes.iter().zip(&c.rho) {
            model = model.with_rho(a.class, x)?;
        }
        Ok(model)
    }

    /// The class whose leave-one-out precompute an innermost scanline
    /// shares: the last axis's class (class 0 when there are no axes —
    /// any slot works, the grid then just dedups per class set).
    pub fn sweep_class(&self) -> usize {
        self.axes.last().map_or(0, |a| a.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_traffic::{TrafficClass, Workload};

    fn base() -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.2))
            .with(TrafficClass::bpp(0.1, 0.05, 1.0).with_weight(2.0));
        Model::new(Dims::square(8), w).unwrap()
    }

    #[test]
    fn candidate_indexing_round_trips_in_canonical_order() {
        let space = DesignSpace::new(base())
            .with_geometry(Dims::square(6))
            .with_geometry(Dims::square(8))
            .with_axis(RhoAxis {
                class: 0,
                lo: 0.1,
                hi: 0.3,
                steps: 3,
            })
            .with_axis(RhoAxis {
                class: 1,
                lo: 0.05,
                hi: 0.05,
                steps: 2,
            });
        space.validate().unwrap();
        assert_eq!(space.num_candidates(), 2 * 3 * 2);
        // Innermost axis (class 1) varies fastest, geometry slowest.
        let c0 = space.candidate(0);
        let c1 = space.candidate(1);
        assert_eq!(c0.geometry, Dims::square(6));
        assert_eq!(c0.rho, vec![0.1, 0.05]);
        assert_eq!(c1.rho[0], 0.1);
        let last = space.candidate(11);
        assert_eq!(last.geometry, Dims::square(8));
        assert!((last.rho[0] - 0.3).abs() < 1e-15);
        for i in 0..space.num_candidates() {
            assert_eq!(space.candidate(i).index, i);
        }
    }

    #[test]
    fn validate_catches_malformed_spaces() {
        let m = base();
        let s = DesignSpace::new(m.clone()).with_axis(RhoAxis {
            class: 5,
            lo: 0.0,
            hi: 1.0,
            steps: 2,
        });
        assert_eq!(s.validate(), Err(SpaceError::ClassOutOfRange(5)));
        let s = DesignSpace::new(m.clone())
            .with_axis(RhoAxis {
                class: 0,
                lo: 0.0,
                hi: 1.0,
                steps: 2,
            })
            .with_axis(RhoAxis {
                class: 0,
                lo: 0.0,
                hi: 1.0,
                steps: 2,
            });
        assert_eq!(s.validate(), Err(SpaceError::DuplicateAxis(0)));
        let s = DesignSpace::new(m.clone()).with_axis(RhoAxis {
            class: 0,
            lo: 1.0,
            hi: 0.5,
            steps: 2,
        });
        assert_eq!(s.validate(), Err(SpaceError::BadAxis(0)));
        let s = DesignSpace::new(m.clone()).with_slo(Slo {
            class: 0,
            max_blocking: 1.5,
        });
        assert_eq!(s.validate(), Err(SpaceError::BadSlo(0)));
        let s = DesignSpace::new(m).with_slo(Slo {
            class: 9,
            max_blocking: 0.5,
        });
        assert_eq!(s.validate(), Err(SpaceError::ClassOutOfRange(9)));
    }

    #[test]
    fn model_for_applies_geometry_and_axis_values() {
        let space = DesignSpace::new(base()).with_axis(RhoAxis {
            class: 0,
            lo: 0.4,
            hi: 0.4,
            steps: 1,
        });
        let c = space.candidate(0);
        let m = space.model_for(&c).unwrap();
        assert!((m.workload().classes()[0].rho() - 0.4).abs() < 1e-15);
        // Class 1 untouched.
        assert!((m.workload().classes()[1].alpha - 0.1).abs() < 1e-15);
    }
}

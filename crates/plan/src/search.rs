//! The search driver: exhaustive enumeration with monotone SLO pruning,
//! and projected gradient ascent steered by the §4 shadow prices.
//!
//! Both strategies share the same contract, proven by the crate's test
//! battery:
//!
//! * the returned optimum is SLO-feasible;
//! * no *evaluated* feasible candidate beats it (the optimum is the
//!   argmax over everything the search actually scored, so the claim is
//!   structural, not hoped-for);
//! * ties are broken canonically — first in evaluation order, which for
//!   the exhaustive grid is the lowest candidate index;
//! * re-running the gradient strategy from the reported optimum is a
//!   fixed point (the backtracking schedule restarts identically every
//!   iteration, so a converged point stays converged).
//!
//! Exhaustive pruning leans on the model's monotonicity — every class's
//! blocking is non-decreasing in any class's offered load `ρ_s` (the
//! sign `∂B̄_r/∂ρ_s < 0` asserted by the sensitivity tests) — so once a
//! scanline cell violates an SLO, the rest of the ascending-`ρ` scanline
//! must too and is skipped (`plan.pruned`). Differential tier 7 replays
//! random spaces both pruned and unpruned against a brute-force argmax
//! to guard that soundness empirically.

use xbar_core::{Algorithm, SolveError, SweepGrid, SweepSolver};

use crate::objective::{evaluate, Evaluation, Objective};
use crate::space::{Candidate, DesignSpace, SpaceError, OFF_GRID};

/// How to walk the space.
#[derive(Clone, Debug, PartialEq)]
pub enum Strategy {
    /// Enumerate every grid candidate in canonical order.
    Exhaustive {
        /// Skip the tail of an innermost scanline after the first SLO
        /// violation (sound under blocking-monotonicity; tier-7 guarded).
        prune: bool,
        /// Pre-build all leave-one-out entries over the fleet worker
        /// pool before scanning (`SweepGrid::warm`) instead of building
        /// lazily per cell. Byte-identical results either way.
        batch: bool,
    },
    /// Projected gradient ascent on the continuous `ρ` box of each
    /// geometry, using the exact `∂W/∂ρ_s` sweep gradients as the ascent
    /// direction, with backtracking line search that rejects infeasible
    /// or non-improving probes.
    GradientAscent {
        /// Ascent iterations per start (each with a fresh backtracking
        /// schedule).
        max_iters: usize,
        /// Initial step scale (relative to each axis's box width).
        step0: f64,
        /// Extra deterministic starts (per-axis `ρ` vectors) evaluated
        /// after the built-in center/corner starts — the fixed-point
        /// test restarts the search from a reported optimum this way.
        starts: Vec<Vec<f64>>,
    },
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::Exhaustive {
            prune: true,
            batch: false,
        }
    }
}

/// Full planner configuration.
#[derive(Clone, Debug, Default)]
pub struct PlanConfig {
    /// Numeric backend for every solve.
    pub algorithm: Algorithm,
    /// Objective to maximise.
    pub objective: Objective,
    /// Search strategy.
    pub strategy: Strategy,
}

/// Why a plan failed. `Infeasible` is a *successful* search with an
/// empty feasible region — the CLI maps it to its own exit code,
/// distinct from solver failure.
#[derive(Debug)]
pub enum PlanError {
    /// The design space is structurally malformed.
    Space(SpaceError),
    /// A solve failed (numeric underflow, guard rejection, …).
    Solve(SolveError),
    /// Every evaluated candidate violates at least one SLO.
    Infeasible {
        /// How many candidates were scored before concluding.
        evaluated: u64,
        /// The least-violating candidate found (best diagnostic for
        /// "which SLO do I have to relax?").
        closest: Option<Evaluation>,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Space(e) => write!(f, "design space invalid: {e}"),
            PlanError::Solve(e) => write!(f, "candidate solve failed: {e}"),
            PlanError::Infeasible { evaluated, .. } => write!(
                f,
                "no feasible design: all {evaluated} evaluated candidates violate an SLO"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<SpaceError> for PlanError {
    fn from(e: SpaceError) -> Self {
        PlanError::Space(e)
    }
}

impl From<SolveError> for PlanError {
    fn from(e: SolveError) -> Self {
        PlanError::Solve(e)
    }
}

/// The search outcome: the optimum plus everything that was scored on
/// the way (the frontier, the report and the optimizer-claim proptests
/// all read `evaluations`).
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// The best feasible evaluation (argmax over `evaluations`,
    /// first-in-order on ties).
    pub optimum: Evaluation,
    /// Every candidate that was actually scored, in evaluation order.
    pub evaluations: Vec<Evaluation>,
    /// Candidates skipped by monotone SLO pruning.
    pub pruned: u64,
    /// Distinct leave-one-out precomputes the shared grid ended up with.
    pub grid_entries: usize,
}

/// Run the search. Counts `plan.candidates` (considered),
/// `plan.evaluated` + `plan.pruned` (disposition) and
/// `plan.feasible` + `plan.infeasible` (verdicts); the exit-6 metrics
/// invariant ties them together.
pub fn plan(space: &DesignSpace, cfg: &PlanConfig) -> Result<PlanReport, PlanError> {
    space.validate()?;
    let grid = SweepGrid::new(cfg.algorithm);
    let (evaluations, pruned) = match &cfg.strategy {
        Strategy::Exhaustive { prune, batch } => exhaustive(space, cfg, &grid, *prune, *batch)?,
        Strategy::GradientAscent {
            max_iters,
            step0,
            starts,
        } => (
            gradient_ascent(space, cfg, &grid, *max_iters, *step0, starts)?,
            0,
        ),
    };
    xbar_obs::add("plan.candidates", evaluations.len() as u64 + pruned);
    xbar_obs::add("plan.pruned", pruned);
    let best = evaluations
        .iter()
        .filter(|e| e.feasible)
        .fold(None::<&Evaluation>, |best, e| match best {
            Some(b) if b.objective >= e.objective => Some(b),
            _ => Some(e),
        });
    match best {
        Some(opt) => Ok(PlanReport {
            optimum: opt.clone(),
            pruned,
            grid_entries: grid.len(),
            evaluations,
        }),
        None => {
            // Diagnose: the candidate with the smallest worst SLO excess.
            let closest = evaluations
                .iter()
                .min_by(|a, b| {
                    slo_excess(space, a)
                        .partial_cmp(&slo_excess(space, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .cloned();
            Err(PlanError::Infeasible {
                evaluated: evaluations.len() as u64,
                closest,
            })
        }
    }
}

/// Largest SLO violation of an evaluation (0 when feasible).
fn slo_excess(space: &DesignSpace, e: &Evaluation) -> f64 {
    space
        .slos
        .iter()
        .map(|s| (e.call_blocking[s.class] - s.max_blocking).max(0.0))
        .fold(0.0, f64::max)
}

/// Canonical-order enumeration with optional scanline pruning.
fn exhaustive(
    space: &DesignSpace,
    cfg: &PlanConfig,
    grid: &SweepGrid,
    prune: bool,
    batch: bool,
) -> Result<(Vec<Evaluation>, u64), PlanError> {
    let total = space.num_candidates();
    if batch {
        // Fleet path: build every distinct G_{-r} up front over the
        // worker pool; the scan below then only recombines.
        let pairs: Result<Vec<_>, _> = (0..total)
            .map(|i| {
                space
                    .model_for(&space.candidate(i))
                    .map(|m| (m, space.sweep_class()))
            })
            .collect();
        grid.warm(&pairs.map_err(SolveError::Model)?);
    }
    // Scanline length: the innermost axis's steps (1 when no axes, so
    // every candidate is its own scanline and pruning is a no-op).
    let scan = space.axes.last().map_or(1, |a| a.steps as u64);
    let mut evaluations = Vec::new();
    let mut pruned = 0u64;
    let mut i = 0u64;
    while i < total {
        let ev = evaluate(space, grid, space.candidate(i), cfg.objective)?;
        let infeasible = !ev.feasible;
        evaluations.push(ev);
        if prune && infeasible && !space.slos.is_empty() {
            // Rest of this ascending-ρ scanline can only block harder.
            let into_scan = i % scan;
            let skip = scan - 1 - into_scan;
            pruned += skip;
            i += skip + 1;
        } else {
            i += 1;
        }
    }
    Ok((evaluations, pruned))
}

/// Deterministic start points for one geometry: box center, lo corner,
/// hi corner (deduped when the box is degenerate), then any explicit
/// extra starts.
fn starts_for(space: &DesignSpace, extra: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let center: Vec<f64> = space.axes.iter().map(|a| 0.5 * (a.lo + a.hi)).collect();
    let lo: Vec<f64> = space.axes.iter().map(|a| a.lo).collect();
    let hi: Vec<f64> = space.axes.iter().map(|a| a.hi).collect();
    let mut starts = vec![center];
    for s in [lo, hi].into_iter().chain(extra.iter().cloned()) {
        if !starts.contains(&s) {
            starts.push(s);
        }
    }
    starts
}

/// Projected gradient ascent over each geometry's `ρ` box.
fn gradient_ascent(
    space: &DesignSpace,
    cfg: &PlanConfig,
    grid: &SweepGrid,
    max_iters: usize,
    step0: f64,
    extra_starts: &[Vec<f64>],
) -> Result<Vec<Evaluation>, PlanError> {
    let mut evaluations = Vec::new();
    let widths: Vec<f64> = space.axes.iter().map(|a| a.hi - a.lo).collect();
    for geometry in space.geometries() {
        for start in starts_for(space, extra_starts) {
            let mk = |rho: &[f64]| Candidate {
                index: OFF_GRID,
                geometry,
                rho: rho.to_vec(),
            };
            let mut current = evaluate(space, grid, mk(&start), cfg.objective)?;
            evaluations.push(current.clone());
            if space.axes.is_empty() {
                continue; // geometry-only: the start is the whole box
            }
            if !current.feasible {
                // Ascent increases load and can only block harder; the
                // lo-corner start covers feasibility recovery.
                continue;
            }
            for _ in 0..max_iters {
                // Exact ∂W/∂ρ at the current point needs a solver whose
                // *base* is the current model (a grid entry may have been
                // built from a scanline sibling, so build directly).
                let model = space
                    .model_for(&current.candidate)
                    .map_err(SolveError::Model)?;
                let solver = SweepSolver::new(&model, cfg.algorithm)?;
                let grad: Vec<f64> = space
                    .axes
                    .iter()
                    .map(|a| solver.gradients(a.class).revenue_by_rho)
                    .collect();
                // Project: zero the components that push out of the box.
                let x = &current.candidate.rho;
                let dir: Vec<f64> = grad
                    .iter()
                    .zip(space.axes.iter().zip(x))
                    .map(|(&g, (a, &xi))| {
                        if (xi >= a.hi && g > 0.0) || (xi <= a.lo && g < 0.0) {
                            0.0
                        } else {
                            g
                        }
                    })
                    .collect();
                let norm = dir.iter().map(|d| d * d).sum::<f64>().sqrt();
                if norm == 0.0 {
                    break; // stationary (or pinned to the boundary)
                }
                // Fresh backtracking schedule every iteration: t scales
                // each axis's step to step0·width at t = 1.
                let mut t = 1.0f64;
                let mut accepted = false;
                while t >= 1e-4 {
                    let probe: Vec<f64> = x
                        .iter()
                        .zip(dir.iter().zip(space.axes.iter().zip(&widths)))
                        .map(|(&xi, (&d, (a, &w)))| a.clamp(xi + t * step0 * w * d / norm))
                        .collect();
                    if probe == *x {
                        t *= 0.5; // clipped to the same point
                        continue;
                    }
                    let ev = evaluate(space, grid, mk(&probe), cfg.objective)?;
                    evaluations.push(ev.clone());
                    if ev.feasible && ev.objective > current.objective {
                        current = ev;
                        accepted = true;
                        break;
                    }
                    t *= 0.5;
                }
                if !accepted {
                    break; // converged: no feasible improving step
                }
            }
        }
    }
    Ok(evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{RhoAxis, Slo};
    use xbar_core::{Dims, Model};
    use xbar_traffic::{TrafficClass, Workload};

    fn base() -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.02))
            .with(TrafficClass::bpp(0.008, 0.004, 1.0).with_weight(2.0));
        Model::new(Dims::square(8), w).unwrap()
    }

    fn space() -> DesignSpace {
        DesignSpace::new(base())
            .with_geometry(Dims::square(6))
            .with_geometry(Dims::square(8))
            .with_axis(RhoAxis {
                class: 0,
                lo: 0.002,
                hi: 0.08,
                steps: 7,
            })
            .with_slo(Slo {
                class: 1,
                max_blocking: 0.40,
            })
    }

    #[test]
    fn exhaustive_pruned_and_unpruned_agree_on_the_optimum() {
        let space = space();
        let run = |prune, batch| {
            plan(
                &space,
                &PlanConfig {
                    strategy: Strategy::Exhaustive { prune, batch },
                    ..PlanConfig::default()
                },
            )
            .unwrap()
        };
        let full = run(false, false);
        let pruned = run(true, false);
        let batched = run(true, true);
        assert_eq!(full.optimum.candidate.index, pruned.optimum.candidate.index);
        assert_eq!(
            full.optimum.objective.to_bits(),
            pruned.optimum.objective.to_bits()
        );
        // The fleet-warmed path is bit-identical to the lazy path.
        assert_eq!(
            pruned.optimum.objective.to_bits(),
            batched.optimum.objective.to_bits()
        );
        assert_eq!(pruned.evaluations.len(), batched.evaluations.len());
        assert!(
            pruned.pruned > 0,
            "this space has an infeasible tail to prune"
        );
        assert_eq!(
            full.evaluations.len() as u64,
            pruned.evaluations.len() as u64 + pruned.pruned
        );
    }

    #[test]
    fn counters_tie_out() {
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        let _g = xbar_obs::scope(&reg);
        let space = space();
        let report = plan(&space, &PlanConfig::default()).unwrap();
        let snap = reg.snapshot();
        let candidates = snap.counter("plan.candidates").unwrap();
        let evaluated = snap.counter("plan.evaluated").unwrap();
        let pruned = snap.counter("plan.pruned").unwrap_or(0);
        let feasible = snap.counter("plan.feasible").unwrap();
        let infeasible = snap.counter("plan.infeasible").unwrap_or(0);
        assert_eq!(candidates, evaluated + pruned);
        assert_eq!(evaluated, feasible + infeasible);
        assert_eq!(evaluated, report.evaluations.len() as u64);
        assert_eq!(pruned, report.pruned);
        assert_eq!(candidates, space.num_candidates());
    }

    #[test]
    fn infeasible_space_is_a_typed_error_not_a_panic() {
        let space = DesignSpace::new(base()).with_slo(Slo {
            class: 0,
            max_blocking: 0.0,
        });
        match plan(&space, &PlanConfig::default()) {
            Err(PlanError::Infeasible { evaluated, closest }) => {
                assert_eq!(evaluated, 1);
                assert!(closest.is_some());
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn zero_weight_class_is_planable() {
        // A zero-weight class contributes nothing to W but its SLO still
        // constrains; the optimum must load the weighted class instead.
        let w = Workload::new()
            .with(TrafficClass::poisson(0.02).with_weight(0.0))
            .with(TrafficClass::poisson(0.02));
        let space = DesignSpace::new(Model::new(Dims::square(8), w).unwrap())
            .with_axis(RhoAxis {
                class: 1,
                lo: 0.005,
                hi: 0.03,
                steps: 6,
            })
            .with_slo(Slo {
                class: 0,
                max_blocking: 0.9,
            });
        let report = plan(&space, &PlanConfig::default()).unwrap();
        assert!(report.optimum.feasible);
        assert!(report.optimum.objective > 0.0);
        // With blocking nowhere near the loose SLO, more load is more
        // revenue: the optimum sits at the top of the axis.
        assert!((report.optimum.candidate.rho[0] - 0.03).abs() < 1e-12);
    }

    #[test]
    fn single_cell_1x1_geometry_degenerates_gracefully() {
        let w = Workload::new().with(TrafficClass::poisson(0.3));
        let space = DesignSpace::new(Model::new(Dims::new(1, 1), w).unwrap());
        let report = plan(&space, &PlanConfig::default()).unwrap();
        assert_eq!(report.evaluations.len(), 1);
        // One pair, Erlang-like: revenue = E ∈ (0, 1).
        assert!(report.optimum.objective > 0.0 && report.optimum.objective < 1.0);
    }

    #[test]
    fn gradient_ascent_climbs_to_the_box_face_the_grid_picks() {
        let space = space();
        let exh = plan(&space, &PlanConfig::default()).unwrap();
        let grad = plan(
            &space,
            &PlanConfig {
                strategy: Strategy::GradientAscent {
                    max_iters: 60,
                    step0: 0.25,
                    starts: Vec::new(),
                },
                ..PlanConfig::default()
            },
        )
        .unwrap();
        // The continuous optimum must be at least as good as the best
        // grid point of the same box (upper envelope), and feasible.
        assert!(grad.optimum.feasible);
        assert!(grad.optimum.objective >= exh.optimum.objective - 1e-9);
        // Structural claim: nothing evaluated beats the reported optimum.
        for e in grad.evaluations.iter().filter(|e| e.feasible) {
            assert!(e.objective <= grad.optimum.objective);
        }
    }
}

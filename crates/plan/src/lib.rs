#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Capacity planning and design-space exploration for the asynchronous
//! multi-rate crossbar — the consumer the paper's §4 shadow prices were
//! built for.
//!
//! Given a [`DesignSpace`] — candidate geometries, per-class
//! offered-load axes and per-class blocking SLOs — [`plan`] finds the
//! design maximising weighted revenue `W = Σ_r w_r·E_r` subject to
//! every SLO:
//!
//! * [`Strategy::Exhaustive`] enumerates the grid in canonical order,
//!   shares one leave-one-out precompute per scanline through
//!   [`xbar_core::SweepGrid`] (optionally pre-warmed over the fleet
//!   worker pool), and prunes ascending-`ρ` scanline tails after the
//!   first SLO violation (blocking is monotone in offered load);
//! * [`Strategy::GradientAscent`] runs projected gradient ascent on the
//!   continuous `ρ` box using the exact `∂W/∂ρ_s` sweep gradients as
//!   the ascent direction, with deterministic multi-starts and
//!   backtracking line search.
//!
//! The optimum is the argmax over *everything the search evaluated*, so
//! the optimizer's headline claims (SLO-feasible, unbeaten by any
//! evaluated feasible candidate, canonical tie-break, gradient-restart
//! fixed point) are structural; the crate's proptest battery plus
//! differential tier 7 (brute-force argmax agreement) and a Gillespie
//! replay cross-check keep them honest.
//!
//! An infeasible SLO set is a *typed* outcome ([`PlanError::Infeasible`]
//! with the least-violating candidate as a diagnostic), distinct from
//! solver failure — the CLI maps it to its own exit code.
//!
//! ```
//! use xbar_core::{Dims, Model};
//! use xbar_plan::{plan, DesignSpace, PlanConfig, RhoAxis, Slo};
//! use xbar_traffic::{TrafficClass, Workload};
//!
//! let base = Model::new(
//!     Dims::square(8),
//!     Workload::new()
//!         .with(TrafficClass::poisson(0.02))
//!         .with(TrafficClass::bpp(0.008, 0.004, 1.0).with_weight(2.0)),
//! )
//! .unwrap();
//! let space = DesignSpace::new(base)
//!     .with_geometry(Dims::square(6))
//!     .with_geometry(Dims::square(8))
//!     .with_axis(RhoAxis { class: 0, lo: 0.002, hi: 0.08, steps: 7 })
//!     .with_slo(Slo { class: 1, max_blocking: 0.40 });
//! let report = plan(&space, &PlanConfig::default()).unwrap();
//! assert!(report.optimum.feasible);
//! ```

pub mod frontier;
pub mod objective;
pub mod report;
pub mod search;
pub mod space;

pub use frontier::{contour, frontier, ContourRow, FrontierRow};
pub use objective::{evaluate, Evaluation, Objective};
pub use report::{render_report, Analyzer, AnalyzerContext, BINDING_TOL};
pub use search::{plan, PlanConfig, PlanError, PlanReport, Strategy};
pub use space::{Candidate, DesignSpace, RhoAxis, Slo, SpaceError, OFF_GRID};

//! Multi-analyzer text report for a finished plan.
//!
//! Modeled on busperf-style analyzer pipelines: each [`Analyzer`] owns
//! one named section, renders independently from the same
//! [`PlanReport`], and the report is the concatenation — so adding an
//! analyzer never perturbs existing sections (the CLI's `--report`
//! output stays diffable).
//!
//! Sections:
//!
//! * `frontier` — the Pareto rows (revenue vs worst SLO'd blocking);
//! * `binding-slos` — per SLO, the optimum's margin and whether the
//!   constraint is binding (margin within [`BINDING_TOL`]);
//! * `marginal-prices` — §4 shadow prices at the optimum: `∂W/∂ρ_r` and
//!   the blocking shadow cost per class;
//! * `sensitivity-ranking` — classes ranked by `|∂W/∂ρ_r|`, the "where
//!   does the next unit of load buy the most revenue" answer.

use std::fmt::Write as _;

use xbar_core::{SolveError, SweepSolver};

use crate::frontier::frontier;
use crate::search::{PlanConfig, PlanReport};
use crate::space::DesignSpace;

/// A constraint whose margin is within this fraction of its bound is
/// reported as binding.
pub const BINDING_TOL: f64 = 1e-6;

/// Everything an analyzer may read.
pub struct AnalyzerContext<'a> {
    /// The searched space.
    pub space: &'a DesignSpace,
    /// The finished search.
    pub report: &'a PlanReport,
    /// Exact §4 gradients `∂W/∂ρ_r` at the optimum, one per class.
    pub revenue_by_rho: Vec<f64>,
    /// Shadow cost of blocking per class at the optimum.
    pub shadow_cost: Vec<f64>,
}

/// One named report section.
pub trait Analyzer {
    /// Section name (the `== name ==` header).
    fn name(&self) -> &'static str;
    /// Render the section body (no trailing blank line).
    fn render(&self, ctx: &AnalyzerContext<'_>) -> String;
}

struct FrontierAnalyzer;

impl Analyzer for FrontierAnalyzer {
    fn name(&self) -> &'static str {
        "frontier"
    }

    fn render(&self, ctx: &AnalyzerContext<'_>) -> String {
        let rows = frontier(ctx.space, ctx.report);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>9} {:>14} {:>14}  rho",
            "geo", "index", "revenue", "worst_block"
        );
        for r in &rows {
            let rho = r
                .rho
                .iter()
                .map(|x| format!("{x:.6}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "{:>6} {:>9} {:>14.9} {:>14.9}  {}{}",
                format!("{}x{}", r.n1, r.n2),
                index_label(r.index),
                r.objective,
                r.worst_blocking,
                rho,
                if r.optimal { "  <- optimum" } else { "" }
            );
        }
        let _ = write!(
            out,
            "{} non-dominated of {} evaluated ({} pruned)",
            rows.len(),
            ctx.report.evaluations.len(),
            ctx.report.pruned
        );
        out
    }
}

struct BindingSlos;

impl Analyzer for BindingSlos {
    fn name(&self) -> &'static str {
        "binding-slos"
    }

    fn render(&self, ctx: &AnalyzerContext<'_>) -> String {
        if ctx.space.slos.is_empty() {
            return "(no SLOs)".to_string();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>14} {:>14}  verdict",
            "class", "limit", "blocking", "margin"
        );
        for (i, s) in ctx.space.slos.iter().enumerate() {
            let b = ctx.report.optimum.call_blocking[s.class];
            let margin = s.max_blocking - b;
            let binding = margin <= BINDING_TOL * s.max_blocking.max(f64::MIN_POSITIVE);
            let _ = writeln!(
                out,
                "{:>6} {:>12.6} {:>14.9} {:>14.3e}  {}",
                s.class,
                s.max_blocking,
                b,
                margin,
                if binding { "BINDING" } else { "slack" }
            );
            if i + 1 == ctx.space.slos.len() {
                out.pop();
            }
        }
        out
    }
}

struct MarginalPrices;

impl Analyzer for MarginalPrices {
    fn name(&self) -> &'static str {
        "marginal-prices"
    }

    fn render(&self, ctx: &AnalyzerContext<'_>) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>14}",
            "class", "dW/drho", "shadow_cost"
        );
        let n = ctx.revenue_by_rho.len();
        for r in 0..n {
            let _ = writeln!(
                out,
                "{:>6} {:>14.9} {:>14.9}",
                r, ctx.revenue_by_rho[r], ctx.shadow_cost[r]
            );
        }
        out.pop();
        out
    }
}

struct SensitivityRanking;

impl Analyzer for SensitivityRanking {
    fn name(&self) -> &'static str {
        "sensitivity-ranking"
    }

    fn render(&self, ctx: &AnalyzerContext<'_>) -> String {
        let mut order: Vec<usize> = (0..ctx.revenue_by_rho.len()).collect();
        order.sort_by(|&a, &b| {
            ctx.revenue_by_rho[b]
                .abs()
                .partial_cmp(&ctx.revenue_by_rho[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut out = String::new();
        for (rank, &r) in order.iter().enumerate() {
            let _ = writeln!(
                out,
                "#{} class {} (|dW/drho| = {:.9})",
                rank + 1,
                r,
                ctx.revenue_by_rho[r].abs()
            );
        }
        out.pop();
        out
    }
}

fn index_label(index: u64) -> String {
    if index == crate::space::OFF_GRID {
        "-".to_string()
    } else {
        index.to_string()
    }
}

/// Render the full multi-analyzer report for a finished plan. The
/// marginal prices are recomputed exactly at the optimum (one extra
/// sweep precompute).
pub fn render_report(
    space: &DesignSpace,
    cfg: &PlanConfig,
    report: &PlanReport,
) -> Result<String, SolveError> {
    let model = space
        .model_for(&report.optimum.candidate)
        .map_err(SolveError::Model)?;
    let solver = SweepSolver::new(&model, cfg.algorithm)?;
    let base = solver.solve_base()?;
    let n = model.num_classes();
    let ctx = AnalyzerContext {
        space,
        report,
        revenue_by_rho: (0..n).map(|r| solver.gradients(r).revenue_by_rho).collect(),
        shadow_cost: (0..n).map(|r| base.shadow_cost(r)).collect(),
    };
    let analyzers: [&dyn Analyzer; 4] = [
        &FrontierAnalyzer,
        &BindingSlos,
        &MarginalPrices,
        &SensitivityRanking,
    ];
    let mut out = String::new();
    let opt = &report.optimum;
    let _ = writeln!(
        out,
        "xbar plan: optimum {}x{} W = {:.9} ({} evaluated, {} pruned, {} grid entries)",
        opt.candidate.geometry.n1,
        opt.candidate.geometry.n2,
        opt.objective,
        report.evaluations.len(),
        report.pruned,
        report.grid_entries,
    );
    for a in analyzers {
        let _ = writeln!(out, "\n== {} ==", a.name());
        let _ = writeln!(out, "{}", a.render(&ctx));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::plan;
    use crate::space::{RhoAxis, Slo};
    use xbar_core::{Dims, Model};
    use xbar_traffic::{TrafficClass, Workload};

    #[test]
    fn report_has_every_section_and_marks_the_optimum() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.02))
            .with(TrafficClass::bpp(0.008, 0.004, 1.0).with_weight(2.0));
        let space = DesignSpace::new(Model::new(Dims::square(8), w).unwrap())
            .with_axis(RhoAxis {
                class: 0,
                lo: 0.002,
                hi: 0.08,
                steps: 7,
            })
            .with_slo(Slo {
                class: 1,
                max_blocking: 0.40,
            });
        let cfg = PlanConfig::default();
        let report = plan(&space, &cfg).unwrap();
        let text = render_report(&space, &cfg, &report).unwrap();
        for section in [
            "== frontier ==",
            "== binding-slos ==",
            "== marginal-prices ==",
            "== sensitivity-ranking ==",
        ] {
            assert!(text.contains(section), "missing {section}:\n{text}");
        }
        assert!(text.contains("<- optimum"));
        assert!(text.contains("#1 class"));
    }
}

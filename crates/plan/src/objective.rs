//! Candidate evaluation: one design in, one scored [`Evaluation`] out.
//!
//! Every evaluation routes through a shared [`SweepGrid`] so candidates
//! that differ only in the swept class's own parameters (a whole
//! innermost scanline of the exhaustive grid, or consecutive
//! line-search probes of the gradient strategy that move one knob)
//! recombine against a single leave-one-out precompute in `O(C²/a)`.

use xbar_core::{SolveError, SweepGrid, SweepSolution};

use crate::space::{Candidate, DesignSpace};

/// What the planner maximises. Only weighted revenue `W` today; an enum
/// so the CLI's `--objective` flag has a typed home and future
/// objectives (carried load, acceptance) slot in without re-plumbing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Objective {
    /// The paper's §4 weighted revenue `W = Σ_r w_r·E_r`.
    #[default]
    Revenue,
}

impl Objective {
    /// Extract the objective value from a solved candidate.
    pub fn value(self, sol: &SweepSolution) -> f64 {
        match self {
            Objective::Revenue => sol.revenue(),
        }
    }
}

/// A scored candidate: the objective, every class's call blocking, and
/// the SLO verdict.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The design that was evaluated.
    pub candidate: Candidate,
    /// Objective value (revenue `W`).
    pub objective: f64,
    /// Per-class call blocking `1 − call_acceptance` (what the SLOs
    /// bound, and what the Gillespie replay estimates).
    pub call_blocking: Vec<f64>,
    /// Per-class expected concurrency `E_r`.
    pub concurrency: Vec<f64>,
    /// Whether every SLO holds (inclusive bounds).
    pub feasible: bool,
}

impl Evaluation {
    /// The worst (largest) call blocking over SLO'd classes, or over all
    /// classes when the space has no SLOs — the frontier's second
    /// coordinate.
    pub fn worst_blocking(&self, space: &DesignSpace) -> f64 {
        let over_slos = space
            .slos
            .iter()
            .map(|s| self.call_blocking[s.class])
            .fold(f64::NAN, f64::max);
        if over_slos.is_nan() {
            self.call_blocking.iter().copied().fold(0.0, f64::max)
        } else {
            over_slos
        }
    }
}

/// Evaluate one candidate through the shared grid. Counts
/// `plan.evaluated` plus exactly one of `plan.feasible` /
/// `plan.infeasible`.
pub fn evaluate(
    space: &DesignSpace,
    grid: &SweepGrid,
    candidate: Candidate,
    objective: Objective,
) -> Result<Evaluation, SolveError> {
    let model = space.model_for(&candidate).map_err(SolveError::Model)?;
    let r = space.sweep_class();
    let class = model.workload().classes()[r].clone();
    let sol = grid.solve_cell(&model, r, class)?;
    let classes = model.num_classes();
    let call_blocking: Vec<f64> = (0..classes).map(|k| 1.0 - sol.call_acceptance(k)).collect();
    let concurrency: Vec<f64> = (0..classes).map(|k| sol.concurrency(k)).collect();
    let feasible = space
        .slos
        .iter()
        .all(|s| call_blocking[s.class] <= s.max_blocking);
    xbar_obs::inc("plan.evaluated");
    xbar_obs::inc(if feasible {
        "plan.feasible"
    } else {
        "plan.infeasible"
    });
    Ok(Evaluation {
        candidate,
        objective: objective.value(&sol),
        call_blocking,
        concurrency,
        feasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{RhoAxis, Slo};
    use xbar_core::{solve, Algorithm, Dims, Model};
    use xbar_traffic::{TrafficClass, Workload};

    fn space() -> DesignSpace {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.02))
            .with(TrafficClass::bpp(0.008, 0.004, 1.0).with_weight(2.0));
        DesignSpace::new(Model::new(Dims::square(8), w).unwrap())
            .with_axis(RhoAxis {
                class: 0,
                lo: 0.02,
                hi: 0.02,
                steps: 1,
            })
            .with_slo(Slo {
                class: 1,
                max_blocking: 0.5,
            })
    }

    #[test]
    fn evaluation_matches_a_direct_solve() {
        let space = space();
        let grid = SweepGrid::new(Algorithm::Auto);
        let c = space.candidate(0);
        let ev = evaluate(&space, &grid, c.clone(), Objective::Revenue).unwrap();
        let sol = solve(&space.model_for(&c).unwrap(), Algorithm::Auto).unwrap();
        assert!((ev.objective - sol.revenue()).abs() < 1e-12);
        for k in 0..2 {
            assert!((ev.call_blocking[k] - (1.0 - sol.call_acceptance(k))).abs() < 1e-12);
        }
        assert!(ev.feasible, "blocking={:?}", ev.call_blocking);
    }

    #[test]
    fn slo_boundary_is_inclusive() {
        // Pin the SLO exactly at the achieved blocking: still feasible.
        let mut s = space();
        let grid = SweepGrid::new(Algorithm::Auto);
        let ev = evaluate(&s, &grid, s.candidate(0), Objective::Revenue).unwrap();
        s.slos[0].max_blocking = ev.call_blocking[1];
        let ev2 = evaluate(&s, &grid, s.candidate(0), Objective::Revenue).unwrap();
        assert!(ev2.feasible, "exact boundary must count as feasible");
        // An SLO infinitesimally below flips it.
        s.slos[0].max_blocking = ev.call_blocking[1] * (1.0 - 1e-9);
        let ev3 = evaluate(&s, &grid, s.candidate(0), Objective::Revenue).unwrap();
        assert!(!ev3.feasible);
    }
}

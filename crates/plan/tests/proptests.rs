//! The optimizer-claims proptest battery.
//!
//! Random small design spaces, and for each the planner's headline
//! guarantees are checked *as stated*, not as hoped:
//!
//! * the returned optimum is SLO-feasible, and an `Infeasible` error
//!   really means no evaluated candidate was feasible;
//! * no evaluated feasible candidate beats the optimum, and exact ties
//!   resolve to the earliest (lowest-index) candidate;
//! * the exhaustive strategy's pruned / unpruned / fleet-warmed paths
//!   are bit-identical on the optimum;
//! * the exact `∂W/∂ρ_s` ascent direction agrees with the
//!   `sensitivity_fd` finite-difference oracle;
//! * re-running the gradient strategy seeded from its reported optimum
//!   is a fixed point (within 1e-9);
//! * tightening an SLO onto the optimum's exact blocking keeps the
//!   optimum feasible (inclusive boundary).

use proptest::prelude::*;

use xbar_core::sensitivity::sensitivity_fd;
use xbar_core::{Algorithm, Dims, Model, SweepSolver};
use xbar_plan::{plan, DesignSpace, PlanConfig, PlanError, RhoAxis, Slo, Strategy as PlanStrategy};
use xbar_traffic::{TrafficClass, Workload};

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-12);
    (a - b).abs() / scale < tol
}

/// A random 2-class base model small enough that every candidate solves
/// in microseconds.
fn arb_base() -> impl Strategy<Value = Model> {
    (
        4u32..9,
        0.001f64..0.05,
        0.001f64..0.04,
        0.0f64..0.5,
        0.1f64..3.0,
    )
        .prop_filter_map("valid model", |(n, rho0, alpha1, frac1, w1)| {
            let w = Workload::new()
                .with(TrafficClass::poisson(rho0))
                .with(TrafficClass::bpp(alpha1, frac1 * 1.0, 1.0).with_weight(w1));
            Model::new(Dims::square(n), w).ok()
        })
}

/// A random design space over a random base: 1–2 geometries, one `ρ`
/// axis, one SLO whose bound lands somewhere inside the blocking range
/// the axis spans (so feasible, partially-feasible and infeasible
/// spaces all occur).
fn arb_space() -> impl Strategy<Value = DesignSpace> {
    (
        arb_base(),
        prop::bool::ANY,
        0usize..2,
        2usize..6,
        0.0f64..1.0,
        0.05f64..0.9,
    )
        .prop_map(|(base, two_geos, axis_class, steps, span, slo_frac)| {
            let n = base.dims().n1;
            let mut space = DesignSpace::new(base).with_geometry(Dims::square(n));
            if two_geos && n > 4 {
                space = space.with_geometry(Dims::square(n - 1));
            }
            let lo = 0.002 + 0.02 * span;
            space
                .with_axis(RhoAxis {
                    class: axis_class,
                    lo,
                    hi: lo * 8.0,
                    steps,
                })
                .with_slo(Slo {
                    class: 1 - axis_class,
                    max_blocking: slo_frac,
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Claims 1–3: feasibility, unbeaten optimum, canonical ties, and
    /// path-independence of the exhaustive strategy.
    #[test]
    fn exhaustive_optimum_is_feasible_unbeaten_and_path_independent(space in arb_space()) {
        let run = |prune, batch| plan(&space, &PlanConfig {
            strategy: PlanStrategy::Exhaustive { prune, batch },
            ..PlanConfig::default()
        });
        match run(false, false) {
            Ok(full) => {
                prop_assert!(full.optimum.feasible);
                // Nothing evaluated beats it; equal values have higher index.
                for e in full.evaluations.iter().filter(|e| e.feasible) {
                    prop_assert!(e.objective <= full.optimum.objective);
                    if e.objective == full.optimum.objective {
                        prop_assert!(e.candidate.index >= full.optimum.candidate.index);
                    }
                }
                // Pruned and fleet-warmed paths return the same optimum bit-for-bit.
                let pruned = run(true, false).unwrap();
                let batched = run(true, true).unwrap();
                prop_assert_eq!(full.optimum.candidate.index, pruned.optimum.candidate.index);
                prop_assert_eq!(
                    full.optimum.objective.to_bits(),
                    pruned.optimum.objective.to_bits()
                );
                prop_assert_eq!(
                    pruned.optimum.objective.to_bits(),
                    batched.optimum.objective.to_bits()
                );
                // Pruning only ever removes infeasible candidates.
                prop_assert_eq!(
                    full.evaluations.len() as u64,
                    pruned.evaluations.len() as u64 + pruned.pruned
                );
            }
            Err(PlanError::Infeasible { evaluated, closest }) => {
                prop_assert!(evaluated > 0);
                let c = closest.expect("diagnostic candidate");
                prop_assert!(!c.feasible);
            }
            Err(e) => prop_assert!(false, "unexpected plan error: {e}"),
        }
    }

    /// Claim 4: the ascent direction is the true gradient — exact sweep
    /// `∂W/∂ρ_s` against the finite-difference oracle.
    #[test]
    fn ascent_direction_agrees_with_fd_oracle(base in arb_base()) {
        let solver = SweepSolver::new(&base, Algorithm::Auto).unwrap();
        let fd = sensitivity_fd(&base, Algorithm::Auto).unwrap();
        for s in 0..base.num_classes() {
            let exact = solver.gradients(s).revenue_by_rho;
            prop_assert!(
                close(exact, fd.revenue_by_rho[s], 1e-4),
                "dW/drho_{s}: exact {exact} vs fd {}",
                fd.revenue_by_rho[s]
            );
        }
    }

    /// Claim 5: restarting gradient ascent from the reported optimum is
    /// a fixed point — the restarted search (a superset of the original
    /// plus probes from the optimum itself) cannot move the optimum.
    #[test]
    fn gradient_restart_from_optimum_is_a_fixed_point(space in arb_space()) {
        let ascent = |starts: Vec<Vec<f64>>| plan(&space, &PlanConfig {
            strategy: PlanStrategy::GradientAscent { max_iters: 30, step0: 0.25, starts },
            ..PlanConfig::default()
        });
        let Ok(first) = ascent(Vec::new()) else { return Ok(()) };
        let second = ascent(vec![first.optimum.candidate.rho.clone()]).unwrap();
        // Superset of evaluations ⇒ no worse; fixed point ⇒ no better.
        prop_assert!(second.optimum.objective >= first.optimum.objective);
        prop_assert!(
            close(second.optimum.objective, first.optimum.objective, 1e-9),
            "restart moved the optimum: {} -> {}",
            first.optimum.objective,
            second.optimum.objective
        );
        prop_assert!(second.optimum.feasible);
    }

    /// Boundary inclusivity: pinning an SLO to the optimum's achieved
    /// blocking keeps that design feasible and the objective unchanged.
    #[test]
    fn slo_exactly_on_the_blocking_boundary_stays_feasible(space in arb_space()) {
        let Ok(report) = plan(&space, &PlanConfig::default()) else { return Ok(()) };
        let mut tight = space.clone();
        // Tighten every SLO onto the optimum's exact achieved blocking.
        for s in &mut tight.slos {
            s.max_blocking = report.optimum.call_blocking[s.class];
        }
        let tightened = plan(&tight, &PlanConfig::default()).unwrap();
        prop_assert!(tightened.optimum.feasible);
        // The original optimum is still admissible, so the objective
        // cannot drop (and cannot rise: the space only shrank).
        prop_assert_eq!(
            tightened.optimum.objective.to_bits(),
            report.optimum.objective.to_bits()
        );
    }
}

//! Sim cross-check: the planned design, replayed through the Gillespie
//! jump chain, must *experience* the blocking it was planned against.
//!
//! The planner promises each SLO'd class an analytic call blocking; the
//! replay drives the chosen model through the admission engine at a
//! fixed seed and estimates per-class acceptance with batch means. The
//! 99% CI of each SLO'd class must cover the analytic acceptance the
//! plan was scored on — closing the loop between the §4 analysis the
//! search trusted and an independent stochastic realisation of the
//! same switch.

use xbar_core::{Dims, Model};
use xbar_plan::{plan, DesignSpace, PlanConfig, RhoAxis, Slo};
use xbar_sim::{run_until_ci, CiTarget, Confidence, RepConfig, ReplayConfig};
use xbar_traffic::{TrafficClass, Workload};

fn demo_space() -> DesignSpace {
    let w = Workload::new()
        .with(TrafficClass::poisson(0.02))
        .with(TrafficClass::bpp(0.008, 0.004, 1.0).with_weight(2.0));
    DesignSpace::new(Model::new(Dims::square(8), w).unwrap())
        .with_geometry(Dims::square(6))
        .with_geometry(Dims::square(8))
        .with_axis(RhoAxis {
            class: 0,
            lo: 0.002,
            hi: 0.08,
            steps: 7,
        })
        .with_slo(Slo {
            class: 1,
            max_blocking: 0.40,
        })
}

#[test]
fn replayed_design_covers_its_planned_blocking_at_99ci() {
    let space = demo_space();
    let report = plan(&space, &PlanConfig::default()).expect("plan");
    let model = space
        .model_for(&report.optimum.candidate)
        .expect("optimum model");

    // PR 10: independent 50k-event replications on the parallel harness,
    // grown adaptively until the merged acceptance CI is tight — replaces
    // the old single 400k-event replay and is deterministic for any
    // XBAR_THREADS (seeds derive from (master_seed, index) alone).
    let replayed = run_until_ci(
        &model,
        &ReplayConfig {
            events: 50_000,
            seed: 0, // overridden per replication by the harness
            batches: 20,
            engine: Default::default(),
        },
        &RepConfig {
            replications: 0, // ignored by the adaptive path
            master_seed: 7,
            confidence: Confidence::P99,
        },
        CiTarget::new(4e-3),
    )
    .expect("replay");

    for slo in &space.slos {
        let cr = &replayed.classes[slo.class];
        let planned_acceptance = 1.0 - report.optimum.call_blocking[slo.class];
        // The replay's own analytic anchor must be the number the plan
        // was scored on (same product form, same model).
        assert!(
            (cr.analytic_acceptance - planned_acceptance).abs() < 1e-9,
            "replay anchor {} != planned {}",
            cr.analytic_acceptance,
            planned_acceptance
        );
        // And the stochastic 99% CI must cover it.
        assert!(
            cr.acceptance.covers(planned_acceptance),
            "class {}: 99% CI {} ± {} misses planned acceptance {}",
            slo.class,
            cr.acceptance.mean,
            cr.acceptance.half_width,
            planned_acceptance
        );
        // Sanity: the realised design honours its SLO empirically, with
        // the CI half-width as statistical slack.
        let empirical_blocking = 1.0 - cr.acceptance.mean;
        assert!(
            empirical_blocking <= slo.max_blocking + cr.acceptance.half_width,
            "class {}: empirical blocking {} blows SLO {}",
            slo.class,
            empirical_blocking,
            slo.max_blocking
        );
    }
}

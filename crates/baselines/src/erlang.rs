//! Erlang-B (M/G/c/c) loss probability — the classical single-resource
//! anchor for circuit-switched blocking models.
//!
//! Computed with the standard numerically-stable recursion
//! `B(0, ρ) = 1`, `B(c, ρ) = ρ·B(c−1, ρ) / (c + ρ·B(c−1, ρ))`,
//! which never forms the huge factorial terms of the direct sum — the same
//! trick in miniature that the paper's Algorithm 1 plays on the crossbar's
//! two-dimensional normalisation constant.

/// Erlang-B blocking probability for `servers` trunks offered `rho` Erlangs.
pub fn erlang_b(servers: u32, rho: f64) -> f64 {
    assert!(rho >= 0.0, "offered load must be non-negative");
    let mut b = 1.0f64;
    for c in 1..=servers {
        b = rho * b / (c as f64 + rho * b);
    }
    b
}

/// Inverse problem: the offered load at which `servers` trunks reach the
/// target blocking `b_target` (bisection; monotone in `rho`).
pub fn erlang_b_load(servers: u32, b_target: f64) -> f64 {
    assert!((0.0..1.0).contains(&b_target));
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while erlang_b(servers, hi) < b_target {
        hi *= 2.0;
        assert!(hi < 1e12, "target blocking unreachable");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if erlang_b(servers, mid) < b_target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_sum(c: u32, rho: f64) -> f64 {
        // B = (ρ^c/c!) / Σ_{k=0..c} ρ^k/k!  — fine for small c.
        let mut term = 1.0;
        let mut sum = 1.0;
        for k in 1..=c {
            term *= rho / k as f64;
            sum += term;
        }
        term / sum
    }

    #[test]
    fn recursion_matches_direct_sum() {
        for &c in &[1u32, 2, 5, 10, 20] {
            for &rho in &[0.1, 1.0, 5.0, 15.0] {
                let a = erlang_b(c, rho);
                let b = direct_sum(c, rho);
                assert!((a - b).abs() < 1e-12, "c={c} rho={rho}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn textbook_values() {
        // Classic engineering table entries.
        assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
        assert!((erlang_b(2, 1.0) - 0.2).abs() < 1e-12);
        // 10 trunks at 5 Erlang ≈ 1.84% blocking.
        assert!((erlang_b(10, 5.0) - 0.0184).abs() < 2e-4);
    }

    #[test]
    fn monotone_in_load_and_servers() {
        assert!(erlang_b(5, 2.0) < erlang_b(5, 4.0));
        assert!(erlang_b(10, 4.0) < erlang_b(5, 4.0));
    }

    #[test]
    fn zero_load_never_blocks() {
        assert_eq!(erlang_b(4, 0.0), 0.0);
        assert_eq!(erlang_b(0, 2.0), 1.0); // no servers: always blocked
    }

    #[test]
    fn inverse_round_trips() {
        for &(c, b) in &[(1u32, 0.1), (8, 0.005), (32, 0.01)] {
            let rho = erlang_b_load(c, b);
            assert!((erlang_b(c, rho) - b).abs() < 1e-9, "c={c}");
        }
    }

    #[test]
    fn huge_server_counts_stay_stable() {
        // The naive factorial sum would overflow long before c = 1000.
        let b = erlang_b(1000, 950.0);
        assert!((0.0..1.0).contains(&b));
        assert!(b > erlang_b(1000, 900.0));
    }
}

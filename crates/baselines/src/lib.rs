#![warn(missing_docs)]

//! Baseline switch models the asynchronous crossbar is positioned against
//! in the paper's introduction, plus a classical teletraffic anchor.
//!
//! * [`erlang`] — Erlang-B loss formula for a `c`-server trunk group: the
//!   textbook sanity anchor (a `1 × 1` crossbar *is* `M/G/1/1`, and the
//!   model's single-resource limits must agree with it).
//! * [`slotted`] — the **synchronous (slotted) crossbar** the paper
//!   explicitly contrasts its asynchronous model with (§2): per slot, each
//!   input holds a request with probability `p` aimed at a uniform output;
//!   each output grants one. Both the classical closed form
//!   (Patel 1981, the paper's ref \[26\]) and a slotted simulator.
//! * [`omega`] — an **Omega (shuffle-exchange) multistage interconnection
//!   network** of `2 × 2` crossbars: the `O(N log N)` alternative whose
//!   internal blocking motivates free-space optical crossbars (§1).
//!   Circuit-switched, asynchronous, unique-path routing; simulation plus
//!   the per-stage load-thinning approximation.

pub mod erlang;
pub mod omega;
pub mod slotted;

pub use erlang::{erlang_b, erlang_b_load};
pub use omega::{omega_reduced_load, OmegaConfig, OmegaSim};
pub use slotted::{slotted_acceptance, SlottedCrossbarSim};

//! Omega (shuffle-exchange) multistage interconnection network of `2 × 2`
//! crossbars, operated circuit-switched and asynchronously.
//!
//! This is the `O(N log N)` architecture the paper's introduction positions
//! the optical crossbar against: cheaper in switching elements, but
//! *internally blocking* — two connections with distinct inputs and
//! distinct outputs can still collide on an internal link. The simulator
//! quantifies that penalty against the non-blocking crossbar at matched
//! load.
//!
//! Topology/routing: `N = 2^stages` ports; the path of a connection
//! `(i → j)` is the standard destination-tag route. Tracking the *output
//! link* of each stage as the contended resource: starting from
//! `cur = i`, at stage `s` the route takes
//! `cur = ((cur << 1) | bit_{stages−1−s}(j)) mod N`, claiming link
//! `(s, cur)`. Unique path per `(i, j)` pair; the network is non-blocking
//! for a connection iff all `stages` links on the path are idle.
//!
//! The classical slotted-load thinning approximation
//! `p_{s+1} = 1 − (1 − p_s/2)²` (Patel) is included for cross-reference.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::erlang::erlang_b;
use xbar_sim::{BatchMeans, Estimate, ServiceDist};

/// Compute the unique Omega-network path of `(input → output)` as the
/// sequence of `(stage, link)` resources.
pub fn omega_path(stages: u32, input: u32, output: u32) -> Vec<(u32, u32)> {
    let n = 1u32 << stages;
    debug_assert!(input < n && output < n);
    let mut cur = input;
    let mut path = Vec::with_capacity(stages as usize);
    for s in 0..stages {
        let bit = (output >> (stages - 1 - s)) & 1;
        cur = ((cur << 1) | bit) & (n - 1);
        path.push((s, cur));
    }
    path
}

/// Patel's per-stage load-thinning recursion for a slotted MIN of `2 × 2`
/// elements: input load `p0`, output load after `stages` stages.
pub fn patel_thinning(p0: f64, stages: u32) -> f64 {
    let mut p = p0;
    for _ in 0..stages {
        p = 1.0 - (1.0 - p / 2.0) * (1.0 - p / 2.0);
    }
    p
}

/// Configuration for the asynchronous circuit-switched Omega simulator.
#[derive(Clone, Copy, Debug)]
pub struct OmegaConfig {
    /// Number of stages; the network has `2^stages` ports.
    pub stages: u32,
    /// Poisson arrival rate per (input, output) pair.
    pub lambda: f64,
    /// Holding-time distribution (mean `1/μ`).
    pub service: ServiceDist,
}

/// Simulation output.
#[derive(Clone, Debug)]
pub struct OmegaReport {
    /// Call blocking probability with CI.
    pub blocking: Estimate,
    /// Offered calls in the measurement window.
    pub offered: u64,
    /// Blocking a *crossbar* would have shown for the same call sequence
    /// (i.e. only end-port conflicts) — the internal-blocking penalty is
    /// `blocking − crossbar_blocking`.
    pub crossbar_blocking: Estimate,
}

/// Asynchronous circuit-switched Omega-network simulator.
pub struct OmegaSim {
    cfg: OmegaConfig,
    rng: StdRng,
}

impl OmegaSim {
    /// Build from config and seed.
    pub fn new(cfg: OmegaConfig, seed: u64) -> Self {
        assert!(cfg.stages >= 1 && cfg.stages <= 16);
        assert!(cfg.lambda > 0.0);
        OmegaSim {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Run `warmup + duration` sim-time with `batches` batch means.
    pub fn run(&mut self, warmup: f64, duration: f64, batches: usize) -> OmegaReport {
        let stages = self.cfg.stages;
        let n = 1usize << stages;
        let total_rate = (n * n) as f64 * self.cfg.lambda;
        let mut busy_link = vec![vec![false; n]; stages as usize];
        let mut busy_in = vec![false; n];
        let mut busy_out = vec![false; n];

        // Simple time-ordered departure list via a binary heap on (time, id).
        let mut cal = std::collections::BinaryHeap::new();
        #[derive(PartialEq)]
        struct Dep(f64, u64);
        impl Eq for Dep {}
        impl PartialOrd for Dep {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Dep {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Departure times are finite; total_cmp keeps Ord total.
                other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
            }
        }
        // Connection id → (input, output, per-stage links held).
        type LiveConn = (usize, usize, Vec<(u32, u32)>);
        let mut live: std::collections::HashMap<u64, LiveConn> = std::collections::HashMap::new();
        let mut next_id = 0u64;
        let mut now = 0.0f64;
        let end = warmup + duration;
        let batch_len = duration / batches as f64;
        let mut b_off = vec![0u64; batches];
        let mut b_blk = vec![0u64; batches];
        let mut b_xblk = vec![0u64; batches];

        loop {
            let t_arr = now + xbar_sim::service::sample_exp(&mut self.rng, 1.0 / total_rate);
            let t_dep = cal.peek().map(|d: &Dep| d.0).unwrap_or(f64::INFINITY);
            let t_next = t_arr.min(t_dep);
            if t_next >= end {
                break;
            }
            now = t_next;
            if t_dep <= t_arr {
                let Dep(_, id) = cal.pop().unwrap();
                let (i, o, path) = live.remove(&id).unwrap();
                busy_in[i] = false;
                busy_out[o] = false;
                for (s, l) in path {
                    busy_link[s as usize][l as usize] = false;
                }
            } else {
                let input = self.rng.gen_range(0..n);
                let output = self.rng.gen_range(0..n);
                let path = omega_path(stages, input as u32, output as u32);
                let ends_free = !busy_in[input] && !busy_out[output];
                let links_free = path
                    .iter()
                    .all(|&(s, l)| !busy_link[s as usize][l as usize]);
                let accepted = ends_free && links_free;
                if now >= warmup {
                    let b = (((now - warmup) / batch_len) as usize).min(batches - 1);
                    b_off[b] += 1;
                    if !accepted {
                        b_blk[b] += 1;
                    }
                    if !ends_free {
                        b_xblk[b] += 1;
                    }
                }
                if accepted {
                    busy_in[input] = true;
                    busy_out[output] = true;
                    for &(s, l) in &path {
                        busy_link[s as usize][l as usize] = true;
                    }
                    let id = next_id;
                    next_id += 1;
                    let hold = self.cfg.service.sample(&mut self.rng);
                    live.insert(id, (input, output, path));
                    cal.push(Dep(now + hold, id));
                }
            }
        }

        let ratio = |blk: &[u64], off: &[u64]| {
            BatchMeans::from_batches(
                blk.iter()
                    .zip(off)
                    .filter(|(_, &o)| o > 0)
                    .map(|(&b, &o)| b as f64 / o as f64)
                    .collect(),
            )
            .estimate()
        };
        OmegaReport {
            blocking: ratio(&b_blk, &b_off),
            offered: b_off.iter().sum(),
            crossbar_blocking: ratio(&b_xblk, &b_off),
        }
    }

    /// A crude analytic reference: treat each of the `stages·N` internal
    /// links as an independent Erlang-B server offered the thinned load
    /// that traverses it (`N·λ/μ` per link on average). Useful only as an
    /// order-of-magnitude cross-check — link occupancies are correlated.
    pub fn independent_link_approximation(&self) -> f64 {
        let n = 1u64 << self.cfg.stages;
        let per_link_load = n as f64 * self.cfg.lambda * self.cfg.service.mean();
        let p_link = erlang_b(1, per_link_load);
        // Path of `stages` links plus the two end ports.
        let p_end = erlang_b(1, per_link_load);
        1.0 - (1.0 - p_link).powi(self.cfg.stages as i32) * (1.0 - p_end) * (1.0 - p_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_paths_are_unique_per_pair_and_reach_destination() {
        let stages = 3u32;
        let n = 1u32 << stages;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in 0..n {
                let path = omega_path(stages, i, j);
                assert_eq!(path.len(), stages as usize);
                // Final link index equals the destination (destination-tag
                // routing lands on output j).
                assert_eq!(path.last().unwrap().1, j);
                assert!(seen.insert((i, j, path)), "duplicate path");
            }
        }
    }

    #[test]
    fn distinct_ports_can_still_collide_internally() {
        // The defining property of a blocking MIN: find two (i,j) pairs
        // with all-distinct endpoints sharing an internal link.
        let stages = 3u32;
        let n = 1u32 << stages;
        let mut found = false;
        'outer: for i1 in 0..n {
            for j1 in 0..n {
                for i2 in 0..n {
                    for j2 in 0..n {
                        if i1 == i2 || j1 == j2 {
                            continue;
                        }
                        let p1 = omega_path(stages, i1, j1);
                        let p2 = omega_path(stages, i2, j2);
                        // Compare non-final links (final link == output).
                        if p1[..p1.len() - 1]
                            .iter()
                            .any(|l| p2[..p2.len() - 1].contains(l))
                        {
                            found = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(found, "Omega network should have internal conflicts");
    }

    #[test]
    fn patel_thinning_decreases_load() {
        let p1 = patel_thinning(1.0, 1);
        assert!((p1 - 0.75).abs() < 1e-12);
        assert!(patel_thinning(0.9, 4) < 0.9);
        assert_eq!(patel_thinning(0.0, 5), 0.0);
    }

    #[test]
    fn omega_blocks_more_than_crossbar_at_same_load() {
        let cfg = OmegaConfig {
            stages: 4, // 16 x 16
            lambda: 0.004,
            service: ServiceDist::Exponential { mean: 1.0 },
        };
        let rep = OmegaSim::new(cfg, 21).run(200.0, 20_000.0, 10);
        assert!(rep.offered > 10_000);
        assert!(
            rep.blocking.mean > rep.crossbar_blocking.mean,
            "omega {} !> crossbar {}",
            rep.blocking.mean,
            rep.crossbar_blocking.mean
        );
    }

    #[test]
    fn independent_link_approximation_is_same_ballpark() {
        let cfg = OmegaConfig {
            stages: 4,
            lambda: 0.004,
            service: ServiceDist::Exponential { mean: 1.0 },
        };
        let approx = OmegaSim::new(cfg, 5).independent_link_approximation();
        let rep = OmegaSim::new(cfg, 5).run(200.0, 20_000.0, 10);
        assert!(
            approx > 0.2 * rep.blocking.mean && approx < 5.0 * rep.blocking.mean,
            "approx {approx} vs sim {}",
            rep.blocking.mean
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = OmegaConfig {
            stages: 3,
            lambda: 0.01,
            service: ServiceDist::Exponential { mean: 1.0 },
        };
        let a = OmegaSim::new(cfg, 9).run(10.0, 2_000.0, 5);
        let b = OmegaSim::new(cfg, 9).run(10.0, 2_000.0, 5);
        assert_eq!(a.offered, b.offered);
    }
}

/// Analytic reduced-load (Erlang fixed-point) blocking for the
/// asynchronous circuit-switched Omega network — the paper's second
/// future-work item ("extending this analysis to asynchronous all-optical
/// multi-stage networks"), delivered at mean-field level.
///
/// Resources on a route: the input port, `stages` internal links, the
/// output port. By symmetry every internal link carries the same load, so
/// the fixed point has two unknowns — the port busy-probability `b_p` and
/// the link busy-probability `b_l`:
///
/// The final-stage link of a route *is* its output (destination-tag
/// routing lands there), so it is not an independent resource: a route
/// sees the input port, `S − 1` internal links, and the output port:
///
/// ```text
/// v_p = N·(λ/μ)·(1−b_p)·(1−b_l)^(S−1)        (offered to a port, thinned
/// v_l = N·(λ/μ)·(1−b_p)²·(1−b_l)^(S−2)        by every *other* resource)
/// b_p = v_p/(1+v_p),  b_l = v_l/(1+v_l)       (Erlang-B with one server)
/// B   = 1 − (1−b_p)²·(1−b_l)^(S−1)
/// ```
///
/// Damped iteration; always converges at sane loads. Accuracy is
/// mean-field grade and *pessimistic*: link occupancies along a route are
/// strongly positively correlated in a shuffle network (an input's
/// traffic funnels into just two stage-1 links), which independence
/// ignores — measured +45–65% relative at light load against
/// [`OmegaSim`], tightening as load grows. The `min_analysis` experiment
/// quantifies this.
pub fn omega_reduced_load(stages: u32, lambda: f64, mu: f64) -> f64 {
    let n = (1u64 << stages) as f64;
    let offered = n * lambda / mu;
    let s = stages as i32;
    let mut b_p = 0.0f64;
    let mut b_l = 0.0f64;
    for _ in 0..20_000 {
        let v_p = offered * (1.0 - b_p) * (1.0 - b_l).powi(s - 1);
        let v_l = offered * (1.0 - b_p) * (1.0 - b_p) * (1.0 - b_l).powi(s - 2);
        let nb_p = v_p / (1.0 + v_p);
        let nb_l = v_l / (1.0 + v_l);
        let (pb, lb) = (0.5 * (b_p + nb_p), 0.5 * (b_l + nb_l));
        if (pb - b_p).abs() + (lb - b_l).abs() < 1e-14 {
            b_p = pb;
            b_l = lb;
            break;
        }
        b_p = pb;
        b_l = lb;
    }
    1.0 - (1.0 - b_p) * (1.0 - b_p) * (1.0 - b_l).powi(s - 1)
}

#[cfg(test)]
mod reduced_load_tests {
    use super::*;

    #[test]
    fn zero_load_means_zero_blocking() {
        assert!(omega_reduced_load(4, 1e-12, 1.0) < 1e-9);
    }

    #[test]
    fn monotone_in_load_and_depth() {
        assert!(omega_reduced_load(4, 0.02, 1.0) > omega_reduced_load(4, 0.005, 1.0));
        // More stages, more internal resources to collide on (at the same
        // per-pair load on the respective network sizes the comparison is
        // confounded by N; fix the port count story by comparing directly
        // at equal offered-per-port).
        let shallow = omega_reduced_load(3, 0.4 / 8.0, 1.0);
        let deep = omega_reduced_load(3, 0.4 / 8.0, 1.0); // same-size sanity
        assert!((shallow - deep).abs() < 1e-15);
    }

    #[test]
    fn tracks_simulation_within_mean_field_accuracy() {
        for &(lambda, tol) in &[(0.004f64, 0.65f64), (0.012, 0.55)] {
            let cfg = OmegaConfig {
                stages: 4,
                lambda,
                service: ServiceDist::Exponential { mean: 1.0 },
            };
            let sim = OmegaSim::new(cfg, 13).run(300.0, 30_000.0, 10);
            let analytic = omega_reduced_load(4, lambda, 1.0);
            let rel = (analytic - sim.blocking.mean).abs() / sim.blocking.mean;
            assert!(
                rel < tol,
                "lambda={lambda}: analytic {analytic} vs sim {} (rel {rel})",
                sim.blocking.mean
            );
        }
    }

    #[test]
    fn better_than_the_crude_independent_link_formula() {
        let cfg = OmegaConfig {
            stages: 4,
            lambda: 0.008,
            service: ServiceDist::Exponential { mean: 1.0 },
        };
        let sim = OmegaSim::new(cfg, 29).run(300.0, 30_000.0, 10);
        let fixed_point = omega_reduced_load(4, 0.008, 1.0);
        let crude = OmegaSim::new(cfg, 29).independent_link_approximation();
        let err_fp = (fixed_point - sim.blocking.mean).abs();
        let err_crude = (crude - sim.blocking.mean).abs();
        assert!(
            err_fp < err_crude,
            "fixed point {fixed_point} vs crude {crude}, sim {}",
            sim.blocking.mean
        );
    }
}

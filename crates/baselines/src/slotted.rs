//! The synchronous (slotted) crossbar — the model the paper contrasts its
//! asynchronous switch with (§2), analysed by Patel (the paper's ref \[26\]).
//!
//! Per slot, each of the `N1` inputs independently holds a request with
//! probability `p`, addressed to a uniformly random output among `N2`.
//! Each output grants exactly one of its contenders; the rest are dropped
//! (the classical input-resubmission-free variant).
//!
//! Closed form: a given output receives no request with probability
//! `(1 − p/N2)^{N1}`, so per-slot switch throughput is
//! `N2·(1 − (1 − p/N2)^{N1})` and the per-request acceptance probability is
//! that divided by the offered `N1·p`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Closed-form per-request acceptance probability of the slotted crossbar.
pub fn slotted_acceptance(n1: u32, n2: u32, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    if p == 0.0 {
        return 1.0;
    }
    let thr = n2 as f64 * (1.0 - (1.0 - p / n2 as f64).powi(n1 as i32));
    thr / (n1 as f64 * p)
}

/// Closed-form normalised throughput (accepted requests per slot per
/// output).
pub fn slotted_throughput(n1: u32, n2: u32, p: f64) -> f64 {
    1.0 - (1.0 - p / n2 as f64).powi(n1 as i32)
}

/// Monte-Carlo slotted crossbar, for validating the closed form and for
/// head-to-head comparisons against the asynchronous simulator.
pub struct SlottedCrossbarSim {
    n1: u32,
    n2: u32,
    p: f64,
    rng: StdRng,
}

/// Aggregate result of a slotted run.
#[derive(Clone, Copy, Debug)]
pub struct SlottedReport {
    /// Requests generated.
    pub offered: u64,
    /// Requests granted.
    pub accepted: u64,
    /// Acceptance ratio.
    pub acceptance: f64,
    /// Mean accepted requests per output per slot.
    pub throughput: f64,
}

impl SlottedCrossbarSim {
    /// Build an `n1 × n2` slotted crossbar with per-input request
    /// probability `p`.
    pub fn new(n1: u32, n2: u32, p: f64, seed: u64) -> Self {
        assert!(n1 >= 1 && n2 >= 1);
        assert!((0.0..=1.0).contains(&p));
        SlottedCrossbarSim {
            n1,
            n2,
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Simulate `slots` slots.
    pub fn run(&mut self, slots: u64) -> SlottedReport {
        let mut offered = 0u64;
        let mut accepted = 0u64;
        let mut contenders = vec![0u32; self.n2 as usize];
        for _ in 0..slots {
            contenders.fill(0);
            for _ in 0..self.n1 {
                if self.rng.gen::<f64>() < self.p {
                    offered += 1;
                    let out = self.rng.gen_range(0..self.n2 as usize);
                    contenders[out] += 1;
                }
            }
            accepted += contenders.iter().filter(|&&c| c > 0).count() as u64;
        }
        SlottedReport {
            offered,
            accepted,
            acceptance: if offered > 0 {
                accepted as f64 / offered as f64
            } else {
                1.0
            },
            throughput: accepted as f64 / (slots as f64 * self.n2 as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_limits() {
        // p → 0: everything accepted.
        assert!((slotted_acceptance(8, 8, 1e-9) - 1.0).abs() < 1e-6);
        assert_eq!(slotted_acceptance(8, 8, 0.0), 1.0);
        // Saturated square switch: Patel's classic 1 − (1−1/N)^N → 1 − 1/e.
        let sat = slotted_throughput(64, 64, 1.0);
        assert!((sat - (1.0 - (1.0f64 - 1.0 / 64.0).powi(64))).abs() < 1e-12);
        assert!((sat - 0.6346).abs() < 5e-3);
    }

    #[test]
    fn simulation_matches_closed_form() {
        for &(n1, n2, p) in &[(4u32, 4u32, 0.3f64), (8, 8, 0.7), (16, 8, 0.2)] {
            let mut sim = SlottedCrossbarSim::new(n1, n2, p, 9);
            let rep = sim.run(200_000);
            let want = slotted_acceptance(n1, n2, p);
            assert!(
                (rep.acceptance - want).abs() < 0.005,
                "{n1}x{n2} p={p}: sim {} vs formula {want}",
                rep.acceptance
            );
            let want_thr = slotted_throughput(n1, n2, p);
            assert!((rep.throughput - want_thr).abs() < 0.005);
        }
    }

    #[test]
    fn acceptance_decreases_with_load() {
        assert!(slotted_acceptance(8, 8, 0.9) < slotted_acceptance(8, 8, 0.1));
    }

    #[test]
    fn rectangular_more_outputs_helps() {
        assert!(slotted_acceptance(8, 16, 0.8) > slotted_acceptance(8, 8, 0.8));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SlottedCrossbarSim::new(8, 8, 0.5, 3).run(10_000);
        let b = SlottedCrossbarSim::new(8, 8, 0.5, 3).run(10_000);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.accepted, b.accepted);
    }
}

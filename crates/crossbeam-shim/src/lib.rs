#![warn(missing_docs)]

//! Offline drop-in replacement for the subset of the `crossbeam` API this
//! workspace uses: [`thread::scope`] + [`thread::Scope::spawn`] and
//! [`queue::SegQueue`]. Built entirely on `std` (scoped threads landed in
//! Rust 1.63), so no external dependency is needed.

pub mod thread {
    //! Scoped threads with crossbeam's calling convention (the spawn
    //! closure receives the scope, and `scope` returns a `Result` that is
    //! `Err` when a child panicked).

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scoped-thread region: `Err` holds a child panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning further threads inside a scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// (crossbeam convention), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before returning. Returns `Err` with the
    /// first panic payload if any child (or `f` itself) panicked.
    pub fn scope<'env, F, T>(f: F) -> Result<T>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod queue {
    //! Concurrent queues.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue. The real crate is lock-free; this shim
    /// is a mutexed `VecDeque`, which is plenty for the coarse-grained
    /// work-stealing in this workspace.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push to the back.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        /// Pop from the front.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Pop up to `n` items from the front under a single lock
        /// acquisition. Returns an empty vector when the queue is empty
        /// (or `n == 0`). With a mutexed queue, batching amortises the
        /// lock cost over several items, which matters when many workers
        /// drain fine-grained work units (e.g. sweep points).
        pub fn pop_batch(&self, n: usize) -> Vec<T> {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let take = n.min(inner.len());
            inner.drain(..take).collect()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// `true` iff no items are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use super::thread;

    #[test]
    fn scope_joins_and_returns_value() {
        let data = [1, 2, 3];
        let sum = thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap_or(0)
        })
        .expect("no panic");
        assert_eq!(sum, 6);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn pop_batch_preserves_fifo_and_handles_underflow() {
        let q = SegQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        assert_eq!(q.pop_batch(4), vec![0, 1, 2, 3]);
        assert_eq!(q.pop_batch(0), Vec::<i32>::new());
        assert_eq!(q.pop_batch(100), vec![4, 5, 6, 7, 8, 9]);
        assert!(q.pop_batch(1).is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn segqueue_fifo_across_threads() {
        let q = SegQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        let drained = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|_| {
                        let mut got = Vec::new();
                        while let Some(v) = q.pop() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_default())
                .collect::<Vec<i32>>()
        })
        .expect("no panic");
        let mut sorted = drained;
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(q.is_empty());
    }
}

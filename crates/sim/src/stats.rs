//! Output analysis: online moments, batch means and confidence intervals.

/// Welford's online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Two-sided 97.5% Student-t quantile (for 95% confidence intervals) with
/// `df` degrees of freedom; normal approximation beyond the table.
pub fn t_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=60 => 2.02,
        61..=120 => 2.0,
        _ => 1.96,
    }
}

/// Two-sided 99.5% Student-t quantile (for 99% confidence intervals) with
/// `df` degrees of freedom; normal approximation beyond the table.
pub fn t_995(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
        2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
        2.771, 2.763, 2.756, 2.750,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=60 => 2.66,
        61..=120 => 2.62,
        _ => 2.576,
    }
}

/// Confidence level for an interval estimate.
///
/// Centralises the t-vs-z quantile selection that used to be duplicated
/// across `estimate`/`estimate_99` and the sim-vs-analytic assertions:
/// Student-t below 121 degrees of freedom (exact table through 30, banded
/// approximations to 120), the normal quantile beyond.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Confidence {
    /// 95% two-sided interval (97.5% quantile).
    #[default]
    P95,
    /// 99% two-sided interval (99.5% quantile).
    P99,
}

impl Confidence {
    /// The two-sided Student-t quantile for `df` degrees of freedom.
    pub fn t_quantile(self, df: u64) -> f64 {
        match self {
            Confidence::P95 => t_975(df),
            Confidence::P99 => t_995(df),
        }
    }

    /// The large-sample (normal) limit of [`Confidence::t_quantile`].
    pub fn z_quantile(self) -> f64 {
        match self {
            Confidence::P95 => 1.96,
            Confidence::P99 => 2.576,
        }
    }
}

/// A point estimate with a 95% confidence half-width.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Estimate {
    /// Point estimate (mean of batch means).
    pub mean: f64,
    /// 95% CI half-width (0 when fewer than 2 batches).
    pub half_width: f64,
}

impl Estimate {
    /// `true` iff `x` falls inside the 95% interval.
    pub fn covers(&self, x: f64) -> bool {
        (x - self.mean).abs() <= self.half_width
    }

    /// `true` iff `x` falls inside the interval widened by `slack` (both
    /// absolute); useful for asserting agreement in tests without flaking.
    pub fn covers_with_slack(&self, x: f64, slack: f64) -> bool {
        (x - self.mean).abs() <= self.half_width + slack
    }
}

/// Batch-means estimator: observations are grouped into fixed batches and
/// the CI is computed over batch averages (the standard way to get a CI out
/// of one long, autocorrelated simulation run).
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batch_values: Vec<f64>,
}

impl BatchMeans {
    /// From precomputed batch aggregates.
    pub fn from_batches(batch_values: Vec<f64>) -> Self {
        BatchMeans { batch_values }
    }

    /// Number of batches.
    pub fn batches(&self) -> usize {
        self.batch_values.len()
    }

    /// Point estimate plus CI half-width at the requested confidence
    /// level (half-width 0 with fewer than 2 batches).
    pub fn estimate_at(&self, conf: Confidence) -> Estimate {
        let n = self.batch_values.len();
        if n == 0 {
            return Estimate::default();
        }
        let mut w = Welford::new();
        for &v in &self.batch_values {
            w.add(v);
        }
        let hw = if n >= 2 {
            conf.t_quantile(n as u64 - 1) * w.std_dev() / (n as f64).sqrt()
        } else {
            0.0
        };
        Estimate {
            mean: w.mean(),
            half_width: hw,
        }
    }

    /// Point estimate plus 95% CI.
    pub fn estimate(&self) -> Estimate {
        self.estimate_at(Confidence::P95)
    }

    /// Point estimate plus 99% CI (same batch-means construction, wider
    /// quantile) — what the statistical sim-vs-analytic regression tests
    /// assert against.
    pub fn estimate_99(&self) -> Estimate {
        self.estimate_at(Confidence::P99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of that classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn t_table_monotone_and_limits() {
        assert!(t_975(1) > t_975(2));
        assert!(t_975(5) > t_975(30));
        assert_eq!(t_975(1_000_000), 1.96);
        assert_eq!(t_975(0), f64::INFINITY);
    }

    #[test]
    fn t_995_wider_than_t_975_everywhere() {
        for df in [1u64, 2, 5, 10, 30, 45, 100, 1_000_000] {
            assert!(t_995(df) > t_975(df), "df={df}");
        }
        assert_eq!(t_995(1_000_000), 2.576);
        assert_eq!(t_995(0), f64::INFINITY);
    }

    #[test]
    fn confidence_selects_t_below_121_df_and_z_beyond() {
        for conf in [Confidence::P95, Confidence::P99] {
            // Small df: exact table entries, strictly above the z limit.
            assert_eq!(conf.t_quantile(1), conf.t_quantile(1));
            for df in [1u64, 5, 19, 30, 31, 60, 61, 120] {
                assert!(conf.t_quantile(df) > conf.z_quantile(), "df={df}");
            }
            // Beyond 120 df the t quantile collapses to z exactly.
            for df in [121u64, 500, 1_000_000] {
                assert_eq!(conf.t_quantile(df), conf.z_quantile(), "df={df}");
            }
            assert_eq!(conf.t_quantile(0), f64::INFINITY);
        }
        // The enum routes to the right underlying table.
        assert_eq!(Confidence::P95.t_quantile(4), t_975(4));
        assert_eq!(Confidence::P99.t_quantile(4), t_995(4));
        assert_eq!(Confidence::default(), Confidence::P95);
    }

    #[test]
    fn estimate_at_matches_hand_computed_half_width() {
        // 5 batches ⇒ df = 4; mean 3, std-dev of {1..5} is sqrt(2.5).
        let bm = BatchMeans::from_batches(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let sd = 2.5f64.sqrt();
        for conf in [Confidence::P95, Confidence::P99] {
            let e = bm.estimate_at(conf);
            assert!((e.mean - 3.0).abs() < 1e-12);
            let want = conf.t_quantile(4) * sd / 5f64.sqrt();
            assert!((e.half_width - want).abs() < 1e-12, "{conf:?}");
        }
        assert_eq!(bm.estimate(), bm.estimate_at(Confidence::P95));
        assert_eq!(bm.estimate_99(), bm.estimate_at(Confidence::P99));
    }

    #[test]
    fn estimate_99_is_wider_than_95_with_same_mean() {
        let vals: Vec<f64> = (0..20)
            .map(|i| 10.0 + ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        let bm = BatchMeans::from_batches(vals);
        let e95 = bm.estimate();
        let e99 = bm.estimate_99();
        assert_eq!(e95.mean, e99.mean);
        assert!(e99.half_width > e95.half_width);
        assert!(e99.covers(10.0));
    }

    #[test]
    fn batch_means_ci_covers_true_mean_for_iid_batches() {
        // Deterministic pseudo-noise around 10.0.
        let vals: Vec<f64> = (0..20)
            .map(|i| 10.0 + ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        let est = BatchMeans::from_batches(vals).estimate();
        assert!(est.covers(10.0), "{est:?}");
        assert!(est.half_width > 0.0);
    }

    #[test]
    fn batch_means_degenerate_cases() {
        assert_eq!(
            BatchMeans::from_batches(vec![]).estimate(),
            Estimate::default()
        );
        let one = BatchMeans::from_batches(vec![5.0]).estimate();
        assert_eq!(one.mean, 5.0);
        assert_eq!(one.half_width, 0.0);
    }

    #[test]
    fn covers_with_slack() {
        let e = Estimate {
            mean: 1.0,
            half_width: 0.1,
        };
        assert!(e.covers(1.05));
        assert!(!e.covers(1.2));
        assert!(e.covers_with_slack(1.2, 0.15));
    }
}

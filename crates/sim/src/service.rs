//! Holding-time (service) distributions, all parameterised by their mean.
//!
//! The paper's chain is *insensitive*: every distribution here with the same
//! mean must produce the same blocking probabilities (paper §2, ref \[7\]).
//! The `insensitivity` experiment sweeps this whole menu.

use rand::Rng;

/// A holding-time distribution with a configurable mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceDist {
    /// Exponential with the given mean (the paper's base assumption);
    /// squared coefficient of variation `c² = 1`.
    Exponential {
        /// Mean holding time.
        mean: f64,
    },
    /// Constant holding time; `c² = 0`.
    Deterministic {
        /// The constant holding time.
        mean: f64,
    },
    /// Erlang-`k` (sum of `k` exponentials); `c² = 1/k < 1`.
    Erlang {
        /// Mean holding time (across all phases).
        mean: f64,
        /// Number of phases.
        k: u32,
    },
    /// Balanced-mean two-phase hyperexponential with `c² = cv2 > 1`.
    HyperExp {
        /// Mean holding time.
        mean: f64,
        /// Target squared coefficient of variation (must be > 1).
        cv2: f64,
    },
    /// Uniform on `[0, 2·mean]`; `c² = 1/3`.
    Uniform {
        /// Mean holding time (support is `[0, 2·mean]`).
        mean: f64,
    },
    /// Log-normal with the given mean and `c² = cv2`.
    LogNormal {
        /// Mean holding time.
        mean: f64,
        /// Squared coefficient of variation.
        cv2: f64,
    },
    /// Pareto (Lomax, shifted to start at 0) with tail index `shape > 2`
    /// — heavy-tailed holding times.
    Pareto {
        /// Mean holding time.
        mean: f64,
        /// Tail index (> 2 so the variance exists).
        shape: f64,
    },
}

impl ServiceDist {
    /// Exponential with mean `1/mu`.
    pub fn exponential(mu: f64) -> Self {
        ServiceDist::Exponential { mean: 1.0 / mu }
    }

    /// The configured mean holding time.
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceDist::Exponential { mean }
            | ServiceDist::Deterministic { mean }
            | ServiceDist::Erlang { mean, .. }
            | ServiceDist::HyperExp { mean, .. }
            | ServiceDist::Uniform { mean }
            | ServiceDist::LogNormal { mean, .. }
            | ServiceDist::Pareto { mean, .. } => mean,
        }
    }

    /// Squared coefficient of variation (variance/mean²).
    pub fn cv2(&self) -> f64 {
        match *self {
            ServiceDist::Exponential { .. } => 1.0,
            ServiceDist::Deterministic { .. } => 0.0,
            ServiceDist::Erlang { k, .. } => 1.0 / k as f64,
            ServiceDist::HyperExp { cv2, .. } => cv2,
            ServiceDist::Uniform { .. } => 1.0 / 3.0,
            ServiceDist::LogNormal { cv2, .. } => cv2,
            ServiceDist::Pareto { shape, .. } => {
                // var/mean² for Lomax(λ, α): α/(α−2) for α > 2.
                shape / (shape - 2.0)
            }
        }
    }

    /// Draw one holding time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ServiceDist::Exponential { mean } => sample_exp(rng, mean),
            ServiceDist::Deterministic { mean } => mean,
            ServiceDist::Erlang { mean, k } => {
                let phase = mean / k as f64;
                (0..k).map(|_| sample_exp(rng, phase)).sum()
            }
            ServiceDist::HyperExp { mean, cv2 } => {
                // Balanced-mean H2 fit: phases with probabilities p, 1−p and
                // means mean/(2p), mean/(2(1−p)); p chosen for the target c².
                let p = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
                if rng.gen::<f64>() < p {
                    sample_exp(rng, mean / (2.0 * p))
                } else {
                    sample_exp(rng, mean / (2.0 * (1.0 - p)))
                }
            }
            ServiceDist::Uniform { mean } => rng.gen::<f64>() * 2.0 * mean,
            ServiceDist::LogNormal { mean, cv2 } => {
                let sigma2 = (1.0 + cv2).ln();
                let mu = mean.ln() - 0.5 * sigma2;
                let z = sample_std_normal(rng);
                (mu + sigma2.sqrt() * z).exp()
            }
            ServiceDist::Pareto { mean, shape } => {
                // Lomax: X = λ((1−U)^(−1/α) − 1), mean = λ/(α−1).
                let lambda = mean * (shape - 1.0);
                let u: f64 = rng.gen();
                lambda * ((1.0 - u).powf(-1.0 / shape) - 1.0)
            }
        }
    }
}

/// Exponential with the given mean via inverse transform.
pub fn sample_exp<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    // 1−U ∈ (0, 1]: avoids ln(0).
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

/// Standard normal via Box–Muller.
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_stats(dist: ServiceDist, n: usize) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            assert!(x >= 0.0, "negative holding time from {dist:?}");
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        (mean, var)
    }

    #[test]
    fn all_distributions_hit_their_mean() {
        let dists = [
            ServiceDist::Exponential { mean: 2.0 },
            ServiceDist::Deterministic { mean: 2.0 },
            ServiceDist::Erlang { mean: 2.0, k: 4 },
            ServiceDist::HyperExp {
                mean: 2.0,
                cv2: 4.0,
            },
            ServiceDist::Uniform { mean: 2.0 },
            ServiceDist::LogNormal {
                mean: 2.0,
                cv2: 2.0,
            },
            ServiceDist::Pareto {
                mean: 2.0,
                shape: 3.5,
            },
        ];
        for d in dists {
            let (mean, _) = sample_stats(d, 400_000);
            assert!(
                (mean - 2.0).abs() < 0.05,
                "{d:?}: sample mean {mean}, want 2.0"
            );
            assert_eq!(d.mean(), 2.0);
        }
    }

    #[test]
    fn cv2_matches_samples_for_light_tailed() {
        // (Pareto excluded: its variance converges too slowly to test cheaply.)
        let dists = [
            ServiceDist::Exponential { mean: 1.0 },
            ServiceDist::Deterministic { mean: 1.0 },
            ServiceDist::Erlang { mean: 1.0, k: 3 },
            ServiceDist::HyperExp {
                mean: 1.0,
                cv2: 5.0,
            },
            ServiceDist::Uniform { mean: 1.0 },
            ServiceDist::LogNormal {
                mean: 1.0,
                cv2: 1.5,
            },
        ];
        for d in dists {
            let (mean, var) = sample_stats(d, 600_000);
            let cv2 = var / (mean * mean);
            assert!(
                (cv2 - d.cv2()).abs() < 0.1 * (1.0 + d.cv2()),
                "{d:?}: sample cv² {cv2}, want {}",
                d.cv2()
            );
        }
    }

    #[test]
    fn exponential_constructor_inverts_rate() {
        let d = ServiceDist::exponential(4.0);
        assert_eq!(d.mean(), 0.25);
    }

    #[test]
    fn deterministic_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = ServiceDist::Deterministic { mean: 3.5 };
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn erlang_variance_shrinks_with_k() {
        let (_, v2) = sample_stats(ServiceDist::Erlang { mean: 1.0, k: 2 }, 200_000);
        let (_, v8) = sample_stats(ServiceDist::Erlang { mean: 1.0, k: 8 }, 200_000);
        assert!(v8 < v2);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let d = ServiceDist::Exponential { mean: 1.0 };
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Discrete-event simulation of the asynchronous `N1 × N2` circuit-switched
//! crossbar with state-dependent (BPP) arrivals and general service times.
//!
//! The paper analyses this system in closed form and lists "comparing our
//! analytical results with simulation" as future work (§8); this crate is
//! that simulator. It exists for three reasons:
//!
//! 1. **Validation** — an independent implementation of the *dynamics* (the
//!    analytic crates implement the *stationary distribution*); agreement
//!    is strong evidence both are right.
//! 2. **Insensitivity** — the product form is claimed insensitive to the
//!    holding-time distribution beyond its mean (paper §2, ref \[7\]); a
//!    simulator can actually swap distributions ([`ServiceDist`]) and
//!    check.
//! 3. **Beyond the model** — non-uniform (hot-spot) output traffic (the
//!    subject of the authors' companion paper \[28\]) and end-point retrial
//!    behaviour (probing the blocked-calls-cleared assumption) have no
//!    closed form; the simulators in [`hotspot`] and [`retrial`] cover
//!    them. Port-failure injection ([`faults`]) degrades the switch at
//!    runtime — something the perfect-switch product form cannot model,
//!    but whose static special case it *can* price (a switch with `f1`
//!    inputs and `f2` outputs down behaves like a fault-free
//!    `(N1−f1) × (N2−f2)` crossbar for its surviving traffic).
//!
//! # Semantics (matching the product form exactly)
//!
//! A class-`r` request needs `a_r` inputs and `a_r` outputs. Consistently
//! with the stationary distribution `Ψ(k)·ΠΦ` (see DESIGN.md), class-`r`
//! requests arrive — in state `k_r` concurrent class-`r` connections — at
//! total rate `P(N1,a_r)·P(N2,a_r)·λ_r(k_r)` and pick an *ordered* tuple of
//! `a_r` inputs and one of `a_r` outputs uniformly; the request is accepted
//! iff all 2·`a_r` chosen ports are idle, else it is **cleared** (no
//! buffering, no retry). Holding times are i.i.d. with mean `1/μ_r` from
//! any [`ServiceDist`].
//!
//! # Example
//!
//! ```
//! use xbar_sim::{CrossbarSim, RunConfig, ServiceDist, SimConfig};
//! use xbar_traffic::TrafficClass;
//!
//! let cfg = SimConfig::new(8, 8)
//!     .with_class(TrafficClass::poisson(0.005), ServiceDist::exponential(1.0));
//! let mut sim = CrossbarSim::new(cfg, 42);
//! let report = sim.run(RunConfig {
//!     warmup: 100.0,
//!     duration: 5_000.0,
//!     batches: 10,
//! });
//! // Port utilisation ≈ 4%, so pair blocking sits around 8%.
//! assert!(report.classes[0].blocking.mean < 0.15);
//! ```

pub mod crossbar;
pub mod events;
pub mod faults;
pub mod harness;
pub mod hotspot;
pub mod rates;
pub mod replay;
pub mod retrial;
pub mod service;
pub mod stats;

pub use crossbar::{ClassReport, CrossbarSim, RunConfig, SimConfig, SimError, SimReport};
pub use faults::{FaultConfig, FaultReport};
pub use harness::{
    replicate, replicate_range, run_replications, run_retrial_replications, run_retrial_until_ci,
    run_sim_replications, run_sim_until_ci, run_until_ci, CiTarget, MergedClassReplay,
    MergedClassSim, RepConfig, ReplayReplications, Replication, RetrialReplications,
    SimReplications,
};
pub use hotspot::HotspotSim;
pub use rates::RateTable;
pub use replay::{replay, ClassReplay, ReplayConfig, ReplayReport};
pub use retrial::{RetrialConfig, RetrialReport, RetrialSim};
pub use service::ServiceDist;
pub use stats::{BatchMeans, Confidence, Estimate, Welford};

//! Batched, deterministic multi-replication simulation engine.
//!
//! Every statistical claim in this repo bottoms out in one of three
//! simulators (the [`replay`](crate::replay) admission driver, the
//! [`CrossbarSim`] recorder, the [`RetrialSim`] retrial queue). A single
//! long run buys precision slowly — batch means over one autocorrelated
//! path — and serially. This harness instead fans **N independent
//! replications** over the persistent worker pool
//! ([`xbar_core::parallel::run_scoped`], the PR 7 pool) and merges their
//! statistics with a single-pass reducer.
//!
//! # Determinism
//!
//! Replication `i` runs on the RNG stream derived from
//! `(master_seed, i)` via [`SplitMix64::stream_seed`] — a pure function
//! of the pair, never of thread identity, worker count, or scheduling
//! order. Results land in index-ordered slots and the reducer folds them
//! serially on the calling thread, so the merged report is **bitwise
//! identical for any `XBAR_THREADS`** (pinned by a proptest and a CI
//! smoke that diffs t1 vs t4 CLI output). Inside a pool worker each
//! replication pins its nested parallelism to one thread
//! ([`parallel::with_threads`]) — solver results are bit-identical across
//! thread counts anyway (the PR 2/7 equivalence batteries), this just
//! avoids oversubscribing the pool.
//!
//! # Adaptive stopping
//!
//! The `*_until_ci` variants ([`run_until_ci`], [`run_sim_until_ci`],
//! [`run_retrial_until_ci`]) grow the replication count in fixed rounds
//! until the merged interval's half-width reaches a target (or a cap),
//! so tests stop spending events past the precision they assert. Round
//! sizes are fixed and replication `i` is the same replication in every
//! schedule, so adaptive runs are exactly as deterministic as fixed ones.
//!
//! # Observability
//!
//! Workers re-install the caller's scoped obs registry
//! ([`xbar_obs::current_scope`]), so per-event counters from inside the
//! replications (`sim.events`, `replay.events`, the admission ledger)
//! land in the caller's scope exactly as a serial run's would. The
//! harness itself adds `sim.rep.runs` / `sim.rep.replications` /
//! `sim.rep.rounds` / `sim.rep.events` on the calling thread after the
//! merge.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::SplitMix64;
use xbar_admission::AdmissionError;
use xbar_core::{parallel, Model};

use crate::crossbar::{CrossbarSim, RunConfig, SimConfig, SimError, SimReport};
use crate::replay::{replay, ReplayConfig, ReplayReport};
use crate::retrial::{RetrialConfig, RetrialReport, RetrialSim};
use crate::stats::{BatchMeans, Confidence, Estimate};

/// One unit of harness work: its index in the replication sequence and
/// the RNG seed derived for it.
#[derive(Clone, Copy, Debug)]
pub struct Replication {
    /// Position in the replication sequence (stable across schedules).
    pub index: u64,
    /// `SplitMix64::stream_seed(master_seed, index)` — the seed the
    /// replication's own generator is built from.
    pub seed: u64,
}

/// Harness parameters shared by all three simulator front-ends.
#[derive(Clone, Copy, Debug)]
pub struct RepConfig {
    /// Independent replications to run.
    pub replications: u64,
    /// Master seed the per-replication streams derive from.
    pub master_seed: u64,
    /// Confidence level of the merged across-replication intervals.
    pub confidence: Confidence,
}

impl Default for RepConfig {
    fn default() -> Self {
        RepConfig {
            replications: 8,
            master_seed: 1,
            confidence: Confidence::P99,
        }
    }
}

/// Adaptive-stopping policy for the `*_until_ci` variants.
#[derive(Clone, Copy, Debug)]
pub struct CiTarget {
    /// Stop once the merged interval's half-width is at or below this.
    pub half_width: f64,
    /// Replications in the first round (≥ 2 so an interval exists).
    pub initial: u64,
    /// Replications added per subsequent round.
    pub step: u64,
    /// Hard cap on total replications (the run stops here even if the
    /// target was not reached — callers can check the returned width).
    pub max: u64,
}

impl CiTarget {
    /// Target `half_width` with the default schedule (4 initial, +2 per
    /// round, capped at 64).
    pub fn new(half_width: f64) -> Self {
        CiTarget {
            half_width,
            initial: 4,
            step: 2,
            max: 64,
        }
    }
}

/// Run `job` once per replication in `[0, replications)` and return the
/// results in index order. See the module docs for the determinism
/// argument.
pub fn replicate<T, F>(replications: u64, master_seed: u64, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(Replication) -> T + Sync,
{
    replicate_range(0, replications, master_seed, job)
}

/// [`replicate`] over indices `[start, start + count)` — the building
/// block adaptive rounds use so round `n + 1` extends (never re-runs)
/// round `n`'s replication sequence.
pub fn replicate_range<T, F>(start: u64, count: u64, master_seed: u64, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(Replication) -> T + Sync,
{
    let n = count as usize;
    if n == 0 {
        return Vec::new();
    }
    let run_one = |i: usize| {
        let index = start + i as u64;
        job(Replication {
            index,
            seed: SplitMix64::stream_seed(master_seed, index),
        })
    };
    let threads = parallel::effective_threads().min(n);
    if threads <= 1 {
        return (0..n).map(run_one).collect();
    }
    // Index-ordered slots: whichever worker runs replication i, its
    // result lands in slot i, and the caller folds the slots serially.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let scope = xbar_obs::current_scope();
    parallel::run_scoped(threads, |_worker| {
        let _obs = scope.enter();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let out = parallel::with_threads(1, || run_one(i));
            if let Ok(mut slot) = slots[i].lock() {
                *slot = Some(out);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .ok()
                .flatten()
                .expect("replication slot filled by the pool")
        })
        .collect()
}

fn record_harness_obs(replications: u64, rounds: u64, events: u64) {
    if xbar_obs::enabled() {
        xbar_obs::inc("sim.rep.runs");
        xbar_obs::add("sim.rep.replications", replications);
        xbar_obs::add("sim.rep.rounds", rounds);
        xbar_obs::add("sim.rep.events", events);
    }
}

/// Across-replication estimate of a per-replication statistic: each
/// replication contributes its point estimate as one "batch", merged with
/// the same Student-t machinery the in-run batch means use.
fn across(values: Vec<f64>, confidence: Confidence) -> Estimate {
    BatchMeans::from_batches(values).estimate_at(confidence)
}

// ---------------------------------------------------------------------------
// Replay (admission engine)
// ---------------------------------------------------------------------------

/// Merged per-class replay outcome.
#[derive(Clone, Debug)]
pub struct MergedClassReplay {
    /// Arrivals offered across all replications.
    pub offered: u64,
    /// Arrivals admitted across all replications.
    pub admitted: u64,
    /// Capacity denials across all replications.
    pub denied_capacity: u64,
    /// Policy denials across all replications.
    pub denied_policy: u64,
    /// Across-replication estimate of the admitted fraction.
    pub acceptance: Estimate,
    /// The anchor's analytic call acceptance (identical in every
    /// replication — same model, same anchor).
    pub analytic_acceptance: f64,
}

/// Merged outcome of a replay replication run.
#[derive(Clone, Debug)]
pub struct ReplayReplications {
    /// Replications actually run.
    pub replications: u64,
    /// Adaptive rounds taken (1 for fixed-count runs).
    pub rounds: u64,
    /// Events across all replications.
    pub events: u64,
    /// Arrivals across all replications.
    pub arrivals: u64,
    /// Departures across all replications.
    pub departures: u64,
    /// Per-class merged decision splits and acceptance estimates.
    pub classes: Vec<MergedClassReplay>,
    /// The individual replication reports, in replication order.
    pub per_rep: Vec<ReplayReport>,
}

/// Single-pass reducer over replay replication reports.
fn merge_replay(
    per_rep: Vec<ReplayReport>,
    rounds: u64,
    confidence: Confidence,
) -> ReplayReplications {
    let r_count = per_rep.first().map(|r| r.classes.len()).unwrap_or(0);
    let mut events = 0u64;
    let mut arrivals = 0u64;
    let mut departures = 0u64;
    let mut counts = vec![(0u64, 0u64, 0u64, 0u64); r_count];
    let mut acceptance: Vec<Vec<f64>> = vec![Vec::with_capacity(per_rep.len()); r_count];
    for rep in &per_rep {
        events += rep.events;
        arrivals += rep.arrivals;
        departures += rep.departures;
        for (r, c) in rep.classes.iter().enumerate() {
            counts[r].0 += c.offered;
            counts[r].1 += c.admitted;
            counts[r].2 += c.denied_capacity;
            counts[r].3 += c.denied_policy;
            acceptance[r].push(c.acceptance.mean);
        }
    }
    let classes = counts
        .into_iter()
        .zip(acceptance)
        .enumerate()
        .map(
            |(r, ((offered, admitted, denied_capacity, denied_policy), acc))| MergedClassReplay {
                offered,
                admitted,
                denied_capacity,
                denied_policy,
                acceptance: across(acc, confidence),
                analytic_acceptance: per_rep
                    .first()
                    .map(|rep| rep.classes[r].analytic_acceptance)
                    .unwrap_or(f64::NAN),
            },
        )
        .collect();
    ReplayReplications {
        replications: per_rep.len() as u64,
        rounds,
        events,
        arrivals,
        departures,
        classes,
        per_rep,
    }
}

/// Fan `rep.replications` independent [`replay`] runs of `cfg` over the
/// worker pool and merge their statistics. Replication `i` replays
/// `cfg` with its seed replaced by stream `i` of `rep.master_seed`.
pub fn run_replications(
    model: &Model,
    cfg: &ReplayConfig,
    rep: &RepConfig,
) -> Result<ReplayReplications, AdmissionError> {
    let per_rep = collect_replay(model, cfg, 0, rep.replications, rep.master_seed)?;
    let merged = merge_replay(per_rep, 1, rep.confidence);
    record_harness_obs(merged.replications, 1, merged.events);
    Ok(merged)
}

fn collect_replay(
    model: &Model,
    cfg: &ReplayConfig,
    start: u64,
    count: u64,
    master_seed: u64,
) -> Result<Vec<ReplayReport>, AdmissionError> {
    let results = replicate_range(start, count, master_seed, |r: Replication| {
        let mut rep_cfg = cfg.clone();
        rep_cfg.seed = r.seed;
        replay(model, &rep_cfg)
    });
    // Propagate the first error in replication order (deterministic).
    results.into_iter().collect()
}

/// Adaptive-stopping [`run_replications`]: grow the replication count by
/// `target.step` per round until every class's merged acceptance interval
/// has half-width ≤ `target.half_width` (or `target.max` replications).
pub fn run_until_ci(
    model: &Model,
    cfg: &ReplayConfig,
    rep: &RepConfig,
    target: CiTarget,
) -> Result<ReplayReplications, AdmissionError> {
    let mut per_rep: Vec<ReplayReport> = Vec::new();
    let mut rounds = 0u64;
    loop {
        let want = if rounds == 0 {
            target.initial.max(2).min(target.max)
        } else {
            target.step.min(target.max - per_rep.len() as u64)
        };
        per_rep.extend(collect_replay(
            model,
            cfg,
            per_rep.len() as u64,
            want,
            rep.master_seed,
        )?);
        rounds += 1;
        let merged = merge_replay(per_rep, rounds, rep.confidence);
        let width = merged
            .classes
            .iter()
            .map(|c| c.acceptance.half_width)
            .fold(0.0f64, f64::max);
        if width <= target.half_width || merged.replications >= target.max {
            record_harness_obs(merged.replications, rounds, merged.events);
            return Ok(merged);
        }
        per_rep = merged.per_rep;
    }
}

// ---------------------------------------------------------------------------
// CrossbarSim
// ---------------------------------------------------------------------------

/// Merged per-class crossbar outcome.
#[derive(Clone, Debug)]
pub struct MergedClassSim {
    /// Requests offered across all replications.
    pub offered: u64,
    /// Requests accepted across all replications.
    pub accepted: u64,
    /// Requests blocked across all replications.
    pub blocked: u64,
    /// Fault-blocked requests across all replications.
    pub fault_blocked: u64,
    /// Across-replication estimate of the call blocking ratio.
    pub blocking: Estimate,
    /// Across-replication estimate of the tuple availability.
    pub availability: Estimate,
    /// Across-replication estimate of the mean concurrency.
    pub concurrency: Estimate,
}

/// Merged outcome of a crossbar replication run.
#[derive(Clone, Debug)]
pub struct SimReplications {
    /// Replications actually run.
    pub replications: u64,
    /// Adaptive rounds taken (1 for fixed-count runs).
    pub rounds: u64,
    /// Events across all replications (measurement windows only).
    pub events: u64,
    /// Per-class merged reports.
    pub classes: Vec<MergedClassSim>,
    /// Across-replication estimate of the revenue rate.
    pub revenue: Estimate,
    /// The individual replication reports, in replication order.
    pub per_rep: Vec<SimReport>,
}

/// Single-pass reducer over crossbar replication reports.
fn merge_sim(per_rep: Vec<SimReport>, rounds: u64, confidence: Confidence) -> SimReplications {
    let r_count = per_rep.first().map(|r| r.classes.len()).unwrap_or(0);
    let mut events = 0u64;
    let mut counts = vec![(0u64, 0u64, 0u64, 0u64); r_count];
    let mut blocking: Vec<Vec<f64>> = vec![Vec::with_capacity(per_rep.len()); r_count];
    let mut availability: Vec<Vec<f64>> = vec![Vec::with_capacity(per_rep.len()); r_count];
    let mut concurrency: Vec<Vec<f64>> = vec![Vec::with_capacity(per_rep.len()); r_count];
    let mut revenue = Vec::with_capacity(per_rep.len());
    for rep in &per_rep {
        events += rep.events;
        revenue.push(rep.revenue);
        for (r, c) in rep.classes.iter().enumerate() {
            counts[r].0 += c.offered;
            counts[r].1 += c.accepted;
            counts[r].2 += c.blocked;
            counts[r].3 += c.fault_blocked;
            blocking[r].push(c.blocking.mean);
            availability[r].push(c.availability.mean);
            concurrency[r].push(c.concurrency.mean);
        }
    }
    let classes = (0..r_count)
        .map(|r| MergedClassSim {
            offered: counts[r].0,
            accepted: counts[r].1,
            blocked: counts[r].2,
            fault_blocked: counts[r].3,
            blocking: across(std::mem::take(&mut blocking[r]), confidence),
            availability: across(std::mem::take(&mut availability[r]), confidence),
            concurrency: across(std::mem::take(&mut concurrency[r]), confidence),
        })
        .collect();
    SimReplications {
        replications: per_rep.len() as u64,
        rounds,
        events,
        classes,
        revenue: across(revenue, confidence),
        per_rep,
    }
}

fn collect_sim(
    cfg: &SimConfig,
    run: &RunConfig,
    start: u64,
    count: u64,
    master_seed: u64,
) -> Result<Vec<SimReport>, SimError> {
    // Validate once up front so workers can't trip the panicking path.
    CrossbarSim::try_new(cfg.clone(), 0)?;
    Ok(replicate_range(
        start,
        count,
        master_seed,
        |r: Replication| {
            let mut sim = CrossbarSim::new(cfg.clone(), r.seed);
            sim.run(*run)
        },
    ))
}

/// Fan `rep.replications` independent [`CrossbarSim`] runs over the
/// worker pool and merge their statistics.
pub fn run_sim_replications(
    cfg: &SimConfig,
    run: &RunConfig,
    rep: &RepConfig,
) -> Result<SimReplications, SimError> {
    let per_rep = collect_sim(cfg, run, 0, rep.replications, rep.master_seed)?;
    let merged = merge_sim(per_rep, 1, rep.confidence);
    record_harness_obs(merged.replications, 1, merged.events);
    Ok(merged)
}

/// Adaptive-stopping [`run_sim_replications`]: rounds grow until every
/// class's merged *blocking* interval has half-width ≤
/// `target.half_width` (or `target.max` replications).
pub fn run_sim_until_ci(
    cfg: &SimConfig,
    run: &RunConfig,
    rep: &RepConfig,
    target: CiTarget,
) -> Result<SimReplications, SimError> {
    let mut per_rep: Vec<SimReport> = Vec::new();
    let mut rounds = 0u64;
    loop {
        let want = if rounds == 0 {
            target.initial.max(2).min(target.max)
        } else {
            target.step.min(target.max - per_rep.len() as u64)
        };
        per_rep.extend(collect_sim(
            cfg,
            run,
            per_rep.len() as u64,
            want,
            rep.master_seed,
        )?);
        rounds += 1;
        let merged = merge_sim(per_rep, rounds, rep.confidence);
        let width = merged
            .classes
            .iter()
            .map(|c| c.blocking.half_width)
            .fold(0.0f64, f64::max);
        if width <= target.half_width || merged.replications >= target.max {
            record_harness_obs(merged.replications, rounds, merged.events);
            return Ok(merged);
        }
        per_rep = merged.per_rep;
    }
}

// ---------------------------------------------------------------------------
// RetrialSim
// ---------------------------------------------------------------------------

/// Merged outcome of a retrial replication run.
#[derive(Clone, Debug)]
pub struct RetrialReplications {
    /// Replications actually run.
    pub replications: u64,
    /// Adaptive rounds taken (1 for fixed-count runs).
    pub rounds: u64,
    /// Measured calls across all replications.
    pub calls: u64,
    /// Carried calls across all replications.
    pub carried: u64,
    /// Lost calls across all replications.
    pub lost: u64,
    /// Calls still in back-off at their run's end, across replications.
    pub pending: u64,
    /// Attempts across all replications.
    pub attempts: u64,
    /// Blocked attempts across all replications.
    pub blocked_attempts: u64,
    /// Retries scheduled across all replications.
    pub retries: u64,
    /// Across-replication estimate of the final loss probability.
    pub loss: Estimate,
    /// Across-replication estimate of the per-attempt blocking.
    pub attempt_blocking: Estimate,
    /// The individual replication reports, in replication order.
    pub per_rep: Vec<RetrialReport>,
}

/// Single-pass reducer over retrial replication reports.
fn merge_retrial(
    per_rep: Vec<RetrialReport>,
    rounds: u64,
    confidence: Confidence,
) -> RetrialReplications {
    let mut sums = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let mut loss = Vec::with_capacity(per_rep.len());
    let mut attempt_blocking = Vec::with_capacity(per_rep.len());
    for rep in &per_rep {
        sums.0 += rep.calls;
        sums.1 += rep.carried;
        sums.2 += rep.lost;
        sums.3 += rep.pending;
        sums.4 += rep.attempts;
        sums.5 += rep.blocked_attempts;
        sums.6 += rep.retries;
        loss.push(rep.loss.mean);
        attempt_blocking.push(rep.attempt_blocking.mean);
    }
    RetrialReplications {
        replications: per_rep.len() as u64,
        rounds,
        calls: sums.0,
        carried: sums.1,
        lost: sums.2,
        pending: sums.3,
        attempts: sums.4,
        blocked_attempts: sums.5,
        retries: sums.6,
        loss: across(loss, confidence),
        attempt_blocking: across(attempt_blocking, confidence),
        per_rep,
    }
}

fn collect_retrial(
    cfg: &RetrialConfig,
    run: &RunConfig,
    start: u64,
    count: u64,
    master_seed: u64,
) -> Vec<RetrialReport> {
    replicate_range(start, count, master_seed, |r: Replication| {
        RetrialSim::new(cfg.clone(), r.seed).run(run.warmup, run.duration, run.batches)
    })
}

/// Fan `rep.replications` independent [`RetrialSim`] runs over the worker
/// pool and merge their statistics.
pub fn run_retrial_replications(
    cfg: &RetrialConfig,
    run: &RunConfig,
    rep: &RepConfig,
) -> RetrialReplications {
    let per_rep = collect_retrial(cfg, run, 0, rep.replications, rep.master_seed);
    let merged = merge_retrial(per_rep, 1, rep.confidence);
    record_harness_obs(merged.replications, 1, merged.attempts);
    merged
}

/// Adaptive-stopping [`run_retrial_replications`]: rounds grow until the
/// merged *loss* interval has half-width ≤ `target.half_width` (or
/// `target.max` replications).
pub fn run_retrial_until_ci(
    cfg: &RetrialConfig,
    run: &RunConfig,
    rep: &RepConfig,
    target: CiTarget,
) -> RetrialReplications {
    let mut per_rep: Vec<RetrialReport> = Vec::new();
    let mut rounds = 0u64;
    loop {
        let want = if rounds == 0 {
            target.initial.max(2).min(target.max)
        } else {
            target.step.min(target.max - per_rep.len() as u64)
        };
        per_rep.extend(collect_retrial(
            cfg,
            run,
            per_rep.len() as u64,
            want,
            rep.master_seed,
        ));
        rounds += 1;
        let merged = merge_retrial(per_rep, rounds, rep.confidence);
        if merged.loss.half_width <= target.half_width || merged.replications >= target.max {
            record_harness_obs(merged.replications, rounds, merged.attempts);
            return merged;
        }
        per_rep = merged.per_rep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::Dims;
    use xbar_traffic::{TrafficClass, Workload};

    fn model() -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.1))
            .with(TrafficClass::bpp(0.08, 0.04, 1.0));
        Model::new(Dims::new(6, 8), w).expect("valid model")
    }

    fn replay_cfg(events: u64) -> ReplayConfig {
        ReplayConfig {
            events,
            ..ReplayConfig::default()
        }
    }

    #[test]
    fn replicate_preserves_index_order_for_any_worker_count() {
        for threads in [1usize, 2, 3, 4] {
            let out = parallel::with_threads(threads, || {
                replicate(17, 5, |r: Replication| (r.index, r.seed))
            });
            assert_eq!(out.len(), 17);
            for (i, (index, seed)) in out.iter().enumerate() {
                assert_eq!(*index, i as u64);
                assert_eq!(
                    *seed,
                    rand::rngs::SplitMix64::stream_seed(5, i as u64),
                    "seed depends only on (master, index)"
                );
            }
        }
    }

    #[test]
    fn merged_replay_is_bitwise_identical_across_worker_counts() {
        let model = model();
        let cfg = replay_cfg(8_000);
        let rep = RepConfig {
            replications: 6,
            master_seed: 31,
            confidence: Confidence::P99,
        };
        let base = parallel::with_threads(1, || run_replications(&model, &cfg, &rep))
            .expect("replay runs");
        for threads in [2usize, 4] {
            let got = parallel::with_threads(threads, || run_replications(&model, &cfg, &rep))
                .expect("replay runs");
            assert_eq!(got.events, base.events);
            assert_eq!(got.arrivals, base.arrivals);
            for (a, b) in got.classes.iter().zip(&base.classes) {
                assert_eq!(a.offered, b.offered);
                assert_eq!(a.admitted, b.admitted);
                assert_eq!(a.acceptance.mean.to_bits(), b.acceptance.mean.to_bits());
                assert_eq!(
                    a.acceptance.half_width.to_bits(),
                    b.acceptance.half_width.to_bits()
                );
            }
        }
    }

    #[test]
    fn until_ci_extends_rather_than_reruns_replications() {
        let model = model();
        let cfg = replay_cfg(4_000);
        let rep = RepConfig {
            replications: 0, // ignored by the adaptive path
            master_seed: 7,
            confidence: Confidence::P95,
        };
        // Impossible target: the run must stop at the cap, having taken
        // multiple rounds.
        let target = CiTarget {
            half_width: 0.0,
            initial: 2,
            step: 2,
            max: 8,
        };
        let merged = run_until_ci(&model, &cfg, &rep, target).expect("replay runs");
        assert_eq!(merged.replications, 8);
        assert!(merged.rounds > 1);
        // Replication i of the adaptive run is replication i of a fixed
        // 8-replication run: same streams, same results.
        let fixed = run_replications(
            &model,
            &cfg,
            &RepConfig {
                replications: 8,
                master_seed: 7,
                confidence: Confidence::P95,
            },
        )
        .expect("replay runs");
        assert_eq!(merged.events, fixed.events);
        for (a, b) in merged.per_rep.iter().zip(&fixed.per_rep) {
            assert_eq!(a.arrivals, b.arrivals);
            assert_eq!(a.classes[0].offered, b.classes[0].offered);
        }
        // An easy target stops at the first round.
        let easy = run_until_ci(&model, &cfg, &rep, CiTarget::new(1.0)).expect("replay runs");
        assert_eq!(easy.rounds, 1);
        assert_eq!(easy.replications, 4);
    }

    #[test]
    fn harness_obs_counters_flow_to_the_callers_scope() {
        let registry = std::sync::Arc::new(xbar_obs::Registry::new());
        let model = model();
        let cfg = replay_cfg(2_000);
        let rep = RepConfig {
            replications: 3,
            master_seed: 2,
            confidence: Confidence::P95,
        };
        let merged = {
            let _scope = xbar_obs::scope(&registry);
            parallel::with_threads(2, || run_replications(&model, &cfg, &rep)).expect("replay runs")
        };
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sim.rep.runs"), Some(1));
        assert_eq!(snap.counter("sim.rep.replications"), Some(3));
        assert_eq!(snap.counter("sim.rep.rounds"), Some(1));
        assert_eq!(snap.counter("sim.rep.events"), Some(merged.events));
        // Worker-side counters landed in the same scope: each of the 3
        // replications recorded its replay.events.
        assert_eq!(snap.counter("replay.events"), Some(merged.events));
    }

    #[test]
    fn merged_sim_replications_match_single_runs() {
        let cfg = SimConfig::new(4, 4).with_exp_class(TrafficClass::poisson(0.2));
        let run = RunConfig {
            warmup: 50.0,
            duration: 2_000.0,
            batches: 10,
        };
        let rep = RepConfig {
            replications: 4,
            master_seed: 9,
            confidence: Confidence::P95,
        };
        let merged = run_sim_replications(&cfg, &run, &rep).expect("valid sim");
        assert_eq!(merged.replications, 4);
        // Each per-rep report is reproducible from its derived seed alone.
        for (i, got) in merged.per_rep.iter().enumerate() {
            let seed = rand::rngs::SplitMix64::stream_seed(9, i as u64);
            let again = CrossbarSim::new(cfg.clone(), seed).run(run);
            assert_eq!(got.events, again.events);
            assert_eq!(got.classes[0].offered, again.classes[0].offered);
            assert_eq!(
                got.classes[0].blocking.mean.to_bits(),
                again.classes[0].blocking.mean.to_bits()
            );
        }
        // And the merged counts are the per-rep sums.
        let offered: u64 = merged.per_rep.iter().map(|r| r.classes[0].offered).sum();
        assert_eq!(merged.classes[0].offered, offered);
    }

    #[test]
    fn retrial_replications_merge_and_balance() {
        let cfg = RetrialConfig {
            n1: 6,
            n2: 6,
            class: TrafficClass::poisson(0.05),
            max_attempts: 3,
            backoff_mean: 0.3,
        };
        let run = RunConfig {
            warmup: 50.0,
            duration: 3_000.0,
            batches: 5,
        };
        let rep = RepConfig {
            replications: 3,
            master_seed: 17,
            confidence: Confidence::P95,
        };
        let merged = run_retrial_replications(&cfg, &run, &rep);
        assert_eq!(merged.replications, 3);
        assert_eq!(merged.calls, merged.carried + merged.lost + merged.pending);
        assert_eq!(merged.attempts, merged.carried + merged.blocked_attempts);
        assert_eq!(merged.blocked_attempts, merged.retries + merged.lost);
        assert!(merged.loss.half_width >= 0.0);
    }
}

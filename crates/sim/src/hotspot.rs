//! Hot-spot (non-uniform output) traffic — the scenario of the authors'
//! companion paper \[28\] ("Modeling and Analysis of Hot Spots in an
//! Asynchronous N×N Crossbar Switch"), which this paper's uniform-traffic
//! model does not cover. Simulation-only.
//!
//! Model: single-connection (`a = 1`) Poisson requests at total rate
//! `N1·N2·λ`; the input is uniform; the output is the designated *hot*
//! output with probability `h + (1−h)/N2` and any particular other output
//! with probability `(1−h)/N2` — i.e. a fraction `h` of all traffic is
//! redirected at the hot spot, the rest stays uniform (the classical
//! hot-spot parameterisation). `h = 0` recovers the uniform model exactly,
//! which is how the simulator is validated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::events::{Calendar, EventKind};
use crate::service::{sample_exp, ServiceDist};
use crate::stats::{BatchMeans, Estimate};

/// Hot-spot simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct HotspotConfig {
    /// Inputs.
    pub n1: u32,
    /// Outputs.
    pub n2: u32,
    /// Per-(input,output)-pair Poisson arrival rate λ (uniform component).
    pub lambda: f64,
    /// Fraction of traffic redirected to the hot output (`0 ≤ h < 1`).
    pub hot_fraction: f64,
    /// Holding-time distribution.
    pub service: ServiceDist,
}

/// Simulation output for the hot-spot scenario.
#[derive(Clone, Debug)]
pub struct HotspotReport {
    /// Overall call blocking.
    pub blocking: Estimate,
    /// Blocking of requests aimed at the hot output.
    pub hot_blocking: Estimate,
    /// Blocking of requests aimed at other outputs.
    pub cold_blocking: Estimate,
    /// Time-average utilisation of the hot output.
    pub hot_utilisation: f64,
    /// Time-average utilisation over the cold outputs.
    pub cold_utilisation: f64,
}

/// Hot-spot crossbar simulator (`a = 1` only).
pub struct HotspotSim {
    cfg: HotspotConfig,
    rng: StdRng,
}

impl HotspotSim {
    /// Build from a config and seed.
    pub fn new(cfg: HotspotConfig, seed: u64) -> Self {
        assert!(cfg.n1 >= 1 && cfg.n2 >= 1);
        assert!((0.0..1.0).contains(&cfg.hot_fraction));
        assert!(cfg.lambda > 0.0);
        HotspotSim {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Run for `warmup + duration`, measuring after warmup with
    /// `batches` batch means.
    pub fn run(&mut self, warmup: f64, duration: f64, batches: usize) -> HotspotReport {
        let cfg = self.cfg;
        let (n1, n2) = (cfg.n1 as usize, cfg.n2 as usize);
        let hot = 0usize; // output 0 is the hot spot
        let total_rate = cfg.n1 as f64 * cfg.n2 as f64 * cfg.lambda / (1.0 - cfg.hot_fraction);
        // With probability h the output is forced to `hot`; otherwise it is
        // uniform — so each cold output sees rate (1−h)·Λ/N2 = N1·λ, i.e.
        // λ per pair, and the hot output sees that plus the redirected mass.
        let mut busy_in = vec![false; n1];
        let mut busy_out = vec![false; n2];
        let mut cal = Calendar::new();
        let mut live: std::collections::HashMap<u64, (usize, usize)> =
            std::collections::HashMap::new();
        let mut next_id = 0u64;
        let mut now = 0.0f64;
        let end_total = warmup + duration;
        let t0 = warmup;
        let batch_len = duration / batches as f64;

        #[derive(Clone, Copy, Default)]
        struct Counts {
            offered: u64,
            blocked: u64,
            hot_offered: u64,
            hot_blocked: u64,
        }
        let mut per_batch = vec![Counts::default(); batches];
        let mut hot_busy_time = 0.0f64;
        let mut cold_busy_time = 0.0f64;

        loop {
            let t_arr = now + sample_exp(&mut self.rng, 1.0 / total_rate);
            let t_dep = cal.peek_time().unwrap_or(f64::INFINITY);
            let t_next = t_arr.min(t_dep).min(end_total);
            // Accumulate utilisation time in the measurement window.
            let lo = now.max(t0);
            let hi = t_next.max(t0);
            if hi > lo {
                let dt = hi - lo;
                if busy_out[hot] {
                    hot_busy_time += dt;
                }
                let cold_busy = busy_out.iter().skip(1).filter(|&&b| b).count();
                cold_busy_time += cold_busy as f64 * dt;
            }
            if t_next >= end_total {
                break;
            }
            now = t_next;
            if t_dep <= t_arr {
                let ev = cal.pop().expect("peeked");
                let EventKind::Departure { connection, .. } = ev.kind;
                let (i, o) = live.remove(&connection).expect("live");
                busy_in[i] = false;
                busy_out[o] = false;
            } else {
                let input = self.rng.gen_range(0..n1);
                let output = if self.rng.gen::<f64>() < cfg.hot_fraction {
                    hot
                } else {
                    self.rng.gen_range(0..n2)
                };
                let accepted = !busy_in[input] && !busy_out[output];
                if now >= t0 {
                    let b = (((now - t0) / batch_len) as usize).min(batches - 1);
                    per_batch[b].offered += 1;
                    if output == hot {
                        per_batch[b].hot_offered += 1;
                    }
                    if !accepted {
                        per_batch[b].blocked += 1;
                        if output == hot {
                            per_batch[b].hot_blocked += 1;
                        }
                    }
                }
                if accepted {
                    busy_in[input] = true;
                    busy_out[output] = true;
                    let id = next_id;
                    next_id += 1;
                    live.insert(id, (input, output));
                    let hold = cfg.service.sample(&mut self.rng);
                    cal.schedule(
                        now + hold,
                        EventKind::Departure {
                            class: 0,
                            connection: id,
                        },
                    );
                }
            }
        }

        let ratio = |num: u64, den: u64| -> Option<f64> {
            if den > 0 {
                Some(num as f64 / den as f64)
            } else {
                None
            }
        };
        let blocking = BatchMeans::from_batches(
            per_batch
                .iter()
                .filter_map(|c| ratio(c.blocked, c.offered))
                .collect(),
        )
        .estimate();
        let hot_blocking = BatchMeans::from_batches(
            per_batch
                .iter()
                .filter_map(|c| ratio(c.hot_blocked, c.hot_offered))
                .collect(),
        )
        .estimate();
        let cold_blocking = BatchMeans::from_batches(
            per_batch
                .iter()
                .filter_map(|c| ratio(c.blocked - c.hot_blocked, c.offered - c.hot_offered))
                .collect(),
        )
        .estimate();

        HotspotReport {
            blocking,
            hot_blocking,
            cold_blocking,
            hot_utilisation: hot_busy_time / duration,
            cold_utilisation: cold_busy_time / (duration * (n2 as f64 - 1.0).max(1.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(h: f64) -> HotspotConfig {
        HotspotConfig {
            n1: 8,
            n2: 8,
            lambda: 0.02,
            hot_fraction: h,
            service: ServiceDist::Exponential { mean: 1.0 },
        }
    }

    #[test]
    fn hot_output_is_busier_and_blocks_more() {
        let mut sim = HotspotSim::new(base_cfg(0.3), 42);
        let rep = sim.run(100.0, 50_000.0, 10);
        assert!(
            rep.hot_utilisation > 2.0 * rep.cold_utilisation,
            "hot {} vs cold {}",
            rep.hot_utilisation,
            rep.cold_utilisation
        );
        assert!(
            rep.hot_blocking.mean > rep.cold_blocking.mean,
            "hot {} vs cold {}",
            rep.hot_blocking.mean,
            rep.cold_blocking.mean
        );
    }

    #[test]
    fn zero_hotspot_is_symmetric() {
        let mut sim = HotspotSim::new(base_cfg(0.0), 7);
        let rep = sim.run(100.0, 50_000.0, 10);
        // Hot output is just output 0; its utilisation matches the others.
        assert!(
            (rep.hot_utilisation - rep.cold_utilisation).abs() < 0.02,
            "hot {} vs cold {}",
            rep.hot_utilisation,
            rep.cold_utilisation
        );
    }

    #[test]
    fn more_hotspot_more_blocking() {
        let b0 = HotspotSim::new(base_cfg(0.0), 1).run(100.0, 30_000.0, 10);
        let b4 = HotspotSim::new(base_cfg(0.4), 1).run(100.0, 30_000.0, 10);
        assert!(
            b4.blocking.mean > b0.blocking.mean,
            "{} !> {}",
            b4.blocking.mean,
            b0.blocking.mean
        );
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_hot_fraction() {
        let _ = HotspotSim::new(base_cfg(1.0), 0);
    }
}

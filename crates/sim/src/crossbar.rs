//! The asynchronous crossbar discrete-event simulator.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xbar_numeric::permutation;
use xbar_traffic::TrafficClass;

use crate::events::{Calendar, EventKind};
use crate::service::{sample_exp, ServiceDist};
use crate::stats::{BatchMeans, Estimate};

/// Static simulation configuration: switch geometry plus one
/// (traffic class, holding-time distribution) pair per class.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Inputs `N1`.
    pub n1: u32,
    /// Outputs `N2`.
    pub n2: u32,
    /// Classes with their holding-time laws. The class's `μ` is used for
    /// the *rate* bookkeeping; the distribution's mean should equal `1/μ`
    /// (checked at construction).
    pub classes: Vec<(TrafficClass, ServiceDist)>,
}

impl SimConfig {
    /// An empty config for an `n1 × n2` switch.
    pub fn new(n1: u32, n2: u32) -> Self {
        SimConfig {
            n1,
            n2,
            classes: Vec::new(),
        }
    }

    /// Add a class (builder style).
    pub fn with_class(mut self, class: TrafficClass, service: ServiceDist) -> Self {
        self.classes.push((class, service));
        self
    }

    /// Add a class with its canonical exponential holding time.
    pub fn with_exp_class(self, class: TrafficClass) -> Self {
        let mu = class.mu;
        self.with_class(class, ServiceDist::exponential(mu))
    }
}

/// Run-length parameters.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Transient period discarded before measurement starts.
    pub warmup: f64,
    /// Measured simulation time (after warmup).
    pub duration: f64,
    /// Number of batches for the batch-means confidence intervals.
    pub batches: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup: 1_000.0,
            duration: 100_000.0,
            batches: 20,
        }
    }
}

/// Per-class simulation output.
#[derive(Clone, Debug)]
pub struct ClassReport {
    /// Requests generated during the measurement window.
    pub offered: u64,
    /// Requests that found all their ports idle.
    pub accepted: u64,
    /// Requests cleared.
    pub blocked: u64,
    /// Call-level blocking ratio (blocked/offered) with CI.
    pub blocking: Estimate,
    /// Time-average number of connections in progress with CI.
    pub concurrency: Estimate,
    /// Time-average probability that a uniformly-chosen port tuple for this
    /// class is entirely idle — the simulation analogue of the paper's
    /// `B_r` (eq. 4), with CI.
    pub availability: Estimate,
}

/// Whole-run simulation output.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Measured (post-warmup) simulated time.
    pub duration: f64,
    /// Events processed in the measurement window.
    pub events: u64,
    /// Per-class reports, in config order.
    pub classes: Vec<ClassReport>,
    /// Revenue rate `Σ_r w_r·E_r` using measured concurrency.
    pub revenue: f64,
    /// Time-weighted distribution of the total port occupancy `k·A`
    /// (index = busy input count), normalised.
    pub occupancy: Vec<f64>,
}

struct LiveConn {
    class: usize,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
}

/// Per-class batch accumulators.
#[derive(Clone, Default)]
struct ClassBatch {
    offered: u64,
    blocked: u64,
    k_time: f64,    // ∫ k_r dt
    avail_time: f64, // ∫ P(tuple idle) dt
}

/// The simulator.
pub struct CrossbarSim {
    cfg: SimConfig,
    rng: StdRng,
    now: f64,
    busy_in: Vec<bool>,
    busy_out: Vec<bool>,
    /// Total busy inputs (= busy outputs, since every connection takes
    /// `a_r` of each).
    occupancy: u32,
    k: Vec<u64>,
    live: HashMap<u64, LiveConn>,
    next_conn: u64,
    cal: Calendar,
    /// `P(N1,a_r)·P(N2,a_r)` per class: the ordered-tuple count the
    /// aggregate arrival rate is proportional to (see crate docs).
    tuple_count: Vec<f64>,
}

impl CrossbarSim {
    /// Build a simulator from a config and an RNG seed.
    ///
    /// # Panics
    /// Panics if a class is invalid for the geometry or a service
    /// distribution's mean disagrees with the class's `1/μ`.
    pub fn new(cfg: SimConfig, seed: u64) -> Self {
        assert!(cfg.n1 >= 1 && cfg.n2 >= 1, "switch must have ports");
        assert!(!cfg.classes.is_empty(), "need at least one class");
        let max_n = cfg.n1.max(cfg.n2);
        for (i, (class, service)) in cfg.classes.iter().enumerate() {
            class
                .validate(max_n)
                .unwrap_or_else(|e| panic!("class {i}: {e}"));
            assert!(
                class.bandwidth <= cfg.n1.min(cfg.n2),
                "class {i}: bandwidth exceeds switch"
            );
            let want = 1.0 / class.mu;
            assert!(
                (service.mean() - want).abs() <= 1e-9 * want,
                "class {i}: service mean {} != 1/mu = {want}",
                service.mean()
            );
        }
        let tuple_count = cfg
            .classes
            .iter()
            .map(|(c, _)| {
                permutation(cfg.n1 as u64, c.bandwidth as u64)
                    * permutation(cfg.n2 as u64, c.bandwidth as u64)
            })
            .collect();
        let r = cfg.classes.len();
        CrossbarSim {
            busy_in: vec![false; cfg.n1 as usize],
            busy_out: vec![false; cfg.n2 as usize],
            occupancy: 0,
            k: vec![0; r],
            live: HashMap::new(),
            next_conn: 0,
            cal: Calendar::new(),
            rng: StdRng::seed_from_u64(seed),
            now: 0.0,
            tuple_count,
            cfg,
        }
    }

    /// Current per-class connection counts (diagnostic).
    pub fn state(&self) -> &[u64] {
        &self.k
    }

    /// Aggregate arrival rate of class `r` in the current state.
    fn arrival_rate(&self, r: usize) -> f64 {
        self.tuple_count[r] * self.cfg.classes[r].0.lambda(self.k[r])
    }

    /// Probability a uniformly-chosen class-`r` port tuple is fully idle in
    /// the current state.
    fn availability(&self, r: usize) -> f64 {
        let a = self.cfg.classes[r].0.bandwidth as u64;
        let free1 = (self.cfg.n1 - self.occupancy) as u64;
        let free2 = (self.cfg.n2 - self.occupancy) as u64;
        permutation(free1, a) * permutation(free2, a) / self.tuple_count[r]
    }

    /// Draw `count` distinct indices in `0..n`, reporting whether all were
    /// idle in `busy`.
    fn draw_ports(rng: &mut StdRng, busy: &[bool], count: u32) -> (Vec<u32>, bool) {
        let n = busy.len();
        // Partial Fisher–Yates over a scratch index list is O(n); for the
        // small port counts here that is cheaper than fancier sampling.
        let mut picked = Vec::with_capacity(count as usize);
        let mut all_free = true;
        while picked.len() < count as usize {
            let cand = rng.gen_range(0..n) as u32;
            if picked.contains(&cand) {
                continue;
            }
            if busy[cand as usize] {
                all_free = false;
            }
            picked.push(cand);
        }
        (picked, all_free)
    }

    /// Run for `run.warmup + run.duration` sim-time and report measures
    /// over the measurement window.
    pub fn run(&mut self, run: RunConfig) -> SimReport {
        assert!(run.batches >= 1, "need at least one batch");
        assert!(run.duration > 0.0);
        let r_count = self.cfg.classes.len();

        // Warmup: advance without recording.
        let warmup_end = self.now + run.warmup;
        self.advance_until(warmup_end, &mut |_| {});

        let t0 = self.now;
        let batch_len = run.duration / run.batches as f64;
        let mut batches: Vec<Vec<ClassBatch>> =
            vec![vec![ClassBatch::default(); r_count]; run.batches];
        let mut occupancy_time = vec![0.0f64; self.cfg.n1.min(self.cfg.n2) as usize + 1];
        let mut events = 0u64;

        // The recorder distributes elapsed time (and counts) into batches;
        // state snapshots arrive through the callback argument so the
        // closure doesn't alias `self`.
        let end = t0 + run.duration;
        let batch_of = |t: f64| -> usize {
            (((t - t0) / batch_len) as usize).min(run.batches - 1)
        };

        self.advance_until(end, &mut |rec: Record| match rec {
            Record::Elapse {
                from,
                to,
                k,
                avail,
                occ,
            } => {
                // Split [from, to) across batch boundaries.
                let mut cur = from;
                while cur < to {
                    let b = batch_of(cur);
                    let stop = (t0 + (b + 1) as f64 * batch_len).min(to);
                    let dt = stop - cur;
                    for r in 0..r_count {
                        batches[b][r].k_time += k[r] as f64 * dt;
                        batches[b][r].avail_time += avail[r] * dt;
                    }
                    occupancy_time[occ as usize] += dt;
                    cur = stop;
                }
            }
            Record::Offered { class, at, blocked } => {
                let b = batch_of(at);
                batches[b][class].offered += 1;
                if blocked {
                    batches[b][class].blocked += 1;
                }
            }
            Record::Event => events += 1,
        });

        // Aggregate.
        let mut classes = Vec::with_capacity(r_count);
        let mut revenue = 0.0;
        for r in 0..r_count {
            let mut offered = 0u64;
            let mut blocked = 0u64;
            let mut blocking_batches = Vec::new();
            let mut conc_batches = Vec::new();
            let mut avail_batches = Vec::new();
            for b in batches.iter() {
                let cb = &b[r];
                offered += cb.offered;
                blocked += cb.blocked;
                if cb.offered > 0 {
                    blocking_batches.push(cb.blocked as f64 / cb.offered as f64);
                }
                conc_batches.push(cb.k_time / batch_len);
                avail_batches.push(cb.avail_time / batch_len);
            }
            let concurrency = BatchMeans::from_batches(conc_batches).estimate();
            revenue += self.cfg.classes[r].0.weight * concurrency.mean;
            classes.push(ClassReport {
                offered,
                accepted: offered - blocked,
                blocked,
                blocking: BatchMeans::from_batches(blocking_batches).estimate(),
                concurrency,
                availability: BatchMeans::from_batches(avail_batches).estimate(),
            });
        }
        let total_occ: f64 = occupancy_time.iter().sum();
        let occupancy = occupancy_time.iter().map(|t| t / total_occ).collect();

        SimReport {
            duration: run.duration,
            events,
            classes,
            revenue,
            occupancy,
        }
    }

    /// Core event loop with a recording callback. Generic over the record
    /// sink so warmup can run it with a no-op.
    fn advance_until<F>(&mut self, end: f64, record: &mut F)
    where
        F: FnMut(Record),
    {
        let r_count = self.cfg.classes.len();
        loop {
            // Total arrival rate in the current state.
            let rates: Vec<f64> = (0..r_count).map(|r| self.arrival_rate(r)).collect();
            let total_rate: f64 = rates.iter().sum();

            // Candidate next arrival (memoryless ⇒ resampling each event is
            // distributionally exact).
            let t_arrival = if total_rate > 0.0 {
                self.now + sample_exp(&mut self.rng, 1.0 / total_rate)
            } else {
                f64::INFINITY
            };
            let t_departure = self.cal.peek_time().unwrap_or(f64::INFINITY);
            let t_next = t_arrival.min(t_departure).min(end);

            // Record the elapsed interval in the *current* state.
            let avail: Vec<f64> = (0..r_count).map(|r| self.availability(r)).collect();
            record(Record::Elapse {
                from: self.now,
                to: t_next,
                k: self.k.clone(),
                avail,
                occ: self.occupancy,
            });

            if t_next >= end {
                self.now = end;
                return;
            }
            self.now = t_next;
            record(Record::Event);

            if t_departure <= t_arrival {
                // Departure.
                let ev = self.cal.pop().expect("peeked");
                let EventKind::Departure { class, connection } = ev.kind;
                let conn = self.live.remove(&connection).expect("live connection");
                debug_assert_eq!(conn.class, class);
                for &i in &conn.inputs {
                    self.busy_in[i as usize] = false;
                }
                for &o in &conn.outputs {
                    self.busy_out[o as usize] = false;
                }
                self.occupancy -= self.cfg.classes[class].0.bandwidth;
                self.k[class] -= 1;
            } else {
                // Arrival: pick the class proportional to its rate.
                let mut pick = self.rng.gen::<f64>() * total_rate;
                let mut class = r_count - 1;
                for (r, &rate) in rates.iter().enumerate() {
                    if pick < rate {
                        class = r;
                        break;
                    }
                    pick -= rate;
                }
                let a = self.cfg.classes[class].0.bandwidth;
                let (inputs, in_free) = Self::draw_ports(&mut self.rng, &self.busy_in, a);
                let (outputs, out_free) = Self::draw_ports(&mut self.rng, &self.busy_out, a);
                let accepted = in_free && out_free;
                record(Record::Offered {
                    class,
                    at: self.now,
                    blocked: !accepted,
                });
                if accepted {
                    for &i in &inputs {
                        self.busy_in[i as usize] = true;
                    }
                    for &o in &outputs {
                        self.busy_out[o as usize] = true;
                    }
                    self.occupancy += a;
                    self.k[class] += 1;
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.live.insert(
                        id,
                        LiveConn {
                            class,
                            inputs,
                            outputs,
                        },
                    );
                    let hold = self.cfg.classes[class].1.sample(&mut self.rng);
                    self.cal.schedule(
                        self.now + hold,
                        EventKind::Departure {
                            class,
                            connection: id,
                        },
                    );
                }
            }
        }
    }
}

// The Record enum must be nameable by both `run` and `advance_until`;
// hoist it out of the method (kept private to the module).
use record::Record;
mod record {
    pub(super) enum Record {
        Elapse {
            from: f64,
            to: f64,
            k: Vec<u64>,
            avail: Vec<f64>,
            occ: u32,
        },
        Offered {
            class: usize,
            at: f64,
            blocked: bool,
        },
        Event,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_cfg(n: u32, rho: f64) -> SimConfig {
        SimConfig::new(n, n).with_exp_class(TrafficClass::poisson(rho))
    }

    #[test]
    fn conservation_counters_add_up() {
        let mut sim = CrossbarSim::new(poisson_cfg(4, 0.1), 1);
        let rep = sim.run(RunConfig {
            warmup: 10.0,
            duration: 2_000.0,
            batches: 10,
        });
        let c = &rep.classes[0];
        assert_eq!(c.offered, c.accepted + c.blocked);
        assert!(c.offered > 1000, "{}", c.offered);
        assert!(rep.events > 0);
    }

    #[test]
    fn occupancy_distribution_normalises_and_bounds() {
        let mut sim = CrossbarSim::new(poisson_cfg(4, 0.3), 2);
        let rep = sim.run(RunConfig {
            warmup: 10.0,
            duration: 1_000.0,
            batches: 5,
        });
        assert_eq!(rep.occupancy.len(), 5);
        let total: f64 = rep.occupancy.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let r1 = CrossbarSim::new(poisson_cfg(4, 0.2), 7).run(RunConfig::default());
        let r2 = CrossbarSim::new(poisson_cfg(4, 0.2), 7).run(RunConfig::default());
        assert_eq!(r1.classes[0].offered, r2.classes[0].offered);
        assert_eq!(r1.classes[0].blocked, r2.classes[0].blocked);
        assert_eq!(r1.events, r2.events);
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = CrossbarSim::new(poisson_cfg(4, 0.2), 7).run(RunConfig::default());
        let r2 = CrossbarSim::new(poisson_cfg(4, 0.2), 8).run(RunConfig::default());
        assert_ne!(r1.classes[0].offered, r2.classes[0].offered);
    }

    #[test]
    fn zero_load_class_never_blocks() {
        // A Bernoulli class with S = max_n sources all at tiny rate plus an
        // essentially idle Poisson class: at near-zero load nothing blocks.
        let cfg = SimConfig::new(4, 4).with_exp_class(TrafficClass::poisson(1e-6));
        let mut sim = CrossbarSim::new(cfg, 3);
        let rep = sim.run(RunConfig {
            warmup: 0.0,
            duration: 10_000.0,
            batches: 5,
        });
        assert_eq!(rep.classes[0].blocked, 0);
    }

    #[test]
    fn saturating_load_blocks_heavily() {
        let mut sim = CrossbarSim::new(poisson_cfg(2, 50.0), 4);
        let rep = sim.run(RunConfig {
            warmup: 50.0,
            duration: 2_000.0,
            batches: 10,
        });
        assert!(
            rep.classes[0].blocking.mean > 0.5,
            "{}",
            rep.classes[0].blocking.mean
        );
    }

    #[test]
    fn multirate_class_occupies_multiple_ports() {
        let cfg = SimConfig::new(4, 4)
            .with_exp_class(TrafficClass::poisson(0.05).with_bandwidth(2));
        let mut sim = CrossbarSim::new(cfg, 5);
        let rep = sim.run(RunConfig {
            warmup: 10.0,
            duration: 2_000.0,
            batches: 10,
        });
        // Occupancy histogram only has even entries populated.
        assert!(rep.occupancy[1] == 0.0 && rep.occupancy[3] == 0.0);
        assert!(rep.occupancy[2] > 0.0);
    }

    #[test]
    #[should_panic(expected = "service mean")]
    fn rejects_mismatched_service_mean() {
        let cfg = SimConfig::new(2, 2).with_class(
            TrafficClass::poisson(0.1), // mu = 1
            ServiceDist::Deterministic { mean: 2.0 },
        );
        let _ = CrossbarSim::new(cfg, 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth exceeds switch")]
    fn rejects_oversized_bandwidth() {
        let cfg = SimConfig::new(2, 2)
            .with_exp_class(TrafficClass::poisson(0.1).with_bandwidth(3));
        let _ = CrossbarSim::new(cfg, 0);
    }

    #[test]
    fn n1x1_matches_erlang_one_line() {
        // A 1×1 crossbar with Poisson traffic is an M/M/1/1 loss system:
        // blocking = ρ/(1+ρ).
        let rho = 0.5;
        let mut sim = CrossbarSim::new(poisson_cfg(1, rho), 11);
        let rep = sim.run(RunConfig {
            warmup: 100.0,
            duration: 200_000.0,
            batches: 20,
        });
        let want = rho / (1.0 + rho);
        let got = &rep.classes[0].blocking;
        assert!(
            got.covers_with_slack(want, 0.01),
            "blocking {got:?}, want {want}"
        );
        // Availability (paper B) equals 1 − blocking here.
        assert!(rep.classes[0]
            .availability
            .covers_with_slack(1.0 - want, 0.01));
    }
}

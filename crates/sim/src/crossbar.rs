//! The asynchronous crossbar discrete-event simulator.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xbar_numeric::permutation;
use xbar_traffic::{TrafficClass, TrafficError};

use crate::events::{Calendar, EventKind};
use crate::faults::{FaultConfig, FaultLayer, FaultReport, Side};
use crate::rates::RateTable;
use crate::service::{sample_exp, ServiceDist};
use crate::stats::{BatchMeans, Confidence, Estimate};

/// Static simulation configuration: switch geometry plus one
/// (traffic class, holding-time distribution) pair per class.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Inputs `N1`.
    pub n1: u32,
    /// Outputs `N2`.
    pub n2: u32,
    /// Classes with their holding-time laws. The class's `μ` is used for
    /// the *rate* bookkeeping; the distribution's mean should equal `1/μ`
    /// (checked at construction).
    pub classes: Vec<(TrafficClass, ServiceDist)>,
    /// Port-failure injection (off by default; see [`FaultConfig`]).
    pub faults: FaultConfig,
}

impl SimConfig {
    /// An empty config for an `n1 × n2` switch.
    pub fn new(n1: u32, n2: u32) -> Self {
        SimConfig {
            n1,
            n2,
            classes: Vec::new(),
            faults: FaultConfig::none(),
        }
    }

    /// Add a class (builder style).
    pub fn with_class(mut self, class: TrafficClass, service: ServiceDist) -> Self {
        self.classes.push((class, service));
        self
    }

    /// Add a class with its canonical exponential holding time.
    pub fn with_exp_class(self, class: TrafficClass) -> Self {
        let mu = class.mu;
        self.with_class(class, ServiceDist::exponential(mu))
    }

    /// Enable port-failure injection (builder style).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }
}

/// Why a simulator could not be constructed from a [`SimConfig`].
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// `n1` or `n2` is zero.
    NoPorts,
    /// The config has no traffic classes.
    NoClasses,
    /// A class failed BPP validation for this geometry.
    InvalidClass {
        /// Index of the offending class in config order.
        index: usize,
        /// The underlying validation failure.
        source: TrafficError,
    },
    /// A class's bandwidth exceeds `min(n1, n2)`.
    BandwidthExceedsSwitch {
        /// Index of the offending class in config order.
        index: usize,
    },
    /// A service distribution's mean disagrees with the class's `1/μ`.
    ServiceMeanMismatch {
        /// Index of the offending class in config order.
        index: usize,
        /// The distribution's mean.
        got: f64,
        /// The class's `1/μ`.
        want: f64,
    },
    /// A fault rate is negative or non-finite.
    BadFaultRate {
        /// Which rate (`"fail_rate"` / `"repair_rate"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// More static port failures than ports on that side.
    TooManyFailedPorts {
        /// Which side overflows.
        side: Side,
        /// Statically failed ports requested.
        requested: u32,
        /// Ports available on that side.
        available: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoPorts => write!(f, "switch must have at least one input and one output"),
            SimError::NoClasses => write!(f, "need at least one traffic class"),
            SimError::InvalidClass { index, source } => write!(f, "class {index}: {source}"),
            SimError::BandwidthExceedsSwitch { index } => {
                write!(f, "class {index}: bandwidth exceeds switch")
            }
            SimError::ServiceMeanMismatch { index, got, want } => {
                write!(f, "class {index}: service mean {got} != 1/mu = {want}")
            }
            SimError::BadFaultRate { what, value } => {
                write!(f, "fault {what} must be finite and >= 0, got {value}")
            }
            SimError::TooManyFailedPorts {
                side,
                requested,
                available,
            } => write!(
                f,
                "cannot statically fail {requested} {side:?} ports of {available}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Run-length parameters.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Transient period discarded before measurement starts.
    pub warmup: f64,
    /// Measured simulation time (after warmup).
    pub duration: f64,
    /// Number of batches for the batch-means confidence intervals.
    pub batches: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup: 1_000.0,
            duration: 100_000.0,
            batches: 20,
        }
    }
}

/// Per-class simulation output.
#[derive(Clone, Debug)]
pub struct ClassReport {
    /// Requests generated during the measurement window.
    pub offered: u64,
    /// Requests that found all their ports idle.
    pub accepted: u64,
    /// Requests cleared (congestion *and* fault blocking).
    pub blocked: u64,
    /// Requests cleared solely because their drawn tuple touched a failed
    /// port (a subset of `blocked`; always `0` without fault injection).
    pub fault_blocked: u64,
    /// Call-level blocking ratio (blocked/offered) with CI.
    pub blocking: Estimate,
    /// Same point estimate with a 99% CI (wider quantile over the same
    /// batch means) — what the statistical sim-vs-analytic regression
    /// tests assert against.
    pub blocking_99: Estimate,
    /// Blocking ratio among *viable* requests — those whose drawn tuple
    /// avoided every failed port. Equals `blocking` without fault
    /// injection; with static failures it matches the blocking of the
    /// shrunken `(N1−f1) × (N2−f2)` crossbar.
    pub viable_blocking: Estimate,
    /// Time-average number of connections in progress with CI.
    pub concurrency: Estimate,
    /// Time-average probability that a uniformly-chosen port tuple for this
    /// class is entirely idle *and working* — the simulation analogue of
    /// the paper's `B_r` (eq. 4), with CI.
    pub availability: Estimate,
}

/// Whole-run simulation output.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Measured (post-warmup) simulated time.
    pub duration: f64,
    /// Events processed in the measurement window.
    pub events: u64,
    /// Per-class reports, in config order.
    pub classes: Vec<ClassReport>,
    /// Revenue rate `Σ_r w_r·E_r` using measured concurrency.
    pub revenue: f64,
    /// Time-weighted distribution of the total port occupancy `k·A`
    /// (index = busy input count), normalised.
    pub occupancy: Vec<f64>,
    /// Fault statistics — `Some` iff fault injection was enabled.
    pub faults: Option<FaultReport>,
}

struct LiveConn {
    class: usize,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
}

/// Per-class batch accumulators.
#[derive(Clone, Default)]
struct ClassBatch {
    offered: u64,
    blocked: u64,
    fault_blocked: u64,
    k_time: f64,     // ∫ k_r dt
    avail_time: f64, // ∫ P(tuple idle ∧ working) dt
}

/// The simulator.
pub struct CrossbarSim {
    cfg: SimConfig,
    rng: StdRng,
    now: f64,
    busy_in: Vec<bool>,
    busy_out: Vec<bool>,
    /// Total busy inputs (= busy outputs, since every connection takes
    /// `a_r` of each).
    occupancy: u32,
    k: Vec<u64>,
    live: HashMap<u64, LiveConn>,
    next_conn: u64,
    cal: Calendar,
    /// `P(N1,a_r)·P(N2,a_r)` per class: the ordered-tuple count the
    /// aggregate arrival rate is proportional to (see crate docs).
    tuple_count: Vec<f64>,
    faults: FaultLayer,
    /// Circuits torn down by port failures (whole run, incl. warmup).
    torn_down: u64,
    /// Resident per-class arrival rates — an event changes at most one
    /// class's rate, so the hot loop updates this in O(1) instead of
    /// rebuilding a `Vec` per event (see [`crate::rates`] for the
    /// bit-compatibility argument).
    arr_rates: RateTable,
    /// Resident per-class tuple availabilities, recomputed only when the
    /// occupancy or the failed-port sets change (blocked arrivals and
    /// end-of-interval events leave them untouched).
    avail: Vec<f64>,
}

impl CrossbarSim {
    /// Build a simulator from a config and an RNG seed.
    ///
    /// # Panics
    /// Panics if the config is invalid (see [`CrossbarSim::try_new`] for
    /// the panic-free variant and [`SimError`] for the cases).
    pub fn new(cfg: SimConfig, seed: u64) -> Self {
        Self::try_new(cfg, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build a simulator from a config and an RNG seed, rejecting invalid
    /// configs with a typed error instead of panicking.
    pub fn try_new(cfg: SimConfig, seed: u64) -> Result<Self, SimError> {
        if cfg.n1 < 1 || cfg.n2 < 1 {
            return Err(SimError::NoPorts);
        }
        if cfg.classes.is_empty() {
            return Err(SimError::NoClasses);
        }
        let max_n = cfg.n1.max(cfg.n2);
        for (index, (class, service)) in cfg.classes.iter().enumerate() {
            class
                .validate(max_n)
                .map_err(|source| SimError::InvalidClass { index, source })?;
            if class.bandwidth > cfg.n1.min(cfg.n2) {
                return Err(SimError::BandwidthExceedsSwitch { index });
            }
            let want = 1.0 / class.mu;
            if (service.mean() - want).abs() > 1e-9 * want {
                return Err(SimError::ServiceMeanMismatch {
                    index,
                    got: service.mean(),
                    want,
                });
            }
        }
        for (what, value) in [
            ("fail_rate", cfg.faults.fail_rate),
            ("repair_rate", cfg.faults.repair_rate),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(SimError::BadFaultRate { what, value });
            }
        }
        for (side, requested, available) in [
            (Side::Input, cfg.faults.fail_inputs, cfg.n1),
            (Side::Output, cfg.faults.fail_outputs, cfg.n2),
        ] {
            if requested > available {
                return Err(SimError::TooManyFailedPorts {
                    side,
                    requested,
                    available,
                });
            }
        }
        let tuple_count = cfg
            .classes
            .iter()
            .map(|(c, _)| {
                permutation(cfg.n1 as u64, c.bandwidth as u64)
                    * permutation(cfg.n2 as u64, c.bandwidth as u64)
            })
            .collect();
        let r = cfg.classes.len();
        Ok(CrossbarSim {
            busy_in: vec![false; cfg.n1 as usize],
            busy_out: vec![false; cfg.n2 as usize],
            occupancy: 0,
            k: vec![0; r],
            live: HashMap::new(),
            next_conn: 0,
            cal: Calendar::new(),
            rng: StdRng::seed_from_u64(seed),
            now: 0.0,
            tuple_count,
            faults: FaultLayer::new(cfg.faults.clone(), cfg.n1, cfg.n2),
            torn_down: 0,
            arr_rates: RateTable::new(r, false),
            avail: vec![0.0; r],
            cfg,
        })
    }

    /// Current per-class connection counts (diagnostic).
    pub fn state(&self) -> &[u64] {
        &self.k
    }

    /// Aggregate arrival rate of class `r` in the current state.
    fn arrival_rate(&self, r: usize) -> f64 {
        self.tuple_count[r] * self.cfg.classes[r].0.lambda(self.k[r])
    }

    /// Probability a uniformly-chosen class-`r` port tuple is fully idle
    /// *and working* in the current state. Busy and failed port sets are
    /// disjoint (a failing port's circuit is torn down), so the free count
    /// subtracts both.
    fn availability(&self, r: usize) -> f64 {
        let a = self.cfg.classes[r].0.bandwidth as u64;
        let free1 = (self.cfg.n1 - self.occupancy - self.faults.failed_in_count) as u64;
        let free2 = (self.cfg.n2 - self.occupancy - self.faults.failed_out_count) as u64;
        permutation(free1, a) * permutation(free2, a) / self.tuple_count[r]
    }

    /// Draw `count` distinct indices in `0..n`, reporting whether all were
    /// idle in `busy` and whether all were working per `failed`. The
    /// drawing consumes the same RNG stream regardless of fault state.
    fn draw_ports(
        rng: &mut StdRng,
        busy: &[bool],
        failed: &[bool],
        count: u32,
    ) -> (Vec<u32>, bool, bool) {
        let n = busy.len();
        // Partial Fisher–Yates over a scratch index list is O(n); for the
        // small port counts here that is cheaper than fancier sampling.
        let mut picked = Vec::with_capacity(count as usize);
        let mut all_free = true;
        let mut all_working = true;
        while picked.len() < count as usize {
            let cand = rng.gen_range(0..n) as u32;
            if picked.contains(&cand) {
                continue;
            }
            if busy[cand as usize] {
                all_free = false;
            }
            if failed[cand as usize] {
                all_working = false;
            }
            picked.push(cand);
        }
        (picked, all_free, all_working)
    }

    /// Run for `run.warmup + run.duration` sim-time and report measures
    /// over the measurement window.
    pub fn run(&mut self, run: RunConfig) -> SimReport {
        assert!(run.batches >= 1, "need at least one batch");
        assert!(run.duration > 0.0);
        let r_count = self.cfg.classes.len();

        // Warmup: advance without recording.
        let warmup_end = self.now + run.warmup;
        self.advance_until(warmup_end, &mut |_| {});

        let t0 = self.now;
        let batch_len = run.duration / run.batches as f64;
        let mut batches: Vec<Vec<ClassBatch>> =
            vec![vec![ClassBatch::default(); r_count]; run.batches];
        let mut occupancy_time = vec![0.0f64; self.cfg.n1.min(self.cfg.n2) as usize + 1];
        let mut events = 0u64;
        // Fault accounting: window-only deltas via snapshots, plus
        // time-integrals of the failed-port counts.
        let failures0 = self.faults.failures;
        let repairs0 = self.faults.repairs;
        let torn_down0 = self.torn_down;
        let mut failed_in_time = 0.0f64;
        let mut failed_out_time = 0.0f64;

        // The recorder distributes elapsed time (and counts) into batches;
        // state snapshots arrive through the callback argument so the
        // closure doesn't alias `self`.
        let end = t0 + run.duration;
        let batch_of = |t: f64| -> usize { (((t - t0) / batch_len) as usize).min(run.batches - 1) };

        self.advance_until(end, &mut |rec: Record| match rec {
            Record::Elapse {
                from,
                to,
                k,
                avail,
                occ,
                failed_in,
                failed_out,
            } => {
                failed_in_time += failed_in as f64 * (to - from);
                failed_out_time += failed_out as f64 * (to - from);
                // Split [from, to) across batch boundaries.
                let mut cur = from;
                while cur < to {
                    let b = batch_of(cur);
                    let stop = (t0 + (b + 1) as f64 * batch_len).min(to);
                    let dt = stop - cur;
                    for r in 0..r_count {
                        batches[b][r].k_time += k[r] as f64 * dt;
                        batches[b][r].avail_time += avail[r] * dt;
                    }
                    occupancy_time[occ as usize] += dt;
                    cur = stop;
                }
            }
            Record::Offered {
                class,
                at,
                blocked,
                fault_blocked,
            } => {
                let b = batch_of(at);
                batches[b][class].offered += 1;
                if blocked {
                    batches[b][class].blocked += 1;
                }
                if fault_blocked {
                    batches[b][class].fault_blocked += 1;
                }
            }
            Record::Event => events += 1,
        });

        // Aggregate.
        let mut classes = Vec::with_capacity(r_count);
        let mut revenue = 0.0;
        let mut fault_blocked_total = 0u64;
        for r in 0..r_count {
            let mut offered = 0u64;
            let mut blocked = 0u64;
            let mut fault_blocked = 0u64;
            let mut blocking_batches = Vec::new();
            let mut viable_batches = Vec::new();
            let mut conc_batches = Vec::new();
            let mut avail_batches = Vec::new();
            for b in batches.iter() {
                let cb = &b[r];
                offered += cb.offered;
                blocked += cb.blocked;
                fault_blocked += cb.fault_blocked;
                if cb.offered > 0 {
                    blocking_batches.push(cb.blocked as f64 / cb.offered as f64);
                }
                let viable = cb.offered - cb.fault_blocked;
                if viable > 0 {
                    viable_batches.push((cb.blocked - cb.fault_blocked) as f64 / viable as f64);
                }
                conc_batches.push(cb.k_time / batch_len);
                avail_batches.push(cb.avail_time / batch_len);
            }
            fault_blocked_total += fault_blocked;
            let concurrency = BatchMeans::from_batches(conc_batches).estimate();
            revenue += self.cfg.classes[r].0.weight * concurrency.mean;
            classes.push(ClassReport {
                offered,
                accepted: offered - blocked,
                blocked,
                fault_blocked,
                blocking: BatchMeans::from_batches(blocking_batches.clone())
                    .estimate_at(Confidence::P95),
                blocking_99: BatchMeans::from_batches(blocking_batches)
                    .estimate_at(Confidence::P99),
                viable_blocking: BatchMeans::from_batches(viable_batches).estimate(),
                concurrency,
                availability: BatchMeans::from_batches(avail_batches).estimate(),
            });
        }
        let total_occ: f64 = occupancy_time.iter().sum();
        let occupancy = occupancy_time.iter().map(|t| t / total_occ).collect();

        // Flush aggregate obs counters once, after the event loop: the hot
        // loop and the RNG stream stay untouched, and the totals are
        // deterministic for a fixed seed regardless of whether metrics are
        // being collected.
        if xbar_obs::enabled() {
            let offered: u64 = classes.iter().map(|c| c.offered).sum();
            let blocked: u64 = classes.iter().map(|c| c.blocked).sum();
            xbar_obs::inc("sim.runs");
            xbar_obs::add("sim.offers", offered);
            xbar_obs::add("sim.admitted", offered - blocked);
            xbar_obs::add("sim.blocked.capacity", blocked - fault_blocked_total);
            xbar_obs::add("sim.blocked.fault", fault_blocked_total);
            xbar_obs::add("sim.events", events);
            xbar_obs::add("sim.port_failures", self.faults.failures - failures0);
            xbar_obs::add("sim.port_repairs", self.faults.repairs - repairs0);
            xbar_obs::add("sim.teardowns", self.torn_down - torn_down0);
        }

        let faults = self.faults.enabled().then(|| FaultReport {
            failures: self.faults.failures - failures0,
            repairs: self.faults.repairs - repairs0,
            torn_down: self.torn_down - torn_down0,
            fault_blocked: fault_blocked_total,
            mean_failed_inputs: failed_in_time / run.duration,
            mean_failed_outputs: failed_out_time / run.duration,
        });

        SimReport {
            duration: run.duration,
            events,
            classes,
            revenue,
            occupancy,
            faults,
        }
    }

    /// Tear down the (at most one — ports are held exclusively) live
    /// circuit occupying the just-failed port. Its scheduled departure
    /// stays in the calendar as a stale entry the event loop skips.
    /// Returns the torn-down circuit's class so the caller can refresh
    /// that class's resident arrival rate.
    fn tear_down_port(&mut self, side: Side, port: u32) -> Option<usize> {
        let victim = self.live.iter().find_map(|(&id, conn)| {
            let ports = match side {
                Side::Input => &conn.inputs,
                Side::Output => &conn.outputs,
            };
            ports.contains(&port).then_some(id)
        });
        victim.map(|id| {
            let conn = self.live.remove(&id).expect("id came from live");
            for &i in &conn.inputs {
                self.busy_in[i as usize] = false;
            }
            for &o in &conn.outputs {
                self.busy_out[o as usize] = false;
            }
            self.occupancy -= self.cfg.classes[conn.class].0.bandwidth;
            self.k[conn.class] -= 1;
            self.torn_down += 1;
            conn.class
        })
    }

    /// Refresh class `r`'s resident arrival rate after a `k[r]` change.
    fn refresh_class_rate(&mut self, r: usize) {
        let v = self.arrival_rate(r);
        self.arr_rates.set(r, v);
    }

    /// Refresh every class's resident availability after an occupancy or
    /// failed-port change. O(R·a) — the same work the legacy loop paid on
    /// *every* event, now paid only on state-changing ones.
    fn refresh_avail(&mut self) {
        for r in 0..self.cfg.classes.len() {
            let v = self.availability(r);
            self.avail[r] = v;
        }
    }

    /// Rebuild both resident caches from the current state (loop entry —
    /// state may have changed since the previous `advance_until` call).
    fn refresh_residents(&mut self) {
        for r in 0..self.cfg.classes.len() {
            self.refresh_class_rate(r);
        }
        self.refresh_avail();
    }

    /// Core event loop with a recording callback. Generic over the record
    /// sink so warmup can run it with a no-op.
    ///
    /// The loop keeps the per-class arrival rates and availabilities
    /// *resident* ([`Self::refresh_residents`]): only state-changing
    /// events (accepted arrivals, live departures, fault transitions)
    /// touch them, and the [`Record::Elapse`] snapshot borrows the
    /// resident buffers instead of allocating per event. The total-rate
    /// fold, the class-selection scan, and every RNG draw are unchanged,
    /// so runs are bit-for-bit identical to the legacy rebuild loop
    /// (pinned by the golden-stream tests).
    fn advance_until<F>(&mut self, end: f64, record: &mut F)
    where
        F: for<'a> FnMut(Record<'a>),
    {
        self.refresh_residents();
        loop {
            // Total arrival rate in the current state (cached; re-summed
            // in the legacy fold order only after a rate changed).
            let total_rate = self.arr_rates.total();

            // Candidate next arrival (memoryless ⇒ resampling each event is
            // distributionally exact).
            let t_arrival = if total_rate > 0.0 {
                self.now + sample_exp(&mut self.rng, 1.0 / total_rate)
            } else {
                f64::INFINITY
            };
            // Candidate next fault transition — same resampling argument
            // (the fail/repair clocks are exponential too). The branch is
            // guarded by `dynamic()` so fault-free runs consume the exact
            // same RNG stream as before the fault layer existed.
            let t_fault = if self.faults.dynamic() {
                let rate = self.faults.transition_rate();
                if rate > 0.0 {
                    self.now + sample_exp(&mut self.rng, 1.0 / rate)
                } else {
                    f64::INFINITY
                }
            } else {
                f64::INFINITY
            };
            let t_departure = self.cal.peek_time().unwrap_or(f64::INFINITY);
            let t_next = t_arrival.min(t_departure).min(t_fault).min(end);

            // Record the elapsed interval in the *current* state. The
            // snapshot borrows the live buffers — the recorder consumes it
            // during the call, so no per-event clone is needed.
            record(Record::Elapse {
                from: self.now,
                to: t_next,
                k: &self.k,
                avail: &self.avail,
                occ: self.occupancy,
                failed_in: self.faults.failed_in_count,
                failed_out: self.faults.failed_out_count,
            });

            if t_next >= end {
                self.now = end;
                return;
            }
            self.now = t_next;
            record(Record::Event);

            if t_fault < t_departure && t_fault < t_arrival {
                // Port fail/repair transition.
                let tr = self.faults.sample_transition(&mut self.rng);
                if tr.is_failure {
                    if let Some(class) = self.tear_down_port(tr.side, tr.port) {
                        self.refresh_class_rate(class);
                    }
                }
                // Both failures and repairs move the failed-port counts.
                self.refresh_avail();
            } else if t_departure <= t_arrival {
                // Departure. A circuit torn down by a port failure leaves
                // its departure behind as a stale calendar entry — skip it.
                let ev = self.cal.pop().expect("peeked");
                let EventKind::Departure { class, connection } = ev.kind;
                if let Some(conn) = self.live.remove(&connection) {
                    debug_assert_eq!(conn.class, class);
                    for &i in &conn.inputs {
                        self.busy_in[i as usize] = false;
                    }
                    for &o in &conn.outputs {
                        self.busy_out[o as usize] = false;
                    }
                    self.occupancy -= self.cfg.classes[class].0.bandwidth;
                    self.k[class] -= 1;
                    self.refresh_class_rate(class);
                    self.refresh_avail();
                }
            } else {
                // Arrival: pick the class proportional to its rate — the
                // legacy subtractive scan, via the resident table.
                let pick = self.rng.gen::<f64>() * total_rate;
                let class = self.arr_rates.select(pick);
                let a = self.cfg.classes[class].0.bandwidth;
                let (inputs, in_free, in_working) =
                    Self::draw_ports(&mut self.rng, &self.busy_in, &self.faults.failed_in, a);
                let (outputs, out_free, out_working) =
                    Self::draw_ports(&mut self.rng, &self.busy_out, &self.faults.failed_out, a);
                let working = in_working && out_working;
                let accepted = in_free && out_free && working;
                record(Record::Offered {
                    class,
                    at: self.now,
                    blocked: !accepted,
                    fault_blocked: !working,
                });
                if accepted {
                    for &i in &inputs {
                        self.busy_in[i as usize] = true;
                    }
                    for &o in &outputs {
                        self.busy_out[o as usize] = true;
                    }
                    self.occupancy += a;
                    self.k[class] += 1;
                    self.refresh_class_rate(class);
                    self.refresh_avail();
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.live.insert(
                        id,
                        LiveConn {
                            class,
                            inputs,
                            outputs,
                        },
                    );
                    let hold = self.cfg.classes[class].1.sample(&mut self.rng);
                    self.cal.schedule(
                        self.now + hold,
                        EventKind::Departure {
                            class,
                            connection: id,
                        },
                    );
                }
            }
        }
    }
}

// The Record enum must be nameable by both `run` and `advance_until`;
// hoist it out of the method (kept private to the module).
use record::Record;
mod record {
    pub(super) enum Record<'a> {
        Elapse {
            from: f64,
            to: f64,
            k: &'a [u64],
            avail: &'a [f64],
            occ: u32,
            failed_in: u32,
            failed_out: u32,
        },
        Offered {
            class: usize,
            at: f64,
            blocked: bool,
            fault_blocked: bool,
        },
        Event,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_cfg(n: u32, rho: f64) -> SimConfig {
        SimConfig::new(n, n).with_exp_class(TrafficClass::poisson(rho))
    }

    #[test]
    fn conservation_counters_add_up() {
        let mut sim = CrossbarSim::new(poisson_cfg(4, 0.1), 1);
        let rep = sim.run(RunConfig {
            warmup: 10.0,
            duration: 2_000.0,
            batches: 10,
        });
        let c = &rep.classes[0];
        assert_eq!(c.offered, c.accepted + c.blocked);
        assert!(c.offered > 1000, "{}", c.offered);
        assert!(rep.events > 0);
    }

    #[test]
    fn occupancy_distribution_normalises_and_bounds() {
        let mut sim = CrossbarSim::new(poisson_cfg(4, 0.3), 2);
        let rep = sim.run(RunConfig {
            warmup: 10.0,
            duration: 1_000.0,
            batches: 5,
        });
        assert_eq!(rep.occupancy.len(), 5);
        let total: f64 = rep.occupancy.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let r1 = CrossbarSim::new(poisson_cfg(4, 0.2), 7).run(RunConfig::default());
        let r2 = CrossbarSim::new(poisson_cfg(4, 0.2), 7).run(RunConfig::default());
        assert_eq!(r1.classes[0].offered, r2.classes[0].offered);
        assert_eq!(r1.classes[0].blocked, r2.classes[0].blocked);
        assert_eq!(r1.events, r2.events);
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = CrossbarSim::new(poisson_cfg(4, 0.2), 7).run(RunConfig::default());
        let r2 = CrossbarSim::new(poisson_cfg(4, 0.2), 8).run(RunConfig::default());
        assert_ne!(r1.classes[0].offered, r2.classes[0].offered);
    }

    #[test]
    fn zero_load_class_never_blocks() {
        // A Bernoulli class with S = max_n sources all at tiny rate plus an
        // essentially idle Poisson class: at near-zero load nothing blocks.
        let cfg = SimConfig::new(4, 4).with_exp_class(TrafficClass::poisson(1e-6));
        let mut sim = CrossbarSim::new(cfg, 3);
        let rep = sim.run(RunConfig {
            warmup: 0.0,
            duration: 10_000.0,
            batches: 5,
        });
        assert_eq!(rep.classes[0].blocked, 0);
    }

    #[test]
    fn saturating_load_blocks_heavily() {
        let mut sim = CrossbarSim::new(poisson_cfg(2, 50.0), 4);
        let rep = sim.run(RunConfig {
            warmup: 50.0,
            duration: 2_000.0,
            batches: 10,
        });
        assert!(
            rep.classes[0].blocking.mean > 0.5,
            "{}",
            rep.classes[0].blocking.mean
        );
    }

    #[test]
    fn multirate_class_occupies_multiple_ports() {
        let cfg =
            SimConfig::new(4, 4).with_exp_class(TrafficClass::poisson(0.05).with_bandwidth(2));
        let mut sim = CrossbarSim::new(cfg, 5);
        let rep = sim.run(RunConfig {
            warmup: 10.0,
            duration: 2_000.0,
            batches: 10,
        });
        // Occupancy histogram only has even entries populated.
        assert!(rep.occupancy[1] == 0.0 && rep.occupancy[3] == 0.0);
        assert!(rep.occupancy[2] > 0.0);
    }

    #[test]
    #[should_panic(expected = "service mean")]
    fn rejects_mismatched_service_mean() {
        let cfg = SimConfig::new(2, 2).with_class(
            TrafficClass::poisson(0.1), // mu = 1
            ServiceDist::Deterministic { mean: 2.0 },
        );
        let _ = CrossbarSim::new(cfg, 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth exceeds switch")]
    fn rejects_oversized_bandwidth() {
        let cfg = SimConfig::new(2, 2).with_exp_class(TrafficClass::poisson(0.1).with_bandwidth(3));
        let _ = CrossbarSim::new(cfg, 0);
    }

    #[test]
    fn try_new_rejects_bad_configs_with_typed_errors() {
        let base = || poisson_cfg(4, 0.1);
        assert_eq!(
            CrossbarSim::try_new(SimConfig::new(0, 4), 0).err(),
            Some(SimError::NoPorts)
        );
        assert_eq!(
            CrossbarSim::try_new(SimConfig::new(4, 4), 0).err(),
            Some(SimError::NoClasses)
        );
        assert_eq!(
            CrossbarSim::try_new(
                base().with_faults(FaultConfig {
                    fail_rate: -1.0,
                    ..FaultConfig::none()
                }),
                0
            )
            .err(),
            Some(SimError::BadFaultRate {
                what: "fail_rate",
                value: -1.0
            })
        );
        assert_eq!(
            CrossbarSim::try_new(
                base().with_faults(FaultConfig::none().with_static_failures(0, 5)),
                0
            )
            .err(),
            Some(SimError::TooManyFailedPorts {
                side: Side::Output,
                requested: 5,
                available: 4
            })
        );
        assert!(CrossbarSim::try_new(base(), 0).is_ok());
    }

    #[test]
    fn zero_fault_rate_is_bit_for_bit_identical_to_no_faults() {
        // A config with the fault layer present but every mechanism off
        // must consume the exact same RNG stream as the plain config:
        // identical reports at equal seed, field for field.
        let run = RunConfig {
            warmup: 50.0,
            duration: 5_000.0,
            batches: 10,
        };
        let plain = CrossbarSim::new(poisson_cfg(4, 0.3), 99).run(run);
        let faulted = CrossbarSim::new(
            poisson_cfg(4, 0.3).with_faults(FaultConfig::from_mtbf_mttr(f64::INFINITY, 1.0)),
            99,
        )
        .run(run);
        assert_eq!(plain.events, faulted.events);
        assert_eq!(plain.occupancy, faulted.occupancy);
        assert_eq!(plain.revenue.to_bits(), faulted.revenue.to_bits());
        for (a, b) in plain.classes.iter().zip(faulted.classes.iter()) {
            assert_eq!(a.offered, b.offered);
            assert_eq!(a.blocked, b.blocked);
            assert_eq!(a.fault_blocked, 0);
            assert_eq!(b.fault_blocked, 0);
            assert_eq!(a.blocking.mean.to_bits(), b.blocking.mean.to_bits());
            assert_eq!(
                a.viable_blocking.mean.to_bits(),
                b.viable_blocking.mean.to_bits()
            );
            assert_eq!(a.concurrency.mean.to_bits(), b.concurrency.mean.to_bits());
            assert_eq!(a.availability.mean.to_bits(), b.availability.mean.to_bits());
        }
        assert_eq!(plain.faults, None);
        assert_eq!(faulted.faults, None);
    }

    #[test]
    fn static_failures_match_shrunken_switch_erlang() {
        // 3×3 with 2 inputs and 2 outputs statically failed carries its
        // viable traffic like a 1×1 switch: an M/M/1/1 loss system with
        // viable blocking ρ/(1+ρ).
        let rho = 0.5;
        let cfg = poisson_cfg(3, rho).with_faults(FaultConfig::none().with_static_failures(2, 2));
        let mut sim = CrossbarSim::new(cfg, 13);
        let rep = sim.run(RunConfig {
            warmup: 100.0,
            duration: 200_000.0,
            batches: 20,
        });
        let want = rho / (1.0 + rho);
        let got = &rep.classes[0].viable_blocking;
        assert!(
            got.covers_with_slack(want, 0.01),
            "viable blocking {got:?}, want {want}"
        );
        // Fault metadata: static failures never transition, every blocked
        // request that touched a dead port is fault-blocked, and the
        // time-average failed counts are exactly the static counts.
        let faults = rep.faults.expect("faults enabled");
        assert_eq!(faults.failures, 0);
        assert_eq!(faults.repairs, 0);
        assert_eq!(faults.torn_down, 0);
        assert_eq!(faults.fault_blocked, rep.classes[0].fault_blocked);
        assert!((faults.mean_failed_inputs - 2.0).abs() < 1e-9);
        assert!((faults.mean_failed_outputs - 2.0).abs() < 1e-9);
        // 8/9 of tuples touch a dead port, so most offers are fault-blocked.
        let frac = faults.fault_blocked as f64 / rep.classes[0].offered as f64;
        assert!((frac - 8.0 / 9.0).abs() < 0.02, "{frac}");
    }

    #[test]
    fn static_failures_match_shrunken_switch_analytic() {
        // 6×6 minus 2 inputs / 1 output ≡ 4×5 fault-free crossbar: the
        // faulted simulator's viable blocking must cover the analytic
        // solver's blocking for the shrunken geometry.
        use xbar_core::{solve, Algorithm, Dims, Model};
        use xbar_traffic::Workload;

        let class = TrafficClass::poisson(0.4);
        let cfg = SimConfig::new(6, 6)
            .with_exp_class(class.clone())
            .with_faults(FaultConfig::none().with_static_failures(2, 1));
        let mut sim = CrossbarSim::new(cfg, 21);
        let rep = sim.run(RunConfig {
            warmup: 200.0,
            duration: 150_000.0,
            batches: 20,
        });

        let model = Model::new(Dims::new(4, 5), Workload::new().with(class)).expect("valid model");
        let want = solve(&model, Algorithm::Auto)
            .expect("solvable")
            .blocking(0);
        let got = &rep.classes[0].viable_blocking;
        assert!(
            got.covers_with_slack(want, 0.005),
            "viable blocking {got:?}, analytic 4×5 blocking {want}"
        );
        // Availability integrates P(tuple idle ∧ working); its analogue in
        // the shrunken switch is the paper's B_r.
        let avail_scale = (4.0 * 5.0) / (6.0 * 6.0);
        let b = solve(&model, Algorithm::Auto)
            .expect("solvable")
            .nonblocking(0);
        assert!(
            rep.classes[0]
                .availability
                .covers_with_slack(b * avail_scale, 0.005),
            "availability {:?}, want {}",
            rep.classes[0].availability,
            b * avail_scale
        );
    }

    #[test]
    fn dynamic_faults_degrade_and_repair() {
        // Fast fail/repair on a lightly-loaded switch: transitions happen,
        // circuits get torn down, and the switch keeps carrying traffic.
        let cfg = poisson_cfg(4, 0.5).with_faults(FaultConfig::from_mtbf_mttr(50.0, 10.0));
        let mut sim = CrossbarSim::new(cfg, 17);
        let rep = sim.run(RunConfig {
            warmup: 100.0,
            duration: 50_000.0,
            batches: 10,
        });
        let faults = rep.faults.expect("faults enabled");
        assert!(faults.failures > 100, "{}", faults.failures);
        assert!(faults.repairs > 100, "{}", faults.repairs);
        assert!(faults.torn_down > 0);
        assert!(faults.fault_blocked > 0);
        // Per-port equilibrium failed fraction = fail/(fail+repair) = 1/6.
        let mean_failed = faults.mean_failed_inputs + faults.mean_failed_outputs;
        assert!(
            (mean_failed / 8.0 - 1.0 / 6.0).abs() < 0.03,
            "{mean_failed}"
        );
        // Conservation still holds and the switch still accepts calls.
        let c = &rep.classes[0];
        assert_eq!(c.offered, c.accepted + c.blocked);
        assert!(c.fault_blocked <= c.blocked);
        assert!(c.accepted > 0);
    }

    #[test]
    fn n1x1_matches_erlang_one_line() {
        // A 1×1 crossbar with Poisson traffic is an M/M/1/1 loss system:
        // blocking = ρ/(1+ρ).
        let rho = 0.5;
        let mut sim = CrossbarSim::new(poisson_cfg(1, rho), 11);
        let rep = sim.run(RunConfig {
            warmup: 100.0,
            duration: 200_000.0,
            batches: 20,
        });
        let want = rho / (1.0 + rho);
        let got = &rep.classes[0].blocking;
        assert!(
            got.covers_with_slack(want, 0.01),
            "blocking {got:?}, want {want}"
        );
        // Availability (paper B) equals 1 − blocking here.
        assert!(rep.classes[0]
            .availability
            .covers_with_slack(1.0 - want, 0.01));
    }
}

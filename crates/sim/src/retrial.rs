//! Retrial behaviour — probing the paper's "blocked requests are cleared"
//! assumption (§2: "recovery is managed by the corresponding end-points at
//! the boundaries of the network").
//!
//! In a real circuit-switched network the end-points *retry*. This
//! simulator gives each blocked request up to `max_attempts − 1` retries
//! after exponentially-distributed back-off, turning the loss system into
//! a retrial queue (which has no product form — hence simulation). The
//! interesting outputs are how much the *final* loss probability drops,
//! and how much extra port pressure the retry traffic creates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xbar_numeric::permutation;
use xbar_traffic::TrafficClass;

use crate::service::sample_exp;
use crate::stats::{BatchMeans, Estimate};

/// Configuration of the retrial experiment (single class, `a ≥ 1`).
#[derive(Clone, Debug)]
pub struct RetrialConfig {
    /// Inputs.
    pub n1: u32,
    /// Outputs.
    pub n2: u32,
    /// The traffic class (per-set parameters; `β` supported).
    pub class: TrafficClass,
    /// Total attempts allowed per call (1 = blocked-calls-cleared).
    pub max_attempts: u32,
    /// Mean back-off before a retry, in units of the holding time.
    pub backoff_mean: f64,
}

/// Outcome of a retrial run.
///
/// Accounting invariants (over measured-window calls, checked by tests):
/// `attempts = carried + blocked_attempts`,
/// `blocked_attempts = retries + lost`, and
/// `calls = carried + lost + pending`.
#[derive(Clone, Debug)]
pub struct RetrialReport {
    /// Fresh calls generated in the measurement window.
    pub calls: u64,
    /// Calls eventually carried (exactly one successful attempt each).
    pub carried: u64,
    /// Calls lost after exhausting their attempts.
    pub lost: u64,
    /// Calls still waiting in retry back-off when the run ended —
    /// "retried out" of the measurement window, neither carried nor lost.
    pub pending: u64,
    /// Total attempts made on behalf of measured calls.
    pub attempts: u64,
    /// Attempts that found a drawn port busy.
    pub blocked_attempts: u64,
    /// Retries scheduled for measured calls (fired or still pending).
    pub retries: u64,
    /// Final loss probability (lost/calls) with CI.
    pub loss: Estimate,
    /// Per-attempt blocking probability (across all attempts) with CI.
    pub attempt_blocking: Estimate,
    /// Mean attempts per call.
    pub mean_attempts: f64,
}

/// The retrial simulator.
pub struct RetrialSim {
    cfg: RetrialConfig,
    rng: StdRng,
}

#[derive(Clone, Copy)]
enum Pending {
    /// A retry of call `id` on its `attempt`-th try.
    Retry { id: u64, attempt: u32 },
    /// A departure releasing `a` ports starting at slot `slot` of `live`.
    Departure { live_slot: usize },
}

impl RetrialSim {
    /// Build from config and seed.
    pub fn new(cfg: RetrialConfig, seed: u64) -> Self {
        assert!(cfg.max_attempts >= 1);
        assert!(cfg.backoff_mean > 0.0);
        assert!(cfg.class.bandwidth <= cfg.n1.min(cfg.n2));
        RetrialSim {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Run for `warmup + duration` with `batches` batch means.
    pub fn run(&mut self, warmup: f64, duration: f64, batches: usize) -> RetrialReport {
        let cfg = self.cfg.clone();
        let a = cfg.class.bandwidth as usize;
        let (n1, n2) = (cfg.n1 as usize, cfg.n2 as usize);
        let tuples = permutation(cfg.n1 as u64, a as u64) * permutation(cfg.n2 as u64, a as u64);

        let mut busy_in = vec![false; n1];
        let mut busy_out = vec![false; n2];
        let mut k_live: u64 = 0;

        // Event list: (time, Pending).
        let mut events: std::collections::BinaryHeap<Ev> = std::collections::BinaryHeap::new();
        struct Ev(f64, u64, Pending);
        impl PartialEq for Ev {
            fn eq(&self, o: &Self) -> bool {
                self.0 == o.0 && self.1 == o.1
            }
        }
        impl Eq for Ev {}
        impl PartialOrd for Ev {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Ev {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                // Event times are always finite, so total_cmp agrees with
                // the numeric order while staying total (no unwrap).
                o.0.total_cmp(&self.0).then(o.1.cmp(&self.1))
            }
        }
        let mut seq = 0u64;
        let mut live: Vec<Option<(Vec<usize>, Vec<usize>)>> = Vec::new();

        let mut now = 0.0f64;
        let end = warmup + duration;
        let batch_len = duration / batches as f64;
        #[derive(Clone, Copy, Default)]
        struct Counts {
            calls: u64,
            lost: u64,
            attempts: u64,
            blocked_attempts: u64,
            retries: u64,
        }
        let mut per_batch = vec![Counts::default(); batches];
        let mut next_call = 0u64;
        // Track per-call attempt numbers for loss accounting.
        let mut call_batch: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();

        loop {
            let rate = tuples * cfg.class.lambda(k_live);
            let t_arr = if rate > 0.0 {
                now + sample_exp(&mut self.rng, 1.0 / rate)
            } else {
                f64::INFINITY
            };
            let t_ev = events.peek().map(|e| e.0).unwrap_or(f64::INFINITY);
            let t_next = t_arr.min(t_ev).min(end);
            if t_next >= end {
                break;
            }
            now = t_next;

            // Attempt-execution helper runs inline below; both fresh calls
            // and retries go through the same port draw.
            let attempt = |rng: &mut StdRng,
                           busy_in: &mut Vec<bool>,
                           busy_out: &mut Vec<bool>,
                           live: &mut Vec<Option<(Vec<usize>, Vec<usize>)>>,
                           events: &mut std::collections::BinaryHeap<Ev>,
                           seq: &mut u64,
                           k_live: &mut u64,
                           now: f64|
             -> bool {
                let draw = |rng: &mut StdRng, busy: &[bool], count: usize| {
                    let mut picked: Vec<usize> = Vec::with_capacity(count);
                    let mut free = true;
                    while picked.len() < count {
                        let c = rng.gen_range(0..busy.len());
                        if picked.contains(&c) {
                            continue;
                        }
                        if busy[c] {
                            free = false;
                        }
                        picked.push(c);
                    }
                    (picked, free)
                };
                let (ins, f1) = draw(rng, busy_in, a);
                let (outs, f2) = draw(rng, busy_out, a);
                if f1 && f2 {
                    for &i in &ins {
                        busy_in[i] = true;
                    }
                    for &o in &outs {
                        busy_out[o] = true;
                    }
                    *k_live += 1;
                    let slot = live.len();
                    live.push(Some((ins, outs)));
                    let hold = sample_exp(rng, 1.0 / cfg.class.mu);
                    *seq += 1;
                    events.push(Ev(now + hold, *seq, Pending::Departure { live_slot: slot }));
                    true
                } else {
                    false
                }
            };

            if t_ev <= t_arr {
                let Ev(_, _, pending) = events.pop().expect("t_ev finite implies a peeked event");
                match pending {
                    Pending::Departure { live_slot } => {
                        let (ins, outs) = live[live_slot].take().expect("live");
                        for i in ins {
                            busy_in[i] = false;
                        }
                        for o in outs {
                            busy_out[o] = false;
                        }
                        k_live -= 1;
                    }
                    Pending::Retry { id, attempt: n_try } => {
                        // Calls originating during warmup carry the
                        // usize::MAX sentinel: retry, but don't count.
                        let b = call_batch.get(&id).copied().filter(|&b| b != usize::MAX);
                        let ok = attempt(
                            &mut self.rng,
                            &mut busy_in,
                            &mut busy_out,
                            &mut live,
                            &mut events,
                            &mut seq,
                            &mut k_live,
                            now,
                        );
                        if let Some(b) = b {
                            per_batch[b].attempts += 1;
                            if !ok {
                                per_batch[b].blocked_attempts += 1;
                            }
                        }
                        if ok {
                            call_batch.remove(&id);
                        } else if n_try < cfg.max_attempts {
                            if let Some(b) = b {
                                per_batch[b].retries += 1;
                            }
                            let backoff =
                                sample_exp(&mut self.rng, cfg.backoff_mean / cfg.class.mu);
                            seq += 1;
                            events.push(Ev(
                                now + backoff,
                                seq,
                                Pending::Retry {
                                    id,
                                    attempt: n_try + 1,
                                },
                            ));
                        } else {
                            if let Some(b) = b {
                                per_batch[b].lost += 1;
                            }
                            call_batch.remove(&id);
                        }
                    }
                }
            } else {
                // Fresh call.
                let in_window = now >= warmup;
                let b = if in_window {
                    Some((((now - warmup) / batch_len) as usize).min(batches - 1))
                } else {
                    None
                };
                let id = next_call;
                next_call += 1;
                if let Some(b) = b {
                    per_batch[b].calls += 1;
                    per_batch[b].attempts += 1;
                }
                let ok = attempt(
                    &mut self.rng,
                    &mut busy_in,
                    &mut busy_out,
                    &mut live,
                    &mut events,
                    &mut seq,
                    &mut k_live,
                    now,
                );
                if !ok {
                    if let Some(b) = b {
                        per_batch[b].blocked_attempts += 1;
                    }
                    if cfg.max_attempts > 1 {
                        if let Some(b) = b {
                            call_batch.insert(id, b);
                            per_batch[b].retries += 1;
                        } else {
                            // Warmup calls retry too, but aren't counted.
                            call_batch.insert(id, usize::MAX);
                        }
                        let backoff = sample_exp(&mut self.rng, cfg.backoff_mean / cfg.class.mu);
                        seq += 1;
                        events.push(Ev(now + backoff, seq, Pending::Retry { id, attempt: 2 }));
                    } else if let Some(b) = b {
                        per_batch[b].lost += 1;
                    }
                }
            }
        }

        // Warmup-tagged retries used usize::MAX as a sentinel batch; they
        // were never counted. Clean aggregation:
        let per_batch: Vec<Counts> = per_batch;
        let calls: u64 = per_batch.iter().map(|c| c.calls).sum();
        let lost: u64 = per_batch.iter().map(|c| c.lost).sum();
        let attempts: u64 = per_batch.iter().map(|c| c.attempts).sum();
        let blocked_attempts: u64 = per_batch.iter().map(|c| c.blocked_attempts).sum();
        let retries: u64 = per_batch.iter().map(|c| c.retries).sum();
        // Measured calls still in back-off at `end` were "retried out":
        // they resolved neither way, so they are not carried.
        let pending = call_batch.values().filter(|&&b| b != usize::MAX).count() as u64;
        let loss = BatchMeans::from_batches(
            per_batch
                .iter()
                .filter(|c| c.calls > 0)
                .map(|c| c.lost as f64 / c.calls as f64)
                .collect(),
        )
        .estimate();
        let attempt_blocking = BatchMeans::from_batches(
            per_batch
                .iter()
                .filter(|c| c.attempts > 0)
                .map(|c| c.blocked_attempts as f64 / c.attempts as f64)
                .collect(),
        )
        .estimate();
        RetrialReport {
            calls,
            carried: calls - lost - pending,
            lost,
            pending,
            attempts,
            blocked_attempts,
            retries,
            loss,
            attempt_blocking,
            mean_attempts: if calls > 0 {
                attempts as f64 / calls as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_attempts: u32) -> RetrialConfig {
        RetrialConfig {
            n1: 6,
            n2: 6,
            class: TrafficClass::poisson(0.05),
            max_attempts,
            backoff_mean: 0.3,
        }
    }

    #[test]
    fn single_attempt_matches_cleared_blocking() {
        // max_attempts = 1 is exactly blocked-calls-cleared; the loss rate
        // must match the analytic B of the same model.
        use xbar_core::{solve, Algorithm, Dims, Model};
        use xbar_traffic::Workload;
        let model = Model::new(
            Dims::square(6),
            Workload::new().with(TrafficClass::poisson(0.05)),
        )
        .unwrap();
        let want = solve(&model, Algorithm::Auto).unwrap().blocking(0);
        let rep = RetrialSim::new(cfg(1), 5).run(200.0, 60_000.0, 20);
        assert!(
            rep.loss.covers_with_slack(want, 0.01),
            "loss {:?} vs analytic {want}",
            rep.loss
        );
        assert!((rep.mean_attempts - 1.0).abs() < 1e-12);
    }

    #[test]
    fn retries_cut_final_loss_but_raise_attempt_blocking() {
        let cleared = RetrialSim::new(cfg(1), 9).run(200.0, 40_000.0, 10);
        let retried = RetrialSim::new(cfg(4), 9).run(200.0, 40_000.0, 10);
        assert!(
            retried.loss.mean < 0.5 * cleared.loss.mean,
            "retries {} vs cleared {}",
            retried.loss.mean,
            cleared.loss.mean
        );
        // The retry traffic adds pressure: per-attempt blocking rises.
        assert!(retried.attempt_blocking.mean >= cleared.attempt_blocking.mean - 0.005);
        assert!(retried.mean_attempts > 1.0);
    }

    #[test]
    fn more_attempts_monotonically_less_loss() {
        let l1 = RetrialSim::new(cfg(1), 3)
            .run(100.0, 30_000.0, 10)
            .loss
            .mean;
        let l2 = RetrialSim::new(cfg(2), 3)
            .run(100.0, 30_000.0, 10)
            .loss
            .mean;
        let l5 = RetrialSim::new(cfg(5), 3)
            .run(100.0, 30_000.0, 10)
            .loss
            .mean;
        assert!(l2 < l1 && l5 < l2, "{l1} {l2} {l5}");
    }

    #[test]
    fn conservation() {
        let rep = RetrialSim::new(cfg(3), 1).run(100.0, 20_000.0, 10);
        assert_eq!(rep.calls, rep.carried + rep.lost + rep.pending);
        assert!(rep.calls > 1000);
    }

    #[test]
    fn attempt_accounting_balances_exactly() {
        // offers = admitted + blocked + retried-out, at attempt
        // granularity: every measured attempt either carried its call or
        // was blocked; every blocked attempt either scheduled a retry or
        // finalised a loss; and calls split into carried/lost/pending.
        for (attempts_allowed, seed) in [(1u32, 2u64), (2, 3), (4, 4), (8, 5)] {
            let rep = RetrialSim::new(cfg(attempts_allowed), seed).run(100.0, 15_000.0, 10);
            assert!(rep.calls > 500, "starved run");
            assert_eq!(
                rep.attempts,
                rep.carried + rep.blocked_attempts,
                "max_attempts={attempts_allowed}"
            );
            assert_eq!(
                rep.blocked_attempts,
                rep.retries + rep.lost,
                "max_attempts={attempts_allowed}"
            );
            assert_eq!(rep.calls, rep.carried + rep.lost + rep.pending);
            if attempts_allowed == 1 {
                assert_eq!(rep.retries, 0);
                assert_eq!(rep.pending, 0);
                assert_eq!(rep.blocked_attempts, rep.lost);
            } else {
                assert!(rep.retries > 0, "pressure high enough to retry");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RetrialSim::new(cfg(3), 42).run(50.0, 5_000.0, 5);
        let b = RetrialSim::new(cfg(3), 42).run(50.0, 5_000.0, 5);
        assert_eq!(a.calls, b.calls);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.blocked_attempts, b.blocked_attempts);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.pending, b.pending);
        assert_eq!(a.loss.mean.to_bits(), b.loss.mean.to_bits());
        assert_eq!(
            a.attempt_blocking.mean.to_bits(),
            b.attempt_blocking.mean.to_bits()
        );
    }
}

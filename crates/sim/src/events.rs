//! Event calendar for the discrete-event engine.
//!
//! A binary min-heap keyed on simulation time. Times are finite `f64`s by
//! construction (sums of finite samples), so the total order is safe.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A class-`r` connection finishes; its ports are identified by the
    /// connection id.
    Departure {
        /// Class index.
        class: usize,
        /// Key into the simulator's live-connection table.
        connection: u64,
    },
}

/// A scheduled event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Absolute simulation time.
    pub time: f64,
    /// Payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on time; equal times break ties arbitrarily
        // but deterministically via the connection id.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must be finite")
            .then_with(|| match (self.kind, other.kind) {
                (
                    EventKind::Departure { connection: a, .. },
                    EventKind::Departure { connection: b, .. },
                ) => b.cmp(&a),
            })
    }
}

/// Min-heap event calendar.
#[derive(Debug, Default)]
pub struct Calendar {
    heap: BinaryHeap<Event>,
}

impl Calendar {
    /// An empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule an event.
    pub fn schedule(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time.is_finite());
        self.heap.push(Event { time, kind });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(c: u64) -> EventKind {
        EventKind::Departure {
            class: 0,
            connection: c,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(3.0, dep(1));
        cal.schedule(1.0, dep(2));
        cal.schedule(2.0, dep(3));
        let order: Vec<f64> = std::iter::from_fn(|| cal.pop().map(|e| e.time)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_are_deterministic() {
        let mut cal = Calendar::new();
        cal.schedule(1.0, dep(5));
        cal.schedule(1.0, dep(2));
        cal.schedule(1.0, dep(9));
        let ids: Vec<u64> = std::iter::from_fn(|| {
            cal.pop().map(|e| match e.kind {
                EventKind::Departure { connection, .. } => connection,
            })
        })
        .collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
        cal.schedule(7.5, dep(1));
        cal.schedule(2.5, dep(2));
        assert_eq!(cal.peek_time(), Some(2.5));
        assert_eq!(cal.len(), 2);
        assert_eq!(cal.pop().unwrap().time, 2.5);
        assert_eq!(cal.peek_time(), Some(7.5));
    }
}

//! Incremental transition-rate table for Gillespie jump-chain loops.
//!
//! The simulator hot loops (replay and the crossbar recorder) pick the
//! next event by sampling `pick ∈ [0, total)` and walking a rate vector.
//! Historically every iteration rebuilt all rates and rescanned linearly;
//! an event only changes one class's rates, so [`RateTable`] keeps the
//! vector resident and applies O(1) slot updates instead.
//!
//! Bit-compatibility is the design constraint: decisions must stay
//! bit-identical to the legacy rebuild loops (proven by the differential
//! proptest battery and the golden-stream tests). Two details follow:
//!
//! - **Total.** The legacy loops fold the total in a fixed order
//!   (`total += arr + dep` per class in the replay, `iter().sum()` in the
//!   crossbar). Floating-point addition is not associative, so the table
//!   *re-sums* the resident vector in exactly that fold order whenever a
//!   slot changed since the last query — O(R) adds, but only on
//!   state-changing events (blocked arrivals reuse the cached total), and
//!   without the O(R) `lambda`/`permutation` recomputation the rebuild
//!   paid. An incremental `total += delta` would drift bitwise.
//! - **Selection.** The legacy subtractive scan (`if pick < rate; pick -=
//!   rate`) is kept verbatim. At large slot counts
//!   ([`RateTable::TREE_MIN_SLOTS`], far above every model in this repo)
//!   the table switches to a cumulative-sum selection tree: a perfect
//!   binary tree of partial sums updated in O(log R) and descended in
//!   O(log R). Each node is recomputed as the exact sum of its two
//!   children, so — unlike a delta-accumulating Fenwick array — the tree
//!   never drifts from the resident rates. Above the gate the total and
//!   the selection arithmetic follow the tree's summation order (same
//!   distribution, still deterministic per seed, documented in DESIGN.md
//!   §17).

/// Resident transition-rate vector with cached total and O(1) updates.
#[derive(Clone, Debug)]
pub struct RateTable {
    rates: Vec<f64>,
    /// `true` → re-sum pairwise (`t += rates[2r] + rates[2r+1]`), matching
    /// the replay loop's fold; `false` → flat left fold, matching
    /// `iter().sum()`.
    pairs: bool,
    total: f64,
    dirty: bool,
    /// Cumulative-sum selection tree, 1-based (`tree[1]` = root = total);
    /// empty below [`Self::TREE_MIN_SLOTS`].
    tree: Vec<f64>,
    /// Leaf count of the tree (`rates.len()` rounded up to a power of
    /// two); 0 when the tree is disabled.
    cap: usize,
}

impl RateTable {
    /// Slot count at and above which selection switches from the legacy
    /// subtractive scan to the O(log R) cumulative-sum tree. Every model
    /// this repo constructs sits far below the gate, so the bit-identical
    /// scan path is the one all goldens and differential tests exercise.
    pub const TREE_MIN_SLOTS: usize = 128;

    /// A table of `len` zero slots. `pairs` selects the total fold order
    /// (see type docs); it must match the legacy loop being replaced.
    pub fn new(len: usize, pairs: bool) -> Self {
        let (tree, cap) = if len >= Self::TREE_MIN_SLOTS {
            let cap = len.next_power_of_two();
            (vec![0.0; 2 * cap], cap)
        } else {
            (Vec::new(), 0)
        };
        RateTable {
            rates: vec![0.0; len],
            pairs,
            total: 0.0,
            dirty: false,
            tree,
            cap,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` when the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Current value of slot `j`.
    pub fn get(&self, j: usize) -> f64 {
        self.rates[j]
    }

    /// Whether the O(log R) tree path is active for this table.
    pub fn uses_tree(&self) -> bool {
        self.cap != 0
    }

    /// Set slot `j` to `v`. O(1) (plus an O(log R) path refresh when the
    /// tree is active); the scalar total is lazily re-summed on the next
    /// [`Self::total`] call.
    pub fn set(&mut self, j: usize, v: f64) {
        self.rates[j] = v;
        if self.cap == 0 {
            self.dirty = true;
        } else {
            let mut node = self.cap + j;
            self.tree[node] = v;
            while node > 1 {
                node /= 2;
                // Exact recomputation from the children — no accumulated
                // deltas, so the tree cannot drift from `rates`.
                self.tree[node] = self.tree[2 * node] + self.tree[2 * node + 1];
            }
        }
    }

    /// Total rate. Below the tree gate this is bit-identical to the
    /// legacy loop's fold over a freshly rebuilt vector; above it, the
    /// tree root.
    pub fn total(&mut self) -> f64 {
        if self.cap != 0 {
            return self.tree[1];
        }
        if self.dirty {
            self.total = if self.pairs {
                let mut t = 0.0;
                let mut i = 0;
                while i + 1 < self.rates.len() {
                    t += self.rates[i] + self.rates[i + 1];
                    i += 2;
                }
                if i < self.rates.len() {
                    t += self.rates[i];
                }
                t
            } else {
                let mut t = 0.0;
                for &x in &self.rates {
                    t += x;
                }
                t
            };
            self.dirty = false;
        }
        self.total
    }

    /// Slot selected by `pick ∈ [0, total)`. Below the tree gate this is
    /// the legacy subtractive scan, verbatim (including its
    /// last-slot fallback when `pick` survives the whole walk through
    /// accumulated rounding); above it, an O(log R) tree descent with the
    /// same fallback clamp.
    pub fn select(&self, mut pick: f64) -> usize {
        if self.cap == 0 {
            let mut chosen = self.rates.len() - 1;
            for (j, &rate) in self.rates.iter().enumerate() {
                if pick < rate {
                    chosen = j;
                    break;
                }
                pick -= rate;
            }
            chosen
        } else {
            let mut node = 1;
            while node < self.cap {
                let left = self.tree[2 * node];
                if pick < left {
                    node *= 2;
                } else {
                    pick -= left;
                    node = 2 * node + 1;
                }
            }
            // Padding leaves are zero, so an in-range pick can only land
            // there via rounding at the boundary — clamp like the scan.
            (node - self.cap).min(self.rates.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The legacy replay fold: `total += arr + dep` per class.
    fn pair_fold(rates: &[f64]) -> f64 {
        let mut t = 0.0;
        for pair in rates.chunks(2) {
            t += pair[0] + pair[1];
        }
        t
    }

    /// The legacy subtractive scan, copied from the old loops.
    fn scan(rates: &[f64], mut pick: f64) -> usize {
        let mut chosen = rates.len() - 1;
        for (j, &rate) in rates.iter().enumerate() {
            if pick < rate {
                chosen = j;
                break;
            }
            pick -= rate;
        }
        chosen
    }

    #[test]
    fn scalar_total_is_bitwise_equal_to_the_legacy_folds() {
        let mut rng = StdRng::seed_from_u64(31);
        for len in [2usize, 4, 6, 8, 12] {
            let mut pairs = RateTable::new(len, true);
            let mut flat = RateTable::new(len, false);
            let mut v = vec![0.0f64; len];
            for _ in 0..200 {
                let j = rng.gen_range(0..len);
                let x = rng.gen::<f64>() * 10.0;
                v[j] = x;
                pairs.set(j, x);
                flat.set(j, x);
                assert_eq!(pairs.total().to_bits(), pair_fold(&v).to_bits());
                let legacy_flat: f64 = v.iter().sum();
                assert_eq!(flat.total().to_bits(), legacy_flat.to_bits());
            }
        }
    }

    #[test]
    fn scalar_select_is_the_legacy_scan() {
        let mut rng = StdRng::seed_from_u64(32);
        let len = 10;
        let mut table = RateTable::new(len, true);
        let mut v = vec![0.0f64; len];
        for (i, slot) in v.iter_mut().enumerate() {
            let x = rng.gen::<f64>();
            *slot = x;
            table.set(i, x);
        }
        let total = table.total();
        for _ in 0..10_000 {
            let pick = rng.gen::<f64>() * total;
            assert_eq!(table.select(pick), scan(&v, pick));
        }
        // Zero-rate slots are skipped by both paths.
        v[3] = 0.0;
        table.set(3, 0.0);
        let total = table.total();
        for _ in 0..1_000 {
            let pick = rng.gen::<f64>() * total;
            let got = table.select(pick);
            assert_eq!(got, scan(&v, pick));
            assert_ne!(got, 3);
        }
    }

    #[test]
    fn tree_path_engages_at_the_gate_and_agrees_with_the_scan() {
        let len = RateTable::TREE_MIN_SLOTS + 37; // non-power-of-two
        let mut table = RateTable::new(len, true);
        assert!(table.uses_tree());
        assert!(!RateTable::new(len - 38, true).uses_tree());
        let mut rng = StdRng::seed_from_u64(33);
        let mut v = vec![0.0f64; len];
        for (i, slot) in v.iter_mut().enumerate() {
            let x = rng.gen::<f64>();
            *slot = x;
            table.set(i, x);
        }
        // Root equals the resident rates' sum up to tree-order rounding.
        let flat: f64 = v.iter().sum();
        assert!((table.total() - flat).abs() <= 1e-12 * flat);
        // Descent lands on the same slot as the scan for every draw (the
        // arithmetic differs, but a boundary coincidence under these
        // fixed seeds would be a ~1e-16-probability event; deterministic
        // seeds make the assertion stable).
        for _ in 0..20_000 {
            let pick = rng.gen::<f64>() * table.total();
            assert_eq!(table.select(pick), scan(&v, pick));
        }
        // Sparse vector: mass concentrated in two far-apart slots.
        v.fill(0.0);
        for i in 0..len {
            table.set(i, 0.0);
        }
        v[1] = 3.0;
        v[len - 1] = 1.0;
        table.set(1, 3.0);
        table.set(len - 1, 1.0);
        for _ in 0..1_000 {
            let pick = rng.gen::<f64>() * table.total();
            let got = table.select(pick);
            assert_eq!(got, scan(&v, pick));
            assert!(got == 1 || got == len - 1);
        }
    }

    #[test]
    fn updates_keep_tree_and_scalar_paths_consistent() {
        let len = RateTable::TREE_MIN_SLOTS;
        let mut table = RateTable::new(len, false);
        let mut rng = StdRng::seed_from_u64(34);
        let mut v = vec![0.0f64; len];
        for _ in 0..2_000 {
            let j = rng.gen_range(0..len);
            let x = if rng.gen_bool(0.2) {
                0.0
            } else {
                rng.gen::<f64>() * 5.0
            };
            v[j] = x;
            table.set(j, x);
            let flat: f64 = v.iter().sum();
            assert!((table.total() - flat).abs() <= 1e-9 * flat.max(1.0));
        }
        for _ in 0..2_000 {
            let pick = rng.gen::<f64>() * table.total();
            assert_eq!(table.select(pick), scan(&v, pick));
        }
    }
}

//! Port-failure injection for the crossbar simulator.
//!
//! The analytic model assumes a perfect switch; real fabrics lose ports.
//! This module adds a per-port fail/repair process to [`CrossbarSim`]
//! (crate::crossbar): each working port fails at rate `fail_rate` and each
//! failed port repairs at rate `repair_rate`, both with exponential holding
//! times, so the whole fault process is memoryless and can be resampled
//! every event like the arrival process. Ports can also be failed
//! *statically* (down from `t = 0`, never repaired) — useful because a
//! switch with `f1` inputs and `f2` outputs down, where requests touching a
//! dead port are cleared, carries its surviving traffic exactly like a
//! fault-free `(N1−f1) × (N2−f2)` crossbar, which the analytic solver can
//! price. That equivalence is the validation anchor for the whole layer.
//!
//! Semantics:
//!
//! * a failing port tears down the circuit holding it (the connection's
//!   other ports are released; its scheduled departure becomes a stale
//!   calendar entry that the event loop skips);
//! * failed ports still *attract* requests — a request whose drawn tuple
//!   touches a failed port is cleared and counted as **fault-blocked**,
//!   separately from congestion blocking, so degraded-mode congestion is
//!   still measurable as `viable_blocking`;
//! * with `fail_rate == 0` and no static failures the layer draws no random
//!   numbers and perturbs no arithmetic: runs reproduce the fault-free
//!   simulator bit-for-bit at equal seeds.

use rand::rngs::StdRng;
use rand::Rng;

/// Fault-injection parameters (all off by default).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Failure rate of each *working* port (`1/MTBF`); `0` disables the
    /// dynamic fault process.
    pub fail_rate: f64,
    /// Repair rate of each *failed* port (`1/MTTR`); `0` means failed
    /// ports stay failed.
    pub repair_rate: f64,
    /// Input ports (`0..fail_inputs`) failed from `t = 0`.
    pub fail_inputs: u32,
    /// Output ports (`0..fail_outputs`) failed from `t = 0`.
    pub fail_outputs: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            fail_rate: 0.0,
            repair_rate: 0.0,
            fail_inputs: 0,
            fail_outputs: 0,
        }
    }
}

impl FaultConfig {
    /// No faults (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Dynamic fail/repair process from mean time between failures and
    /// mean time to repair. Non-finite or non-positive means are treated
    /// as "never" (rate `0`).
    pub fn from_mtbf_mttr(mtbf: f64, mttr: f64) -> Self {
        let rate = |mean: f64| {
            if mean.is_finite() && mean > 0.0 {
                1.0 / mean
            } else {
                0.0
            }
        };
        FaultConfig {
            fail_rate: rate(mtbf),
            repair_rate: rate(mttr),
            ..Self::default()
        }
    }

    /// Statically fail the first `inputs`/`outputs` ports.
    pub fn with_static_failures(mut self, inputs: u32, outputs: u32) -> Self {
        self.fail_inputs = inputs;
        self.fail_outputs = outputs;
        self
    }

    /// `true` iff any fault mechanism is active.
    pub fn enabled(&self) -> bool {
        self.dynamic() || self.fail_inputs > 0 || self.fail_outputs > 0
    }

    /// `true` iff the dynamic fail/repair process is active.
    pub fn dynamic(&self) -> bool {
        self.fail_rate > 0.0
    }
}

/// Which side of the crossbar a port belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// An input port.
    Input,
    /// An output port.
    Output,
}

/// A fault-process transition chosen by [`FaultLayer::sample_transition`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultTransition {
    /// Which side the port is on.
    pub side: Side,
    /// Port index within its side.
    pub port: u32,
    /// `true` for a failure, `false` for a repair.
    pub is_failure: bool,
}

/// Aggregate fault statistics over the measurement window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultReport {
    /// Port failures during the measurement window.
    pub failures: u64,
    /// Port repairs during the measurement window.
    pub repairs: u64,
    /// Circuits torn down because a port they held failed.
    pub torn_down: u64,
    /// Requests cleared because their drawn tuple touched a failed port.
    pub fault_blocked: u64,
    /// Time-average number of failed input ports.
    pub mean_failed_inputs: f64,
    /// Time-average number of failed output ports.
    pub mean_failed_outputs: f64,
}

/// Live per-port fault state inside a running simulation.
#[derive(Clone, Debug)]
pub struct FaultLayer {
    cfg: FaultConfig,
    /// Failed flag per input port.
    pub failed_in: Vec<bool>,
    /// Failed flag per output port.
    pub failed_out: Vec<bool>,
    /// Count of `true`s in `failed_in`.
    pub failed_in_count: u32,
    /// Count of `true`s in `failed_out`.
    pub failed_out_count: u32,
    /// Failures applied so far (whole run, including warmup).
    pub failures: u64,
    /// Repairs applied so far (whole run, including warmup).
    pub repairs: u64,
}

impl FaultLayer {
    /// Initialise for an `n1 × n2` switch, applying static failures.
    ///
    /// Assumes `cfg` was validated against the geometry by the simulator
    /// constructor (`fail_inputs ≤ n1`, `fail_outputs ≤ n2`).
    pub fn new(cfg: FaultConfig, n1: u32, n2: u32) -> Self {
        let mut failed_in = vec![false; n1 as usize];
        let mut failed_out = vec![false; n2 as usize];
        for f in failed_in.iter_mut().take(cfg.fail_inputs as usize) {
            *f = true;
        }
        for f in failed_out.iter_mut().take(cfg.fail_outputs as usize) {
            *f = true;
        }
        FaultLayer {
            failed_in_count: cfg.fail_inputs,
            failed_out_count: cfg.fail_outputs,
            failed_in,
            failed_out,
            failures: 0,
            repairs: 0,
            cfg,
        }
    }

    /// `true` iff any fault mechanism is active (drives whether the report
    /// carries fault statistics).
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// `true` iff the dynamic fail/repair process is active (drives whether
    /// the event loop samples fault transitions — must be `false` for the
    /// bit-for-bit fault-free guarantee).
    pub fn dynamic(&self) -> bool {
        self.cfg.dynamic()
    }

    /// Total rate of the next fault transition in the current state:
    /// `fail_rate·(ports up) + repair_rate·(ports down)`.
    pub fn transition_rate(&self) -> f64 {
        let n1 = self.failed_in.len() as u32;
        let n2 = self.failed_out.len() as u32;
        let up = (n1 - self.failed_in_count) + (n2 - self.failed_out_count);
        let down = self.failed_in_count + self.failed_out_count;
        self.cfg.fail_rate * up as f64 + self.cfg.repair_rate * down as f64
    }

    /// Choose which transition happens (uniform over the competing
    /// exponential clocks) and apply it. Returns the transition so the
    /// simulator can tear down circuits on a failure.
    ///
    /// Must only be called when [`FaultLayer::transition_rate`] is
    /// positive.
    pub fn sample_transition(&mut self, rng: &mut StdRng) -> FaultTransition {
        let total = self.transition_rate();
        debug_assert!(total > 0.0, "no transition available");
        let mut pick = rng.gen::<f64>() * total;

        // Category rates, in fixed order: input failures, output failures,
        // input repairs, output repairs.
        let n1 = self.failed_in.len() as u32;
        let n2 = self.failed_out.len() as u32;
        let cats = [
            (
                Side::Input,
                true,
                n1 - self.failed_in_count,
                self.cfg.fail_rate,
            ),
            (
                Side::Output,
                true,
                n2 - self.failed_out_count,
                self.cfg.fail_rate,
            ),
            (
                Side::Input,
                false,
                self.failed_in_count,
                self.cfg.repair_rate,
            ),
            (
                Side::Output,
                false,
                self.failed_out_count,
                self.cfg.repair_rate,
            ),
        ];
        let mut chosen = None;
        for &(side, is_failure, count, rate) in &cats {
            let cat_rate = rate * count as f64;
            if pick < cat_rate && count > 0 {
                chosen = Some((side, is_failure, count));
                break;
            }
            pick -= cat_rate;
        }
        // Round-off can push `pick` past every category; fall back to the
        // last non-empty one.
        let (side, is_failure, count) = chosen.unwrap_or_else(|| {
            let &(side, is_failure, count, _) = cats
                .iter()
                .rev()
                .find(|&&(_, _, count, rate)| count > 0 && rate > 0.0)
                .expect("transition_rate > 0 implies a non-empty category");
            (side, is_failure, count)
        });

        // Uniformly pick the `idx`-th port in the chosen (side, state).
        let idx = rng.gen_range(0..count);
        let flags = match side {
            Side::Input => &mut self.failed_in,
            Side::Output => &mut self.failed_out,
        };
        let mut seen = 0u32;
        let mut port = 0u32;
        for (p, &failed) in flags.iter().enumerate() {
            if failed != is_failure {
                // failing ⇒ scan working ports; repairing ⇒ scan failed.
                if seen == idx {
                    port = p as u32;
                    break;
                }
                seen += 1;
            }
        }
        flags[port as usize] = is_failure;
        match (side, is_failure) {
            (Side::Input, true) => self.failed_in_count += 1,
            (Side::Input, false) => self.failed_in_count -= 1,
            (Side::Output, true) => self.failed_out_count += 1,
            (Side::Output, false) => self.failed_out_count -= 1,
        }
        if is_failure {
            self.failures += 1;
        } else {
            self.repairs += 1;
        }
        FaultTransition {
            side,
            port,
            is_failure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn disabled_config_is_inert() {
        let cfg = FaultConfig::none();
        assert!(!cfg.enabled());
        assert!(!cfg.dynamic());
        let layer = FaultLayer::new(cfg, 4, 4);
        assert_eq!(layer.transition_rate(), 0.0);
        assert_eq!(layer.failed_in_count, 0);
        assert_eq!(layer.failed_out_count, 0);
    }

    #[test]
    fn mtbf_mttr_conversion_handles_degenerate_means() {
        let c = FaultConfig::from_mtbf_mttr(100.0, 10.0);
        assert_eq!(c.fail_rate, 0.01);
        assert_eq!(c.repair_rate, 0.1);
        assert!(c.dynamic());
        let never = FaultConfig::from_mtbf_mttr(f64::INFINITY, 0.0);
        assert!(!never.dynamic());
        assert_eq!(never.repair_rate, 0.0);
    }

    #[test]
    fn static_failures_mark_leading_ports() {
        let cfg = FaultConfig::none().with_static_failures(2, 1);
        assert!(cfg.enabled() && !cfg.dynamic());
        let layer = FaultLayer::new(cfg, 4, 3);
        assert_eq!(layer.failed_in, vec![true, true, false, false]);
        assert_eq!(layer.failed_out, vec![true, false, false]);
        // Static-only: no dynamic process, so no transitions either.
        assert_eq!(layer.transition_rate(), 0.0);
    }

    #[test]
    fn transitions_conserve_counts_and_flags() {
        let cfg = FaultConfig::from_mtbf_mttr(10.0, 5.0);
        let mut layer = FaultLayer::new(cfg, 5, 3);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            assert!(layer.transition_rate() > 0.0);
            let t = layer.sample_transition(&mut rng);
            let flags = match t.side {
                Side::Input => &layer.failed_in,
                Side::Output => &layer.failed_out,
            };
            assert_eq!(flags[t.port as usize], t.is_failure);
            let count_in = layer.failed_in.iter().filter(|&&f| f).count() as u32;
            let count_out = layer.failed_out.iter().filter(|&&f| f).count() as u32;
            assert_eq!(count_in, layer.failed_in_count);
            assert_eq!(count_out, layer.failed_out_count);
        }
        // Both directions must actually occur.
        assert!(layer.failures > 0 && layer.repairs > 0);
    }

    #[test]
    fn no_repair_rate_absorbs_into_all_failed() {
        let cfg = FaultConfig {
            fail_rate: 1.0,
            repair_rate: 0.0,
            fail_inputs: 0,
            fail_outputs: 0,
        };
        let mut layer = FaultLayer::new(cfg, 2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        while layer.transition_rate() > 0.0 {
            layer.sample_transition(&mut rng);
        }
        assert_eq!(layer.failed_in_count, 2);
        assert_eq!(layer.failed_out_count, 2);
        assert_eq!(layer.repairs, 0);
    }

    #[test]
    fn failure_repair_equilibrium_matches_two_state_formula() {
        // Each port is an independent up/down chain: long-run failed
        // fraction = fail/(fail+repair).
        let cfg = FaultConfig::from_mtbf_mttr(10.0, 10.0);
        let mut layer = FaultLayer::new(cfg, 8, 8);
        let mut rng = StdRng::seed_from_u64(7);
        // Jump-chain average over many transitions approximates the
        // embedded stationary distribution; with symmetric rates the
        // time-stationary failed fraction is 1/2.
        let mut failed_acc = 0u64;
        let n_steps = 60_000;
        for _ in 0..n_steps {
            layer.sample_transition(&mut rng);
            failed_acc += (layer.failed_in_count + layer.failed_out_count) as u64;
        }
        let mean_failed = failed_acc as f64 / n_steps as f64 / 16.0;
        assert!((mean_failed - 0.5).abs() < 0.05, "{mean_failed}");
    }
}

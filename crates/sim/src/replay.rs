//! Trace-replay driver for the online admission engine.
//!
//! Generates a synthetic BPP call-event stream with the Gillespie jump
//! chain of the loss network — in state `k`, class-`r` arrivals fire at
//! total rate `P(N1,a_r)·P(N2,a_r)·λ_r(k_r)` and departures at `k_r·μ_r`,
//! exactly the transition structure behind the product form — and feeds
//! every event to an [`AdmissionEngine`]. Port-tuple selection is modelled
//! by a Bernoulli coin with the engine's instantaneous availability, so a
//! complete-sharing replay experiences the *call* blocking of the paper
//! (§3's `B_r` corrected by the arrival theorem), which the per-class
//! admitted fraction is then cross-checked against.
//!
//! The admitted fraction is estimated with batch means
//! ([`BatchMeans`](crate::stats::BatchMeans), 99% CI by default): jump
//! chains are autocorrelated, so per-event binomial CIs would be
//! dishonestly narrow.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xbar_admission::{AdmissionEngine, AdmissionError, Decision, EngineConfig};
use xbar_core::Model;
use xbar_numeric::permutation;

use crate::rates::RateTable;
use crate::stats::{BatchMeans, Confidence, Estimate};

/// Replay parameters.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Events to generate (arrivals + departures).
    pub events: u64,
    /// RNG seed for the jump chain and the tuple coin.
    pub seed: u64,
    /// Batches for the acceptance-fraction confidence interval.
    pub batches: usize,
    /// Engine construction parameters (policy, anchor algorithm, drift).
    pub engine: EngineConfig,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            events: 1_000_000,
            seed: 1,
            batches: 20,
            engine: EngineConfig::default(),
        }
    }
}

/// Per-class replay outcome.
#[derive(Clone, Debug)]
pub struct ClassReplay {
    /// Arrivals offered (including tuple-coin blocks).
    pub offered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Capacity denials (ports don't fit, or the drawn tuple was busy).
    pub denied_capacity: u64,
    /// Policy denials (reservation threshold).
    pub denied_policy: u64,
    /// Batch-means estimate of the admitted fraction (99% CI).
    pub acceptance: Estimate,
    /// The anchor's analytic call acceptance `1 − B_r^{call}` that a
    /// complete-sharing replay should reproduce.
    pub analytic_acceptance: f64,
}

/// Outcome of one replay run.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Events actually generated.
    pub events: u64,
    /// Arrival events (the rest are departures).
    pub arrivals: u64,
    /// Departure events.
    pub departures: u64,
    /// Times the engine re-anchored from the solve cache.
    pub re_anchors: u64,
    /// Per-batch repricing passes the engine ran (0 unless
    /// [`EngineConfig::reprice_batch`] is set).
    pub reprice_batches: u64,
    /// Repricing passes that changed the threshold vector.
    pub reprice_updates: u64,
    /// Per-class decision split and acceptance estimate.
    pub classes: Vec<ClassReplay>,
}

/// Jump-chain tuple-scaled arrival factor per class:
/// `P(N1,a_r)·P(N2,a_r)`.
fn tuple_counts(model: &Model) -> Vec<f64> {
    let dims = model.dims();
    model
        .workload()
        .classes()
        .iter()
        .map(|c| {
            permutation(dims.n1 as u64, c.bandwidth as u64)
                * permutation(dims.n2 as u64, c.bandwidth as u64)
        })
        .collect()
}

/// Assemble the [`ReplayReport`] from the engine's decision ledger and the
/// per-batch acceptance counts.
fn finish(
    engine: &AdmissionEngine,
    batch_counts: &[Vec<(u64, u64)>],
    arrivals: u64,
    departures: u64,
) -> ReplayReport {
    let stats = engine.stats();
    let classes_out = (0..stats.per_class.len())
        .map(|r| {
            let fractions: Vec<f64> = batch_counts
                .iter()
                .filter(|b| b[r].0 > 0)
                .map(|b| b[r].1 as f64 / b[r].0 as f64)
                .collect();
            let cs = &stats.per_class[r];
            ClassReplay {
                offered: cs.offered,
                admitted: cs.admitted,
                denied_capacity: cs.denied_capacity,
                denied_policy: cs.denied_policy,
                acceptance: BatchMeans::from_batches(fractions).estimate_at(Confidence::P99),
                analytic_acceptance: engine.analytic_acceptance(r),
            }
        })
        .collect();
    ReplayReport {
        events: arrivals + departures,
        arrivals,
        departures,
        re_anchors: stats.re_anchors,
        reprice_batches: stats.reprice_batches,
        reprice_updates: stats.reprice_updates,
        classes: classes_out,
    }
}

/// Generate `cfg.events` synthetic call events for `model` and replay them
/// through a fresh [`AdmissionEngine`].
///
/// The hot loop keeps the `2R` transition rates resident in a
/// [`RateTable`]: an event only changes class `r`'s two rates (and a
/// blocked arrival changes nothing), so each iteration does O(1) rate
/// maintenance instead of rebuilding and rescanning the whole vector.
/// Decisions are bit-identical to [`replay_legacy`] — the table re-sums
/// the total in the legacy fold order and keeps the legacy subtractive
/// selection scan (see [`crate::rates`]); the differential proptest
/// battery and the golden-stream tests pin this.
pub fn replay(model: &Model, cfg: &ReplayConfig) -> Result<ReplayReport, AdmissionError> {
    let mut engine = AdmissionEngine::new(model, cfg.engine.clone())?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let classes = model.workload().classes();
    let r_count = classes.len();
    let tuple_count = tuple_counts(model);
    let batches = cfg.batches.max(1);
    // Per-batch, per-class (offered, admitted) for the batch-means CI.
    let mut batch_counts = vec![vec![(0u64, 0u64); r_count]; batches];
    let mut arrivals = 0u64;
    let mut departures = 0u64;

    let mut table = RateTable::new(2 * r_count, true);
    let set_class = |table: &mut RateTable, engine: &AdmissionEngine, r: usize| {
        let kr = engine.state()[r];
        table.set(2 * r, tuple_count[r] * classes[r].lambda(kr as u64));
        table.set(2 * r + 1, kr as f64 * classes[r].mu);
    };
    for r in 0..r_count {
        set_class(&mut table, &engine, r);
    }

    for i in 0..cfg.events {
        let total = table.total();
        // Negated so a NaN total (incomparable) also stops the replay.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(total > 0.0) {
            // Absorbing state (all rates zero) — nothing left to replay.
            break;
        }
        let chosen = table.select(rng.gen::<f64>() * total);
        let (r, is_arrival) = (chosen / 2, chosen.is_multiple_of(2));
        // u128 so `i * batches` cannot wrap for any event budget.
        let batch = ((i as u128 * batches as u128) / cfg.events as u128) as usize;
        // The timer probe re-checks `xbar_obs::enabled()` at each 64th
        // event (not a flag hoisted before the loop), so toggling obs
        // mid-run engages or disengages the probes at the same fixed
        // cadence instead of timing a stale configuration. The probe
        // brackets only the engine call — it touches neither the RNG nor
        // the batch accounting, so decision streams are identical obs-on
        // and obs-off (pinned by a regression test).
        let probe = i.is_multiple_of(64);
        if is_arrival {
            arrivals += 1;
            batch_counts[batch][r].0 += 1;
            // The jump chain fires per *tuple-scaled* rate; whether the
            // drawn ordered tuple is idle is a Bernoulli coin with the
            // engine's instantaneous availability.
            let tuple_idle = rng.gen::<f64>() < engine.availability(r);
            let timer = (probe && xbar_obs::enabled()).then(Instant::now);
            let admitted = if tuple_idle {
                engine.offer(r)? == Decision::Admit
            } else {
                engine.record_blocked(r)?;
                false
            };
            if let Some(t) = timer {
                xbar_obs::record_duration("admission.decision", t.elapsed());
            }
            if admitted {
                batch_counts[batch][r].1 += 1;
                // Admission changed `k[r]`; a block changed nothing, so
                // the cached rates (and total) stay valid.
                set_class(&mut table, &engine, r);
            }
        } else {
            departures += 1;
            let timer = (probe && xbar_obs::enabled()).then(Instant::now);
            engine.depart(r)?;
            if let Some(t) = timer {
                xbar_obs::record_duration("admission.decision", t.elapsed());
            }
            set_class(&mut table, &engine, r);
        }
    }

    engine.flush_obs();
    if xbar_obs::enabled() {
        xbar_obs::add("replay.events", arrivals + departures);
    }
    Ok(finish(&engine, &batch_counts, arrivals, departures))
}

/// The pre-optimisation replay loop, kept verbatim as the reference for
/// the [`replay`] hot path: it rebuilds all `2R` rates and rescans
/// linearly every event. Retained (not test-gated) so the differential
/// proptest battery can prove decision-for-decision equivalence and so
/// the perf trajectory can benchmark the rewrite against a live baseline.
/// Not part of the supported API surface.
#[doc(hidden)]
pub fn replay_legacy(model: &Model, cfg: &ReplayConfig) -> Result<ReplayReport, AdmissionError> {
    let mut engine = AdmissionEngine::new(model, cfg.engine.clone())?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let classes = model.workload().classes();
    let r_count = classes.len();
    let tuple_count = tuple_counts(model);
    let batches = cfg.batches.max(1);
    let mut batch_counts = vec![vec![(0u64, 0u64); r_count]; batches];
    let mut rates = vec![0.0f64; 2 * r_count];
    let mut arrivals = 0u64;
    let mut departures = 0u64;
    let obs = xbar_obs::enabled();

    for i in 0..cfg.events {
        let k = engine.state();
        let mut total = 0.0;
        for r in 0..r_count {
            let arr = tuple_count[r] * classes[r].lambda(k[r] as u64);
            let dep = k[r] as f64 * classes[r].mu;
            rates[2 * r] = arr;
            rates[2 * r + 1] = dep;
            total += arr + dep;
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(total > 0.0) {
            break;
        }
        let mut pick = rng.gen::<f64>() * total;
        let mut chosen = 2 * r_count - 1;
        for (j, &rate) in rates.iter().enumerate() {
            if pick < rate {
                chosen = j;
                break;
            }
            pick -= rate;
        }
        let (r, is_arrival) = (chosen / 2, chosen.is_multiple_of(2));
        let batch = ((i * batches as u64) / cfg.events) as usize;
        if is_arrival {
            arrivals += 1;
            batch_counts[batch][r].0 += 1;
            let tuple_idle = rng.gen::<f64>() < engine.availability(r);
            let timer = (obs && i.is_multiple_of(64)).then(Instant::now);
            let admitted = if tuple_idle {
                engine.offer(r)? == Decision::Admit
            } else {
                engine.record_blocked(r)?;
                false
            };
            if let Some(t) = timer {
                xbar_obs::record_duration("admission.decision", t.elapsed());
            }
            if admitted {
                batch_counts[batch][r].1 += 1;
            }
        } else {
            departures += 1;
            let timer = (obs && i.is_multiple_of(64)).then(Instant::now);
            engine.depart(r)?;
            if let Some(t) = timer {
                xbar_obs::record_duration("admission.decision", t.elapsed());
            }
        }
    }

    engine.flush_obs();
    if obs {
        xbar_obs::add("replay.events", arrivals + departures);
    }
    Ok(finish(&engine, &batch_counts, arrivals, departures))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_admission::PolicySpec;
    use xbar_core::Dims;
    use xbar_traffic::{TrafficClass, Workload};

    fn model() -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.1))
            .with(TrafficClass::bpp(0.08, 0.04, 1.0));
        Model::new(Dims::new(6, 8), w).unwrap()
    }

    fn run(events: u64, seed: u64, policy: PolicySpec) -> ReplayReport {
        replay(
            &model(),
            &ReplayConfig {
                events,
                seed,
                batches: 20,
                engine: EngineConfig {
                    policy,
                    ..EngineConfig::default()
                },
            },
        )
        .unwrap()
    }

    #[test]
    fn replay_is_deterministic_for_a_seed() {
        let a = run(20_000, 9, PolicySpec::CompleteSharing);
        let b = run(20_000, 9, PolicySpec::CompleteSharing);
        for (x, y) in a.classes.iter().zip(&b.classes) {
            assert_eq!(x.offered, y.offered);
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.acceptance, y.acceptance);
        }
        assert_eq!(a.arrivals, b.arrivals);
    }

    #[test]
    fn complete_sharing_acceptance_brackets_the_analytic_value() {
        let rep = run(400_000, 4001, PolicySpec::CompleteSharing);
        assert_eq!(rep.events, 400_000);
        for (r, c) in rep.classes.iter().enumerate() {
            assert_eq!(c.denied_policy, 0, "CS never denies by policy");
            assert_eq!(c.offered, c.admitted + c.denied_capacity);
            assert!(
                c.acceptance.covers_with_slack(c.analytic_acceptance, 5e-3),
                "class {r}: {:?} vs {}",
                c.acceptance,
                c.analytic_acceptance
            );
        }
    }

    #[test]
    fn trunk_reservation_only_throttles_the_reserved_class() {
        let rep = run(100_000, 77, PolicySpec::TrunkReservation(vec![0, 3]));
        assert_eq!(rep.classes[0].denied_policy, 0);
        assert!(rep.classes[1].denied_policy > 0);
        // The throttled class must accept strictly less than its CS run.
        let cs = run(100_000, 77, PolicySpec::CompleteSharing);
        assert!(rep.classes[1].acceptance.mean < cs.classes[1].acceptance.mean);
    }

    #[test]
    fn repricing_replay_matches_the_plain_run_decision_for_decision() {
        // Per-batch repricing re-derives the same thresholds from the
        // cached gradients, so a repriced replay must be event-identical
        // to the plain run — only the reprice counters differ.
        let plain = run(20_000, 11, PolicySpec::ShadowPrice { reserve: 1 });
        let repriced = replay(
            &model(),
            &ReplayConfig {
                events: 20_000,
                seed: 11,
                batches: 20,
                engine: EngineConfig {
                    policy: PolicySpec::ShadowPrice { reserve: 1 },
                    reprice_batch: Some(64),
                    ..EngineConfig::default()
                },
            },
        )
        .unwrap();
        assert_eq!(repriced.reprice_batches, 20_000 / 64);
        assert_eq!(repriced.reprice_updates, 0, "the model never changed");
        assert_eq!(plain.reprice_batches, 0);
        for (x, y) in plain.classes.iter().zip(&repriced.classes) {
            assert_eq!(x.offered, y.offered);
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.denied_capacity, y.denied_capacity);
            assert_eq!(x.denied_policy, y.denied_policy);
        }
    }

    fn fingerprint(rep: &ReplayReport) -> Vec<(u64, u64, u64, u64, u64)> {
        rep.classes
            .iter()
            .map(|c| {
                (
                    c.offered,
                    c.admitted,
                    c.denied_capacity,
                    c.denied_policy,
                    c.acceptance.mean.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn incremental_loop_matches_legacy_bit_for_bit() {
        for (policy, seed) in [
            (PolicySpec::CompleteSharing, 9u64),
            (PolicySpec::TrunkReservation(vec![0, 3]), 77),
            (PolicySpec::ShadowPrice { reserve: 1 }, 11),
        ] {
            let cfg = ReplayConfig {
                events: 30_000,
                seed,
                batches: 20,
                engine: EngineConfig {
                    policy: policy.clone(),
                    ..EngineConfig::default()
                },
            };
            let new = replay(&model(), &cfg).unwrap();
            let old = replay_legacy(&model(), &cfg).unwrap();
            assert_eq!(new.arrivals, old.arrivals, "{policy}");
            assert_eq!(new.departures, old.departures, "{policy}");
            assert_eq!(fingerprint(&new), fingerprint(&old), "{policy}");
        }
    }

    #[test]
    fn decision_stream_is_identical_obs_on_and_obs_off() {
        // The 64-event timer probe must observe, never perturb: running
        // inside a scoped obs registry (probes live) has to produce the
        // same decisions, batch splits, and acceptance bits as running
        // dark. This pins the satellite fix that re-checks
        // `xbar_obs::enabled()` at probe time instead of hoisting it.
        let dark = run(25_000, 42, PolicySpec::TrunkReservation(vec![0, 2]));
        let registry = std::sync::Arc::new(xbar_obs::Registry::new());
        let lit = {
            let _scope = xbar_obs::scope(&registry);
            assert!(xbar_obs::enabled());
            run(25_000, 42, PolicySpec::TrunkReservation(vec![0, 2]))
        };
        assert_eq!(fingerprint(&dark), fingerprint(&lit));
        assert_eq!(dark.arrivals, lit.arrivals);
        assert_eq!(dark.departures, lit.departures);
        // And the lit run actually exercised the probes.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("replay.events"), Some(25_000));
    }

    #[test]
    fn event_budget_splits_into_arrivals_and_departures() {
        let rep = run(10_000, 5, PolicySpec::CompleteSharing);
        assert_eq!(rep.arrivals + rep.departures, rep.events);
        assert!(rep.arrivals > 0 && rep.departures > 0);
        let offered: u64 = rep.classes.iter().map(|c| c.offered).sum();
        assert_eq!(offered, rep.arrivals);
    }
}

//! Property-based tests for the simulator: structural invariants that must
//! hold for *any* configuration and seed (statistical agreement with the
//! analytics is covered separately in `validate.rs` with long runs).

use proptest::prelude::*;
use xbar_sim::{CrossbarSim, RunConfig, SimConfig};
use xbar_traffic::TrafficClass;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (2u32..8, 2u32..8, 1usize..4).prop_flat_map(|(n1, n2, r_count)| {
        let max_a = n1.min(n2).min(2);
        let class = (0.001f64..0.5, 0.2f64..2.0, 1u32..=max_a, prop::bool::ANY).prop_map(
            |(alpha, mu, a, peaky)| {
                let beta = if peaky { 0.3 * mu } else { 0.0 };
                TrafficClass::bpp(alpha, beta, mu).with_bandwidth(a)
            },
        );
        prop::collection::vec(class, r_count).prop_map(move |classes| {
            let mut cfg = SimConfig::new(n1, n2);
            for c in classes {
                cfg = cfg.with_exp_class(c);
            }
            cfg
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn counters_always_conserve(cfg in arb_config(), seed in 0u64..1000) {
        let r_count = cfg.classes.len();
        let mut sim = CrossbarSim::new(cfg, seed);
        let rep = sim.run(RunConfig { warmup: 5.0, duration: 300.0, batches: 4 });
        for r in 0..r_count {
            let c = &rep.classes[r];
            prop_assert_eq!(c.offered, c.accepted + c.blocked);
            prop_assert!((0.0..=1.0).contains(&c.blocking.mean) || c.offered == 0);
            prop_assert!(c.concurrency.mean >= 0.0);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c.availability.mean));
        }
    }

    #[test]
    fn occupancy_is_a_distribution(cfg in arb_config(), seed in 0u64..1000) {
        let mut sim = CrossbarSim::new(cfg, seed);
        let rep = sim.run(RunConfig { warmup: 5.0, duration: 300.0, batches: 4 });
        let total: f64 = rep.occupancy.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(rep.occupancy.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn concurrency_bounded_by_capacity(cfg in arb_config(), seed in 0u64..1000) {
        let capacity = cfg.n1.min(cfg.n2) as f64;
        let bands: Vec<f64> = cfg.classes.iter().map(|(c, _)| c.bandwidth as f64).collect();
        let mut sim = CrossbarSim::new(cfg, seed);
        let rep = sim.run(RunConfig { warmup: 5.0, duration: 300.0, batches: 4 });
        let used: f64 = rep
            .classes
            .iter()
            .zip(&bands)
            .map(|(c, a)| a * c.concurrency.mean)
            .sum();
        prop_assert!(used <= capacity + 1e-9, "{used} > {capacity}");
    }

    #[test]
    fn same_seed_same_run(cfg in arb_config(), seed in 0u64..1000) {
        let run = RunConfig { warmup: 2.0, duration: 100.0, batches: 2 };
        let a = CrossbarSim::new(cfg.clone(), seed).run(run);
        let b = CrossbarSim::new(cfg, seed).run(run);
        prop_assert_eq!(a.events, b.events);
        for (x, y) in a.classes.iter().zip(&b.classes) {
            prop_assert_eq!(x.offered, y.offered);
            prop_assert_eq!(x.blocked, y.blocked);
        }
    }
}

//! PR 10 property battery: (1) the incremental-rates replay loop is
//! decision-for-decision (in fact bit-for-bit) equivalent to the legacy
//! rebuild-every-event loop over random models and policies; (2) the
//! parallel replication harness merges statistics bitwise-identically to
//! a serial fold of the same replications, for any worker count.

use proptest::prelude::*;
use xbar_admission::{EngineConfig, PolicySpec};
use xbar_core::{parallel, Dims, Model};
use xbar_sim::replay::replay_legacy;
use xbar_sim::{replay, run_replications, Confidence, RepConfig, ReplayConfig, ReplayReport};
use xbar_traffic::{TrafficClass, Workload};

fn arb_model() -> impl Strategy<Value = Model> {
    (2u32..8, 2u32..8, 1usize..4).prop_flat_map(|(n1, n2, r_count)| {
        let max_a = n1.min(n2).min(2);
        let class = (0.001f64..0.4, 0.2f64..2.0, 1u32..=max_a, prop::bool::ANY).prop_map(
            |(alpha, mu, a, peaky)| {
                let beta = if peaky { 0.3 * mu } else { 0.0 };
                TrafficClass::bpp(alpha, beta, mu).with_bandwidth(a)
            },
        );
        prop::collection::vec(class, r_count).prop_map(move |classes| {
            let mut w = Workload::new();
            for c in classes {
                w = w.with(c);
            }
            Model::new(Dims::new(n1, n2), w).expect("strategy yields valid models")
        })
    })
}

fn policy_for(model: &Model, pick: usize) -> PolicySpec {
    match pick {
        0 => PolicySpec::CompleteSharing,
        1 => PolicySpec::TrunkReservation(vec![1; model.workload().classes().len()]),
        _ => PolicySpec::ShadowPrice { reserve: 1 },
    }
}

fn fingerprint(rep: &ReplayReport) -> Vec<(u64, u64, u64, u64, u64, u64)> {
    rep.classes
        .iter()
        .map(|c| {
            (
                c.offered,
                c.admitted,
                c.denied_capacity,
                c.denied_policy,
                c.acceptance.mean.to_bits(),
                c.acceptance.half_width.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_replay_is_decision_identical_to_legacy(
        model in arb_model(),
        seed in 0u64..10_000,
        pick in 0usize..3,
    ) {
        let cfg = ReplayConfig {
            events: 10_000,
            seed,
            batches: 8,
            engine: EngineConfig {
                policy: policy_for(&model, pick),
                ..EngineConfig::default()
            },
        };
        let new = replay(&model, &cfg).expect("replay runs");
        let old = replay_legacy(&model, &cfg).expect("legacy replay runs");
        prop_assert_eq!(new.events, old.events);
        prop_assert_eq!(new.arrivals, old.arrivals);
        prop_assert_eq!(new.departures, old.departures);
        prop_assert_eq!(new.re_anchors, old.re_anchors);
        prop_assert_eq!(fingerprint(&new), fingerprint(&old));
    }

    #[test]
    fn merged_replication_stats_are_bitwise_the_serial_fold(
        threads in 1usize..5,
        replications in 1u64..7,
        master_seed in 0u64..1_000,
        pick in 0usize..3,
    ) {
        let model = Model::new(
            Dims::new(5, 6),
            Workload::new()
                .with(TrafficClass::poisson(0.08))
                .with(TrafficClass::bpp(0.05, 0.02, 1.0)),
        ).expect("valid model");
        let cfg = ReplayConfig {
            events: 3_000,
            seed: 0, // overridden per replication by the harness
            batches: 6,
            engine: EngineConfig {
                policy: policy_for(&model, pick),
                ..EngineConfig::default()
            },
        };
        let rep = RepConfig { replications, master_seed, confidence: Confidence::P95 };
        let serial = parallel::with_threads(1, || run_replications(&model, &cfg, &rep))
            .expect("replay runs");
        let pooled = parallel::with_threads(threads, || run_replications(&model, &cfg, &rep))
            .expect("replay runs");
        prop_assert_eq!(pooled.replications, replications);
        prop_assert_eq!(pooled.events, serial.events);
        prop_assert_eq!(pooled.arrivals, serial.arrivals);
        prop_assert_eq!(pooled.departures, serial.departures);
        for (a, b) in pooled.classes.iter().zip(&serial.classes) {
            prop_assert_eq!(a.offered, b.offered);
            prop_assert_eq!(a.admitted, b.admitted);
            prop_assert_eq!(a.denied_capacity, b.denied_capacity);
            prop_assert_eq!(a.denied_policy, b.denied_policy);
            prop_assert_eq!(a.acceptance.mean.to_bits(), b.acceptance.mean.to_bits());
            prop_assert_eq!(a.acceptance.half_width.to_bits(), b.acceptance.half_width.to_bits());
        }
        // Per-replication reports line up stream-for-stream too: the
        // merged equality above can't come from compensating errors.
        for (a, b) in pooled.per_rep.iter().zip(&serial.per_rep) {
            prop_assert_eq!(a.arrivals, b.arrivals);
            prop_assert_eq!(fingerprint(a), fingerprint(b));
        }
    }
}

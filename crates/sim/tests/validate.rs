//! Simulator ↔ analytic-solver agreement — the validation the paper lists
//! as future work (§8), plus an experimental check of the insensitivity
//! claim (§2).

use xbar_core::brute::Brute;
use xbar_core::{solve, Algorithm, Dims, Model};
use xbar_sim::{CrossbarSim, RunConfig, ServiceDist, SimConfig};
use xbar_traffic::{TrafficClass, Workload};

fn run(cfg: SimConfig, seed: u64, duration: f64) -> xbar_sim::SimReport {
    let mut sim = CrossbarSim::new(cfg, seed);
    sim.run(RunConfig {
        warmup: duration / 50.0,
        duration,
        batches: 20,
    })
}

#[test]
fn poisson_class_matches_analytics() {
    let n = 6u32;
    let rho = 0.08;
    let class = TrafficClass::poisson(rho);
    let model = Model::new(Dims::square(n), Workload::new().with(class.clone())).unwrap();
    let sol = solve(&model, Algorithm::Alg1F64).unwrap();

    let rep = run(SimConfig::new(n, n).with_exp_class(class), 42, 60_000.0);
    let c = &rep.classes[0];
    // Call blocking for Poisson arrivals equals 1 − B_r (PASTA).
    assert!(
        c.blocking.covers_with_slack(sol.blocking(0), 0.01),
        "blocking {:?} vs analytic {}",
        c.blocking,
        sol.blocking(0)
    );
    assert!(
        c.availability.covers_with_slack(sol.nonblocking(0), 0.005),
        "availability {:?} vs analytic {}",
        c.availability,
        sol.nonblocking(0)
    );
    assert!(
        c.concurrency.covers_with_slack(sol.concurrency(0), 0.05),
        "concurrency {:?} vs analytic {}",
        c.concurrency,
        sol.concurrency(0)
    );
}

#[test]
fn pascal_class_matches_analytics() {
    let n = 5u32;
    let class = TrafficClass::bpp(0.05, 0.3, 1.0);
    let model = Model::new(Dims::square(n), Workload::new().with(class.clone())).unwrap();
    let sol = solve(&model, Algorithm::Alg1F64).unwrap();

    let rep = run(SimConfig::new(n, n).with_exp_class(class), 7, 60_000.0);
    let c = &rep.classes[0];
    assert!(
        c.availability.covers_with_slack(sol.nonblocking(0), 0.01),
        "availability {:?} vs paper-B {}",
        c.availability,
        sol.nonblocking(0)
    );
    assert!(
        c.concurrency.covers_with_slack(sol.concurrency(0), 0.05),
        "concurrency {:?} vs analytic {}",
        c.concurrency,
        sol.concurrency(0)
    );
    // For bursty classes the call-level acceptance is a *different* number
    // from B_r; the solver's call_acceptance predicts the simulator's ratio.
    assert!(
        c.blocking
            .covers_with_slack(1.0 - sol.call_acceptance(0), 0.01),
        "call blocking {:?} vs analytic {}",
        c.blocking,
        1.0 - sol.call_acceptance(0)
    );
}

#[test]
fn bernoulli_class_matches_analytics() {
    let n = 4u32;
    // S = 8 sources, each of rate 0.03.
    let class = TrafficClass::bpp(0.24, -0.03, 1.0);
    let model = Model::new(Dims::square(n), Workload::new().with(class.clone())).unwrap();
    let sol = solve(&model, Algorithm::Alg1F64).unwrap();

    let rep = run(SimConfig::new(n, n).with_exp_class(class), 3, 60_000.0);
    let c = &rep.classes[0];
    assert!(
        c.availability.covers_with_slack(sol.nonblocking(0), 0.01),
        "availability {:?} vs {}",
        c.availability,
        sol.nonblocking(0)
    );
    assert!(
        c.concurrency.covers_with_slack(sol.concurrency(0), 0.05),
        "concurrency {:?} vs {}",
        c.concurrency,
        sol.concurrency(0)
    );
}

#[test]
fn mixed_multirate_workload_matches_brute_force() {
    let classes = vec![
        TrafficClass::poisson(0.06),
        TrafficClass::bpp(0.04, 0.15, 1.0),
        TrafficClass::poisson(0.02).with_bandwidth(2),
    ];
    let model = Model::new(Dims::new(5, 6), Workload::from_classes(classes.clone())).unwrap();
    let brute = Brute::new(&model);

    let mut cfg = SimConfig::new(5, 6);
    for c in classes {
        cfg = cfg.with_exp_class(c);
    }
    let rep = run(cfg, 19, 80_000.0);
    for r in 0..3 {
        assert!(
            rep.classes[r]
                .concurrency
                .covers_with_slack(brute.concurrency(r), 0.03),
            "class {r} concurrency {:?} vs brute {}",
            rep.classes[r].concurrency,
            brute.concurrency(r)
        );
        assert!(
            rep.classes[r]
                .availability
                .covers_with_slack(brute.nonblocking(r), 0.01),
            "class {r} availability {:?} vs brute {}",
            rep.classes[r].availability,
            brute.nonblocking(r)
        );
    }
    // Time-weighted occupancy distribution vs enumerated π.
    let want = brute.occupancy_distribution();
    for (j, (&got, &exp)) in rep.occupancy.iter().zip(&want).enumerate() {
        assert!(
            (got - exp).abs() < 0.01,
            "occupancy[{j}]: sim {got} vs brute {exp}"
        );
    }
}

#[test]
fn insensitivity_to_service_distribution() {
    // Paper §2 (ref [7]): the stationary law depends on holding times only
    // through their mean. Same mean, wildly different shapes ⇒ same
    // availability and concurrency.
    let n = 4u32;
    let class = TrafficClass::poisson(0.12);
    let model = Model::new(Dims::square(n), Workload::new().with(class.clone())).unwrap();
    let sol = solve(&model, Algorithm::Alg1F64).unwrap();

    let menu = [
        ServiceDist::Exponential { mean: 1.0 },
        ServiceDist::Deterministic { mean: 1.0 },
        ServiceDist::Erlang { mean: 1.0, k: 4 },
        ServiceDist::HyperExp {
            mean: 1.0,
            cv2: 4.0,
        },
        ServiceDist::Uniform { mean: 1.0 },
        ServiceDist::LogNormal {
            mean: 1.0,
            cv2: 2.0,
        },
        ServiceDist::Pareto {
            mean: 1.0,
            shape: 2.5,
        },
    ];
    for (i, dist) in menu.into_iter().enumerate() {
        let rep = run(
            SimConfig::new(n, n).with_class(class.clone(), dist),
            100 + i as u64,
            60_000.0,
        );
        let c = &rep.classes[0];
        assert!(
            c.availability.covers_with_slack(sol.nonblocking(0), 0.012),
            "{dist:?}: availability {:?} vs analytic {}",
            c.availability,
            sol.nonblocking(0)
        );
        assert!(
            c.concurrency.covers_with_slack(sol.concurrency(0), 0.05),
            "{dist:?}: concurrency {:?} vs analytic {}",
            c.concurrency,
            sol.concurrency(0)
        );
    }
}

#[test]
fn retrial_at_retry_rate_zero_matches_complete_sharing_via_harness() {
    // max_attempts = 1 is exactly blocked-calls-cleared, so the
    // harness-merged retrial loss must reproduce the analytic blocking of
    // the same single-class model. Uses the adaptive-stopping harness:
    // replications accumulate only until the merged CI is tight enough
    // for the assertion.
    use xbar_sim::{run_retrial_until_ci, CiTarget, Confidence, RepConfig, RetrialConfig};
    let class = TrafficClass::poisson(0.05);
    let model = Model::new(Dims::square(6), Workload::new().with(class.clone())).unwrap();
    let want = solve(&model, Algorithm::Auto).unwrap().blocking(0);
    let cfg = RetrialConfig {
        n1: 6,
        n2: 6,
        class,
        max_attempts: 1,
        backoff_mean: 0.3,
    };
    let run = RunConfig {
        warmup: 200.0,
        duration: 8_000.0,
        batches: 10,
    };
    let rep = RepConfig {
        replications: 0, // ignored by the adaptive path
        master_seed: 4242,
        confidence: Confidence::P99,
    };
    let merged = run_retrial_until_ci(&cfg, &run, &rep, CiTarget::new(4e-3));
    assert!(
        merged.loss.covers_with_slack(want, 5e-3),
        "loss {:?} ({} replications) vs analytic {want}",
        merged.loss,
        merged.replications
    );
    // Retry-rate 0: the accounting degenerates to pure loss.
    assert_eq!(merged.retries, 0);
    assert_eq!(merged.pending, 0);
    assert_eq!(merged.attempts, merged.calls);
    assert_eq!(merged.blocked_attempts, merged.lost);
}

#[test]
fn flow_balance_accepted_rate_equals_concurrency_times_mu() {
    // Little's-law style consistency inside the simulator itself:
    // accepted/duration ≈ μ·E.
    let class = TrafficClass::bpp(0.05, 0.2, 2.0);
    let cfg = SimConfig::new(5, 5).with_exp_class(class);
    let duration = 60_000.0;
    let rep = run(cfg, 55, duration);
    let c = &rep.classes[0];
    let accept_rate = c.accepted as f64 / duration;
    let want = 2.0 * c.concurrency.mean;
    assert!(
        (accept_rate - want).abs() / want < 0.05,
        "accepted rate {accept_rate} vs mu*E {want}"
    );
}

//! Golden event-stream fingerprints pinning the hot-loop rewrite.
//!
//! These counters and f64 bit patterns were captured from the legacy
//! rebuild-every-event loops (pre-PR 10) at fixed seeds. The incremental
//! loops must reproduce them *bit for bit*: the resident rate table
//! re-sums totals in the legacy fold order and keeps the legacy
//! subtractive selection scan, so any divergence here means the
//! bit-compatibility contract in `crates/sim/src/rates.rs` broke.

use xbar_admission::{EngineConfig, PolicySpec};
use xbar_core::{Dims, Model};
use xbar_sim::{replay, CrossbarSim, ReplayConfig, RunConfig, SimConfig};
use xbar_traffic::{TrafficClass, Workload};

fn run_crossbar(cfg: SimConfig, seed: u64) -> (u64, Vec<(u64, u64, u64)>, u64) {
    let mut sim = CrossbarSim::new(cfg, seed);
    let rep = sim.run(RunConfig {
        warmup: 50.0,
        duration: 5_000.0,
        batches: 10,
    });
    let classes = rep
        .classes
        .iter()
        .map(|c| (c.offered, c.blocked, c.blocking.mean.to_bits()))
        .collect();
    (rep.events, classes, rep.revenue.to_bits())
}

#[test]
fn crossbar_streams_match_the_legacy_loop_bit_for_bit() {
    let (events, classes, revenue) = run_crossbar(
        SimConfig::new(4, 4).with_exp_class(TrafficClass::poisson(0.2)),
        7,
    );
    assert_eq!(events, 23_185);
    assert_eq!(classes, vec![(16_010, 8_834, 0x3fe1_a797_a57e_8c4d)]);
    assert_eq!(revenue, 0x3ff7_4051_f5f4_5a83);

    let (events, classes, revenue) = run_crossbar(
        SimConfig::new(6, 8)
            .with_exp_class(TrafficClass::poisson(0.1))
            .with_exp_class(TrafficClass::bpp(0.08, 0.04, 1.0))
            .with_exp_class(TrafficClass::poisson(0.02).with_bandwidth(2)),
        99,
    );
    assert_eq!(events, 235_176);
    assert_eq!(
        classes,
        vec![
            (24_172, 19_974, 0x3fea_71ab_2959_2aee),
            (27_802, 23_293, 0x3fea_cf10_5876_ff21),
            (168_560, 162_625, 0x3fee_df8e_adf3_cbeb),
        ]
    );
    assert_eq!(revenue, 0x4007_9f08_4888_3e7a);

    let (events, classes, revenue) = run_crossbar(
        SimConfig::new(3, 3).with_exp_class(TrafficClass::bpp(0.64, -0.04, 1.0)),
        13,
    );
    assert_eq!(events, 33_788);
    assert_eq!(classes, vec![(25_909, 18_029, 0x3fe6_441d_cf70_9624)]);
    assert_eq!(revenue, 0x3ff8_fd0d_f824_cdb9);
}

#[test]
fn replay_streams_match_the_legacy_loop_bit_for_bit() {
    let w = Workload::new()
        .with(TrafficClass::poisson(0.1))
        .with(TrafficClass::bpp(0.08, 0.04, 1.0));
    let model = Model::new(Dims::new(6, 8), w).unwrap();
    let run = |policy: PolicySpec, seed: u64| {
        let rep = replay(
            &model,
            &ReplayConfig {
                events: 50_000,
                seed,
                batches: 20,
                engine: EngineConfig {
                    policy,
                    ..EngineConfig::default()
                },
            },
        )
        .unwrap();
        let classes: Vec<(u64, u64, u64, u64, u64)> = rep
            .classes
            .iter()
            .map(|c| {
                (
                    c.offered,
                    c.admitted,
                    c.denied_capacity,
                    c.denied_policy,
                    c.acceptance.mean.to_bits(),
                )
            })
            .collect();
        (rep.arrivals, rep.departures, classes)
    };

    let (arrivals, departures, classes) = run(PolicySpec::CompleteSharing, 9);
    assert_eq!((arrivals, departures), (39_362, 10_638));
    assert_eq!(
        classes,
        vec![
            (15_486, 4_601, 10_885, 0, 0x3fd2_ff3c_e36f_153a),
            (23_876, 6_040, 17_836, 0, 0x3fd0_30ab_e4f2_dff3),
        ]
    );

    let (arrivals, departures, classes) = run(PolicySpec::TrunkReservation(vec![0, 3]), 77);
    assert_eq!((arrivals, departures), (39_572, 10_428));
    assert_eq!(
        classes,
        vec![
            (18_088, 6_674, 11_414, 0, 0x3fd7_9c36_1ae6_ef8e),
            (21_484, 3_758, 13_822, 3_904, 0x3fc6_64bd_4cd0_96dd),
        ]
    );

    let (arrivals, departures, classes) = run(PolicySpec::ShadowPrice { reserve: 1 }, 11);
    assert_eq!((arrivals, departures), (39_396, 10_604));
    assert_eq!(
        classes,
        vec![
            (15_447, 4_559, 10_888, 0, 0x3fd2_e3fa_8c06_922a),
            (23_949, 6_047, 17_902, 0, 0x3fd0_2a02_f802_7f56),
        ]
    );
}

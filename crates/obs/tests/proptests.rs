//! Property tests for the merge semantics the observability layer relies
//! on: registries recorded on different threads and merged in any order or
//! grouping must agree on every exact statistic (counter values, histogram
//! counts, buckets, min, max). The floating-point `sum` is the one
//! order-dependent field, so it is checked to a relative tolerance only.

use std::sync::Arc;

use proptest::prelude::*;
use xbar_obs::{Histogram, Registry};

/// Exact (order-independent) part of a histogram snapshot. `min`/`max`
/// compare bitwise: `fetch_min`/`fetch_max` keep exact recorded values.
fn exact_parts(h: &Histogram) -> (u64, Vec<(i32, u64)>, u64, u64) {
    let s = h.snapshot();
    (s.count, s.buckets, s.min.to_bits(), s.max.to_bits())
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging k partial histograms gives the same exact statistics as
    /// recording everything into one, regardless of how the values are
    /// partitioned.
    #[test]
    fn histogram_merge_is_partition_independent(
        values in proptest::collection::vec(
            prop_oneof![
                -1.0e12..1.0e12f64,
                0.0..1.0e-12f64,
                Just(0.0f64),
            ],
            1..200,
        ),
        parts in 1usize..8,
    ) {
        let whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }

        // Partition the value list round-robin into `parts` shards.
        let partials: Vec<Histogram> = (0..parts).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            partials[i % parts].record(v);
        }
        let merged = Histogram::new();
        for p in &partials {
            merged.merge(p);
        }

        prop_assert_eq!(exact_parts(&merged), exact_parts(&whole));
        prop_assert!(close(merged.snapshot().sum, whole.snapshot().sum));
    }

    /// Merge is associative on the exact statistics: (a + b) + c equals
    /// a + (b + c) equals any other grouping.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(-1.0e6..1.0e6f64, 0..50),
        b in proptest::collection::vec(-1.0e6..1.0e6f64, 0..50),
        c in proptest::collection::vec(-1.0e6..1.0e6f64, 0..50),
    ) {
        let mk = |vals: &[f64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // ((a ∪ b) ∪ c)
        let left = mk(&a);
        left.merge(&mk(&b));
        left.merge(&mk(&c));
        // (a ∪ (b ∪ c)) — and in swapped order.
        let bc = mk(&c);
        bc.merge(&mk(&b));
        let right = mk(&a);
        right.merge(&bc);
        prop_assert_eq!(exact_parts(&left), exact_parts(&right));
    }

    /// Registry counters merged in any order equal the serial total, and
    /// concurrent recording from several threads agrees with the same
    /// values recorded serially.
    #[test]
    fn registry_merge_across_threads_matches_serial(
        deltas in proptest::collection::vec(0u64..1000, 1..120),
        threads in 2usize..5,
    ) {
        // Serial reference.
        let serial = Registry::new();
        for (i, &d) in deltas.iter().enumerate() {
            serial.counter(if i % 2 == 0 { "even" } else { "odd" }).add(d);
            serial.histogram("h").record(d as f64);
        }

        // Each thread records its share into its own registry; the shards
        // are merged in reverse order (order must not matter).
        let shards: Vec<Arc<Registry>> =
            (0..threads).map(|_| Arc::new(Registry::new())).collect();
        crossbeam::thread::scope(|s| {
            for (t, shard) in shards.iter().enumerate() {
                let deltas = &deltas;
                s.spawn(move |_| {
                    for (i, &d) in deltas.iter().enumerate() {
                        if i % threads == t {
                            shard
                                .counter(if i % 2 == 0 { "even" } else { "odd" })
                                .add(d);
                            shard.histogram("h").record(d as f64);
                        }
                    }
                });
            }
        })
        .unwrap();
        let merged = Registry::new();
        for shard in shards.iter().rev() {
            merged.merge(shard);
        }

        let want = serial.snapshot();
        let got = merged.snapshot();
        prop_assert_eq!(&got.counters, &want.counters);
        let (wh, gh) = (want.histogram("h").unwrap(), got.histogram("h").unwrap());
        prop_assert_eq!(gh.count, wh.count);
        prop_assert_eq!(&gh.buckets, &wh.buckets);
        prop_assert_eq!(gh.min, wh.min);
        prop_assert_eq!(gh.max, wh.max);
        prop_assert!(close(gh.sum, wh.sum));
    }
}

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Lightweight observability for the crossbar workspace: **counters**,
//! **histograms**, and **hierarchical timed spans** behind named
//! registries, with deterministic snapshots.
//!
//! Like the other `*-shim` crates this has zero dependencies; unlike them
//! it is not standing in for a registry crate — it is the workspace's own
//! metrics substrate, sized for what the solver, cache, and simulator
//! actually need:
//!
//! * **Cheap when disabled.** Every recording call first resolves the
//!   current *sink* ([`sink`]): the innermost scoped [`Registry`] on this
//!   thread, else the process-wide registry when globally enabled, else
//!   `None`. With no scope installed and the global switch off (the
//!   default), a recording call is one thread-local read plus one relaxed
//!   atomic load and returns immediately — no clock reads, no allocation,
//!   no locks. Instrumentation sits at aggregation points (per solve, per
//!   anti-diagonal, per simulation run), never per lattice cell or per
//!   simulated event, so even the enabled cost is amortised away.
//! * **Deterministic when snapshotted.** [`Registry::snapshot`] returns
//!   name-sorted values. Counter values depend only on the work performed
//!   (instrumented code increments them by data-dependent amounts, never
//!   by timing), so two runs of the same workload — serial or wavefront,
//!   one worker or eight — agree on every counter. Timings (span
//!   histograms) are of course machine-dependent; comparisons that want
//!   determinism use [`Snapshot::counters_excluding`] to drop the
//!   documented timing-only names.
//! * **Isolated in tests.** A test installs its own registry with
//!   [`scope`] and sees only its own workload's metrics, immune to the
//!   test harness running other solves concurrently. Worker threads
//!   spawned by instrumented code re-install the spawner's scope via
//!   [`current_scope`]/[`ScopeHandle::enter`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! let reg = Arc::new(xbar_obs::Registry::new());
//! {
//!     let _g = xbar_obs::scope(&reg);
//!     xbar_obs::add("cache.hits", 2);
//!     xbar_obs::record("solver.gap", 1.5e-12);
//!     let x = xbar_obs::time("solve", || 21 * 2);
//!     assert_eq!(x, 42);
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("cache.hits"), Some(2));
//! assert_eq!(snap.histogram("solver.gap").map(|h| h.count), Some(1));
//! assert!(snap.to_json().contains("\"schema\""));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Version of the snapshot JSON schema (the `"schema"` field).
///
/// Bump when the JSON shape changes incompatibly; consumers (CI artifact
/// checks, `BENCH_N.json` readers) match on it.
///
/// History: 1 = counters + histograms; 2 = adds the `"gauges"` object.
pub const SNAPSHOT_SCHEMA: u32 = 2;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// A monotonic `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Fold another counter into this one (used by [`Registry::merge`]).
    pub fn merge(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// A last-writer-wins `u64` level (queue depths, stale-tenant counts):
/// unlike a [`Counter`] it moves both ways, and a snapshot reports the
/// *current* level, not an accumulation.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the current level.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Fold another gauge into this one (used by [`Registry::merge`]): the
    /// merged level is the **max** of the two — merging per-thread or
    /// per-shard registries should report the worst level seen, and max is
    /// associative and commutative so merge order cannot matter.
    pub fn merge(&self, other: &Gauge) {
        self.value.fetch_max(other.get(), Ordering::Relaxed);
    }
}

/// Number of decade buckets: values land in bucket
/// `floor(log10(v)) + 18`, clamped to `[0, 36]`, covering `1e-18 ..= 1e18`.
const DECADES: usize = 37;

/// Offset added to `floor(log10(v))` to index [`Histogram::buckets`].
const DECADE_OFFSET: i32 = 18;

/// A histogram of non-negative `f64` values over fixed powers-of-ten
/// buckets, plus exact count/min/max and an (order-dependent, see below)
/// running sum.
///
/// Buckets are decade-wide — observability resolution, not statistics: the
/// recorded quantities span ~30 orders of magnitude (cross-check gaps
/// around `1e-13`, span durations in nanoseconds up to whole-run seconds)
/// and a fixed log grid keeps **bucket counts order-independent and
/// exactly mergeable** ([`Histogram::merge`] is associative and
/// commutative on counts, min and max). The `f64` sum is the one field
/// that depends on accumulation order (floating-point addition does);
/// deterministic comparisons use counts, not sums.
///
/// Negative values are clamped to zero (recorded quantities — durations,
/// gaps, sizes — are non-negative by construction); zero lands in a
/// dedicated bucket below the smallest decade.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    /// `f64` bits, CAS-accumulated.
    sum_bits: AtomicU64,
    /// `f64` bits of the minimum; non-negative floats order like their bits.
    min_bits: AtomicU64,
    /// `f64` bits of the maximum.
    max_bits: AtomicU64,
    /// Exact zeros (and clamped negatives).
    zero: AtomicU64,
    /// Values below `1e-18` (but positive).
    underflow: AtomicU64,
    /// Decade buckets for `1e-18 ..= 1e18`.
    buckets: [AtomicU64; DECADES],
    /// Values above the largest decade.
    overflow: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0),
            zero: AtomicU64::new(0),
            underflow: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; DECADES],
            overflow: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value (negatives clamp to zero, NaN is dropped).
    pub fn record(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let v = value.max(0.0);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS-accumulate the f64 sum.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.min_bits.fetch_min(v.to_bits(), Ordering::Relaxed);
        self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
        self.bucket_for(v).fetch_add(1, Ordering::Relaxed);
    }

    fn bucket_for(&self, v: f64) -> &AtomicU64 {
        if v == 0.0 {
            return &self.zero;
        }
        let e = v.log10().floor() as i32 + DECADE_OFFSET;
        if e < 0 {
            &self.underflow
        } else if e >= DECADES as i32 {
            &self.overflow
        } else {
            &self.buckets[e as usize]
        }
    }

    /// Fold another histogram into this one. Counts, buckets, min and max
    /// merge exactly (associative, commutative); the sum is `f64` addition
    /// and therefore only approximately order-independent.
    pub fn merge(&self, other: &Histogram) {
        let n = other.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        let other_sum = f64::from_bits(other.sum_bits.load(Ordering::Relaxed));
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + other_sum).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.min_bits
            .fetch_min(other.min_bits.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_bits
            .fetch_max(other.max_bits.load(Ordering::Relaxed), Ordering::Relaxed);
        self.zero
            .fetch_add(other.zero.load(Ordering::Relaxed), Ordering::Relaxed);
        self.underflow
            .fetch_add(other.underflow.load(Ordering::Relaxed), Ordering::Relaxed);
        self.overflow
            .fetch_add(other.overflow.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of this histogram's aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        let zero = self.zero.load(Ordering::Relaxed);
        if zero > 0 {
            buckets.push((i32::MIN, zero));
        }
        let under = self.underflow.load(Ordering::Relaxed);
        if under > 0 {
            buckets.push((-DECADE_OFFSET - 1, under));
        }
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as i32 - DECADE_OFFSET, n));
            }
        }
        let over = self.overflow.load(Ordering::Relaxed);
        if over > 0 {
            buckets.push((DECADES as i32 - DECADE_OFFSET, over));
        }
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named collection of [`Counter`]s and [`Histogram`]s.
///
/// Metrics are created on first use ([`Registry::counter`] /
/// [`Registry::histogram`]); names are dot-separated paths by convention
/// (`cache.hits`, `sim.offers`, `span.solve/attempt`).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created zeroed on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The gauge named `name`, created zeroed on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Fold every metric of `other` into this registry (creating names as
    /// needed). Counter values and histogram counts merge exactly, so
    /// merging a set of registries yields the same counts in any order and
    /// grouping.
    pub fn merge(&self, other: &Registry) {
        for (name, c) in lock(&other.counters).iter() {
            self.counter(name).merge(c);
        }
        for (name, g) in lock(&other.gauges).iter() {
            self.gauge(name).merge(g);
        }
        for (name, h) in lock(&other.histograms).iter() {
            self.histogram(name).merge(h);
        }
    }

    /// Reset every metric to zero (names are forgotten too).
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
    }

    /// A deterministic (name-sorted) point-in-time snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

// ---------------------------------------------------------------------------
// Scoping / global switch
// ---------------------------------------------------------------------------

static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide registry used when recording is globally enabled and
/// no thread-local scope is installed (the CLI's `--metrics` path).
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// Turn process-wide recording into [`global`] on or off (default: off).
pub fn set_global_enabled(on: bool) {
    GLOBAL_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether process-wide recording is on.
pub fn global_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// Innermost-wins stack of scoped registries for this thread.
    static SCOPES: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
    /// Active span-name stack (for hierarchical span paths).
    static SPAN_PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Where a recording made right now on this thread would land: the
/// innermost scoped registry, else [`global`] when globally enabled, else
/// nowhere (`None` — recording is disabled and costs almost nothing).
pub fn sink() -> Option<Arc<Registry>> {
    let scoped = SCOPES.with(|s| s.borrow().last().cloned());
    if scoped.is_some() {
        return scoped;
    }
    if GLOBAL_ENABLED.load(Ordering::Relaxed) {
        return Some(Arc::clone(global()));
    }
    None
}

/// `true` iff a recording made right now on this thread would be kept.
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed) || SCOPES.with(|s| !s.borrow().is_empty())
}

/// RAII guard returned by [`scope`]; pops the registry on drop.
pub struct ScopeGuard {
    _private: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Install `registry` as this thread's recording sink until the guard
/// drops. Scopes nest; the innermost wins.
pub fn scope(registry: &Arc<Registry>) -> ScopeGuard {
    SCOPES.with(|s| s.borrow_mut().push(Arc::clone(registry)));
    ScopeGuard { _private: () }
}

/// A capture of this thread's current scope (if any), for handing to
/// spawned worker threads — scoped registries are thread-local, so workers
/// must re-install the spawner's scope to contribute to it.
#[derive(Clone)]
pub struct ScopeHandle(Option<Arc<Registry>>);

/// Capture the current innermost scope for propagation into workers.
pub fn current_scope() -> ScopeHandle {
    ScopeHandle(SCOPES.with(|s| s.borrow().last().cloned()))
}

impl ScopeHandle {
    /// Install the captured scope on this thread (no-op handle if the
    /// spawner had none — the worker then falls through to the global
    /// switch like any other thread).
    pub fn enter(&self) -> Option<ScopeGuard> {
        self.0.as_ref().map(scope)
    }
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// Add `delta` to counter `name` in the current sink (no-op when disabled).
pub fn add(name: &str, delta: u64) {
    if let Some(reg) = sink() {
        reg.counter(name).add(delta);
    }
}

/// Increment counter `name` by one (no-op when disabled).
pub fn inc(name: &str) {
    add(name, 1);
}

/// Set gauge `name` to `value` in the current sink (no-op when disabled).
pub fn set_gauge(name: &str, value: u64) {
    if let Some(reg) = sink() {
        reg.gauge(name).set(value);
    }
}

/// Record `value` into histogram `name` (no-op when disabled).
pub fn record(name: &str, value: f64) {
    if let Some(reg) = sink() {
        reg.histogram(name).record(value);
    }
}

/// Record a duration, in nanoseconds, into histogram `name`.
pub fn record_duration(name: &str, d: Duration) {
    record(name, d.as_nanos() as f64);
}

/// Run `f` inside a named span: its wall time lands in the histogram
/// `span.<path>` where `<path>` is this thread's active span names joined
/// with `/` (so nested `time` calls produce hierarchical names like
/// `span.fig1/solve`). When recording is disabled the closure runs
/// directly — no clock is read.
pub fn time<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let Some(reg) = sink() else {
        return f();
    };
    SPAN_PATH.with(|p| p.borrow_mut().push(name.to_string()));
    let t0 = Instant::now();
    // Pop the span path even if `f` panics, so a caught panic (e.g. in
    // tests) cannot corrupt sibling spans recorded afterwards.
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            SPAN_PATH.with(|p| {
                p.borrow_mut().pop();
            });
        }
    }
    let _pop = PopOnDrop;
    let result = f();
    let elapsed = t0.elapsed();
    let path = SPAN_PATH.with(|p| p.borrow().join("/"));
    reg.histogram(&format!("span.{path}"))
        .record(elapsed.as_nanos() as f64);
    result
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Aggregates of one histogram at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (`f64`, order-dependent in the last ulps).
    pub sum: f64,
    /// Smallest recorded value (0 when empty).
    pub min: f64,
    /// Largest recorded value (0 when empty).
    pub max: f64,
    /// Non-empty buckets as `(decade, count)`: decade `e` holds values in
    /// `[10^e, 10^(e+1))`; `i32::MIN` is the exact-zero bucket; one decade
    /// below/above the covered range collects under-/overflow.
    pub buckets: Vec<(i32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A deterministic, name-sorted capture of one [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` pairs, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, aggregates)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Minimal JSON string escaping (metric names are ASCII identifiers, but
/// be correct anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON-safe rendering of an `f64` (finite values in exponent notation;
/// non-finite values, which valid snapshots never contain, become `null`).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:e}")
    } else {
        "null".to_string()
    }
}

impl Snapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Level of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Aggregates of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The counters whose names start with none of `prefixes` — for
    /// comparing two runs while ignoring names that legitimately differ
    /// (e.g. the `alg1.sweep.serial`/`alg1.sweep.parallel` decision
    /// counters between a forced-serial and a forced-parallel run).
    pub fn counters_excluding(&self, prefixes: &[&str]) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| !prefixes.iter().any(|p| n.starts_with(p)))
            .cloned()
            .collect()
    }

    /// Serialise to pretty-printed, schema-versioned JSON. Hand-rolled —
    /// the build environment has no serde — and stable: keys are sorted,
    /// floats are exponent-notation.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {SNAPSHOT_SCHEMA},\n"));
        s.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            s.push_str(&format!("\n    \"{}\": {value}{comma}", json_escape(name)));
        }
        if !self.counters.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n");
        s.push_str("  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            s.push_str(&format!("\n    \"{}\": {value}{comma}", json_escape(name)));
        }
        if !self.gauges.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n");
        s.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(e, n)| {
                    let key = if *e == i32::MIN {
                        "zero".to_string()
                    } else {
                        e.to_string()
                    };
                    format!("\"{key}\": {n}")
                })
                .collect();
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"buckets\": {{{}}}}}{comma}",
                json_escape(name),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                buckets.join(", "),
            ));
        }
        if !self.histograms.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Render as an aligned human-readable table (the CLI's `--metrics -`).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        if !self.counters.is_empty() {
            s.push_str("counters:\n");
            let width = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (name, value) in &self.counters {
                s.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("gauges:\n");
            let width = self.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                s.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.histograms.is_empty() {
            s.push_str("histograms:\n");
            let width = self
                .histograms
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (name, h) in &self.histograms {
                s.push_str(&format!(
                    "  {name:<width$}  count {:<8} mean {:<12.4e} min {:<12.4e} max {:.4e}\n",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max,
                ));
            }
        }
        if s.is_empty() {
            s.push_str("(no metrics recorded)\n");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        // No scope, global off: nothing lands anywhere.
        assert!(!enabled());
        add("nope", 5);
        record("nope.h", 1.0);
        let x = time("nope.span", || 7);
        assert_eq!(x, 7);
        assert_eq!(global().snapshot().counter("nope"), None);
    }

    #[test]
    fn scoped_recording_lands_in_the_scope_only() {
        let reg = Arc::new(Registry::new());
        {
            let _g = scope(&reg);
            assert!(enabled());
            inc("a");
            add("a", 2);
            record("h", 0.5);
        }
        assert!(!enabled());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(3));
        assert_eq!(snap.histogram("h").map(|h| h.count), Some(1));
        assert_eq!(global().snapshot().counter("a"), None);
    }

    #[test]
    fn gauges_are_last_writer_wins_and_merge_by_max() {
        let reg = Arc::new(Registry::new());
        {
            let _g = scope(&reg);
            set_gauge("depth", 5);
            set_gauge("depth", 2); // moves down, unlike a counter
        }
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("depth"), Some(2));
        assert_eq!(snap.gauge("missing"), None);
        // Merge takes the worst (max) level, in any order.
        let a = Registry::new();
        let b = Registry::new();
        a.gauge("stale").set(1);
        b.gauge("stale").set(4);
        a.merge(&b);
        assert_eq!(a.snapshot().gauge("stale"), Some(4));
        // Serialisation: gauges appear in JSON and text renderings.
        assert!(snap.to_json().contains("\"gauges\""));
        assert!(snap.to_json().contains("\"depth\": 2"));
        assert!(snap.to_text().contains("gauges:"));
        // Disabled recording is a no-op.
        set_gauge("nowhere", 9);
        assert_eq!(global().snapshot().gauge("nowhere"), None);
    }

    #[test]
    fn inner_scope_wins_over_outer() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        let _o = scope(&outer);
        inc("x");
        {
            let _i = scope(&inner);
            inc("x");
        }
        inc("x");
        assert_eq!(outer.snapshot().counter("x"), Some(2));
        assert_eq!(inner.snapshot().counter("x"), Some(1));
    }

    #[test]
    fn spans_are_hierarchical_and_timed() {
        let reg = Arc::new(Registry::new());
        {
            let _g = scope(&reg);
            let out = time("outer", || {
                time("inner", || std::thread::sleep(Duration::from_millis(2)));
                1
            });
            assert_eq!(out, 1);
        }
        let snap = reg.snapshot();
        let inner = snap.histogram("span.outer/inner").expect("inner span");
        let outer = snap.histogram("span.outer").expect("outer span");
        assert_eq!(inner.count, 1);
        assert_eq!(outer.count, 1);
        assert!(outer.max >= inner.max, "outer contains inner");
        assert!(inner.min >= 2e6, "slept >= 2ms, recorded ns");
    }

    #[test]
    fn span_path_survives_a_panicking_body() {
        let reg = Arc::new(Registry::new());
        let _g = scope(&reg);
        let result = std::panic::catch_unwind(|| time("boom", || panic!("x")));
        assert!(result.is_err());
        time("after", || ());
        let snap = reg.snapshot();
        // The panicked span recorded nothing, but the path unwound: the
        // next span is top-level, not nested under "boom".
        assert!(snap.histogram("span.after").is_some());
        assert!(snap.histogram("span.boom/after").is_none());
    }

    #[test]
    fn scope_handle_propagates_to_worker_threads() {
        let reg = Arc::new(Registry::new());
        let _g = scope(&reg);
        let handle = current_scope();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let handle = handle.clone();
                s.spawn(move || {
                    let _w = handle.enter();
                    inc("worker.ticks");
                });
            }
        });
        assert_eq!(reg.snapshot().counter("worker.ticks"), Some(4));
    }

    #[test]
    fn histogram_buckets_min_max_mean() {
        let h = Histogram::new();
        for v in [0.0, 1e-13, 3e-13, 0.5, 2.0e9] {
            h.record(v);
        }
        h.record(-1.0); // clamps to zero
        h.record(f64::NAN); // dropped
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 2.0e9);
        // zero bucket: exact zero + clamped negative.
        assert_eq!(
            s.buckets.iter().find(|(e, _)| *e == i32::MIN),
            Some(&(i32::MIN, 2))
        );
        assert_eq!(
            s.buckets.iter().find(|(e, _)| *e == -13),
            Some(&(-13, 2)),
            "{:?}",
            s.buckets
        );
        assert_eq!(s.buckets.iter().find(|(e, _)| *e == -1), Some(&(-1, 1)));
        assert_eq!(s.buckets.iter().find(|(e, _)| *e == 9), Some(&(9, 1)));
        let total: u64 = s.buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, s.count);
    }

    #[test]
    fn histogram_extreme_values_land_in_sentinel_buckets() {
        let h = Histogram::new();
        h.record(1e-30);
        h.record(1e30);
        let s = h.snapshot();
        assert_eq!(
            s.buckets.iter().find(|(e, _)| *e == -DECADE_OFFSET - 1),
            Some(&(-19, 1))
        );
        assert_eq!(s.buckets.iter().find(|(e, _)| *e == 19), Some(&(19, 1)));
    }

    #[test]
    fn registry_merge_sums_counts_exactly() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("c").add(3);
        b.counter("c").add(4);
        b.counter("only-b").add(1);
        a.histogram("h").record(1.0);
        b.histogram("h").record(100.0);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("c"), Some(7));
        assert_eq!(snap.counter("only-b"), Some(1));
        let h = snap.histogram("h").expect("merged");
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
    }

    #[test]
    fn snapshot_is_sorted_and_json_well_formed() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.histogram("m.h").record(2.5e-4);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        assert_eq!(snap.counters[1].0, "z.last");
        let json = snap.to_json();
        assert!(json.contains(&format!("\"schema\": {SNAPSHOT_SCHEMA}")));
        assert!(json.contains("\"a.first\": 2"));
        assert!(json.contains("\"count\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Text rendering mentions every name.
        let text = snap.to_text();
        assert!(text.contains("a.first") && text.contains("m.h"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = Registry::new().snapshot();
        assert!(snap.to_text().contains("no metrics"));
        let json = snap.to_json();
        assert!(json.contains("\"counters\": {}"));
    }

    #[test]
    fn counters_excluding_filters_by_prefix() {
        let reg = Registry::new();
        reg.counter("alg1.sweep.serial").add(1);
        reg.counter("alg1.cells").add(100);
        reg.counter("cache.hits").add(2);
        let snap = reg.snapshot();
        let kept = snap.counters_excluding(&["alg1.sweep."]);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|(n, _)| n == "alg1.cells"));
        assert!(kept.iter().any(|(n, _)| n == "cache.hits"));
    }

    #[test]
    fn global_switch_routes_to_global_registry() {
        // Serialise against other tests touching the global switch by
        // using a uniquely-named counter and toggling briefly.
        set_global_enabled(true);
        inc("test.global_switch.unique");
        set_global_enabled(false);
        assert!(global().snapshot().counter("test.global_switch.unique") >= Some(1));
    }
}

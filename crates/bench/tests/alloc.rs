//! Counting-allocator proof of the `LatticeArena` contract: once warmed
//! to a geometry, serial re-solves perform **zero** heap allocations.
//!
//! The whole file is one `#[test]` on purpose — the counting
//! `#[global_allocator]` is process-wide, and a second test running
//! concurrently would race the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use xbar_core::alg1::LatticeArena;
use xbar_core::{Dims, Model};
use xbar_numeric::ExtFloat;
use xbar_traffic::{TrafficClass, Workload};

/// [`System`] plus a relaxed allocation counter. Deallocations are not
/// counted: the contract under test is "no new memory", and frees of
/// warm-up storage would only mask missed allocations.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn model(n: u32) -> Model {
    let w = Workload::new()
        .with(TrafficClass::poisson(0.02))
        .with(TrafficClass::bpp(0.01, 0.004, 1.0).with_bandwidth(2));
    Model::new(Dims::square(n), w).unwrap()
}

/// Count allocations across `steady` invocations of `f` after two warm-up
/// invocations. Takes the minimum over three measurement batches: the
/// counter is process-wide, so the libtest harness thread can add
/// sporadic noise, but an allocation made by `f` itself is deterministic
/// and shows up in every batch.
fn steady_state_allocs<F: FnMut()>(steady: usize, mut f: F) -> u64 {
    f();
    f();
    (0..3)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for _ in 0..steady {
                f();
            }
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .unwrap()
}

#[test]
fn warm_arena_serial_solves_allocate_nothing() {
    let m = model(12);

    // Plain f64 lattice through a warm arena.
    let mut f64_arena = LatticeArena::<f64>::new();
    let allocs = steady_state_allocs(10, || {
        let lattice = f64_arena.solve_with_threads(&m, 1);
        std::hint::black_box(lattice.is_healthy());
    });
    assert_eq!(allocs, 0, "f64 arena allocated in steady state");

    // Scaled-f64 lattice (separate coefficient table, same buffers).
    let mut scaled_arena = LatticeArena::<f64>::new();
    let allocs = steady_state_allocs(10, || {
        let lattice = scaled_arena.solve_scaled_with_threads(&m, 1);
        std::hint::black_box(lattice.is_healthy());
    });
    assert_eq!(allocs, 0, "scaled arena allocated in steady state");

    // Extended-range lattice.
    let mut ext_arena = LatticeArena::<ExtFloat>::new();
    let allocs = steady_state_allocs(10, || {
        let lattice = ext_arena.solve_with_threads(&m, 1);
        std::hint::black_box(lattice.is_healthy());
    });
    assert_eq!(allocs, 0, "ExtFloat arena allocated in steady state");

    // Re-warming to a *smaller* geometry must also stay allocation-free:
    // clear()+resize() shrinks logically without releasing capacity.
    let small = model(6);
    let allocs = steady_state_allocs(10, || {
        let lattice = f64_arena.solve_with_threads(&small, 1);
        std::hint::black_box(lattice.is_healthy());
    });
    assert_eq!(allocs, 0, "shrunk-geometry arena allocated in steady state");
}

//! Cost of the beyond-the-paper analyses: occupancy convolution with
//! marginals (Algorithm 3 extras), the reduced-load approximation, the
//! transient uniformisation, and the trunk-reservation chain solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xbar_bench::{mixed_model, table2_model};
use xbar_core::alg3::Convolution;
use xbar_core::approx::reduced_load;
use xbar_core::policy::solve_policy;
use xbar_core::sensitivity::sensitivity;
use xbar_core::transient::Transient;
use xbar_core::Algorithm;

/// Shared quick profile: the regeneration costs here are seconds-scale,
/// so short measurement windows already give stable estimates and keep
/// `cargo bench --workspace` inside a coffee break.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench_convolution_extras(c: &mut Criterion) {
    let mut g = c.benchmark_group("convolution_extras");
    for n in [32u32, 128, 256] {
        let model = table2_model(n);
        g.bench_with_input(BenchmarkId::new("solve", n), &model, |b, m| {
            b.iter(|| black_box(Convolution::solve(m).g_at(n as i64, n as i64)))
        });
        let conv = Convolution::solve(&model);
        g.bench_with_input(BenchmarkId::new("marginal", n), &conv, |b, conv| {
            b.iter(|| black_box(conv.class_marginal(1).len()))
        });
        g.bench_with_input(BenchmarkId::new("occupancy", n), &conv, |b, conv| {
            b.iter(|| black_box(conv.occupancy_distribution().len()))
        });
    }
    g.finish();
}

fn bench_reduced_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduced_load");
    for n in [16u32, 256] {
        let model = table2_model(n);
        g.bench_with_input(BenchmarkId::new("fixed_point", n), &model, |b, m| {
            b.iter(|| black_box(reduced_load(m).blocking(0)))
        });
    }
    g.finish();
}

fn bench_transient(c: &mut Criterion) {
    let mut g = c.benchmark_group("transient");
    g.sample_size(10);
    let model = mixed_model(6);
    let tr = Transient::new(&model);
    g.bench_function("distribution_t10", |b| {
        b.iter(|| black_box(tr.distribution(10.0).len()))
    });
    g.bench_function("build_chain_n6", |b| {
        b.iter(|| black_box(Transient::new(&model).state_count()))
    });
    g.finish();
}

fn bench_policy_and_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy");
    g.sample_size(10);
    let model = mixed_model(6);
    g.bench_function("trunk_reservation_n6", |b| {
        b.iter(|| black_box(solve_policy(&model, &[0, 1, 0, 2]).revenue))
    });
    let small = table2_model(16);
    g.bench_function("sensitivity_matrix_n16", |b| {
        b.iter(|| {
            black_box(
                sensitivity(&small, Algorithm::Alg1F64)
                    .unwrap()
                    .revenue_by_rho[0],
            )
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    bench_convolution_extras,
    bench_reduced_load,
    bench_transient,
    bench_policy_and_sensitivity
);
criterion_main!(benches);

//! Overhead of the resilient solve pipeline versus calling the
//! extended-range backend directly.
//!
//! The escalation chain tries the fastest backend first and only pays for
//! the slower ones when the cheap ones underflow, so the interesting
//! question is what the whole pipeline (escalation + guard validation +
//! independent cross-check) costs relative to the single backend you would
//! have hand-picked. At `N = 32` the f64 backend still wins outright; at
//! `N = 128` and `N = 512` it underflows and the pipeline escalates, so
//! the cross-check dominates the overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xbar_bench::table2_model;
use xbar_core::{solve, solve_resilient, Algorithm, ResilientConfig};

/// Same quick profile as the other benches: short windows, stable enough.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench_resilient_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("resilience");
    for n in [32u32, 128, 512] {
        let model = table2_model(n);
        g.bench_with_input(
            BenchmarkId::new("direct-alg1-ext", n),
            &model,
            |b, model| {
                b.iter(|| {
                    black_box(
                        solve(model, Algorithm::Alg1Ext)
                            .expect("solves")
                            .blocking(0),
                    )
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("resilient", n), &model, |b, model| {
            let config = ResilientConfig::default();
            b.iter(|| {
                black_box(
                    solve_resilient(model, &config)
                        .expect("solves")
                        .solution
                        .blocking(0),
                )
            })
        });
        g.bench_with_input(
            BenchmarkId::new("resilient-no-cross-check", n),
            &model,
            |b, model| {
                let config = ResilientConfig::default().with_cross_check(false);
                b.iter(|| {
                    black_box(
                        solve_resilient(model, &config)
                            .expect("solves")
                            .solution
                            .blocking(0),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_resilient_overhead
);
criterion_main!(benches);

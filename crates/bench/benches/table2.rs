//! Regeneration cost of Table 2: the single most expensive analytic
//! artefact (three parameter sets × nine sizes up to 256, each with a
//! forward-difference gradient that re-solves the lattice twice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xbar_experiments::table2;

/// Shared quick profile: the regeneration costs here are seconds-scale,
/// so short measurement windows already give stable estimates and keep
/// `cargo bench --workspace` inside a coffee break.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    for n in [16u32, 64, 256] {
        g.bench_with_input(BenchmarkId::new("row", n), &n, |b, &n| {
            b.iter(|| black_box(table2::row(table2::SETS[0], n).revenue))
        });
    }
    g.finish();
}

fn bench_full_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_full");
    g.sample_size(10);
    g.bench_function("all_rows", |b| b.iter(|| black_box(table2::rows().len())));
    g.finish();
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_cells, bench_full_table);
criterion_main!(benches);

//! Batched fleet anchor solves: heterogeneous model batches through
//! [`SolveCache::solve_fleet`] across fleet sizes, plus the raw SIMD
//! recombination kernels that power [`FleetSweep`] per-point solves.
//! Compare the fleet numbers against `algorithms.rs` single-solve costs
//! to see what sharding across the persistent pool buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use xbar_bench::fleet_member_model;
use xbar_core::simd::{combine_fast, combine_scalar, combine_strict};
use xbar_core::{Algorithm, FleetSweep, Model, SolveCache};

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

/// Whole-batch anchor solves through a fresh cache per iteration, so
/// every member is a real lattice solve (the trajectory binary's
/// `fleet/anchor-solves-per-sec` records, under Criterion's harness).
fn bench_fleet_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_solve");
    g.sample_size(10);
    for size in [1usize, 16, 100] {
        let models: Vec<Model> = (0..size).map(fleet_member_model).collect();
        g.throughput(Throughput::Elements(size as u64));
        g.bench_with_input(BenchmarkId::new("models", size), &size, |b, &size| {
            b.iter(|| {
                let cache = SolveCache::new(size.max(2));
                for r in cache.solve_fleet(&models, Algorithm::Auto) {
                    black_box(r.expect("fleet member solves"));
                }
            })
        });
    }
    g.finish();
}

/// Per-point recombinations through a shared [`FleetSweep`] arena: the
/// figure drivers' hot path (one `O(N)` kernel pass per point).
fn bench_fleet_sweep_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_sweep_point");
    let models: Vec<Model> = (0..16).map(fleet_member_model).collect();
    let fleet = FleetSweep::new(&models, Algorithm::Auto).expect("fleet precompute");
    let class = models[7].workload().classes()[0].clone();
    g.bench_function("solve_with_class", |b| {
        b.iter(|| black_box(fleet.solve_with_class(7, 0, class.clone()).expect("point")))
    });
    g.finish();
}

/// The raw recombination kernels at a figure-sized ray, all three modes.
fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_kernels");
    let len = 257usize;
    let base: Vec<f64> = (0..len).map(|i| 1.0 / (i + 1) as f64).collect();
    let coef: Vec<f64> = (0..=len).map(|i| 0.5 / (i + 1) as f64).collect();
    g.throughput(Throughput::Elements(len as u64));
    g.bench_function("scalar", |b| {
        b.iter(|| black_box(combine_scalar(&base, &coef, 1, true)))
    });
    g.bench_function("strict", |b| {
        b.iter(|| black_box(combine_strict(&base, &coef, 1, true)))
    });
    g.bench_function("fast", |b| {
        b.iter(|| black_box(combine_fast(&base, &coef, 1, true)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_fleet_solve, bench_fleet_sweep_point, bench_kernels
}
criterion_main!(benches);

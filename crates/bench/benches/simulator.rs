//! Throughput of the simulation substrates (events per wall-second) and
//! the regeneration cost of the three validation experiments — the
//! figure-of-merit that decides how tight the CIs in Validations A–C can
//! be for a given time budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use xbar_baselines::omega::{OmegaConfig, OmegaSim};
use xbar_baselines::slotted::SlottedCrossbarSim;
use xbar_sim::{CrossbarSim, RunConfig, ServiceDist, SimConfig};
use xbar_traffic::TrafficClass;

/// Shared quick profile: the regeneration costs here are seconds-scale,
/// so short measurement windows already give stable estimates and keep
/// `cargo bench --workspace` inside a coffee break.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench_crossbar_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("crossbar_sim");
    g.sample_size(10);
    for n in [8u32, 32] {
        // Moderate load: arrival rate scales with N², fix expected events.
        let lambda = 0.5 / n as f64;
        let duration = 2_000.0 / n as f64;
        g.throughput(Throughput::Elements((duration * n as f64) as u64));
        g.bench_with_input(BenchmarkId::new("poisson", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = SimConfig::new(n, n).with_exp_class(TrafficClass::poisson(lambda));
                let mut sim = CrossbarSim::new(cfg, 1);
                black_box(
                    sim.run(RunConfig {
                        warmup: 0.0,
                        duration,
                        batches: 5,
                    })
                    .events,
                )
            })
        });
    }
    // Multi-class with BPP state dependence (rate refresh on every event).
    g.bench_function("bpp_multiclass_n16", |b| {
        b.iter(|| {
            let cfg = SimConfig::new(16, 16)
                .with_exp_class(TrafficClass::poisson(0.02))
                .with_exp_class(TrafficClass::bpp(0.01, 0.005, 1.0))
                .with_exp_class(TrafficClass::poisson(0.005).with_bandwidth(2));
            let mut sim = CrossbarSim::new(cfg, 2);
            black_box(
                sim.run(RunConfig {
                    warmup: 0.0,
                    duration: 100.0,
                    batches: 5,
                })
                .events,
            )
        })
    });
    g.finish();
}

fn bench_baseline_sims(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_sims");
    g.sample_size(10);
    g.bench_function("slotted_crossbar_16x16", |b| {
        b.iter(|| {
            let mut sim = SlottedCrossbarSim::new(16, 16, 0.5, 3);
            black_box(sim.run(20_000).accepted)
        })
    });
    g.bench_function("omega_min_16", |b| {
        b.iter(|| {
            let mut sim = OmegaSim::new(
                OmegaConfig {
                    stages: 4,
                    lambda: 0.01,
                    service: ServiceDist::Exponential { mean: 1.0 },
                },
                3,
            );
            black_box(sim.run(0.0, 500.0, 5).offered)
        })
    });
    g.finish();
}

fn bench_validations(c: &mut Criterion) {
    let mut g = c.benchmark_group("validations");
    g.sample_size(10);
    g.bench_function("validate_sim_short", |b| {
        b.iter(|| black_box(xbar_experiments::validate_sim::rows(2_000.0, 1).len()))
    });
    g.bench_function("insensitivity_short", |b| {
        b.iter(|| black_box(xbar_experiments::insensitivity::rows(2_000.0, 1).len()))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    bench_crossbar_sim,
    bench_baseline_sims,
    bench_validations
);
criterion_main!(benches);

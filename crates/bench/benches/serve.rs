//! Throughput of the serve daemon's durable ingest path (parse, dedupe,
//! engine decision, WAL append per line) across fleet sizes. This is
//! the cost of fault tolerance — compare against the bare engine numbers
//! in `admission.rs` to see what the WAL and supervision layers add.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use xbar_core::{Dims, Model};
use xbar_serve::chaos::StreamPlan;
use xbar_serve::{Daemon, DaemonConfig};
use xbar_traffic::{TrafficClass, Workload};

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn model() -> Model {
    let w = Workload::new()
        .with(TrafficClass::poisson(0.15).with_weight(1.0))
        .with(TrafficClass::bpp(0.1, 0.05, 1.0).with_weight(0.1));
    Model::new(Dims::square(16), w).expect("valid model")
}

/// End-to-end durable ingest: a seeded multi-tenant stream through a
/// fresh daemon per iteration (fresh data dir, so recovery cost stays out
/// of the loop).
fn bench_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_ingest");
    g.sample_size(10);
    const LINES: usize = 20_000;
    let m = model();
    for tenants in [4usize, 100] {
        let lines = StreamPlan {
            seed: 6,
            tenants,
            classes: 2,
            lines: LINES,
            malformed_p: 0.0,
            ..StreamPlan::default()
        }
        .generate_lines();
        g.throughput(Throughput::Elements(LINES as u64));
        g.bench_with_input(BenchmarkId::new("tenants", tenants), &tenants, |b, _| {
            let base = std::env::temp_dir()
                .join(format!("xbar_crit_serve_{}_{tenants}", std::process::id()));
            let mut round = 0u32;
            b.iter(|| {
                round += 1;
                let dir = base.join(format!("r{round}"));
                let (mut daemon, _) =
                    Daemon::open(&dir, &m, DaemonConfig::default()).expect("daemon opens");
                for line in &lines {
                    daemon.ingest_line(line).expect("ingest");
                }
                black_box(daemon.drain().expect("drain"))
            });
            let _ = std::fs::remove_dir_all(&base);
        });
    }
    g.finish();
}

/// Recovery cost: reopen a daemon whose WAL already holds the full
/// stream — snapshot load + tail replay + dedupe watermark setup.
fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_recovery");
    g.sample_size(10);
    const LINES: usize = 20_000;
    let m = model();
    let lines = StreamPlan {
        seed: 6,
        tenants: 4,
        classes: 2,
        lines: LINES,
        malformed_p: 0.0,
        ..StreamPlan::default()
    }
    .generate_lines();
    let dir = std::env::temp_dir().join(format!("xbar_crit_serve_rec_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let (mut daemon, _) = Daemon::open(&dir, &m, DaemonConfig::default()).expect("open");
        for line in &lines {
            daemon.ingest_line(line).expect("ingest");
        }
        daemon.drain().expect("drain");
        // Dropped without shutdown: recovery below replays the WAL tail
        // past whatever snapshots the cadence wrote.
    }
    g.throughput(Throughput::Elements(LINES as u64));
    g.bench_function("reopen_20k_wal", |b| {
        b.iter(|| black_box(Daemon::open(&dir, &m, DaemonConfig::default()).expect("reopen")))
    });
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_ingest, bench_recovery
}
criterion_main!(benches);

//! Throughput of the online admission engine: raw per-event decision cost
//! (the `O(R)` hot path a call-setup controller would sit on) and
//! end-to-end replay events per wall-second under each policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use xbar_admission::{AdmissionEngine, EngineConfig, PolicySpec};
use xbar_core::{Dims, Model};
use xbar_sim::{replay, ReplayConfig};
use xbar_traffic::{TrafficClass, Workload};

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn model(n: u32) -> Model {
    let w = Workload::new()
        .with(TrafficClass::poisson(0.15).with_weight(1.0))
        .with(TrafficClass::bpp(0.1, 0.05, 1.0).with_weight(0.1));
    Model::new(Dims::square(n), w).expect("valid model")
}

/// The engine's pure hot path: one admitted arrival + one departure per
/// iteration pair, no RNG, no replay harness around it.
fn bench_offer_depart_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("admission_engine");
    g.sample_size(10);
    for n in [16u32, 64] {
        let m = model(n);
        g.throughput(Throughput::Elements(2 * n as u64));
        g.bench_with_input(BenchmarkId::new("offer_depart", n), &n, |b, &n| {
            let mut engine = AdmissionEngine::new(&m, EngineConfig::default()).unwrap();
            b.iter(|| {
                for _ in 0..n {
                    black_box(engine.offer(0).unwrap());
                }
                for _ in 0..n {
                    engine.depart(0).unwrap();
                }
                black_box(engine.occupancy())
            })
        });
    }
    g.finish();
}

/// End-to-end synthetic replay (jump chain + tuple coin + engine) per
/// policy — the number BENCH_4.json tracks as events/sec.
fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("admission_replay");
    g.sample_size(10);
    const EVENTS: u64 = 100_000;
    let m = model(16);
    let policies = [
        ("cs", PolicySpec::CompleteSharing),
        ("trunk", PolicySpec::TrunkReservation(vec![0, 2])),
        ("shadow", PolicySpec::ShadowPrice { reserve: 2 }),
    ];
    for (name, policy) in policies {
        g.throughput(Throughput::Elements(EVENTS));
        g.bench_with_input(
            BenchmarkId::new("replay100k", name),
            &policy,
            |b, policy| {
                b.iter(|| {
                    let rep = replay(
                        &m,
                        &ReplayConfig {
                            events: EVENTS,
                            seed: 7,
                            batches: 20,
                            engine: EngineConfig {
                                policy: policy.clone(),
                                ..EngineConfig::default()
                            },
                        },
                    )
                    .unwrap();
                    black_box(rep.events)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_offer_depart_cycle, bench_replay
);
criterion_main!(benches);

//! Regeneration cost of each figure of the paper: one benchmark per
//! figure, measuring the single-cell solve at the figure's largest size
//! and (at a reduced sample count) the full sweep that the corresponding
//! `xbar-experiments` binary runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xbar_experiments::{fig1, fig2, fig3, fig4};

/// Shared quick profile: the regeneration costs here are seconds-scale,
/// so short measurement windows already give stable estimates and keep
/// `cargo bench --workspace` inside a coffee break.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    for n in [16u32, 64, 128] {
        g.bench_with_input(BenchmarkId::new("cell", n), &n, |b, &n| {
            b.iter(|| black_box(fig1::blocking_at(n, -4.0e-6)))
        });
    }
    g.sample_size(10);
    g.bench_function("full_sweep", |b| b.iter(|| black_box(fig1::rows().len())));
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    for n in [16u32, 128] {
        g.bench_with_input(BenchmarkId::new("cell_fixed_beta", n), &n, |b, &n| {
            b.iter(|| black_box(fig2::blocking_fixed_beta(n, 1.2e-3)))
        });
        g.bench_with_input(BenchmarkId::new("cell_fixed_z", n), &n, |b, &n| {
            b.iter(|| black_box(fig2::blocking_fixed_z(n, 2.0)))
        });
    }
    g.sample_size(10);
    g.bench_function("full_sweep", |b| b.iter(|| black_box(fig2::rows().len())));
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.bench_function("cell_mixed_n128", |b| {
        b.iter(|| black_box(fig3::blocking_at(true, 128, 1.2e-3)))
    });
    g.sample_size(10);
    g.bench_function("full_sweep", |b| b.iter(|| black_box(fig3::rows().len())));
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.bench_function("cell_a2_n64", |b| {
        let (_, rho2) = fig4::table1_loads(64);
        b.iter(|| black_box(fig4::blocking_single_class(64, 2, rho2)))
    });
    g.bench_function("full_sweep_and_table1", |b| {
        b.iter(|| black_box(fig4::rows().len()))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_fig1, bench_fig2, bench_fig3, bench_fig4);
criterion_main!(benches);

//! Ablation: the solver algorithms and numeric backends against each
//! other — the trade-off the paper discusses at the end of §5.1
//! (Algorithm 1 for small switches, Algorithm 2's stability for large) and
//! our three numeric backends for Algorithm 1, plus the brute-force
//! oracle's exponential wall for scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xbar_bench::{mixed_model, table2_model};
use xbar_core::brute::Brute;
use xbar_core::{solve, Algorithm};

/// Shared quick profile: the regeneration costs here are seconds-scale,
/// so short measurement windows already give stable estimates and keep
/// `cargo bench --workspace` inside a coffee break.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench_algorithms_by_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithms");
    for n in [8u32, 32, 128] {
        let model = table2_model(n);
        for alg in [
            Algorithm::Alg1Scaled,
            Algorithm::Alg1Ext,
            Algorithm::Mva,
            Algorithm::Convolution,
        ] {
            g.bench_with_input(BenchmarkId::new(format!("{alg}"), n), &model, |b, model| {
                b.iter(|| black_box(solve(model, alg).unwrap().blocking(0)))
            });
        }
        // Plain f64 only while it stays in range.
        if n <= 64 {
            g.bench_with_input(BenchmarkId::new("alg1-f64", n), &model, |b, model| {
                b.iter(|| black_box(solve(model, Algorithm::Alg1F64).unwrap().blocking(0)))
            });
        }
    }
    g.finish();
}

fn bench_brute_force_wall(c: &mut Criterion) {
    let mut g = c.benchmark_group("brute_force");
    g.sample_size(10);
    for n in [4u32, 6, 8] {
        let model = mixed_model(n);
        g.bench_with_input(BenchmarkId::new("enumerate", n), &model, |b, model| {
            b.iter(|| {
                let brute = Brute::new(model);
                black_box(brute.nonblocking(0))
            })
        });
    }
    g.finish();
}

fn bench_multiclass_scaling(c: &mut Criterion) {
    // O(N1·N2·R): cost should scale ~linearly in the number of classes.
    use xbar_core::{Dims, Model};
    use xbar_traffic::{TildeClass, Workload};
    let mut g = c.benchmark_group("class_scaling");
    for r in [1usize, 4, 16] {
        let tilde: Vec<TildeClass> = (0..r)
            .map(|i| {
                if i % 2 == 0 {
                    TildeClass::poisson(0.01)
                } else {
                    TildeClass::bpp(0.01, 0.005, 1.0)
                }
            })
            .collect();
        let model = Model::new(Dims::square(64), Workload::from_tilde(&tilde, 64)).unwrap();
        g.bench_with_input(BenchmarkId::new("alg1_ext_n64", r), &model, |b, model| {
            b.iter(|| black_box(solve(model, Algorithm::Alg1Ext).unwrap().revenue()))
        });
    }
    g.finish();
}

fn bench_gradients(c: &mut Criterion) {
    let mut g = c.benchmark_group("gradients");
    let model = table2_model(64);
    let sol = solve(&model, Algorithm::Alg1Ext).unwrap();
    g.bench_function("closed_form_rho", |b| {
        b.iter(|| black_box(sol.revenue_gradient_rho(0)))
    });
    g.sample_size(20);
    g.bench_function("forward_difference_beta", |b| {
        b.iter(|| black_box(sol.revenue_gradient_beta_fd(1).unwrap()))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    bench_algorithms_by_size,
    bench_brute_force_wall,
    bench_multiclass_scaling,
    bench_gradients
);
criterion_main!(benches);

//! Machine-readable perf trajectory: times the hot solve path at the
//! paper's benchmark sizes and writes `BENCH_10.json` (median ns per bench,
//! switch size, backend, thread count) so the speedup story is trackable
//! across PRs without parsing Criterion's console output. Since PR 4 it
//! also times the admission-engine replay loop (events/sec is
//! `1e9 * EVENTS / median_ns`); since PR 5 it times the incremental
//! sweep solver against fresh full solves (`sweep/fig2-points-per-sec`,
//! the headline per-point speedup) and the exact analytic sensitivity
//! against its finite-difference oracle (`sensitivity/exact-vs-fd`);
//! since PR 6 it times the serve daemon's sustained ingest throughput
//! over a 100-tenant WAL-durable fleet (`serve/ingest`, events/sec);
//! since PR 7 it times batched fleet anchor solves
//! (`fleet/anchor-solves-per-sec`, heterogeneous model batches sharded
//! across the persistent worker pool) against the single-model baseline;
//! since PR 8 it times the admission engine's per-batch repricing pass
//! (`reprice/*`, thresholds re-derived from the per-anchor cached
//! gradients) against the full re-anchor `sensitivity()` solve it
//! replaces — the online-repricing claim is that the former is ≥10×
//! cheaper at N = 512; since PR 9 it times the capacity planner's
//! exhaustive design-space search (`plan/candidates-per-sec`, every
//! candidate scored through the shared fleet-warmed `SweepGrid`); since
//! PR 10 it times the zero-rebuild simulator hot loop against the legacy
//! rebuild-every-event loop on a 12-class fixture
//! (`sim/events-per-sec/*`, the ≥2× acceptance claim) and the parallel
//! replication harness fanning 8 independent replications over the
//! worker pool (`sim/replications-per-sec/*/t{1,4}` — flat on a 1-core
//! host, which `host_threads` records honestly).
//!
//! `--fleet-only` skips everything but the fleet records — the CI
//! artifact leg uses it to publish `BENCH_10.json` without paying for
//! the full matrix.
//!
//! Timed runs execute with metrics off — the medians must stay comparable
//! with earlier `BENCH_N.json` files, and the obs layer's disabled-mode
//! cost is part of what they verify. A separate instrumented reference
//! solve captures an [`xbar_obs`] snapshot into the report's `"obs"` key
//! (escalation counters, sweep-mode splits, cache traffic).
//!
//! Run from the repo root: `cargo run --release -p xbar-bench --bin
//! perf_trajectory [-- <output-path>] [-- --fleet-only]`.

use std::time::Instant;

use xbar_admission::{AdmissionEngine, EngineConfig, PolicySpec};
use xbar_bench::{
    fig2_sweep_model, fleet_member_model, replay_hot_model, sensitivity_model, table2_model,
    BenchRecord, BenchReport,
};
use xbar_core::alg1::{QLattice, ScaledQLattice};
use xbar_core::parallel;
use xbar_core::sensitivity::{sensitivity, sensitivity_fd};
use xbar_core::{solve, Algorithm, Dims, Model, SolveCache, SweepSolver};
use xbar_numeric::ExtFloat;
use xbar_sim::replay::replay_legacy;
use xbar_sim::{replay, run_replications, Confidence, RepConfig, ReplayConfig};
use xbar_traffic::{TrafficClass, Workload};

/// Median wall-clock ns of `runs` invocations of `f`.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> u64 {
    let mut samples: Vec<u64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_backend(name: &str, n: u32, threads: usize, model: &Model, runs: usize) -> BenchRecord {
    let median = match name {
        "alg1-ext" => median_ns(runs, || {
            std::hint::black_box(QLattice::<ExtFloat>::solve_with_threads(model, threads));
        }),
        "alg1-scaled" => median_ns(runs, || {
            std::hint::black_box(ScaledQLattice::solve_with_threads(model, threads));
        }),
        "alg1-f64" => median_ns(runs, || {
            std::hint::black_box(QLattice::<f64>::solve_with_threads(model, threads));
        }),
        other => unreachable!("unknown backend {other}"),
    };
    println!("  {name:<12} N={n:<4} threads={threads:<2} median {median} ns");
    BenchRecord {
        name: format!("{name}/solve/{n}/t{threads}"),
        n,
        backend: name.to_string(),
        threads,
        median_ns: median,
    }
}

/// Time the admission-engine replay loop (PR 4's events/sec number):
/// a 100k-event jump chain through the engine under `policy`.
fn time_admission_replay(name: &str, policy: PolicySpec, runs: usize) -> BenchRecord {
    const EVENTS: u64 = 100_000;
    const N: u32 = 16;
    let w = Workload::new()
        .with(TrafficClass::poisson(0.15).with_weight(1.0))
        .with(TrafficClass::bpp(0.1, 0.05, 1.0).with_weight(0.1));
    let model = Model::new(Dims::square(N), w).expect("valid model");
    let cfg = ReplayConfig {
        events: EVENTS,
        seed: 7,
        batches: 20,
        engine: EngineConfig {
            policy,
            ..EngineConfig::default()
        },
    };
    let median = median_ns(runs, || {
        std::hint::black_box(replay(&model, &cfg).expect("replay succeeds").events);
    });
    let events_per_sec = 1e9 * EVENTS as f64 / median as f64;
    println!("  admission-{name:<6} N={N:<4} threads=1  median {median} ns ({events_per_sec:.0} events/s)");
    BenchRecord {
        name: format!("admission-{name}/replay100k/{N}/t1"),
        n: N,
        backend: format!("admission-{name}"),
        threads: 1,
        median_ns: median,
    }
}

/// Time the simulator hot loop both ways (PR 10's headline number): the
/// incremental [`xbar_sim::RateTable`] replay loop against the legacy
/// rebuild-every-event loop it replaced.
///
/// Two regimes, two record pairs:
///
/// * `sim/events-per-sec/64classes` — 128 rate slots, so the table's
///   `O(log R)` segment-tree path carries totals and selection. This is
///   the headline pair the ≥2× acceptance claim is measured on. Above
///   the tree gate the decision streams are statistically equivalent but
///   not bit-identical to the legacy loop (see `crates/sim/src/rates.rs`).
/// * `sim/events-per-sec-scalar/12classes` — below the gate the table
///   re-sums in the legacy fold order and keeps the legacy selection
///   scan, so the streams are *bit-identical* (pinned by goldens and the
///   proptest battery) and the win is only the avoided per-event
///   birth-rate rebuilds (~1.5–2×: the shared RNG + admission-engine
///   cost bounds it).
///
/// `events_per_sec = 1e9 * EVENTS / median_ns`.
fn time_sim_hot_loop(runs: usize) -> Vec<BenchRecord> {
    const EVENTS: u64 = 100_000;
    let mut out = Vec::new();
    for (prefix, r) in [
        ("sim/events-per-sec", 64u32),
        ("sim/events-per-sec-scalar", 12),
    ] {
        let model = replay_hot_model(r);
        let cfg = ReplayConfig {
            events: EVENTS,
            seed: 7,
            batches: 20,
            engine: EngineConfig::default(),
        };
        let incremental = median_ns(runs, || {
            std::hint::black_box(replay(&model, &cfg).expect("replay succeeds").events);
        });
        let legacy = median_ns(runs, || {
            std::hint::black_box(replay_legacy(&model, &cfg).expect("replay succeeds").events);
        });
        let speedup = legacy as f64 / incremental as f64;
        println!(
            "  sim-hot-loop R={r:<4} threads=1  incremental {incremental} ns vs legacy {legacy} ns \
             ({speedup:.1}x, {:.0} events/s)",
            1e9 * EVENTS as f64 / incremental as f64
        );
        let record = |backend: &str, median_ns: u64| BenchRecord {
            name: format!("{prefix}/{r}classes/t1/{backend}"),
            n: 16,
            backend: backend.to_string(),
            threads: 1,
            median_ns,
        };
        out.push(record("incremental", incremental));
        out.push(record("legacy", legacy));
    }
    out
}

/// Time the parallel replication harness (PR 10): 8 independent
/// replications of a 25k-event replay fanned over the worker pool and
/// merged. `replications_per_sec = 1e9 * 8 / median_ns`. On a multi-core
/// host t4 should scale near-linearly over t1; on a 1-core host the two
/// records are flat and `host_threads` in the report says why.
fn time_sim_replications(threads: usize, runs: usize) -> BenchRecord {
    const REPS: u64 = 8;
    let model = replay_hot_model(8);
    let cfg = ReplayConfig {
        events: 25_000,
        seed: 0, // overridden per replication by the harness
        batches: 20,
        engine: EngineConfig::default(),
    };
    let rep_cfg = RepConfig {
        replications: REPS,
        master_seed: 7,
        confidence: Confidence::P99,
    };
    parallel::set_threads(threads);
    let median = median_ns(runs, || {
        std::hint::black_box(
            run_replications(&model, &cfg, &rep_cfg)
                .expect("replications run")
                .events,
        );
    });
    let reps_per_sec = 1e9 * REPS as f64 / median as f64;
    println!(
        "  sim-reps     reps={REPS:<4} threads={threads:<2} median {median} ns \
         ({reps_per_sec:.1} replications/s)"
    );
    BenchRecord {
        name: format!("sim/replications-per-sec/{REPS}reps/t{threads}"),
        n: 16,
        backend: "harness".to_string(),
        threads,
        median_ns: median,
    }
}

/// Time one fig2-style sweep point on the `R = 4` fixture at size `n`,
/// both ways: through the cached [`SweepSolver`] (one `O(N)`
/// recombination) and as a fresh full solve of the edited model.
/// `points_per_sec = 1e9 / median_ns`. The thread count is applied
/// process-wide so the full solve's wavefront uses it; the recombination
/// itself is serial either way.
fn time_sweep_points(n: u32, threads: usize, runs: usize) -> Vec<BenchRecord> {
    let model = fig2_sweep_model(n);
    parallel::set_threads(threads);
    let sweep = SweepSolver::new(&model, Algorithm::Auto).expect("sweep precompute");
    let base_rho = model.workload().classes()[1].rho();
    let mut step = 0u32;
    let mut next_rho = || {
        step += 1;
        base_rho * (1.0 + 0.1 * (step % 7) as f64)
    };
    let sweep_median = median_ns(runs, || {
        std::hint::black_box(
            sweep
                .solve_with_rho(1, next_rho())
                .expect("sweep point")
                .blocking(1),
        );
    });
    let mut step = 0u32;
    let mut next_rho = || {
        step += 1;
        base_rho * (1.0 + 0.1 * (step % 7) as f64)
    };
    let full_median = median_ns(runs, || {
        let edited = model.with_rho(1, next_rho()).expect("in range");
        std::hint::black_box(
            solve(&edited, Algorithm::Auto)
                .expect("full solve")
                .blocking(1),
        );
    });
    let speedup = full_median as f64 / sweep_median as f64;
    println!(
        "  sweep        N={n:<4} threads={threads:<2} point {sweep_median} ns vs full \
         {full_median} ns ({speedup:.1}x, {:.0} points/s)",
        1e9 / sweep_median as f64
    );
    let record = |backend: &str, median_ns: u64| BenchRecord {
        name: format!("sweep/fig2-points-per-sec/{n}/t{threads}/{backend}"),
        n,
        backend: backend.to_string(),
        threads,
        median_ns,
    };
    vec![
        record("sweep", sweep_median),
        record("full-solve", full_median),
    ]
}

/// Time the full sensitivity assembly at size `n`: the exact
/// sweep-partial path vs the finite-difference oracle. Uses the per-set
/// load fixture — on the tilde fixtures the FD step leaves the valid
/// load range at large `N` (see [`xbar_bench::sensitivity_model`]).
fn time_sensitivity(n: u32, threads: usize, runs: usize) -> Vec<BenchRecord> {
    let model = sensitivity_model(n);
    parallel::set_threads(threads);
    let exact_median = median_ns(runs, || {
        std::hint::black_box(sensitivity(&model, Algorithm::Alg1Ext).expect("exact sensitivity"));
    });
    let fd_median = median_ns(runs, || {
        std::hint::black_box(sensitivity_fd(&model, Algorithm::Alg1Ext).expect("fd sensitivity"));
    });
    let speedup = fd_median as f64 / exact_median as f64;
    println!(
        "  sensitivity  N={n:<4} threads={threads:<2} exact {exact_median} ns vs fd \
         {fd_median} ns ({speedup:.1}x)"
    );
    let record = |backend: &str, median_ns: u64| BenchRecord {
        name: format!("sensitivity/exact-vs-fd/{n}/t{threads}/{backend}"),
        n,
        backend: backend.to_string(),
        threads,
        median_ns,
    };
    vec![record("exact", exact_median), record("fd", fd_median)]
}

/// Time the online repricing pass against the full re-anchor solve it
/// replaces (PR 8's headline number): a shadow-price engine with
/// per-batch repricing holds the assembled sensitivity per anchor, so a
/// pass is one O(R) threshold derivation — versus the fresh
/// `sensitivity()` lattice solve plus the same derivation that a full
/// re-anchor pays. A repricing pass is sub-microsecond, so each timed
/// sample wraps `INNER` passes and reports the per-pass median.
fn time_reprice(n: u32, threads: usize, full_runs: usize) -> Vec<BenchRecord> {
    const INNER: u64 = 1_000;
    let model = sensitivity_model(n);
    let policy = PolicySpec::ShadowPrice { reserve: 2 };
    parallel::set_threads(threads);
    let mut engine = AdmissionEngine::new(
        &model,
        EngineConfig {
            policy: policy.clone(),
            algorithm: Algorithm::Alg1Ext,
            reprice_batch: Some(u64::MAX), // pricer on; the bench drives passes itself
            ..EngineConfig::default()
        },
    )
    .expect("engine builds");
    let reprice_median = median_ns(15, || {
        for _ in 0..INNER {
            std::hint::black_box(engine.reprice_now().expect("reprice"));
        }
    }) / INNER;
    let r_count = model.num_classes();
    let full_median = median_ns(full_runs, || {
        let sens = sensitivity(&model, Algorithm::Alg1Ext).expect("fresh sensitivity");
        std::hint::black_box(
            policy
                .thresholds_from_sensitivity(r_count, &sens)
                .expect("thresholds"),
        );
    });
    let speedup = full_median as f64 / reprice_median.max(1) as f64;
    println!(
        "  reprice      N={n:<4} threads={threads:<2} pass {reprice_median} ns vs full \
         re-anchor {full_median} ns ({speedup:.0}x)"
    );
    let record = |backend: &str, median_ns: u64| BenchRecord {
        name: format!("reprice/thresholds/{n}/t{threads}/{backend}"),
        n,
        backend: backend.to_string(),
        threads,
        median_ns,
    };
    vec![
        record("reprice", reprice_median),
        record("full-anchor", full_median),
    ]
}

/// Time the serve daemon's sustained ingest rate over a WAL-durable
/// fleet of `tenants` tenants: parse + dedupe + engine decision + durable
/// append for every line, snapshots on cadence, queues unbounded (the
/// bench measures the absorb path, not shedding). Each run starts from a
/// fresh data directory so recovery cost is not mixed into the medians.
/// `events_per_sec = 1e9 * LINES / median_ns`.
fn time_serve_ingest(tenants: usize, runs: usize) -> BenchRecord {
    const LINES: usize = 50_000;
    let model = Model::new(
        Dims::square(16),
        Workload::new()
            .with(TrafficClass::poisson(0.15).with_weight(1.0))
            .with(TrafficClass::bpp(0.1, 0.05, 1.0).with_weight(0.1)),
    )
    .expect("valid model");
    let lines = xbar_serve::chaos::StreamPlan {
        seed: 6,
        tenants,
        classes: 2,
        lines: LINES,
        malformed_p: 0.0,
        ..xbar_serve::chaos::StreamPlan::default()
    }
    .generate_lines();
    let base = std::env::temp_dir().join(format!("xbar_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut round = 0u32;
    let median = median_ns(runs, || {
        round += 1;
        let dir = base.join(format!("r{round}"));
        let (mut daemon, _) = xbar_serve::Daemon::open(
            &dir,
            &model,
            xbar_serve::DaemonConfig {
                tenant: xbar_serve::TenantConfig {
                    snapshot_interval: 4096,
                    ..xbar_serve::TenantConfig::default()
                },
                ..xbar_serve::DaemonConfig::default()
            },
        )
        .expect("daemon opens");
        for line in &lines {
            daemon.ingest_line(line).expect("ingest");
        }
        std::hint::black_box(daemon.drain().expect("drain"));
        let acc = daemon.accounting();
        assert!(acc.holds(), "bench run broke the accounting invariant");
    });
    let _ = std::fs::remove_dir_all(&base);
    let events_per_sec = 1e9 * LINES as f64 / median as f64;
    println!(
        "  serve        tenants={tenants:<4} threads=1  median {median} ns \
         ({events_per_sec:.0} events/s durable)"
    );
    BenchRecord {
        name: format!("serve/ingest50k/{tenants}tenants/t1"),
        n: 16,
        backend: "serve".to_string(),
        threads: 1,
        median_ns: median,
    }
}

/// Time batched fleet anchor solves (PR 7's headline number): `size`
/// heterogeneous models solved through [`SolveCache::solve_fleet`], a
/// fresh cache per run so every member is a real lattice solve rather
/// than a memo hit. `anchor_solves_per_sec = 1e9 * size / median_ns`.
fn time_fleet(size: usize, threads: usize, runs: usize) -> BenchRecord {
    let models: Vec<Model> = (0..size).map(fleet_member_model).collect();
    let n_max = models.iter().map(|m| m.dims().max_n()).max().unwrap_or(0);
    parallel::set_threads(threads);
    let median = median_ns(runs, || {
        let cache = SolveCache::new(size.max(2));
        for r in cache.solve_fleet(&models, Algorithm::Auto) {
            std::hint::black_box(r.expect("fleet member solves"));
        }
    });
    let solves_per_sec = 1e9 * size as f64 / median as f64;
    println!(
        "  fleet        size={size:<4} threads={threads:<2} median {median} ns \
         ({solves_per_sec:.0} anchor solves/s)"
    );
    BenchRecord {
        name: format!("fleet/anchor-solves-per-sec/{size}models/t{threads}"),
        n: n_max,
        backend: "fleet".to_string(),
        threads,
        median_ns: median,
    }
}

/// The fleet-of-1 acceptance baseline: the same member model the
/// `1models` record batches, solved directly (no cache, no batch) at one
/// thread. `fleet/anchor-solves-per-sec/1models/t1` must land within
/// ~10% of this.
fn time_fleet_baseline(runs: usize) -> BenchRecord {
    let model = fleet_member_model(0);
    parallel::set_threads(1);
    let median = median_ns(runs, || {
        std::hint::black_box(solve(&model, Algorithm::Auto).expect("baseline solves"));
    });
    println!("  fleet        single-model baseline  median {median} ns");
    BenchRecord {
        name: "fleet/anchor-solves-per-sec/single-model/t1".to_string(),
        n: model.dims().max_n(),
        backend: "single-model".to_string(),
        threads: 1,
        median_ns: median,
    }
}

/// One instrumented reference pass: solve the Table 2 fixture resiliently
/// under a scoped registry and return the snapshot JSON. Scoped (not
/// global) so it cannot leak recording into the timed runs.
fn obs_reference_snapshot() -> String {
    let reg = std::sync::Arc::new(xbar_obs::Registry::new());
    {
        let _g = xbar_obs::scope(&reg);
        for &n in &[32u32, 128] {
            let model = table2_model(n);
            xbar_core::solve_resilient(&model, &xbar_core::ResilientConfig::default())
                .expect("reference solve succeeds");
        }
    }
    reg.snapshot().to_json()
}

/// PR 9: the capacity planner's exhaustive search over the demo design
/// space — every candidate scored through the shared fleet-warmed
/// `SweepGrid`, so the per-candidate cost is an `O(C²/a)` recombination,
/// not a fresh solve.
fn time_plan(threads: usize, runs: usize) -> BenchRecord {
    let space = xbar_experiments::plan_frontier::space();
    let candidates = space.num_candidates();
    parallel::set_threads(threads);
    let cfg = xbar_plan::PlanConfig {
        strategy: xbar_plan::Strategy::Exhaustive {
            prune: false,
            batch: true,
        },
        ..Default::default()
    };
    let median = median_ns(runs, || {
        std::hint::black_box(xbar_plan::plan(&space, &cfg).expect("demo space is feasible"));
    });
    let per_sec = 1e9 * candidates as f64 / median as f64;
    println!(
        "  plan         cand={candidates:<4} threads={threads:<2} median {median} ns \
         ({per_sec:.0} candidates/s)"
    );
    BenchRecord {
        name: format!("plan/candidates-per-sec/{candidates}cand/t{threads}"),
        n: 8,
        backend: "plan".to_string(),
        threads,
        median_ns: median,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fleet_only = args.iter().any(|a| a == "--fleet-only");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    let auto = parallel::effective_threads();
    println!("perf_trajectory: auto thread count = {auto}");

    let mut records = Vec::new();
    if !fleet_only {
        for &(n, runs) in &[(32u32, 40usize), (128, 15), (512, 5)] {
            let model = table2_model(n);
            // Plain f64 underflows past N ~ 64; only time it in range.
            if n <= 64 {
                records.push(time_backend("alg1-f64", n, 1, &model, runs));
            }
            for backend in ["alg1-ext", "alg1-scaled"] {
                records.push(time_backend(backend, n, 1, &model, runs));
                if auto > 1 {
                    records.push(time_backend(backend, n, auto, &model, runs));
                }
            }
        }

        // PR 5: the incremental sweep solver vs fresh solves, and the exact
        // sensitivity vs the FD oracle, at both ends of the thread matrix.
        // (FD at N = 512 pays dozens of full ExtFloat solves — one run.)
        for &(n, runs) in &[(32u32, 40usize), (128, 15), (512, 5)] {
            for &threads in &[1usize, 4] {
                records.extend(time_sweep_points(n, threads, runs));
                records.extend(time_sensitivity(
                    n,
                    threads,
                    if n >= 512 { 1 } else { runs },
                ));
            }
        }
        parallel::set_threads(0);

        records.push(time_admission_replay("cs", PolicySpec::CompleteSharing, 15));
        records.push(time_admission_replay(
            "trunk",
            PolicySpec::TrunkReservation(vec![0, 2]),
            15,
        ));
        records.push(time_admission_replay(
            "shadow",
            PolicySpec::ShadowPrice { reserve: 2 },
            15,
        ));

        // PR 10: the zero-rebuild hot loop vs the legacy loop, and the
        // replication harness at both ends of the thread matrix.
        records.extend(time_sim_hot_loop(9));
        for &threads in &[1usize, 4] {
            records.push(time_sim_replications(threads, 5));
        }
        parallel::set_threads(0);

        // PR 6: the serve daemon's durable multi-tenant ingest path.
        records.push(time_serve_ingest(100, 5));

        // PR 8: the per-batch repricing pass vs the full re-anchor solve
        // it replaces, at the acceptance size and both thread counts.
        for &threads in &[1usize, 4] {
            records.extend(time_reprice(512, threads, 3));
        }
        parallel::set_threads(0);

        // PR 9: the capacity planner's exhaustive demo search at both
        // ends of the thread matrix.
        for &threads in &[1usize, 4] {
            records.push(time_plan(threads, 10));
        }
        parallel::set_threads(0);
    }

    // PR 7: batched fleet anchor solves across the thread matrix, plus
    // the single-model baseline the fleet-of-1 record is held against.
    for &(size, runs) in &[(1usize, 40usize), (16, 15), (100, 7)] {
        for &threads in &[1usize, 4] {
            records.push(time_fleet(size, threads, runs));
        }
    }
    records.push(time_fleet_baseline(40));
    parallel::set_threads(0);

    let report = BenchReport {
        pr: 10,
        host_threads: auto,
        records,
        obs_snapshot: Some(obs_reference_snapshot()),
    };
    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write BENCH_10.json");
    println!("wrote {out_path}");
}

//! Machine-readable perf trajectory: times the hot solve path at the
//! paper's benchmark sizes and writes `BENCH_3.json` (median ns per bench,
//! switch size, backend, thread count) so the speedup story is trackable
//! across PRs without parsing Criterion's console output.
//!
//! Timed runs execute with metrics off — the medians must stay comparable
//! with earlier `BENCH_N.json` files, and the obs layer's disabled-mode
//! cost is part of what they verify. A separate instrumented reference
//! solve captures an [`xbar_obs`] snapshot into the report's `"obs"` key
//! (escalation counters, sweep-mode splits, cache traffic).
//!
//! Run from the repo root: `cargo run --release -p xbar-bench --bin
//! perf_trajectory [-- <output-path>]`.

use std::time::Instant;

use xbar_bench::{table2_model, BenchRecord, BenchReport};
use xbar_core::alg1::{QLattice, ScaledQLattice};
use xbar_core::parallel;
use xbar_core::Model;
use xbar_numeric::ExtFloat;

/// Median wall-clock ns of `runs` invocations of `f`.
fn median_ns<F: FnMut()>(runs: usize, mut f: F) -> u64 {
    let mut samples: Vec<u64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_backend(name: &str, n: u32, threads: usize, model: &Model, runs: usize) -> BenchRecord {
    let median = match name {
        "alg1-ext" => median_ns(runs, || {
            std::hint::black_box(QLattice::<ExtFloat>::solve_with_threads(model, threads));
        }),
        "alg1-scaled" => median_ns(runs, || {
            std::hint::black_box(ScaledQLattice::solve_with_threads(model, threads));
        }),
        "alg1-f64" => median_ns(runs, || {
            std::hint::black_box(QLattice::<f64>::solve_with_threads(model, threads));
        }),
        other => unreachable!("unknown backend {other}"),
    };
    println!("  {name:<12} N={n:<4} threads={threads:<2} median {median} ns");
    BenchRecord {
        name: format!("{name}/solve/{n}/t{threads}"),
        n,
        backend: name.to_string(),
        threads,
        median_ns: median,
    }
}

/// One instrumented reference pass: solve the Table 2 fixture resiliently
/// under a scoped registry and return the snapshot JSON. Scoped (not
/// global) so it cannot leak recording into the timed runs.
fn obs_reference_snapshot() -> String {
    let reg = std::sync::Arc::new(xbar_obs::Registry::new());
    {
        let _g = xbar_obs::scope(&reg);
        for &n in &[32u32, 128] {
            let model = table2_model(n);
            xbar_core::solve_resilient(&model, &xbar_core::ResilientConfig::default())
                .expect("reference solve succeeds");
        }
    }
    reg.snapshot().to_json()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_3.json".to_string());
    let auto = parallel::effective_threads();
    println!("perf_trajectory: auto thread count = {auto}");

    let mut records = Vec::new();
    for &(n, runs) in &[(32u32, 40usize), (128, 15), (512, 5)] {
        let model = table2_model(n);
        // Plain f64 underflows past N ~ 64; only time it in range.
        if n <= 64 {
            records.push(time_backend("alg1-f64", n, 1, &model, runs));
        }
        for backend in ["alg1-ext", "alg1-scaled"] {
            records.push(time_backend(backend, n, 1, &model, runs));
            if auto > 1 {
                records.push(time_backend(backend, n, auto, &model, runs));
            }
        }
    }

    let report = BenchReport {
        pr: 3,
        host_threads: auto,
        records,
        obs_snapshot: Some(obs_reference_snapshot()),
    };
    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write BENCH_3.json");
    println!("wrote {out_path}");
}

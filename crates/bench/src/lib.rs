#![warn(missing_docs)]

//! Shared fixtures for the Criterion benchmarks: canonical models at the
//! paper's operating points, so every bench target measures the same
//! objects the experiments use — plus the machine-readable
//! [`BenchReport`] format the `perf_trajectory` binary writes to
//! `BENCH_N.json`, so the perf story is trackable across PRs without
//! parsing Criterion console output.

use xbar_core::{Dims, Model};
use xbar_traffic::{TildeClass, Workload};

/// One timed benchmark point for the machine-readable trajectory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// Fully-qualified label, e.g. `alg1-ext/solve/512/t4`.
    pub name: String,
    /// Square switch size `N`.
    pub n: u32,
    /// Backend identifier (`alg1-f64` / `alg1-scaled` / `alg1-ext`).
    pub backend: String,
    /// Wavefront thread count the solve ran with.
    pub threads: usize,
    /// Median wall-clock nanoseconds per solve.
    pub median_ns: u64,
}

/// A full `BENCH_N.json` payload: every record plus enough host context to
/// interpret the numbers (a 1-core host cannot show parallel speedup, and
/// the JSON must say so rather than imply a regression).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchReport {
    /// Which PR produced the report (the `N` in `BENCH_N.json`).
    pub pr: u32,
    /// Auto-detected thread count on the measuring host.
    pub host_threads: usize,
    /// All timed points.
    pub records: Vec<BenchRecord>,
    /// Optional observability snapshot (the [`xbar_obs`] JSON document,
    /// embedded verbatim under an `"obs"` key) captured from one
    /// instrumented reference solve — the timed records themselves always
    /// run with metrics off so medians stay comparable across PRs.
    pub obs_snapshot: Option<String>,
}

/// Minimal JSON string escaping (labels are ASCII identifiers, but be
/// correct anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchReport {
    /// Serialise to pretty-printed JSON (hand-rolled: the build environment
    /// has no serde, and the schema is four scalar fields per record).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"pr\": {},\n", self.pr));
        s.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"n\": {}, \"backend\": \"{}\", \
                 \"threads\": {}, \"median_ns\": {}}}{comma}\n",
                json_escape(&r.name),
                r.n,
                json_escape(&r.backend),
                r.threads,
                r.median_ns,
            ));
        }
        match &self.obs_snapshot {
            // The snapshot is already a JSON document; embed it raw.
            Some(obs) => {
                s.push_str("  ],\n");
                s.push_str(&format!("  \"obs\": {}\n", obs.trim_end()));
            }
            None => s.push_str("  ]\n"),
        }
        s.push_str("}\n");
        s
    }
}

/// The Table 2 (set 1) model at size `n`: one Poisson class and one Pascal
/// class at `ρ̃ = β̃ = .0012`, `w = (1, 10⁻⁴)`.
pub fn table2_model(n: u32) -> Model {
    let workload = Workload::from_tilde(
        &[
            TildeClass::poisson(0.0012).with_weight(1.0),
            TildeClass::bpp(0.0012, 0.0012, 1.0).with_weight(0.0001),
        ],
        n,
    );
    Model::new(Dims::square(n), workload).expect("valid fixture")
}

/// The Figure 1 model at size `n` and smoothing `β̃ ≤ 0`.
pub fn fig1_model(n: u32, beta_tilde: f64) -> Model {
    let workload = Workload::from_tilde(&[TildeClass::bpp(0.0024, beta_tilde, 1.0)], n);
    Model::new(Dims::square(n), workload).expect("valid fixture")
}

/// The fig2-flavoured sweep fixture: four classes (Poisson baseline,
/// peaky Pascal, and a two-rate pair at `a = 2`) with `/N`-scaled per-set
/// loads, sized so extended range solves it at any `N`. This is the
/// `R ≥ 4` model the `sweep/fig2-points-per-sec` trajectory records are
/// measured on.
pub fn fig2_sweep_model(n: u32) -> Model {
    let workload = Workload::from_tilde(
        &[
            TildeClass::poisson(0.0024).with_weight(1.0),
            TildeClass::bpp(0.0024, 0.0012, 1.0).with_weight(0.5),
            TildeClass::poisson(0.0012)
                .with_bandwidth(2)
                .with_weight(0.8),
            TildeClass::bpp(0.0012, 0.0006, 1.0)
                .with_bandwidth(2)
                .with_weight(0.2),
        ],
        n,
    );
    Model::new(Dims::square(n), workload).expect("valid fixture")
}

/// The sensitivity-timing fixture: *per-set* (not `/N`-scaled) loads so
/// the finite-difference oracle's curvature-scaled step
/// (`ε^⅓·max(|ρ|, 1) ≈ 6e-6`) stays inside the valid load range at every
/// `N`. On the paper's tilde fixtures the per-set load at `N = 512` is
/// `≈ 2e-6`, so the FD step drives `ρ` negative and the oracle cannot
/// run at all — one more reason the exact sweep-partial gradients exist.
pub fn sensitivity_model(n: u32) -> Model {
    let workload = Workload::new()
        .with(xbar_traffic::TrafficClass::poisson(0.02).with_weight(1.0))
        .with(xbar_traffic::TrafficClass::bpp(0.01, 0.004, 1.0).with_weight(0.1));
    Model::new(Dims::square(n), workload).expect("valid fixture")
}

/// One member of the heterogeneous fleet fixture: sizes cycle through
/// `24..=39` while the offered load drifts with the index, so every
/// member carries a distinct canonical fingerprint (no two dedupe away
/// inside `solve_fleet`) and a batch of `k` members really is `k`
/// independent lattice solves.
pub fn fleet_member_model(i: usize) -> Model {
    let n = 24 + (i % 16) as u32;
    let alpha = 0.0012 * (1.0 + 0.002 * i as f64);
    let workload = Workload::from_tilde(
        &[
            TildeClass::poisson(alpha).with_weight(1.0),
            TildeClass::bpp(alpha, alpha, 1.0).with_weight(0.0001),
        ],
        n,
    );
    Model::new(Dims::square(n), workload).expect("valid fixture")
}

/// The replay hot-loop fixture: `r` traffic classes (alternating
/// Poisson / Pascal, bandwidths 1 and 2) on a 16×16 switch. The PR 10
/// `sim/events-per-sec` trajectory records are measured on this at
/// `r = 64` — 128 rate slots, the smallest count where the
/// [`RateTable`]'s `O(log R)` segment-tree path engages — and, as a
/// supplementary scalar-regime record, at `r = 12`, where the table
/// stays on the bit-identical legacy fold and the win is only the
/// avoided per-event birth-rate rebuilds.
///
/// [`RateTable`]: ../xbar_sim/rates/struct.RateTable.html
pub fn replay_hot_model(r: u32) -> Model {
    let mut workload = Workload::new();
    for i in 0..r {
        let alpha = 0.02 + 0.01 * (i % 4) as f64;
        let class = if i % 2 == 0 {
            xbar_traffic::TrafficClass::poisson(alpha)
        } else {
            xbar_traffic::TrafficClass::bpp(alpha, 0.4, 1.0)
        };
        workload = workload.with(class.with_bandwidth(1 + (i % 3 == 2) as u32));
    }
    Model::new(Dims::square(16), workload).expect("valid fixture")
}

/// A heavier mixed multi-rate fixture exercising all recursion paths.
pub fn mixed_model(n: u32) -> Model {
    let workload = Workload::from_tilde(
        &[
            TildeClass::poisson(0.4),
            TildeClass::bpp(0.2, 0.1, 1.0),
            TildeClass::poisson(0.1).with_bandwidth(2),
            TildeClass::bpp(0.05, 0.02, 2.0).with_bandwidth(2),
        ],
        n,
    );
    Model::new(Dims::square(n), workload).expect("valid fixture")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::{solve, Algorithm};

    #[test]
    fn fixtures_are_solvable() {
        assert!(solve(&table2_model(8), Algorithm::Auto).is_ok());
        assert!(solve(&fig1_model(16, -2.0e-6), Algorithm::Auto).is_ok());
        assert!(solve(&mixed_model(8), Algorithm::Auto).is_ok());
        assert!(solve(&fig2_sweep_model(8), Algorithm::Auto).is_ok());
        assert_eq!(fig2_sweep_model(8).num_classes(), 4);
        assert!(solve(&sensitivity_model(8), Algorithm::Auto).is_ok());
        assert!(solve(&replay_hot_model(12), Algorithm::Auto).is_ok());
        assert_eq!(replay_hot_model(12).num_classes(), 12);
    }

    #[test]
    fn fixtures_scale_to_large_sizes() {
        assert!(solve(&table2_model(256), Algorithm::Alg1Ext).is_ok());
    }

    #[test]
    fn fleet_members_are_solvable_and_pairwise_distinct() {
        let models: Vec<_> = (0..100).map(fleet_member_model).collect();
        assert!(solve(&models[0], Algorithm::Auto).is_ok());
        assert!(solve(&models[99], Algorithm::Auto).is_ok());
        // No two members may dedupe inside solve_fleet: every batch of k
        // must cost k real solves for the trajectory numbers to mean
        // anything.
        let reg = std::sync::Arc::new(xbar_obs::Registry::new());
        {
            let _g = xbar_obs::scope(&reg);
            let results = xbar_core::SolveCache::new(128).solve_fleet(&models, Algorithm::Auto);
            assert!(results.iter().all(|r| r.is_ok()));
        }
        assert_eq!(reg.snapshot().counter("fleet.deduped").unwrap_or(0), 0);
    }

    #[test]
    fn bench_report_serialises_to_well_formed_json() {
        let report = BenchReport {
            pr: 2,
            host_threads: 4,
            records: vec![
                BenchRecord {
                    name: "alg1-ext/solve/512/t1".into(),
                    n: 512,
                    backend: "alg1-ext".into(),
                    threads: 1,
                    median_ns: 28_000_000,
                },
                BenchRecord {
                    name: "alg1-ext/solve/512/t4".into(),
                    n: 512,
                    backend: "alg1-ext".into(),
                    threads: 4,
                    median_ns: 9_000_000,
                },
            ],
            obs_snapshot: None,
        };
        let json = report.to_json();
        assert!(json.contains("\"pr\": 2"));
        assert!(json.contains("\"host_threads\": 4"));
        assert!(json.contains("\"median_ns\": 28000000"));
        // Balanced braces/brackets and exactly one trailing record without
        // a comma — a cheap well-formedness check without a JSON parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"threads\": 4, \"median_ns\": 9000000}\n"));
    }

    #[test]
    fn bench_report_embeds_obs_snapshot_verbatim() {
        let reg = xbar_obs::Registry::new();
        reg.counter("bench.reference_solves").add(1);
        let report = BenchReport {
            pr: 3,
            host_threads: 1,
            records: vec![],
            obs_snapshot: Some(reg.snapshot().to_json()),
        };
        let json = report.to_json();
        assert!(json.contains("\"obs\": {"));
        assert!(json.contains("\"bench.reference_solves\": 1"));
        assert!(json.contains(&format!("\"schema\": {}", xbar_obs::SNAPSHOT_SCHEMA)));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }
}

#![warn(missing_docs)]

//! Shared fixtures for the Criterion benchmarks: canonical models at the
//! paper's operating points, so every bench target measures the same
//! objects the experiments use.

use xbar_core::{Dims, Model};
use xbar_traffic::{TildeClass, Workload};

/// The Table 2 (set 1) model at size `n`: one Poisson class and one Pascal
/// class at `ρ̃ = β̃ = .0012`, `w = (1, 10⁻⁴)`.
pub fn table2_model(n: u32) -> Model {
    let workload = Workload::from_tilde(
        &[
            TildeClass::poisson(0.0012).with_weight(1.0),
            TildeClass::bpp(0.0012, 0.0012, 1.0).with_weight(0.0001),
        ],
        n,
    );
    Model::new(Dims::square(n), workload).expect("valid fixture")
}

/// The Figure 1 model at size `n` and smoothing `β̃ ≤ 0`.
pub fn fig1_model(n: u32, beta_tilde: f64) -> Model {
    let workload = Workload::from_tilde(&[TildeClass::bpp(0.0024, beta_tilde, 1.0)], n);
    Model::new(Dims::square(n), workload).expect("valid fixture")
}

/// A heavier mixed multi-rate fixture exercising all recursion paths.
pub fn mixed_model(n: u32) -> Model {
    let workload = Workload::from_tilde(
        &[
            TildeClass::poisson(0.4),
            TildeClass::bpp(0.2, 0.1, 1.0),
            TildeClass::poisson(0.1).with_bandwidth(2),
            TildeClass::bpp(0.05, 0.02, 2.0).with_bandwidth(2),
        ],
        n,
    );
    Model::new(Dims::square(n), workload).expect("valid fixture")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::{solve, Algorithm};

    #[test]
    fn fixtures_are_solvable() {
        assert!(solve(&table2_model(8), Algorithm::Auto).is_ok());
        assert!(solve(&fig1_model(16, -2.0e-6), Algorithm::Auto).is_ok());
        assert!(solve(&mixed_model(8), Algorithm::Auto).is_ok());
    }

    #[test]
    fn fixtures_scale_to_large_sizes() {
        assert!(solve(&table2_model(256), Algorithm::Alg1Ext).is_ok());
    }
}

//! **Validation G (ours)** — what the paper's blocked-calls-cleared
//! assumption hides: end-point retries cut the *final* loss dramatically
//! while raising the per-attempt blocking the cleared model predicts.
//!
//! One operating point, sweeping the retry budget.

use xbar_core::{solve, Algorithm, Dims, Model};
use xbar_sim::{run_retrial_replications, Confidence, RepConfig, RetrialConfig, RunConfig};
use xbar_traffic::{TrafficClass, Workload};

use crate::Table;

/// Independent replications per retry budget (PR 10): parallelism comes
/// from the replication harness fanning these over the worker pool, not
/// from `par_map` over the (only four) budgets.
pub const REPLICATIONS: u64 = 4;

/// Switch size.
pub const N: u32 = 8;

/// Per-pair offered load (≈35% cleared blocking — deliberately heavy so
/// the retry dynamics are visible and tightly resolved).
pub const RHO: f64 = 0.04;

/// Retry budgets swept (1 = the paper's cleared model).
pub const ATTEMPTS: [u32; 4] = [1, 2, 4, 8];

/// One row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Attempts allowed.
    pub max_attempts: u32,
    /// Final loss probability (simulated).
    pub loss: f64,
    /// 95% CI half-width.
    pub ci: f64,
    /// Per-attempt blocking (simulated).
    pub attempt_blocking: f64,
    /// Mean attempts per call.
    pub mean_attempts: f64,
    /// The cleared-model analytic blocking, for reference.
    pub analytic_cleared: f64,
}

/// Compute all rows.
pub fn rows(duration: f64, seed: u64) -> Vec<Row> {
    let model = Model::new(
        Dims::square(N),
        Workload::new().with(TrafficClass::poisson(RHO)),
    )
    .expect("valid model");
    let analytic = solve(&model, Algorithm::Auto).unwrap().blocking(0);
    let run = RunConfig {
        warmup: duration / REPLICATIONS as f64 / 50.0,
        duration: duration / REPLICATIONS as f64,
        batches: 10,
    };
    let rep_cfg = RepConfig {
        replications: REPLICATIONS,
        master_seed: seed,
        confidence: Confidence::P95,
    };
    ATTEMPTS
        .into_iter()
        .map(|max_attempts| {
            let cfg = RetrialConfig {
                n1: N,
                n2: N,
                class: TrafficClass::poisson(RHO),
                max_attempts,
                backoff_mean: 0.25,
            };
            let merged = run_retrial_replications(&cfg, &run, &rep_cfg);
            Row {
                max_attempts,
                loss: merged.loss.mean,
                ci: merged.loss.half_width,
                attempt_blocking: merged.attempt_blocking.mean,
                mean_attempts: if merged.calls > 0 {
                    merged.attempts as f64 / merged.calls as f64
                } else {
                    0.0
                },
                analytic_cleared: analytic,
            }
        })
        .collect()
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "max_attempts",
        "final_loss",
        "ci",
        "attempt_blocking",
        "mean_attempts",
        "cleared_analytic",
    ]);
    for r in rows {
        t.push([
            r.max_attempts.to_string(),
            format!("{:.5}", r.loss),
            format!("{:.5}", r.ci),
            format!("{:.5}", r.attempt_blocking),
            format!("{:.3}", r.mean_attempts),
            format!("{:.5}", r.analytic_cleared),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleared_row_matches_analytic_and_retries_help() {
        let rows = rows(40_000.0, 7);
        let cleared = &rows[0];
        assert!(
            (cleared.loss - cleared.analytic_cleared).abs() < cleared.ci + 0.01,
            "cleared loss {} vs analytic {}",
            cleared.loss,
            cleared.analytic_cleared
        );
        // Monotone improvement in the retry budget.
        for pair in rows.windows(2) {
            assert!(
                pair[1].loss < pair[0].loss + 1e-9,
                "{:?} -> {:?}",
                pair[0].loss,
                pair[1].loss
            );
        }
        // And the per-attempt blocking never *improves* with retries
        // (retry traffic only adds pressure).
        assert!(rows[3].attempt_blocking >= rows[0].attempt_blocking - 0.01);
    }
}

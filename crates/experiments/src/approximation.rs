//! **Validation D (ours)** — how much accuracy the paper's exact analysis
//! buys over the classical reduced-load (Erlang fixed-point)
//! approximation, across switch size and operating point.
//!
//! The approximation treats ports as independent; the exact product form
//! knows that busy inputs and busy outputs arrive in pairs. The error of
//! ignoring that correlation is what this table measures.

use xbar_core::approx::reduced_load;
use xbar_core::{solve, Algorithm, Dims, Model};
use xbar_traffic::{TrafficClass, Workload};

use crate::{par_map, Table};

/// Per-input offered loads swept.
pub const LOADS: [f64; 4] = [0.05, 0.2, 0.5, 0.8];

/// Switch sizes swept.
pub const NS: [u32; 4] = [4, 16, 64, 256];

/// One comparison row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Switch size.
    pub n: u32,
    /// Per-input offered load `u = N·ρ`.
    pub load: f64,
    /// Exact blocking (product form).
    pub exact: f64,
    /// Reduced-load approximation.
    pub approx: f64,
    /// Relative error `(approx − exact)/exact`.
    pub rel_err: f64,
}

/// Compute one row.
pub fn row(n: u32, load: f64) -> Row {
    let rho = load / n as f64;
    let model = Model::new(
        Dims::square(n),
        Workload::new().with(TrafficClass::poisson(rho)),
    )
    .expect("valid model");
    let exact = solve(&model, Algorithm::Auto)
        .expect("solvable")
        .blocking(0);
    let approx = reduced_load(&model).blocking(0);
    Row {
        n,
        load,
        exact,
        approx,
        rel_err: (approx - exact) / exact,
    }
}

/// All rows.
pub fn rows() -> Vec<Row> {
    let cells: Vec<(u32, f64)> = NS
        .iter()
        .flat_map(|&n| LOADS.map(move |u| (n, u)))
        .collect();
    par_map(cells, |(n, u)| row(n, u))
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["N", "load", "exact", "reduced_load", "rel_err"]);
    for r in rows {
        t.push([
            r.n.to_string(),
            format!("{:.2}", r.load),
            format!("{:.6}", r.exact),
            format!("{:.6}", r.approx),
            format!("{:+.4}", r.rel_err),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximation_is_pessimistic_everywhere_tested() {
        for r in rows() {
            assert!(
                r.rel_err >= -1e-9,
                "N={} u={}: approx {} below exact {}",
                r.n,
                r.load,
                r.approx,
                r.exact
            );
        }
    }

    #[test]
    fn error_shrinks_with_switch_size() {
        // Port correlations matter less on big switches (mean-field gets
        // better): at fixed load the relative error decreases in N.
        for &u in &LOADS {
            let e4 = row(4, u).rel_err;
            let e64 = row(64, u).rel_err;
            assert!(e64 <= e4 + 1e-9, "u={u}: {e64} !<= {e4}");
        }
    }

    #[test]
    fn error_is_single_digit_percent_at_scale() {
        for &u in &LOADS {
            let r = row(256, u);
            assert!(r.rel_err.abs() < 0.1, "u={u}: {}", r.rel_err);
        }
    }
}

//! **Validation I (ours)** — trunk reservation: turning §4's shadow-price
//! diagnosis into control. Sweeping the reservation threshold against the
//! second class maps the protection/revenue trade-off for two mixes. The
//! measured structure is *bang-bang*: when the second class is cheap
//! relative to the ports it occupies (its `w` below its §4 shadow cost),
//! maximal reservation wins; when the classes are comparably valuable,
//! laissez-faire (`t = 0`) wins — the revenue-optimal policy jumps between
//! the extremes with the value asymmetry, exactly what the shadow-price
//! inequality `w_r ≷ ΔW` predicts.

use xbar_core::policy::solve_policy;
use xbar_core::{Algorithm, Dims, Model, SweepSolver};
use xbar_traffic::{TrafficClass, Workload};

use crate::{par_map, Table};

/// Switch size (kept small: the policy chain is solved numerically).
pub const N: u32 = 6;

/// Thresholds swept for the cheap class.
pub const THRESHOLDS: [u32; 6] = [0, 1, 2, 3, 4, 5];

/// Which mix a row belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// Second class cheap relative to its port usage (`w2 = 0.05`).
    Skewed,
    /// Second class comparably valuable (`w2 = 0.6`).
    Balanced,
}

/// The two mixes.
pub fn model(mix: Mix) -> Model {
    let w2 = match mix {
        Mix::Skewed => 0.05,
        Mix::Balanced => 0.6,
    };
    let w = Workload::new()
        .with(TrafficClass::poisson(0.02).with_weight(1.0))
        .with(TrafficClass::poisson(0.08).with_weight(w2));
    Model::new(Dims::square(N), w).unwrap()
}

/// One row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Which mix.
    pub mix: Mix,
    /// Spare-slot threshold imposed on the second class.
    pub threshold: u32,
    /// First (always-valuable) class blocking.
    pub blocking_valuable: f64,
    /// Second-class blocking.
    pub blocking_second: f64,
    /// Revenue `W`.
    pub revenue: f64,
}

/// Compute all rows for both mixes.
pub fn rows() -> Vec<Row> {
    let mut cells = Vec::new();
    for mix in [Mix::Skewed, Mix::Balanced] {
        for &t in &THRESHOLDS {
            cells.push((mix, t));
        }
    }
    par_map(cells, |(mix, t)| {
        let pol = solve_policy(&model(mix), &[0, t]);
        Row {
            mix,
            threshold: t,
            blocking_valuable: pol.blocking[0],
            blocking_second: pol.blocking[1],
            revenue: pol.revenue,
        }
    })
}

/// The complete-sharing (`t = 0`) anchor of one mix, computed from the
/// paper's product form via a one-shot [`SweepSolver`] ray build: with no
/// reservation the policy chain *is* the product-form model, so this pins
/// the numeric [`solve_policy`] chain at the start of every sweep.
/// Returns `(blocking_class1, blocking_class2, revenue)`.
pub fn complete_sharing_anchor(mix: Mix) -> (f64, f64, f64) {
    let sol = SweepSolver::new(&model(mix), Algorithm::Auto)
        .and_then(|s| s.solve_base())
        .expect("solvable");
    (sol.blocking(0), sol.blocking(1), sol.revenue())
}

/// The revenue-maximising row of one mix.
pub fn best(rows: &[Row], mix: Mix) -> Row {
    *rows
        .iter()
        .filter(|r| r.mix == mix)
        .max_by(|a, b| a.revenue.partial_cmp(&b.revenue).unwrap())
        .expect("non-empty")
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "mix",
        "threshold",
        "blocking_class1",
        "blocking_class2",
        "revenue",
    ]);
    for r in rows {
        t.push([
            format!("{:?}", r.mix).to_lowercase(),
            r.threshold.to_string(),
            format!("{:.5}", r.blocking_valuable),
            format!("{:.5}", r.blocking_second),
            format!("{:.6}", r.revenue),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_is_monotone_in_threshold() {
        let rows = rows();
        for mix in [Mix::Skewed, Mix::Balanced] {
            let series: Vec<&Row> = rows.iter().filter(|r| r.mix == mix).collect();
            for pair in series.windows(2) {
                assert!(pair[1].blocking_valuable <= pair[0].blocking_valuable + 1e-9);
                assert!(pair[1].blocking_second >= pair[0].blocking_second - 1e-9);
            }
        }
    }

    #[test]
    fn threshold_zero_matches_the_product_form_anchor() {
        // With no reservation the truncated chain solve_policy computes is
        // exactly the paper's product form, so the t = 0 row must agree
        // with the sweep-solver anchor to numeric precision.
        let rows = rows();
        for mix in [Mix::Skewed, Mix::Balanced] {
            let t0 = rows
                .iter()
                .find(|r| r.mix == mix && r.threshold == 0)
                .unwrap();
            let (b1, b2, w) = complete_sharing_anchor(mix);
            assert!((t0.blocking_valuable - b1).abs() < 1e-9, "{mix:?} class 1");
            assert!((t0.blocking_second - b2).abs() < 1e-9, "{mix:?} class 2");
            assert!((t0.revenue - w).abs() < 1e-9, "{mix:?} revenue");
        }
    }

    #[test]
    fn optimal_policy_is_bang_bang_in_the_value_asymmetry() {
        let rows = rows();
        // Cheap second class: reserve hard.
        let skewed = best(&rows, Mix::Skewed);
        assert_eq!(skewed.threshold, *THRESHOLDS.last().unwrap());
        assert!(skewed.revenue > rows.iter().find(|r| r.mix == Mix::Skewed).unwrap().revenue);
        // Comparably valuable second class: don't reserve at all.
        let balanced = best(&rows, Mix::Balanced);
        assert_eq!(balanced.threshold, 0);
    }
}

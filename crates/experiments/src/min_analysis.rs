//! **Validation H (ours)** — the paper's second future-work item:
//! analysing the *asynchronous multistage network*. We compare, across
//! load, the Omega-network simulation against our per-link reduced-load
//! fixed point and against the exact crossbar analysis — quantifying both
//! how far mean-field analysis gets on a shuffle network and how much
//! blocking the multistage fabric adds over the crossbar.

use xbar_baselines::omega::{omega_reduced_load, OmegaConfig, OmegaSim};
use xbar_core::{solve, Algorithm, Dims, Model};
use xbar_sim::ServiceDist;
use xbar_traffic::{TrafficClass, Workload};

use crate::{par_map, Table};

/// Network size (2^stages ports).
pub const STAGES: u32 = 4;

/// Per-input offered loads.
pub const LOADS: [f64; 5] = [0.05, 0.1, 0.2, 0.4, 0.7];

/// One row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Per-input offered load.
    pub load: f64,
    /// Omega blocking, simulated (ground truth for the MIN).
    pub omega_sim: f64,
    /// Omega blocking, reduced-load fixed point.
    pub omega_analytic: f64,
    /// Relative error of the fixed point.
    pub rel_err: f64,
    /// Exact crossbar blocking at the same load (the non-blocking fabric).
    pub crossbar: f64,
    /// The multistage penalty (sim − crossbar).
    pub min_penalty: f64,
}

/// Compute one row.
pub fn row(load: f64, seed: u64) -> Row {
    let n = 1u32 << STAGES;
    let lambda = load / n as f64;
    let sim = OmegaSim::new(
        OmegaConfig {
            stages: STAGES,
            lambda,
            service: ServiceDist::Exponential { mean: 1.0 },
        },
        seed,
    )
    .run(500.0, 40_000.0, 10);
    let analytic = omega_reduced_load(STAGES, lambda, 1.0);
    let model = Model::new(
        Dims::square(n),
        Workload::new().with(TrafficClass::poisson(lambda)),
    )
    .unwrap();
    let crossbar = solve(&model, Algorithm::Auto).unwrap().blocking(0);
    Row {
        load,
        omega_sim: sim.blocking.mean,
        omega_analytic: analytic,
        rel_err: (analytic - sim.blocking.mean) / sim.blocking.mean,
        crossbar,
        min_penalty: sim.blocking.mean - crossbar,
    }
}

/// All rows.
pub fn rows(seed: u64) -> Vec<Row> {
    par_map(LOADS.to_vec(), move |u| row(u, seed))
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "load",
        "omega_sim",
        "omega_fixed_point",
        "rel_err",
        "crossbar_exact",
        "min_penalty",
    ]);
    for r in rows {
        t.push([
            format!("{:.2}", r.load),
            format!("{:.5}", r.omega_sim),
            format!("{:.5}", r.omega_analytic),
            format!("{:+.3}", r.rel_err),
            format!("{:.5}", r.crossbar),
            format!("{:+.5}", r.min_penalty),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_is_pessimistic_and_tightens_with_load() {
        let rows = rows(17);
        for r in &rows {
            assert!(r.rel_err > 0.0, "load {}: {}", r.load, r.rel_err);
        }
        let first = rows.first().unwrap().rel_err;
        let last = rows.last().unwrap().rel_err;
        assert!(last < first, "rel err did not tighten: {first} -> {last}");
    }

    #[test]
    fn multistage_penalty_is_positive_and_grows_then_saturates() {
        let rows = rows(18);
        for r in &rows {
            assert!(r.min_penalty > 0.0, "load {}", r.load);
        }
        // The penalty at moderate load exceeds the penalty at very light
        // load in absolute terms.
        assert!(rows[3].min_penalty > rows[0].min_penalty);
    }
}

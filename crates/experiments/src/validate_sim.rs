//! **Validation A (ours)** — analytic model vs. discrete-event simulation,
//! the comparison the paper lists as future work (§8).
//!
//! Scenarios cover each burstiness regime and a multi-rate class. Loads
//! are set well above the paper's 0.5% operating point so the simulator
//! resolves blocking with tight confidence intervals in reasonable time
//! (at 0.5% blocking a run needs ~10⁷ arrivals per point; the *agreement*
//! shown here is load-independent — the analytic and simulated chains are
//! the same object at any load).

use xbar_core::{solve, Algorithm, Dims, Model};
use xbar_sim::{run_sim_replications, Confidence, RepConfig, RunConfig, SimConfig};
use xbar_traffic::{TrafficClass, Workload};

use crate::Table;

/// Independent replications per scenario (PR 10): the harness fans them
/// over the worker pool, so the parallelism that used to come from
/// `par_map` over scenarios now comes from within each scenario — and
/// the CI is an across-replication interval instead of batch means over
/// one autocorrelated path.
pub const REPLICATIONS: u64 = 4;

/// One scenario of the comparison.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable label.
    pub label: &'static str,
    /// Square switch size.
    pub n: u32,
    /// The traffic class (per-set parameters).
    pub class: TrafficClass,
}

/// The scenario list.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            label: "poisson",
            n: 8,
            class: TrafficClass::poisson(0.05),
        },
        Scenario {
            label: "pascal-Z2",
            n: 8,
            class: TrafficClass::bpp(0.025, 0.5, 1.0),
        },
        Scenario {
            label: "bernoulli-S16",
            n: 8,
            class: TrafficClass::bpp(0.64, -0.04, 1.0),
        },
        Scenario {
            label: "multirate-a2",
            n: 8,
            class: TrafficClass::poisson(0.002).with_bandwidth(2),
        },
    ]
}

/// One comparison row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Scenario label.
    pub label: &'static str,
    /// Analytic `B_r` (non-blocking).
    pub analytic_nonblocking: f64,
    /// Simulated availability (time-average tuple-idle probability).
    pub sim_availability: f64,
    /// Simulated 95% CI half-width.
    pub sim_ci: f64,
    /// Analytic concurrency `E_r`.
    pub analytic_concurrency: f64,
    /// Simulated concurrency.
    pub sim_concurrency: f64,
    /// Replications merged into the estimates.
    pub replications: u64,
    /// `true` iff the analytic value lies inside the (slightly slackened)
    /// simulation CI.
    pub agrees: bool,
}

/// Run all scenarios. `duration` is the measured sim-time per scenario,
/// split evenly across [`REPLICATIONS`] independent replications fanned
/// over the worker pool by the PR 10 harness.
pub fn rows(duration: f64, seed: u64) -> Vec<Row> {
    let run = RunConfig {
        warmup: duration / REPLICATIONS as f64 / 50.0,
        duration: duration / REPLICATIONS as f64,
        batches: 10,
    };
    let rep_cfg = RepConfig {
        replications: REPLICATIONS,
        master_seed: seed,
        confidence: Confidence::P95,
    };
    scenarios()
        .into_iter()
        .map(|sc| {
            let model = Model::new(Dims::square(sc.n), Workload::new().with(sc.class.clone()))
                .expect("valid scenario");
            let sol = solve(&model, Algorithm::Auto).expect("solvable");

            let cfg = SimConfig::new(sc.n, sc.n).with_exp_class(sc.class.clone());
            let merged = run_sim_replications(&cfg, &run, &rep_cfg).expect("valid scenario sim");
            let c = &merged.classes[0];
            let agrees = c.availability.covers_with_slack(sol.nonblocking(0), 0.01)
                && c.concurrency
                    .covers_with_slack(sol.concurrency(0), 0.02 * (1.0 + sol.concurrency(0)));
            Row {
                label: sc.label,
                analytic_nonblocking: sol.nonblocking(0),
                sim_availability: c.availability.mean,
                sim_ci: c.availability.half_width,
                analytic_concurrency: sol.concurrency(0),
                sim_concurrency: c.concurrency.mean,
                replications: merged.replications,
                agrees,
            }
        })
        .collect()
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "scenario",
        "B_analytic",
        "B_sim",
        "ci",
        "E_analytic",
        "E_sim",
        "reps",
        "agrees",
    ]);
    for r in rows {
        t.push([
            r.label.to_string(),
            format!("{:.6}", r.analytic_nonblocking),
            format!("{:.6}", r.sim_availability),
            format!("{:.6}", r.sim_ci),
            format!("{:.4}", r.analytic_concurrency),
            format!("{:.4}", r.sim_concurrency),
            r.replications.to_string(),
            r.agrees.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_agree_with_analytics() {
        for r in rows(40_000.0, 2024) {
            assert!(
                r.agrees,
                "{}: sim {}±{} vs analytic {}",
                r.label, r.sim_availability, r.sim_ci, r.analytic_nonblocking
            );
        }
    }

    #[test]
    fn scenario_list_covers_all_regimes() {
        let sc = scenarios();
        assert!(sc.iter().any(|s| s.class.beta == 0.0));
        assert!(sc.iter().any(|s| s.class.beta > 0.0));
        assert!(sc.iter().any(|s| s.class.beta < 0.0));
        assert!(sc.iter().any(|s| s.class.bandwidth > 1));
    }
}

//! **Validation J (ours)** — hot-spot (non-uniform) output traffic, the
//! scenario of the authors' companion paper \[28\] that this paper's
//! uniform model cannot cover. Simulation-only: sweeping the redirected
//! fraction `h` shows how a single popular output degrades the whole
//! switch, and how far the uniform analysis (the `h = 0` anchor, which the
//! simulator must reproduce exactly) remains a useful lower bound.

use xbar_core::{Algorithm, Dims, Model, SweepSolver};
use xbar_sim::hotspot::{HotspotConfig, HotspotSim};
use xbar_sim::ServiceDist;
use xbar_traffic::{TrafficClass, Workload};

use crate::{par_map, Table};

/// Switch size.
pub const N: u32 = 16;

/// Per-pair uniform-component arrival rate.
pub const LAMBDA: f64 = 0.01;

/// Hot fractions swept.
pub const HOT_FRACTIONS: [f64; 5] = [0.0, 0.1, 0.2, 0.4, 0.6];

/// One row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Redirected fraction `h`.
    pub hot_fraction: f64,
    /// Overall call blocking (simulated).
    pub blocking: f64,
    /// Blocking of calls aimed at the hot output.
    pub hot_blocking: f64,
    /// Blocking of calls aimed at cold outputs.
    pub cold_blocking: f64,
    /// Hot-output utilisation.
    pub hot_utilisation: f64,
    /// Mean cold-output utilisation.
    pub cold_utilisation: f64,
    /// The uniform-model analytic blocking (exact for `h = 0`).
    pub uniform_analytic: f64,
}

/// Compute all rows.
pub fn rows(duration: f64, seed: u64) -> Vec<Row> {
    xbar_obs::time("hotspot.rows", || {
        let model = Model::new(
            Dims::square(N),
            Workload::new().with(TrafficClass::poisson(LAMBDA)),
        )
        .expect("valid uniform model");
        // The analytic anchor is one point shared by every sweep row — a
        // one-shot ray build is cheaper than a full lattice solve.
        let uniform_analytic = xbar_obs::time("solve", || {
            SweepSolver::new(&model, Algorithm::Auto)
                .and_then(|s| s.solve_base())
                .expect("solvable")
                .blocking(0)
        });
        xbar_obs::time("sim", || {
            par_map(HOT_FRACTIONS.to_vec(), move |h| {
                let rep = HotspotSim::new(
                    HotspotConfig {
                        n1: N,
                        n2: N,
                        lambda: LAMBDA,
                        hot_fraction: h,
                        service: ServiceDist::Exponential { mean: 1.0 },
                    },
                    seed,
                )
                .run(duration / 50.0, duration, 20);
                Row {
                    hot_fraction: h,
                    blocking: rep.blocking.mean,
                    hot_blocking: rep.hot_blocking.mean,
                    cold_blocking: rep.cold_blocking.mean,
                    hot_utilisation: rep.hot_utilisation,
                    cold_utilisation: rep.cold_utilisation,
                    uniform_analytic,
                }
            })
        })
    })
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "hot_fraction",
        "blocking",
        "hot_blocking",
        "cold_blocking",
        "hot_util",
        "cold_util",
        "uniform_analytic",
    ]);
    for r in rows {
        t.push([
            format!("{:.2}", r.hot_fraction),
            format!("{:.5}", r.blocking),
            format!("{:.5}", r.hot_blocking),
            format!("{:.5}", r.cold_blocking),
            format!("{:.4}", r.hot_utilisation),
            format!("{:.4}", r.cold_utilisation),
            format!("{:.5}", r.uniform_analytic),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_anchor_matches_the_analytic_model() {
        let rows = rows(40_000.0, 33);
        let h0 = &rows[0];
        assert!(
            (h0.blocking - h0.uniform_analytic).abs() < 0.01,
            "h=0 sim {} vs analytic {}",
            h0.blocking,
            h0.uniform_analytic
        );
    }

    #[test]
    fn hotter_spot_more_blocking_everywhere() {
        let rows = rows(40_000.0, 34);
        for pair in rows.windows(2) {
            assert!(
                pair[1].blocking >= pair[0].blocking - 0.005,
                "{:?} -> {:?}",
                pair[0].blocking,
                pair[1].blocking
            );
        }
        // And the hot output is the bottleneck: it blocks far more than
        // cold ones once h is substantial.
        let last = rows.last().unwrap();
        assert!(last.hot_blocking > 2.0 * last.cold_blocking);
        assert!(last.hot_utilisation > 2.0 * last.cold_utilisation);
    }
}

//! **Validation B (ours)** — the insensitivity property: the paper's
//! stationary distribution depends on holding times only through their
//! mean (§2, ref \[7\]). We hold the mean at `1/μ = 1` and sweep the
//! holding-time *shape* from constant (`c² = 0`) to heavy-tailed Pareto
//! (`c²` infinite-ish), checking the simulated availability against the
//! single analytic value.

use xbar_core::{solve, Algorithm, Dims, Model};
use xbar_sim::{CrossbarSim, RunConfig, ServiceDist, SimConfig};
use xbar_traffic::{TrafficClass, Workload};

use crate::{par_map, Table};

/// The class used everywhere (Pascal — the bursty case is the interesting
/// one, since for it insensitivity is *not* folklore).
pub fn class() -> TrafficClass {
    TrafficClass::bpp(0.04, 0.3, 1.0)
}

/// Switch size.
pub const N: u32 = 6;

/// The service-law menu.
pub fn menu() -> Vec<(&'static str, ServiceDist)> {
    vec![
        ("exponential", ServiceDist::Exponential { mean: 1.0 }),
        ("deterministic", ServiceDist::Deterministic { mean: 1.0 }),
        ("erlang-4", ServiceDist::Erlang { mean: 1.0, k: 4 }),
        (
            "hyperexp-cv4",
            ServiceDist::HyperExp {
                mean: 1.0,
                cv2: 4.0,
            },
        ),
        ("uniform", ServiceDist::Uniform { mean: 1.0 }),
        (
            "lognormal-cv2",
            ServiceDist::LogNormal {
                mean: 1.0,
                cv2: 2.0,
            },
        ),
        (
            "pareto-2.5",
            ServiceDist::Pareto {
                mean: 1.0,
                shape: 2.5,
            },
        ),
    ]
}

/// One comparison row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Distribution label.
    pub dist: &'static str,
    /// Its squared coefficient of variation.
    pub cv2: f64,
    /// Simulated availability mean.
    pub sim: f64,
    /// Simulated CI half-width.
    pub ci: f64,
    /// The one analytic value all rows must match.
    pub analytic: f64,
}

/// Run the sweep.
pub fn rows(duration: f64, seed: u64) -> Vec<Row> {
    let model = Model::new(Dims::square(N), Workload::new().with(class())).unwrap();
    let analytic = solve(&model, Algorithm::Auto).unwrap().nonblocking(0);
    par_map(menu(), move |(dist_label, dist)| {
        let cfg = SimConfig::new(N, N).with_class(class(), dist);
        let mut sim = CrossbarSim::new(cfg, seed);
        let rep = sim.run(RunConfig {
            warmup: duration / 50.0,
            duration,
            batches: 20,
        });
        Row {
            dist: dist_label,
            cv2: dist.cv2(),
            sim: rep.classes[0].availability.mean,
            ci: rep.classes[0].availability.half_width,
            analytic,
        }
    })
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["service", "cv2", "B_sim", "ci", "B_analytic", "delta"]);
    for r in rows {
        t.push([
            r.dist.to_string(),
            format!("{:.2}", r.cv2),
            format!("{:.6}", r.sim),
            format!("{:.6}", r.ci),
            format!("{:.6}", r.analytic),
            format!("{:+.6}", r.sim - r.analytic),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_is_insensitive_to_service_shape() {
        let rows = rows(40_000.0, 77);
        assert_eq!(rows.len(), menu().len());
        for r in &rows {
            assert!(
                (r.sim - r.analytic).abs() <= r.ci + 0.012,
                "{}: sim {}±{} vs analytic {}",
                r.dist,
                r.sim,
                r.ci,
                r.analytic
            );
        }
        // And the spread across distributions is itself small.
        let max = rows.iter().map(|r| r.sim).fold(f64::MIN, f64::max);
        let min = rows.iter().map(|r| r.sim).fold(f64::MAX, f64::min);
        assert!(max - min < 0.03, "spread {}", max - min);
    }

    #[test]
    fn menu_spans_cv2_range() {
        let m = menu();
        assert!(m.iter().any(|(_, d)| d.cv2() == 0.0));
        assert!(m.iter().any(|(_, d)| d.cv2() > 3.0));
    }
}

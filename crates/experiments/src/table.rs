//! Minimal aligned-text/CSV table rendering shared by all experiments.

/// A rendered table: column headers plus stringified rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn push<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned monospace table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting needed: cells are numeric/identifier-ish;
    /// asserted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            assert!(
                !s.contains(',') && !s.contains('"') && !s.contains('\n'),
                "cell needs quoting: {s:?}"
            );
            s.to_string()
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new(["N", "blocking"]);
        t.push(["4", "0.001"]);
        t.push(["128", "0.005"]);
        let s = t.to_text();
        assert!(s.contains("  N"), "{s}");
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn renders_csv() {
        let mut t = Table::new(["a", "b"]);
        t.push(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new(["a", "b"]);
        t.push(["1"]);
    }

    #[test]
    #[should_panic(expected = "needs quoting")]
    fn rejects_cells_needing_quotes() {
        let mut t = Table::new(["a"]);
        t.push(["1,2"]);
        let _ = t.to_csv();
    }
}

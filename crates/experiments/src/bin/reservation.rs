//! Validation I: trunk-reservation revenue sweep.
use xbar_experiments::{reservation, write_csv};

fn main() {
    let rows = reservation::rows();
    println!(
        "Validation I — trunk reservation on a {0}x{0} switch\n",
        xbar_experiments::reservation::N
    );
    println!("{}", reservation::table(&rows).to_text());
    for mix in [
        xbar_experiments::reservation::Mix::Skewed,
        xbar_experiments::reservation::Mix::Balanced,
    ] {
        let best = reservation::best(&rows, mix);
        println!(
            "{mix:?}: revenue-optimal threshold = {} (W = {:.6})",
            best.threshold, best.revenue
        );
    }
    let path =
        write_csv("reservation.csv", &reservation::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

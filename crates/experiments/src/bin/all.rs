//! Regenerate every table and figure in one go (CSV in out/).
use xbar_experiments::*;

fn main() {
    metrics::enable_from_env();
    println!("=== Figure 1 ===");
    let r = fig1::rows();
    write_csv("fig1.csv", &fig1::table(&r).to_csv()).unwrap();
    let sparse: Vec<_> = r
        .iter()
        .filter(|x| x.n.is_power_of_two())
        .cloned()
        .collect();
    println!("{}", fig1::table(&sparse).to_text());

    println!("=== Figure 2 ===");
    let r = fig2::rows();
    write_csv("fig2.csv", &fig2::table(&r).to_csv()).unwrap();
    let sparse: Vec<_> = r
        .iter()
        .filter(|x| x.n.is_power_of_two())
        .cloned()
        .collect();
    println!("{}", fig2::table(&sparse).to_text());

    println!("=== Figure 3 ===");
    let r = fig3::rows();
    write_csv("fig3.csv", &fig3::table(&r).to_csv()).unwrap();
    let sparse: Vec<_> = r
        .iter()
        .filter(|x| x.n.is_power_of_two())
        .cloned()
        .collect();
    println!("{}", fig3::table(&sparse).to_text());

    println!("=== Figure 4 / Table 1 ===");
    let r = fig4::rows();
    write_csv("fig4.csv", &fig4::table(&r).to_csv()).unwrap();
    write_csv("table1.csv", &fig4::table1(&r).to_csv()).unwrap();
    println!("{}", fig4::table1(&r).to_text());
    println!("{}", fig4::table(&r).to_text());

    println!("=== Table 2 ===");
    let r = table2::rows();
    write_csv("table2.csv", &table2::table(&r).to_csv()).unwrap();
    println!("{}", table2::table(&r).to_text());

    println!("=== Validation A: analytic vs simulation ===");
    let r = validate_sim::rows(200_000.0, 2024);
    write_csv("validate_sim.csv", &validate_sim::table(&r).to_csv()).unwrap();
    println!("{}", validate_sim::table(&r).to_text());

    println!("=== Validation B: insensitivity ===");
    let r = insensitivity::rows(200_000.0, 77);
    write_csv("insensitivity.csv", &insensitivity::table(&r).to_csv()).unwrap();
    println!("{}", insensitivity::table(&r).to_text());

    println!("=== Validation C: baselines ===");
    let r = compare_baselines::rows(11);
    write_csv("baselines.csv", &compare_baselines::table(&r).to_csv()).unwrap();
    println!("{}", compare_baselines::table(&r).to_text());

    println!("=== Validation D: exact vs reduced-load approximation ===");
    let r = approximation::rows();
    write_csv("approximation.csv", &approximation::table(&r).to_csv()).unwrap();
    println!("{}", approximation::table(&r).to_text());

    println!("=== Validation E: rectangular switches ===");
    let r = rectangular::rows();
    write_csv("rectangular.csv", &rectangular::table(&r).to_csv()).unwrap();
    println!("{}", rectangular::table(&r).to_text());

    println!("=== Validation F: transient warm-up ===");
    let r = transient_warmup::rows();
    write_csv("transient.csv", &transient_warmup::table(&r).to_csv()).unwrap();
    println!("{}", transient_warmup::table(&r).to_text());

    println!("=== Validation G: retrial impact ===");
    let r = retrial_impact::rows(200_000.0, 7);
    write_csv("retrial.csv", &retrial_impact::table(&r).to_csv()).unwrap();
    println!("{}", retrial_impact::table(&r).to_text());

    println!("=== Validation H: multistage-network analysis ===");
    let r = min_analysis::rows(17);
    write_csv("min_analysis.csv", &min_analysis::table(&r).to_csv()).unwrap();
    println!("{}", min_analysis::table(&r).to_text());

    println!("=== Validation I: trunk reservation ===");
    let r = reservation::rows();
    write_csv("reservation.csv", &reservation::table(&r).to_csv()).unwrap();
    println!("{}", reservation::table(&r).to_text());

    println!("=== Validation J: hot-spot traffic ===");
    let r = hotspot_sweep::rows(100_000.0, 33);
    write_csv("hotspot.csv", &hotspot_sweep::table(&r).to_csv()).unwrap();
    println!("{}", hotspot_sweep::table(&r).to_text());

    println!("=== Validation K: admission-control replay ===");
    let r = replay::rows(replay::EVENTS, replay::SEED);
    write_csv("replay.csv", &replay::table(&r).to_csv()).unwrap();
    println!("{}", replay::table(&r).to_text());

    println!("=== Validation L: capacity-planning frontier ===");
    let report = plan_frontier::run();
    let f = plan_frontier::frontier_rows(&report);
    let c = plan_frontier::contour_rows(&report);
    write_csv(
        "plan_frontier.csv",
        &plan_frontier::frontier_table(&f).to_csv(),
    )
    .unwrap();
    write_csv(
        "plan_contour.csv",
        &plan_frontier::contour_table(&c).to_csv(),
    )
    .unwrap();
    println!("{}", plan_frontier::frontier_table(&f).to_text());

    println!("All CSV artefacts written to out/");
    metrics::finish();
}

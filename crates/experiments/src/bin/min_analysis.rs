//! Validation H: analytic multistage-network model vs simulation.
use xbar_experiments::{min_analysis, write_csv};

fn main() {
    let rows = min_analysis::rows(17);
    println!("Validation H — Omega MIN: simulation vs reduced-load fixed point vs crossbar\n");
    println!("{}", min_analysis::table(&rows).to_text());
    let path =
        write_csv("min_analysis.csv", &min_analysis::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

//! Regenerate Table 2 (revenue-oriented analysis) with paper deltas.
use xbar_experiments::{table2, write_csv};

fn main() {
    let rows = table2::rows();
    println!("Table 2 — revenue analysis (ours vs paper; see DESIGN.md on the");
    println!("blocking column's known inconsistency with the stated model)\n");
    println!("{}", table2::table(&rows).to_text());
    let path = write_csv("table2.csv", &table2::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

//! Validation E: aspect-ratio sweep at a fixed port budget.
use xbar_experiments::{metrics, rectangular, write_csv};

fn main() {
    metrics::enable_from_env();
    let rows = rectangular::rows();
    println!(
        "Validation E — rectangular switches, N1 + N2 = {}\n",
        rectangular::PORT_BUDGET
    );
    println!("{}", rectangular::table(&rows).to_text());
    let path =
        write_csv("rectangular.csv", &rectangular::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
    metrics::finish();
}

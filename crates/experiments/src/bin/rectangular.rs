//! Validation E: aspect-ratio sweep at a fixed port budget.
use xbar_experiments::{rectangular, write_csv};

fn main() {
    let rows = rectangular::rows();
    println!(
        "Validation E — rectangular switches, N1 + N2 = {}\n",
        rectangular::PORT_BUDGET
    );
    println!("{}", rectangular::table(&rows).to_text());
    let path =
        write_csv("rectangular.csv", &rectangular::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

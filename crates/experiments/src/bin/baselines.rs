//! Validation C: async crossbar vs slotted crossbar vs Omega MIN.
use xbar_experiments::{compare_baselines, write_csv};

fn main() {
    let rows = compare_baselines::rows(11);
    println!(
        "Validation C — crossbar vs slotted vs Omega MIN at N = {}\n",
        compare_baselines::N
    );
    println!("{}", compare_baselines::table(&rows).to_text());
    let path =
        write_csv("baselines.csv", &compare_baselines::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

//! Regenerate Figure 1 (smooth/Bernoulli traffic vs Poisson bound).
use xbar_experiments::{fig1, metrics, write_csv};

fn main() {
    metrics::enable_from_env();
    let rows = fig1::rows();
    let t = fig1::table(&rows);
    println!("Figure 1 — blocking vs N, smooth (Bernoulli) traffic");
    println!(
        "alpha_tilde = {}, mu = 1, beta_tilde in {:?}\n",
        fig1::ALPHA_TILDE,
        fig1::BETA_TILDES
    );
    // Print the sparse view (powers of two); full grid goes to CSV.
    let sparse: Vec<_> = rows
        .iter()
        .filter(|r| r.n.is_power_of_two())
        .cloned()
        .collect();
    println!("{}", fig1::table(&sparse).to_text());
    let path = write_csv("fig1.csv", &t.to_csv()).expect("write CSV");
    println!("full grid written to {}", path.display());
    metrics::finish();
}

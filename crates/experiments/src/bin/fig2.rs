//! Regenerate Figure 2 (peaky/Pascal traffic vs Poisson baseline).
use xbar_experiments::{fig2, metrics, write_csv};

fn main() {
    metrics::enable_from_env();
    let rows = fig2::rows();
    println!("Figure 2 — blocking vs N, peaky (Pascal) traffic");
    println!(
        "alpha_tilde = {}, fixed-beta series {:?}, fixed-Z series {:?}\n",
        xbar_experiments::fig1::ALPHA_TILDE,
        fig2::BETA_TILDES,
        fig2::Z_FACTORS
    );
    let sparse: Vec<_> = rows
        .iter()
        .filter(|r| r.n.is_power_of_two())
        .cloned()
        .collect();
    println!("{}", fig2::table(&sparse).to_text());
    let path = write_csv("fig2.csv", &fig2::table(&rows).to_csv()).expect("write CSV");
    println!("full grid written to {}", path.display());
    metrics::finish();
}

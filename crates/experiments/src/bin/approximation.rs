//! Validation D: exact product form vs reduced-load approximation.
use xbar_experiments::{approximation, write_csv};

fn main() {
    let rows = approximation::rows();
    println!("Validation D — exact vs reduced-load (Erlang fixed-point)\n");
    println!("{}", approximation::table(&rows).to_text());
    let path =
        write_csv("approximation.csv", &approximation::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

//! Validation G: what end-point retries do to the cleared-model loss.
use xbar_experiments::{retrial_impact, write_csv};

fn main() {
    let rows = retrial_impact::rows(200_000.0, 7);
    println!(
        "Validation G — retrial impact at N = {}, rho = {}\n",
        retrial_impact::N,
        retrial_impact::RHO
    );
    println!("{}", retrial_impact::table(&rows).to_text());
    let path = write_csv("retrial.csv", &retrial_impact::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

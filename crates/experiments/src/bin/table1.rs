//! Regenerate Table 1 (input loads for the multi-rate comparison).
use xbar_experiments::{fig4, write_csv};

fn main() {
    let rows = fig4::rows();
    println!(
        "Table 1 — input parameters, tau = {} (rho1 as printed: tau/(2N))\n",
        fig4::TAU
    );
    println!("{}", fig4::table1(&rows).to_text());
    let path = write_csv("table1.csv", &fig4::table1(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

//! Validation K: online admission control under policy replay.
use xbar_experiments::{metrics, replay, write_csv};

fn main() {
    metrics::enable_from_env();
    let rows = replay::rows(replay::EVENTS, replay::SEED);
    println!(
        "Validation K — admission-control replay ({} events, seed {})\n",
        replay::EVENTS,
        replay::SEED
    );
    println!("{}", replay::table(&rows).to_text());
    let path = write_csv("replay.csv", &replay::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
    metrics::finish();
}

//! Regenerate Figure 3 (mixed R1+R2 vs R2-only workloads).
use xbar_experiments::{fig3, metrics, write_csv};

fn main() {
    metrics::enable_from_env();
    let rows = fig3::rows();
    println!("Figure 3 — two classes (R1=1, R2=1) vs one class (R2=1)");
    println!(
        "alpha_tilde per class = {}, beta_tilde in {:?}\n",
        fig3::ALPHA_TILDE,
        fig3::BETA_TILDES
    );
    let sparse: Vec<_> = rows
        .iter()
        .filter(|r| r.n.is_power_of_two())
        .cloned()
        .collect();
    println!("{}", fig3::table(&sparse).to_text());
    let path = write_csv("fig3.csv", &fig3::table(&rows).to_csv()).expect("write CSV");
    println!("full grid written to {}", path.display());
    metrics::finish();
}

//! Validation A: analytic model vs discrete-event simulation.
use xbar_experiments::{validate_sim, write_csv};

fn main() {
    let rows = validate_sim::rows(200_000.0, 2024);
    println!("Validation A — analytic vs simulation (95% CIs)\n");
    println!("{}", validate_sim::table(&rows).to_text());
    let path =
        write_csv("validate_sim.csv", &validate_sim::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

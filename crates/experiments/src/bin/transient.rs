//! Validation F: transient warm-up of a cold switch.
use xbar_experiments::{transient_warmup, write_csv};

fn main() {
    let rows = transient_warmup::rows();
    println!("Validation F — transient availability from a cold start\n");
    println!("{}", transient_warmup::table(&rows).to_text());
    let path =
        write_csv("transient.csv", &transient_warmup::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

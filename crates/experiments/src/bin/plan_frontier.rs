//! Regenerate the capacity-planning frontier and contour artefacts.
use xbar_experiments::{metrics, plan_frontier, write_csv};

fn main() {
    metrics::enable_from_env();
    let report = plan_frontier::run();
    let f = plan_frontier::frontier_rows(&report);
    let c = plan_frontier::contour_rows(&report);
    write_csv(
        "plan_frontier.csv",
        &plan_frontier::frontier_table(&f).to_csv(),
    )
    .unwrap();
    write_csv(
        "plan_contour.csv",
        &plan_frontier::contour_table(&c).to_csv(),
    )
    .unwrap();
    println!("{}", plan_frontier::frontier_table(&f).to_text());
    metrics::finish();
}

//! Validation J: hot-spot output sweep (the companion-paper scenario).
use xbar_experiments::{hotspot_sweep, metrics, write_csv};

fn main() {
    metrics::enable_from_env();
    let rows = hotspot_sweep::rows(100_000.0, 33);
    println!(
        "Validation J — hot-spot traffic on a {0}x{0} crossbar\n",
        hotspot_sweep::N
    );
    println!("{}", hotspot_sweep::table(&rows).to_text());
    let path = write_csv("hotspot.csv", &hotspot_sweep::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
    metrics::finish();
}

//! Regenerate Figure 4 (multi-rate a=1 vs a=2 blocking comparison).
use xbar_experiments::{fig4, metrics, write_csv};

fn main() {
    metrics::enable_from_env();
    let rows = fig4::rows();
    println!(
        "Figure 4 — a=1 vs a=2 Poisson traffic at total load tau = {}\n",
        fig4::TAU
    );
    println!("{}", fig4::table(&rows).to_text());
    let path = write_csv("fig4.csv", &fig4::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
    metrics::finish();
}

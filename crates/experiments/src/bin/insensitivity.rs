//! Validation B: insensitivity of blocking to the holding-time law.
use xbar_experiments::{insensitivity, write_csv};

fn main() {
    let rows = insensitivity::rows(200_000.0, 77);
    println!("Validation B — insensitivity to service distribution (mean fixed)\n");
    println!("{}", insensitivity::table(&rows).to_text());
    let path =
        write_csv("insensitivity.csv", &insensitivity::table(&rows).to_csv()).expect("write CSV");
    println!("written to {}", path.display());
}

//! **Figure 2** — blocking probability vs. switch size for *peaky*
//! (Pascal) arrival traffic, with the Poisson curve as the baseline it
//! dramatically exceeds.
//!
//! The paper states the setup (`R2 = 1`, `a = 1`, Poisson curve at
//! `α̃ = .0024, μ = 1, β̃ = 0`) but not the Pascal `β̃` grid. We plot two
//! documented series (see EXPERIMENTS.md):
//!
//! * **fixed-β̃** — `β̃ ∈ {6e−4, 1.2e−3, 2.4e−3}`, bracketing the
//!   `β̃ = α̃/2 … α̃` magnitudes Table 2 uses; the per-pair peakedness
//!   `Z = 1/(1 − β̃/N)` fades as `N` grows, yet the *effect on blocking*
//!   still compounds because the class concurrency grows with `N`.
//! * **fixed-Z** — per-pair peakedness held at `Z ∈ {1.25, 1.5, 2}`
//!   (`β = μ(1 − 1/Z)` per pair, i.e. `β̃ = N·β`), the reading under which
//!   "peaky traffic" stays peaky at every size and the dramatic impact the
//!   paper describes is fully visible.

use xbar_core::{solve, Algorithm, Dims, FleetSweep, Model};
use xbar_traffic::{TildeClass, TrafficClass, Workload};

use crate::fig1::ALPHA_TILDE;
use crate::Table;

/// Fixed-`β̃` series values (0 = the Poisson baseline).
pub const BETA_TILDES: [f64; 4] = [0.0, 6.0e-4, 1.2e-3, 2.4e-3];

/// Fixed per-pair peakedness series values.
pub const Z_FACTORS: [f64; 3] = [1.25, 1.5, 2.0];

/// Largest switch size plotted.
pub const MAX_N: u32 = 128;

/// Which series a row belongs to.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Series {
    /// Fixed aggregated `β̃` (param = `β̃`).
    FixedBetaTilde,
    /// Fixed per-pair peakedness (param = `Z`).
    FixedZ,
}

/// One point of the figure.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Series identity.
    pub series: Series,
    /// Series parameter (`β̃` or `Z`).
    pub param: f64,
    /// Square switch size.
    pub n: u32,
    /// Blocking probability.
    pub blocking: f64,
}

/// The model for the fixed-`β̃` series at one cell.
pub fn model_fixed_beta(n: u32, beta_tilde: f64) -> Model {
    let workload = Workload::from_tilde(&[TildeClass::bpp(ALPHA_TILDE, beta_tilde, 1.0)], n);
    Model::new(Dims::square(n), workload).expect("valid Fig 2 model")
}

/// Blocking for the fixed-`β̃` series at one cell.
pub fn blocking_fixed_beta(n: u32, beta_tilde: f64) -> f64 {
    solve(&model_fixed_beta(n, beta_tilde), Algorithm::Auto)
        .expect("solvable")
        .blocking(0)
}

/// The model for the fixed-`Z` series at one cell: per-pair
/// `β = μ(1 − 1/Z)`, per-pair `α = α̃/N` as in the other series.
pub fn model_fixed_z(n: u32, z: f64) -> Model {
    let beta = 1.0 - 1.0 / z; // mu = 1
    let class = TrafficClass::bpp(ALPHA_TILDE / n as f64, beta, 1.0);
    Model::new(Dims::square(n), Workload::new().with(class)).expect("valid fixed-Z model")
}

/// Blocking for the fixed-`Z` series at one cell.
pub fn blocking_fixed_z(n: u32, z: f64) -> f64 {
    solve(&model_fixed_z(n, z), Algorithm::Auto)
        .expect("solvable")
        .blocking(0)
}

/// All points of both series, every `N ∈ 1..=128`. All seven curves at
/// one size share everything but class 0's BPP parameters, so the whole
/// figure is one [`FleetSweep`] precompute (every size solved as one
/// batch, sharded over the worker pool) plus seven `O(N)` recombinations
/// per size (the Poisson baseline reuses the cached ray) instead of
/// seven full lattice solves per size; the recombinations fan out over
/// [`crate::par_map`]. Matches the per-size [`xbar_core::SweepSolver`]
/// path bit for bit.
pub fn rows() -> Vec<Row> {
    xbar_obs::time("fig2.rows", || {
        let per_n: Vec<Vec<f64>> = xbar_obs::time("solve", || {
            let models: Vec<Model> = (1..=MAX_N).map(|n| model_fixed_beta(n, 0.0)).collect();
            let fleet = FleetSweep::new(&models, Algorithm::Auto).expect("solvable");
            crate::par_map((1..=MAX_N).collect(), |n| {
                let i = (n - 1) as usize;
                let solve_class = |m: Model| {
                    let class = m.workload().classes()[0].clone();
                    fleet
                        .solve_with_class(i, 0, class)
                        .expect("solvable")
                        .blocking(0)
                };
                BETA_TILDES
                    .iter()
                    .map(|&b| solve_class(model_fixed_beta(n, b)))
                    .chain(Z_FACTORS.iter().map(|&z| solve_class(model_fixed_z(n, z))))
                    .collect()
            })
        });
        let mut rows = Vec::new();
        for (bi, &b) in BETA_TILDES.iter().enumerate() {
            for (vals, n) in per_n.iter().zip(1..=MAX_N) {
                rows.push(Row {
                    series: Series::FixedBetaTilde,
                    param: b,
                    n,
                    blocking: vals[bi],
                });
            }
        }
        for (zi, &z) in Z_FACTORS.iter().enumerate() {
            for (vals, n) in per_n.iter().zip(1..=MAX_N) {
                rows.push(Row {
                    series: Series::FixedZ,
                    param: z,
                    n,
                    blocking: vals[BETA_TILDES.len() + zi],
                });
            }
        }
        rows
    })
}

/// Render rows as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["series", "param", "N", "blocking"]);
    for r in rows {
        let series = match r.series {
            Series::FixedBetaTilde => "fixed-beta",
            Series::FixedZ => "fixed-Z",
        };
        t.push([
            series.to_string(),
            format!("{}", r.param),
            r.n.to_string(),
            format!("{:.8}", r.blocking),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaky_traffic_blocks_more_than_poisson_everywhere() {
        for &n in &[1u32, 4, 16, 64, 128] {
            let poisson = blocking_fixed_beta(n, 0.0);
            for &b in &BETA_TILDES[1..] {
                assert!(
                    blocking_fixed_beta(n, b) >= poisson - 1e-15,
                    "N={n} beta={b}"
                );
            }
            for &z in &Z_FACTORS {
                assert!(blocking_fixed_z(n, z) >= poisson - 1e-15, "N={n} Z={z}");
            }
        }
    }

    #[test]
    fn more_peakedness_more_blocking() {
        for &n in &[4u32, 32, 128] {
            assert!(blocking_fixed_beta(n, 2.4e-3) >= blocking_fixed_beta(n, 6.0e-4) - 1e-15);
            assert!(blocking_fixed_z(n, 2.0) > blocking_fixed_z(n, 1.25));
        }
    }

    #[test]
    fn fixed_z_impact_is_dramatic() {
        // The paper: "peaky arrival traffic has a dramatic impact on
        // blocking probability". Under constant per-pair peakedness Z = 2
        // the blocking is at least double the Poisson baseline at N = 64.
        let poisson = blocking_fixed_beta(64, 0.0);
        let peaky = blocking_fixed_z(64, 2.0);
        assert!(peaky > 2.0 * poisson, "peaky {peaky} vs poisson {poisson}");
    }

    #[test]
    fn fixed_beta_effect_compounds_with_n() {
        // Even though the per-pair β̃/N shrinks, the class concurrency
        // grows ∝ N, so the state-dependent boost β·k compounds and the
        // relative gap to Poisson *grows* with N — the same divergence
        // Table 2's sets 1 vs 2 show.
        let rel_gap = |n: u32| {
            let p = blocking_fixed_beta(n, 0.0);
            (blocking_fixed_beta(n, 2.4e-3) - p) / p
        };
        assert!(
            rel_gap(64) > rel_gap(4),
            "{} vs {}",
            rel_gap(64),
            rel_gap(4)
        );
    }

    #[test]
    fn rows_cover_both_series() {
        let rows = rows();
        let fixed_beta = rows
            .iter()
            .filter(|r| r.series == Series::FixedBetaTilde)
            .count();
        let fixed_z = rows.iter().filter(|r| r.series == Series::FixedZ).count();
        assert_eq!(fixed_beta, BETA_TILDES.len() * MAX_N as usize);
        assert_eq!(fixed_z, Z_FACTORS.len() * MAX_N as usize);
        assert_eq!(table(&rows).len(), rows.len());
    }
}

//! Obs plumbing for the experiment drivers: opt-in process-wide metrics,
//! per-stage wall-time spans, and an end-of-run summary.
//!
//! Drivers wrap their stages in [`xbar_obs::time`] spans unconditionally —
//! a disabled recording costs one thread-local read — and the binaries call
//! [`enable_from_env`] at startup and [`finish`] before exiting. Setting
//! the `XBAR_METRICS` environment variable to a file path turns recording
//! on and writes the schema-versioned JSON snapshot there; every enabled
//! run also prints cache effectiveness and per-stage wall time, so "did
//! the cache actually engage for this figure?" is visible on every
//! regeneration.

use std::fmt::Write as _;

/// Enable process-wide metrics recording iff `XBAR_METRICS` is set in the
/// environment. Returns whether recording is now on.
pub fn enable_from_env() -> bool {
    if std::env::var_os("XBAR_METRICS").is_some() {
        xbar_obs::set_global_enabled(true);
    }
    xbar_obs::global_enabled()
}

/// Cache effectiveness and per-stage wall time, rendered from the global
/// registry (empty when recording is off or nothing was recorded).
pub fn summary() -> String {
    if !xbar_obs::global_enabled() {
        return String::new();
    }
    let snap = xbar_obs::global().snapshot();
    let mut s = String::new();
    let hits = snap.counter("cache.hits").unwrap_or(0);
    let misses = snap.counter("cache.misses").unwrap_or(0);
    if hits + misses > 0 {
        let pct = 100.0 * hits as f64 / (hits + misses) as f64;
        let _ = writeln!(
            s,
            "cache: {hits} hits / {misses} misses ({pct:.1}% hit rate), {} evictions",
            snap.counter("cache.evictions").unwrap_or(0),
        );
    }
    let re_anchors = snap.counter("admission.reanchor.count").unwrap_or(0);
    let snap_backs = snap.counter("admission.reanchor.snap_backs").unwrap_or(0);
    let re_anchor_failures = snap.counter("admission.reanchor.failures").unwrap_or(0);
    if re_anchors + snap_backs + re_anchor_failures > 0 {
        let _ = writeln!(
            s,
            "admission re-anchors: {re_anchors} ({re_anchor_failures} failed), \
             {snap_backs} non-finite snap-backs",
        );
    }
    for (name, h) in &snap.histograms {
        if let Some(stage) = name.strip_prefix("span.") {
            let _ = writeln!(
                s,
                "stage {stage}: {} run(s), {:.3} s wall",
                h.count,
                h.sum / 1e9,
            );
        }
    }
    s
}

/// Print the metrics summary and, when `XBAR_METRICS` names a path, write
/// the JSON snapshot there. No-op when recording is off.
pub fn finish() {
    if !xbar_obs::global_enabled() {
        return;
    }
    let s = summary();
    if !s.is_empty() {
        println!("--- metrics ---");
        print!("{s}");
    }
    if let Some(path) = std::env::var_os("XBAR_METRICS") {
        let path = std::path::PathBuf::from(path);
        let json = xbar_obs::global().snapshot().to_json();
        match std::fs::write(&path, json) {
            Ok(()) => println!("metrics snapshot written to {}", path.display()),
            Err(e) => eprintln!("cannot write metrics snapshot to {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    #[test]
    fn summary_reports_cache_and_stages_from_scoped_runs() {
        // Use a scoped registry and render it through the same code path
        // summary() uses (the global registry is shared across parallel
        // tests, so asserting on it would race).
        let reg = Arc::new(xbar_obs::Registry::new());
        {
            let _g = xbar_obs::scope(&reg);
            let rows = crate::fig1::rows();
            assert!(!rows.is_empty());
        }
        let snap = reg.snapshot();
        // fig1 goes through the sweep solver: every cell is either a base-ray
        // reuse (the β̃ = 0 column) or an O(N) recombination — never a full
        // re-solve.
        let reuse = snap.counter("sweep.reuse").unwrap_or(0);
        let recombine = snap.counter("sweep.recombine").unwrap_or(0);
        assert_eq!(
            reuse + recombine,
            (crate::fig1::BETA_TILDES.len() * crate::fig1::MAX_N as usize) as u64
        );
        assert_eq!(reuse, crate::fig1::MAX_N as u64, "β̃ = 0 reuses the base");
        assert_eq!(snap.counter("solver.solve"), None, "no full solves");
        // The stage spans recorded: one rows() call, one solve stage.
        let rows_span = snap.histogram("span.fig1.rows").expect("rows span");
        assert_eq!(rows_span.count, 1);
        let solve_span = snap
            .histogram("span.fig1.rows/solve")
            .expect("nested solve span");
        assert_eq!(solve_span.count, 1);
        assert!(rows_span.max >= solve_span.max);
    }
}

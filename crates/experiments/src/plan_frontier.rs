//! **Validation L (ours)** — capacity planning over a design space.
//!
//! The paper computes revenue and its §4 sensitivities for *one* switch;
//! this experiment turns the analysis around and asks the dimensioning
//! question: over candidate geometries × a grid of smooth-class offered
//! loads, which design maximises weighted revenue while keeping the
//! bursty class's call blocking under its SLO?
//!
//! Two artefacts flow through the golden-CSV pipeline:
//!
//! * `plan_frontier.csv` — the Pareto frontier (revenue vs worst SLO'd
//!   blocking), richest row first, optimum flagged;
//! * `plan_contour.csv` — every evaluated cell of the exhaustive search,
//!   in canonical grid order, for contour plots of `W` over the space.
//!
//! Every cell is an analytic product-form solve, so both files are
//! deterministic at any thread count — the golden test holds them to
//! byte identity.

use xbar_core::{Dims, Model};
use xbar_plan::{
    contour, frontier, plan, ContourRow, DesignSpace, FrontierRow, PlanConfig, PlanReport, RhoAxis,
    Slo, Strategy, OFF_GRID,
};
use xbar_traffic::{TrafficClass, Workload};

use crate::Table;

/// The demo design space: 6×6 vs 8×8, smooth-class load from
/// [`RHO_LO`] to [`RHO_HI`] in [`RHO_STEPS`] steps, bursty-class call
/// blocking capped at [`SLO_MAX_BLOCKING`].
pub fn space() -> DesignSpace {
    let w = Workload::new()
        .with(TrafficClass::poisson(0.02))
        .with(TrafficClass::bpp(0.008, 0.004, 1.0).with_weight(2.0));
    DesignSpace::new(Model::new(Dims::square(8), w).expect("valid model"))
        .with_geometry(Dims::square(6))
        .with_geometry(Dims::square(8))
        .with_axis(RhoAxis {
            class: 0,
            lo: RHO_LO,
            hi: RHO_HI,
            steps: RHO_STEPS,
        })
        .with_slo(Slo {
            class: 1,
            max_blocking: SLO_MAX_BLOCKING,
        })
}

/// Smooth-class per-pair offered load, low end.
pub const RHO_LO: f64 = 0.002;
/// Smooth-class per-pair offered load, high end.
pub const RHO_HI: f64 = 0.08;
/// Grid steps along the load axis.
pub const RHO_STEPS: usize = 7;
/// Bursty-class call-blocking SLO.
pub const SLO_MAX_BLOCKING: f64 = 0.40;

/// Run the exhaustive search (unpruned, fleet-warmed over the worker
/// pool: the contour wants *every* cell, and the crate's proptests pin
/// the warmed path bit-identical to the serial one).
pub fn run() -> PlanReport {
    plan(
        &space(),
        &PlanConfig {
            strategy: Strategy::Exhaustive {
                prune: false,
                batch: true,
            },
            ..PlanConfig::default()
        },
    )
    .expect("demo space is feasible")
}

fn index_cell(index: u64) -> String {
    if index == OFF_GRID {
        "-".to_string()
    } else {
        index.to_string()
    }
}

fn rho_cell(rho: &[f64]) -> String {
    rho.iter()
        .map(|x| format!("{x:.6}"))
        .collect::<Vec<_>>()
        .join(";")
}

/// The Pareto frontier as a table.
pub fn frontier_table(rows: &[FrontierRow]) -> Table {
    let mut t = Table::new([
        "index",
        "n1",
        "n2",
        "rho",
        "objective",
        "worst_blocking",
        "optimal",
    ]);
    for r in rows {
        t.push([
            index_cell(r.index),
            r.n1.to_string(),
            r.n2.to_string(),
            rho_cell(&r.rho),
            format!("{:.9}", r.objective),
            format!("{:.9}", r.worst_blocking),
            r.optimal.to_string(),
        ]);
    }
    t
}

/// Every evaluated cell as a table.
pub fn contour_table(rows: &[ContourRow]) -> Table {
    let mut t = Table::new([
        "index",
        "n1",
        "n2",
        "rho",
        "objective",
        "worst_blocking",
        "feasible",
    ]);
    for r in rows {
        t.push([
            index_cell(r.index),
            r.n1.to_string(),
            r.n2.to_string(),
            rho_cell(&r.rho),
            format!("{:.9}", r.objective),
            format!("{:.9}", r.worst_blocking),
            r.feasible.to_string(),
        ]);
    }
    t
}

/// Frontier rows for [`run`]'s report.
pub fn frontier_rows(report: &PlanReport) -> Vec<FrontierRow> {
    frontier(&space(), report)
}

/// Contour rows for [`run`]'s report.
pub fn contour_rows(report: &PlanReport) -> Vec<ContourRow> {
    contour(&space(), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contour_covers_the_full_grid_and_frontier_flags_one_optimum() {
        let report = run();
        let c = contour_rows(&report);
        // Unpruned exhaustive: 2 geometries × 7 load steps.
        assert_eq!(c.len(), 2 * RHO_STEPS);
        let f = frontier_rows(&report);
        assert!(!f.is_empty());
        assert_eq!(f.iter().filter(|r| r.optimal).count(), 1);
        // The optimum heads the frontier.
        assert!(f[0].optimal);
        assert!((f[0].objective - report.optimum.objective).abs() < 1e-15);
    }

    #[test]
    fn tables_round_trip_row_counts() {
        let report = run();
        let f = frontier_rows(&report);
        let c = contour_rows(&report);
        assert_eq!(frontier_table(&f).len(), f.len());
        assert_eq!(contour_table(&c).len(), c.len());
        // Cells must stay comma-free for the CSV pipeline (the ρ vector
        // is ;-joined).
        assert!(!frontier_table(&f).to_csv().lines().any(|l| l.is_empty()));
    }
}

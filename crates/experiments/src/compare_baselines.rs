//! **Validation C (ours)** — the asynchronous crossbar against the two
//! architectures the paper's introduction positions it between:
//!
//! * the **synchronous slotted crossbar** (the ATM-style model of §2's
//!   contrast, Patel's analysis), and
//! * the **Omega multistage interconnection network** (the `O(N log N)`
//!   alternative whose internal blocking motivates optical crossbars).
//!
//! Load matching: each point fixes the per-input offered load `u` Erlangs
//! (`u = N·λ/μ` for the asynchronous models, request probability `p = u`
//! per slot for the slotted one) and compares request-acceptance
//! probabilities. The asynchronous and slotted disciplines are different
//! queueing objects, so only the qualitative ordering is meaningful:
//! crossbars (async or slotted) beat the Omega MIN, whose internal links
//! add blocking the crossbar doesn't have.

use xbar_baselines::omega::{OmegaConfig, OmegaSim};
use xbar_baselines::slotted::{slotted_acceptance, SlottedCrossbarSim};
use xbar_core::{solve, Algorithm, Dims, Model};
use xbar_sim::ServiceDist;
use xbar_traffic::{TrafficClass, Workload};

use crate::{par_map, Table};

/// Per-input offered loads compared.
pub const LOADS: [f64; 4] = [0.1, 0.3, 0.5, 0.7];

/// Switch size (power of two for the Omega network).
pub const N: u32 = 16;

/// One comparison row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Per-input offered load `u`.
    pub load: f64,
    /// Async crossbar blocking (analytic, exact).
    pub xbar_analytic: f64,
    /// Slotted crossbar per-request loss (closed form).
    pub slotted_formula: f64,
    /// Slotted crossbar per-request loss (simulated).
    pub slotted_sim: f64,
    /// Omega MIN blocking (simulated).
    pub omega_sim: f64,
    /// End-port-only blocking inside the same Omega run — what a crossbar
    /// would have rejected from the identical call sequence.
    pub omega_crossbar_part: f64,
}

/// Compute one row at per-input load `u`.
pub fn row(u: f64, seed: u64) -> Row {
    // Asynchronous crossbar, analytic: per-pair rate λ = u·μ/N, μ = 1.
    let lambda = u / N as f64;
    let model = Model::new(
        Dims::square(N),
        Workload::new().with(TrafficClass::poisson(lambda)),
    )
    .unwrap();
    let xbar_analytic = solve(&model, Algorithm::Auto).unwrap().blocking(0);

    let slotted_formula = 1.0 - slotted_acceptance(N, N, u);
    let slotted_sim = {
        let mut sim = SlottedCrossbarSim::new(N, N, u, seed);
        1.0 - sim.run(300_000).acceptance
    };

    let stages = (N as f64).log2() as u32;
    let omega = OmegaSim::new(
        OmegaConfig {
            stages,
            lambda,
            service: ServiceDist::Exponential { mean: 1.0 },
        },
        seed,
    )
    .run(500.0, 30_000.0, 10);

    Row {
        load: u,
        xbar_analytic,
        slotted_formula,
        slotted_sim,
        omega_sim: omega.blocking.mean,
        omega_crossbar_part: omega.crossbar_blocking.mean,
    }
}

/// All rows.
pub fn rows(seed: u64) -> Vec<Row> {
    par_map(LOADS.to_vec(), move |u| row(u, seed))
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "load",
        "xbar_async",
        "slotted_formula",
        "slotted_sim",
        "omega_sim",
        "omega_endport_part",
    ]);
    for r in rows {
        t.push([
            format!("{:.2}", r.load),
            format!("{:.5}", r.xbar_analytic),
            format!("{:.5}", r.slotted_formula),
            format!("{:.5}", r.slotted_sim),
            format!("{:.5}", r.omega_sim),
            format!("{:.5}", r.omega_crossbar_part),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_pays_an_internal_blocking_penalty() {
        for r in rows(5) {
            assert!(
                r.omega_sim > r.omega_crossbar_part,
                "load {}: omega {} !> end-port part {}",
                r.load,
                r.omega_sim,
                r.omega_crossbar_part
            );
        }
    }

    #[test]
    fn blocking_monotone_in_load_for_every_architecture() {
        let rows = rows(6);
        for pair in rows.windows(2) {
            assert!(pair[1].xbar_analytic >= pair[0].xbar_analytic);
            assert!(pair[1].slotted_formula >= pair[0].slotted_formula);
            assert!(pair[1].omega_sim >= pair[0].omega_sim - 0.01);
        }
    }

    #[test]
    fn slotted_simulation_matches_its_closed_form() {
        for r in rows(7) {
            assert!(
                (r.slotted_sim - r.slotted_formula).abs() < 0.01,
                "load {}: {} vs {}",
                r.load,
                r.slotted_sim,
                r.slotted_formula
            );
        }
    }
}

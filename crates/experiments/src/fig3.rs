//! **Figure 3** — two traffic classes (`R1 = 1` Poisson + `R2 = 1` bursty)
//! compared with the bursty class alone (`R1 = 0, R2 = 1`), `a = 1`.
//!
//! The paper's observations to reproduce (§7):
//!
//! 1. adding the Poisson class "simply shifts the operating point of the
//!    crossbar" (same curve shape, higher level);
//! 2. a given `β̃` causes *the same percentage change* in blocking
//!    regardless of the operating point.
//!
//! Parameters: `α̃1 = α̃2 = .0012` for the mixed case (total `.0024`,
//! matching Figures 1–2) vs. the single class at `α̃ = .0012`;
//! `β̃2 ∈ {0, 6e−4, 1.2e−3}` (the Table 2 magnitudes).

use xbar_core::{solve, Algorithm, Dims, Model, SweepSolver};
use xbar_traffic::{TildeClass, Workload};

use crate::Table;

/// Per-class aggregated load (`α̃1 = α̃2`).
pub const ALPHA_TILDE: f64 = 0.0012;

/// Bursty-class `β̃` grid.
pub const BETA_TILDES: [f64; 3] = [0.0, 6.0e-4, 1.2e-3];

/// Largest switch size plotted.
pub const MAX_N: u32 = 128;

/// One point of the figure.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// `true` for the mixed (`R1 = 1, R2 = 1`) case, `false` for the
    /// bursty class alone.
    pub mixed: bool,
    /// Bursty-class `β̃`.
    pub beta_tilde: f64,
    /// Square switch size.
    pub n: u32,
    /// Blocking probability (identical across classes here since every
    /// class has `a = 1`).
    pub blocking: f64,
}

/// The model for one cell.
pub fn model_at(mixed: bool, n: u32, beta_tilde: f64) -> Model {
    let mut tilde = vec![TildeClass::bpp(ALPHA_TILDE, beta_tilde, 1.0)];
    if mixed {
        tilde.push(TildeClass::poisson(ALPHA_TILDE));
    }
    Model::new(Dims::square(n), Workload::from_tilde(&tilde, n)).expect("valid Fig 3 model")
}

/// Blocking for one cell.
pub fn blocking_at(mixed: bool, n: u32, beta_tilde: f64) -> f64 {
    solve(&model_at(mixed, n, beta_tilde), Algorithm::Auto)
        .expect("solvable")
        .blocking(0)
}

/// All points. The three `β̃` curves of each case differ only in class
/// 0's burstiness, so every `(case, N)` pair is one [`SweepSolver`]
/// precompute plus three `O(N)` recombinations; the `(case, N)` grid
/// fans out over [`crate::par_map`].
pub fn rows() -> Vec<Row> {
    xbar_obs::time("fig3.rows", || {
        let cells: Vec<(bool, u32)> = [false, true]
            .iter()
            .flat_map(|&mixed| (1..=MAX_N).map(move |n| (mixed, n)))
            .collect();
        let per_cell: Vec<Vec<f64>> = xbar_obs::time("solve", || {
            crate::par_map(cells.clone(), |(mixed, n)| {
                let sweep =
                    SweepSolver::new(&model_at(mixed, n, 0.0), Algorithm::Auto).expect("solvable");
                BETA_TILDES
                    .iter()
                    .map(|&b| {
                        let class = model_at(mixed, n, b).workload().classes()[0].clone();
                        sweep
                            .solve_with_class(0, class)
                            .expect("solvable")
                            .blocking(0)
                    })
                    .collect()
            })
        });
        let mut rows = Vec::new();
        for (ci, &mixed) in [false, true].iter().enumerate() {
            for (bi, &beta_tilde) in BETA_TILDES.iter().enumerate() {
                for n in 1..=MAX_N {
                    let cell = ci * MAX_N as usize + (n - 1) as usize;
                    debug_assert_eq!(cells[cell], (mixed, n));
                    rows.push(Row {
                        mixed,
                        beta_tilde,
                        n,
                        blocking: per_cell[cell][bi],
                    });
                }
            }
        }
        rows
    })
}

/// Render rows as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["case", "beta_tilde", "N", "blocking"]);
    for r in rows {
        t.push([
            if r.mixed { "R1+R2" } else { "R2-only" }.to_string(),
            format!("{}", r.beta_tilde),
            r.n.to_string(),
            format!("{:.8}", r.blocking),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_class_shifts_the_operating_point_up() {
        for &n in &[2u32, 8, 32, 128] {
            for &b in &BETA_TILDES {
                let single = blocking_at(false, n, b);
                let mixed = blocking_at(true, n, b);
                assert!(mixed > single, "N={n} beta={b}: {mixed} !> {single}");
            }
        }
    }

    #[test]
    fn beta_causes_the_same_absolute_change_at_both_operating_points() {
        // §7: "the amount of β̃ … causes the same percentage change in
        // blocking probability regardless of operating point". What holds
        // in the model is first-order independence of the *change itself*
        // from the operating point: adding the Poisson class roughly
        // doubles the blocking level but leaves the β̃-induced increment
        // nearly unchanged (so the percentage-point change is the same,
        // while the relative change halves).
        for &n in &[16u32, 64, 128] {
            let delta = |mixed: bool| blocking_at(mixed, n, 1.2e-3) - blocking_at(mixed, n, 0.0);
            let (ds, dm) = (delta(false), delta(true));
            assert!(
                (ds - dm).abs() <= 0.20 * ds.abs().max(dm.abs()),
                "N={n}: single {ds} vs mixed {dm}"
            );
        }
    }

    #[test]
    fn mixed_case_matches_fig1_total_load() {
        // α̃1 + α̃2 = .0024: with β̃ = 0 the mixed case must equal Fig 1's
        // Poisson curve exactly (two Poisson classes merge).
        for &n in &[4u32, 32, 128] {
            let here = blocking_at(true, n, 0.0);
            let fig1 = crate::fig1::blocking_at(n, 0.0);
            assert!((here - fig1).abs() < 1e-12, "N={n}: {here} vs {fig1}");
        }
    }

    #[test]
    fn rows_cover_grid() {
        let rows = rows();
        assert_eq!(rows.len(), 2 * BETA_TILDES.len() * MAX_N as usize);
        assert_eq!(table(&rows).len(), rows.len());
    }
}

//! **Validation F (ours)** — transient behaviour: how fast a cold switch
//! reaches the paper's stationary operating point, and what availability
//! looks like on the way (uniformisation on the enumerated chain; beyond
//! the paper's stationary-only analysis).
//!
//! Also doubles as an independent check of the stationary solvers: the
//! `t → ∞` row of every scenario must equal the product-form value.

use xbar_core::transient::Transient;
use xbar_core::{solve, Algorithm, Dims, Model};
use xbar_traffic::{TrafficClass, Workload};

use crate::{par_map, Table};

/// The time grid (in mean holding times).
pub const TIMES: [f64; 6] = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0];

/// One scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Label.
    pub label: &'static str,
    /// Switch size.
    pub n: u32,
    /// Traffic class.
    pub class: TrafficClass,
}

/// Scenarios: light vs heavy, Poisson vs peaky.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            label: "light-poisson",
            n: 6,
            class: TrafficClass::poisson(0.02),
        },
        Scenario {
            label: "heavy-poisson",
            n: 6,
            class: TrafficClass::poisson(0.3),
        },
        Scenario {
            label: "peaky-Z2",
            n: 6,
            class: TrafficClass::bpp(0.05, 0.5, 1.0),
        },
    ]
}

/// One row: availability trajectory plus relaxation time.
#[derive(Clone, Debug)]
pub struct Row {
    /// Scenario label.
    pub label: &'static str,
    /// `B_r(t)` at each grid time.
    pub availability: Vec<f64>,
    /// Stationary `B_r`.
    pub stationary: f64,
    /// Time to within `1e-4` (L1) of stationarity.
    pub relaxation: f64,
}

/// Compute all rows.
pub fn rows() -> Vec<Row> {
    par_map(scenarios(), |sc| {
        let model = Model::new(Dims::square(sc.n), Workload::new().with(sc.class.clone()))
            .expect("valid scenario");
        let tr = Transient::new(&model);
        let availability = TIMES.iter().map(|&t| tr.availability_at(t, 0)).collect();
        let stationary = solve(&model, Algorithm::Auto).unwrap().nonblocking(0);
        Row {
            label: sc.label,
            availability,
            stationary,
            relaxation: tr.relaxation_time(1e-4),
        }
    })
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut headers = vec!["scenario".to_string()];
    headers.extend(TIMES.iter().map(|t| format!("B(t={t})")));
    headers.push("B(inf)".into());
    headers.push("t_relax".into());
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.label.to_string()];
        cells.extend(r.availability.iter().map(|b| format!("{b:.5}")));
        cells.push(format!("{:.5}", r.stationary));
        cells.push(format!("{:.2}", r.relaxation));
        t.push(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_decays_monotonically_to_stationary() {
        for r in rows() {
            for pair in r.availability.windows(2) {
                assert!(
                    pair[1] <= pair[0] + 1e-9,
                    "{}: {:?} not monotone",
                    r.label,
                    r.availability
                );
            }
            let last = *r.availability.last().unwrap();
            assert!(
                (last - r.stationary).abs() < 1e-3,
                "{}: B(30) = {last} vs stationary {}",
                r.label,
                r.stationary
            );
        }
    }

    #[test]
    fn heavier_load_relaxes_no_slower_than_a_few_holding_times() {
        for r in rows() {
            assert!(
                r.relaxation > 0.05 && r.relaxation < 100.0,
                "{}: relaxation {}",
                r.label,
                r.relaxation
            );
        }
    }

    #[test]
    fn relaxation_ordering_measured() {
        // Measured: heavy Poisson (3.5 holding times) relaxes fastest —
        // more event pressure mixes the chain quicker; the peaky class
        // (6.2) is slower than heavy Poisson despite similar event rates,
        // because the β·k feedback sustains correlations; light Poisson
        // (7.4) is slowest — its empty-ish chain moves rarely.
        let rows = rows();
        let get = |l: &str| rows.iter().find(|r| r.label == l).unwrap().relaxation;
        let light = get("light-poisson");
        let heavy = get("heavy-poisson");
        let peaky = get("peaky-Z2");
        assert!(heavy < peaky, "heavy {heavy} !< peaky {peaky}");
        assert!(peaky < light, "peaky {peaky} !< light {light}");
    }
}

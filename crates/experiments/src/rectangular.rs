//! **Validation E (ours)** — rectangular switches. The paper's model is
//! `N1 × N2` but its entire evaluation is square; this experiment maps
//! blocking over aspect ratio at a fixed budget of `N1 + N2` total ports —
//! the question a switch designer with a fixed pin budget actually asks.
//!
//! Per-set rates are held fixed (each (input-set, output-set) pair offers
//! the same load regardless of shape), so the comparison isolates the
//! geometry.

use xbar_core::{solve, Algorithm, Dims, Model, SweepSolver};
use xbar_traffic::{TrafficClass, Workload};

use crate::Table;

/// Total port budget `N1 + N2`.
pub const PORT_BUDGET: u32 = 64;

/// Per-pair offered load.
pub const RHO: f64 = 0.004;

/// One row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Inputs.
    pub n1: u32,
    /// Outputs (`PORT_BUDGET − n1`).
    pub n2: u32,
    /// Blocking probability.
    pub blocking: f64,
    /// Carried load (total throughput).
    pub throughput: f64,
}

/// The model for one aspect ratio.
pub fn model_for(n1: u32) -> Model {
    let n2 = PORT_BUDGET - n1;
    Model::new(
        Dims::new(n1, n2),
        Workload::new().with(TrafficClass::poisson(RHO)),
    )
    .expect("valid model")
}

/// Compute one row.
pub fn row(n1: u32) -> Row {
    let sol = solve(&model_for(n1), Algorithm::Auto).expect("solvable");
    Row {
        n1,
        n2: PORT_BUDGET - n1,
        blocking: sol.blocking(0),
        throughput: sol.total_throughput(),
    }
}

/// All rows (`N1` from 2 to budget−2). Every aspect ratio is its own
/// geometry, so each is a one-shot [`SweepSolver`] ray build (`O(C)`
/// state instead of a full lattice) read through
/// [`SweepSolver::solve_base`]; ratios fan out over [`crate::par_map`].
pub fn rows() -> Vec<Row> {
    xbar_obs::time("rectangular.rows", || {
        let n1s: Vec<u32> = (2..=PORT_BUDGET - 2).collect();
        xbar_obs::time("solve", || {
            crate::par_map(n1s, |n1| {
                let sol = SweepSolver::new(&model_for(n1), Algorithm::Auto)
                    .and_then(|s| s.solve_base())
                    .expect("solvable");
                Row {
                    n1,
                    n2: PORT_BUDGET - n1,
                    blocking: sol.blocking(0),
                    throughput: sol.total_throughput(),
                }
            })
        })
    })
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["N1", "N2", "blocking", "throughput"]);
    for r in rows {
        t.push([
            r.n1.to_string(),
            r.n2.to_string(),
            format!("{:.6}", r.blocking),
            format!("{:.4}", r.throughput),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_symmetry() {
        for n1 in [2u32, 10, 20, 31] {
            let a = row(n1);
            let b = row(PORT_BUDGET - n1);
            assert!((a.blocking - b.blocking).abs() < 1e-12);
            assert!((a.throughput - b.throughput).abs() < 1e-10);
        }
    }

    #[test]
    fn square_carries_the_most_traffic_at_fixed_budget() {
        // At fixed per-pair load the square shape maximises both the
        // number of pairs (N1·N2) and the carried load.
        let rows = rows();
        let square = rows.iter().find(|r| r.n1 == PORT_BUDGET / 2).unwrap();
        for r in &rows {
            assert!(
                r.throughput <= square.throughput + 1e-9,
                "{}x{} carries {} > square {}",
                r.n1,
                r.n2,
                r.throughput,
                square.throughput
            );
        }
    }

    #[test]
    fn square_also_blocks_least_at_fixed_budget() {
        // Measured shape: blocking is nearly flat in aspect ratio
        // (0.1932 at 32×32 → 0.2008 at 2×62 for these parameters) with
        // the square as the minimum: the skinny switch funnels many
        // pair-streams through few inputs, so its inputs saturate first.
        let skinny = row(2);
        let square = row(PORT_BUDGET / 2);
        assert!(
            skinny.blocking > square.blocking,
            "{} !> {}",
            skinny.blocking,
            square.blocking
        );
        // And it carries almost nothing.
        assert!(skinny.throughput < 0.25 * square.throughput);
        // The whole sweep stays within a narrow band.
        for r in rows() {
            assert!(r.blocking >= square.blocking - 1e-12);
            assert!(r.blocking < 1.1 * square.blocking);
        }
    }
}

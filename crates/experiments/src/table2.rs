//! **Table 2** — revenue-oriented analysis of two classes (Poisson class 1
//! worth `w1 = 1.0` per connection, bursty class 2 worth `w2 = .0001`),
//! across three parameter sets and `N ∈ {1, 2, 4, …, 256}`.
//!
//! Columns: the closed-form `∂W/∂ρ1` (paper §4), the exact analytic
//! `∂W/∂(β2/μ2)` (the paper used a numerical approximation; we
//! differentiate the product form itself, with respect to the *per-set*
//! `β2/μ2` — the convention that reproduces the printed magnitudes), the
//! class blocking probability, and the revenue `W`.
//!
//! The paper's printed values ride along in every row so the harness
//! reports `ours`, `paper`, and the delta. The `β`-insensitive entries
//! (all of `N ∈ {1, 2}` except the β-gradient, and the small-`N` `W` and
//! `∂W/∂ρ1` columns) agree digit-for-digit; the bursty-blocking entries at
//! larger `N` do not, because the printed table is not consistent with the
//! paper's stated model — see DESIGN.md ("Table 2 blocking column") for the
//! forensics. One symptom reproduced in the tests here: at `N = 2` the
//! paper prints a *positive* `∂W/∂(β2/μ2)` equal to `w2·∂E2/∂x` alone,
//! which is what the derivative degenerates to if `G` carries no
//! `β`-dependence at `N = 2` — in the stated model `G` does depend on `β`
//! there, making the true gradient negative.

use xbar_core::{solve, Algorithm, Dims, Model, Solution, SweepSolver};
use xbar_traffic::{TrafficClass, Workload};

use crate::{par_map, Table};

/// One of the paper's three parameter sets (tilde/aggregated units).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParamSet {
    /// Human label ("set1"…).
    pub label: &'static str,
    /// `ρ̃1` (Poisson class).
    pub rho1_tilde: f64,
    /// `ρ̃2` (bursty class).
    pub rho2_tilde: f64,
    /// `β̃2`.
    pub beta2_tilde: f64,
}

/// The three parameter sets of Table 2 (`w1 = 1.0`, `w2 = .0001` always).
pub const SETS: [ParamSet; 3] = [
    ParamSet {
        label: "set1",
        rho1_tilde: 0.0012,
        rho2_tilde: 0.0012,
        beta2_tilde: 0.0012,
    },
    ParamSet {
        label: "set2",
        rho1_tilde: 0.0012,
        rho2_tilde: 0.0012,
        beta2_tilde: 0.0036,
    },
    ParamSet {
        label: "set3",
        rho1_tilde: 0.0012,
        rho2_tilde: 0.0036,
        beta2_tilde: 0.0012,
    },
];

/// Revenue weights.
pub const W1: f64 = 1.0;
/// Revenue weight of the bursty class.
pub const W2: f64 = 0.0001;

/// The switch sizes of the table.
pub const NS: [u32; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Printed values `(grad_rho1, grad_beta2, blocking, revenue)` per set and
/// `N` (grad_beta2 is `None` where the paper prints "−").
pub fn paper_row(set: &'static str, n: u32) -> (f64, Option<f64>, f64, f64) {
    let table: &[(u32, f64, Option<f64>, f64, f64)] = match set {
        "set1" => &[
            (1, 0.99, None, 0.00239425, 0.00119725),
            (2, 3.97, Some(2.38871e-07), 0.00358566, 0.00239163),
            (4, 15.89, Some(-2.12995e-05), 0.00418083, 0.00478041),
            (8, 63.57, Some(-0.000370081), 0.0044820, 0.00955794),
            (16, 254.22, Some(-0.00402453), 0.00464093, 0.0191128),
            (32, 1016.76, Some(-0.0369292), 0.00473733, 0.0382221),
            (64, 4066.62, Some(-0.313413), 0.0048195, 0.0764381),
            (128, 16264.50, Some(-2.53805), 0.00492849, 0.152861),
            (256, 65045.30, Some(-19.3138), 0.00511868, 0.305671),
        ],
        "set2" => &[
            (1, 0.99, None, 0.00239425, 0.00119725),
            (2, 3.97, Some(2.38871e-07), 0.00358566, 0.00239163),
            (4, 15.89, Some(-2.12788e-05), 0.00418403, 0.0047804),
            (8, 63.56, Some(-0.00036904), 0.00449504, 0.00955782),
            (16, 254.21, Some(-0.00399684), 0.00467581, 0.0191122),
            (32, 1016.68, Some(-0.0363166), 0.00481708, 0.0382193),
            (64, 4065.93, Some(-0.299452), 0.00498953, 0.0764266),
            (128, 16258.80, Some(-2.09857), 0.00527912, 0.152817),
            (256, 64998.30, Some(-68.6054), 0.00582948, 0.305646),
        ],
        "set3" => &[
            (1, 0.99, None, 0.00477707, 0.00119463),
            (2, 3.96, Some(7.13145e-07), 0.00714287, 0.00238357),
            (4, 15.83, Some(-6.30503e-05), 0.0083221, 0.00476149),
            (8, 63.28, Some(-0.00109351), 0.0089218, 0.00951723),
            (16, 253.05, Some(-0.0118788), 0.00924611, 0.0190283),
            (32, 1011.95, Some(-0.108917), 0.00945823, 0.0380486),
            (64, 4046.89, Some(-0.923616), 0.0096644, 0.0760824),
            (128, 16182.50, Some(-7.47015), 0.0099675, 0.152123),
            (256, 64693.50, Some(-56.7188), 0.010518, 0.304099),
        ],
        other => panic!("unknown set {other}"),
    };
    let row = table.iter().find(|r| r.0 == n).expect("known N");
    (row.1, row.2, row.3, row.4)
}

/// One computed row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Which parameter set.
    pub set: &'static str,
    /// Switch size.
    pub n: u32,
    /// Closed-form `∂W/∂ρ1`.
    pub grad_rho1: f64,
    /// Exact analytic `∂W/∂(β2/μ2)` (per-set `x`).
    pub grad_beta2: f64,
    /// Class blocking probability `1 − B_r` (equal for both classes here).
    pub blocking: f64,
    /// Revenue `W`.
    pub revenue: f64,
}

/// Build the model for one cell.
pub fn model_cell(set: ParamSet, n: u32) -> Model {
    let nf = n as f64;
    let workload = Workload::new()
        .with(TrafficClass::poisson(set.rho1_tilde / nf).with_weight(W1))
        .with(TrafficClass::bpp(set.rho2_tilde / nf, set.beta2_tilde / nf, 1.0).with_weight(W2));
    Model::new(Dims::square(n), workload).expect("valid Table 2 model")
}

/// Build and solve the model for one cell (full lattice solve — kept as
/// the cross-check against the [`SweepSolver`] path used by [`row`]).
pub fn solve_cell(set: ParamSet, n: u32) -> Solution {
    solve(&model_cell(set, n), Algorithm::Alg1Ext).expect("solvable")
}

/// Compute one row: one [`SweepSolver`] ray build serves the blocking,
/// revenue, and closed-form `∂W/∂ρ1` columns through the cached base
/// ray, and the `∂W/∂(β2/μ2)` column comes from the exact analytic
/// gradient ([`SweepSolver::gradients`]) instead of the old
/// forward-difference re-solve.
pub fn row(set: ParamSet, n: u32) -> Row {
    let sweep = SweepSolver::new(&model_cell(set, n), Algorithm::Alg1Ext).expect("solvable");
    let sol = sweep.solve_base().expect("solvable");
    Row {
        set: set.label,
        n,
        grad_rho1: sol.revenue_gradient_rho(0),
        grad_beta2: sweep.gradients(1).revenue_by_beta,
        blocking: sol.blocking(0),
        revenue: sol.revenue(),
    }
}

/// All rows for all three sets.
pub fn rows() -> Vec<Row> {
    let cells: Vec<(ParamSet, u32)> = SETS.iter().flat_map(|&s| NS.map(move |n| (s, n))).collect();
    par_map(cells, |(s, n)| row(s, n))
}

/// Render including the paper's printed values and deltas.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "set",
        "N",
        "dW/drho1",
        "dW/drho1(paper)",
        "dW/d(b2/u2)",
        "dW/d(b2/u2)(paper)",
        "blocking",
        "blocking(paper)",
        "W",
        "W(paper)",
    ]);
    for r in rows {
        let (pg, pb, pblk, pw) = paper_row(r.set, r.n);
        t.push([
            r.set.to_string(),
            r.n.to_string(),
            format!("{:.2}", r.grad_rho1),
            format!("{pg:.2}"),
            format!("{:.6e}", r.grad_beta2),
            pb.map_or_else(|| "-".to_string(), |v| format!("{v:.6e}")),
            format!("{:.8}", r.blocking),
            format!("{pblk:.8}"),
            format!("{:.6}", r.revenue),
            format!("{pw:.6}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-12)
    }

    #[test]
    fn small_n_anchors_are_digit_exact() {
        // N = 1 rows of all sets: β plays no role, everything matches the
        // printed digits.
        for &set in &SETS {
            let r = row(set, 1);
            let (pg, _, pblk, pw) = paper_row(set.label, 1);
            assert!(
                rel(r.revenue, pw) < 3e-5,
                "{}: W {} vs {pw}",
                set.label,
                r.revenue
            );
            assert!(
                (r.blocking - pblk).abs() < 1e-7,
                "{}: blocking {} vs {pblk}",
                set.label,
                r.blocking
            );
            // Gradient printed to 2 decimals (truncated).
            assert!((r.grad_rho1 - pg).abs() < 0.011, "{}", r.grad_rho1);
        }
    }

    #[test]
    fn revenue_tracks_paper_closely() {
        // W is dominated by the Poisson class, so it is nearly immune to
        // the paper's bursty-blocking inconsistency: ≤0.1% relative except
        // the strongly-bursty set2 at N = 256 (1.4%).
        for &set in &SETS {
            for &n in &[2u32, 8, 64, 256] {
                let r = row(set, n);
                let (_, _, _, pw) = paper_row(set.label, n);
                let bound = if set.label == "set2" && n == 256 {
                    1.5e-2
                } else {
                    2e-3
                };
                assert!(
                    rel(r.revenue, pw) < bound,
                    "{} N={n}: W {} vs paper {pw}",
                    set.label,
                    r.revenue
                );
            }
        }
    }

    #[test]
    fn blocking_tracks_paper_within_documented_bounds() {
        // See module docs/DESIGN.md: the printed blocking column is not
        // consistent with the stated model. The stated model is *more*
        // β-sensitive than whatever produced the printed values, so the
        // gap grows with N and with β̃: measured maxima are 13% (set1,
        // N=256), 232% (set2, N=256 — β̃ three times larger), 19% (set3).
        // Exact agreement holds wherever β is irrelevant (N = 1 rows).
        for &set in &SETS {
            let bound = match set.label {
                "set1" => 0.14,
                "set2" => 2.4,
                _ => 0.20,
            };
            for &n in &NS {
                let r = row(set, n);
                let (_, _, pblk, _) = paper_row(set.label, n);
                assert!(
                    rel(r.blocking, pblk) < bound,
                    "{} N={n}: blocking {} vs paper {pblk}",
                    set.label,
                    r.blocking
                );
                // And ours is always the (weakly) larger one: the stated
                // model takes the full β effect.
                assert!(r.blocking >= pblk - 1e-7, "{} N={n}", set.label);
            }
        }
    }

    #[test]
    fn rho_gradient_matches_paper_columns() {
        // ∂W/∂ρ1 is only weakly β-sensitive: sub-percent agreement (the
        // N = 2 entries are printed truncated to 2 decimals, hence 5e-3).
        for &set in &SETS {
            for &n in &[2u32, 8, 64] {
                let r = row(set, n);
                let (pg, _, _, _) = paper_row(set.label, n);
                assert!(
                    rel(r.grad_rho1, pg) < 5e-3,
                    "{} N={n}: {} vs {pg}",
                    set.label,
                    r.grad_rho1
                );
            }
        }
        // Largest deviation in the whole table: set2 at N = 256, 1.4%.
        let r = row(SETS[1], 256);
        let (pg, _, _, _) = paper_row("set2", 256);
        assert!(rel(r.grad_rho1, pg) < 2e-2, "{} vs {pg}", r.grad_rho1);
    }

    #[test]
    fn beta_gradient_turns_negative_and_grows_with_n() {
        let r4 = row(SETS[0], 4);
        let r64 = row(SETS[0], 64);
        let r256 = row(SETS[0], 256);
        assert!(r4.grad_beta2 < 0.0);
        assert!(r64.grad_beta2 < r4.grad_beta2);
        assert!(r256.grad_beta2 < r64.grad_beta2);
        // Same order of magnitude as the printed column at N = 64.
        let (_, pb, _, _) = paper_row("set1", 64);
        let pb = pb.unwrap();
        assert!(
            r64.grad_beta2 / pb > 0.3 && r64.grad_beta2 / pb < 3.0,
            "{} vs paper {pb}",
            r64.grad_beta2
        );
    }

    #[test]
    fn stated_model_beta_gradient_is_negative_even_at_n2() {
        // The paper prints +2.38871e-7 at N = 2 — exactly w2·∂E2/∂x with no
        // G-dependence on β. In the stated model the dominant term is the
        // revenue lost by class 1 as β2 raises blocking, so the gradient is
        // already negative at N = 2 (see module docs).
        let r = row(SETS[0], 2);
        assert!(r.grad_beta2 < 0.0, "{}", r.grad_beta2);
        // And the positive part the paper printed is recoverable: it is
        // smaller in magnitude than the total.
        assert!(r.grad_beta2.abs() > 2.38871e-07);
    }

    #[test]
    fn higher_burstiness_and_load_cost_revenue() {
        // Table 2's qualitative story at N = 128: set2 (peakier) and set3
        // (heavier class 2) both block more than set1 and earn less.
        let r1 = row(SETS[0], 128);
        let r2 = row(SETS[1], 128);
        let r3 = row(SETS[2], 128);
        assert!(r2.blocking > r1.blocking);
        assert!(r3.blocking > r1.blocking);
        assert!(r2.revenue < r1.revenue);
        assert!(r3.revenue < r1.revenue);
    }
}

#![warn(missing_docs)]

//! Reproduction harness for every table and figure in the paper's
//! evaluation (§7), plus three validation experiments of our own.
//!
//! Each module produces *typed rows* via a `rows()` function so the shape
//! claims of §7 are unit-testable, renders them as an aligned text table
//! (`print()`-style methods on [`Table`]) and as CSV. One CLI binary per
//! experiment regenerates the artefact:
//!
//! | paper artefact | module | binary |
//! |---|---|---|
//! | Figure 1 (smooth/Bernoulli vs Poisson) | [`fig1`] | `fig1` |
//! | Figure 2 (peaky/Pascal vs Poisson) | [`fig2`] | `fig2` |
//! | Figure 3 (mixed R1+R2 vs R2 only) | [`fig3`] | `fig3` |
//! | Figure 4 + Table 1 (multi-rate a=1 vs a=2) | [`fig4`] | `fig4`, `table1` |
//! | Table 2 (revenue analysis) | [`table2`] | `table2` |
//! | (ours) analytic vs simulation | [`validate_sim`] | `validate_sim` |
//! | (ours) insensitivity to service law | [`insensitivity`] | `insensitivity` |
//! | (ours) crossbar vs slotted vs Omega MIN | [`compare_baselines`] | `baselines` |
//! | (ours) exact vs reduced-load approximation | [`approximation`] | `approximation` |
//! | (ours) rectangular aspect-ratio sweep | [`rectangular`] | `rectangular` |
//! | (ours) transient warm-up / relaxation | [`transient_warmup`] | `transient` |
//! | (ours) retrial impact on loss | [`retrial_impact`] | `retrial` |
//! | (ours) multistage-network analysis (paper future work) | [`min_analysis`] | `min_analysis` |
//! | (ours) trunk-reservation revenue control | [`reservation`] | `reservation` |
//! | (ours) hot-spot output traffic (companion paper) | [`hotspot_sweep`] | `hotspot` |
//! | (ours) admission-control policy replay | [`replay`] | `replay` |
//! | (ours) capacity-planning frontier/contour | [`plan_frontier`] | `plan_frontier` |
//!
//! Run everything: `cargo run --release -p xbar-experiments --bin all`
//! (CSV lands in `out/`).

pub mod approximation;
pub mod compare_baselines;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod hotspot_sweep;
pub mod insensitivity;
pub mod metrics;
pub mod min_analysis;
pub mod plan_frontier;
pub mod rectangular;
pub mod replay;
pub mod reservation;
pub mod retrial_impact;
pub mod table;
pub mod table2;
pub mod transient_warmup;
pub mod validate_sim;

pub use table::Table;

use crossbeam::thread;

/// Parallel ordered map over owned items using crossbeam scoped threads —
/// the parameter sweeps (N × parameter-set × algorithm) are embarrassingly
/// parallel and dominate regeneration wall-clock.
///
/// The thread count follows [`xbar_core::parallel::effective_threads`]
/// (so the CLI's `--threads` and `XBAR_THREADS` apply here too), workers
/// drain the queue in small batches ([`SegQueue::pop_batch`]) to amortise
/// the shim's lock, and each item runs with the solver pinned to one
/// thread — with whole sweep points to hand out, across-item parallelism
/// dominates nested wavefront parallelism.
///
/// [`SegQueue::pop_batch`]: crossbeam::queue::SegQueue::pop_batch
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = xbar_core::parallel::effective_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let batch = (items.len() / (threads * 4)).clamp(1, 16);
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = crossbeam::queue::SegQueue::new();
    for w in work {
        queue.push(w);
    }
    let slot_refs: Vec<_> = slots.iter_mut().map(std::sync::Mutex::new).collect();
    // Re-install the caller's scoped obs registry (if any) in each worker
    // so instrumented solves/sims keep feeding the caller's metrics.
    let obs_scope = xbar_obs::current_scope();
    thread::scope(|s| {
        for _ in 0..threads {
            let obs_scope = obs_scope.clone();
            let queue = &queue;
            let slot_refs = &slot_refs;
            let f = &f;
            s.spawn(move |_| {
                let _obs = obs_scope.enter();
                loop {
                    let taken = queue.pop_batch(batch);
                    if taken.is_empty() {
                        break;
                    }
                    for (i, item) in taken {
                        let out = xbar_core::parallel::with_threads(1, || f(item));
                        **slot_refs[i].lock().unwrap() = Some(out);
                    }
                }
            });
        }
    })
    .expect("worker thread panicked");
    slots.into_iter().map(|s| s.expect("slot filled")).collect()
}

/// Write CSV content under `out/`, creating the directory. Returns the
/// path written.
pub fn write_csv(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("out");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..500).collect();
        let ys = par_map(xs.clone(), |x| x * x);
        assert_eq!(ys, xs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let ys: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(ys.is_empty());
        assert_eq!(par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_heavy_closure_environment() {
        let offset = 10i64;
        let ys = par_map((0..100).collect::<Vec<i64>>(), |x| x + offset);
        assert_eq!(ys[0], 10);
        assert_eq!(ys[99], 109);
    }
}

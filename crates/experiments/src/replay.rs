//! **Validation K (ours)** — online admission control under replay.
//!
//! Replays the same synthetic BPP event stream (fixed seed) through the
//! admission engine under each policy and tabulates the per-class
//! admit/deny split, the batch-means acceptance estimate, and the analytic
//! acceptance the complete-sharing run should reproduce. One table row per
//! (policy, class); the complete-sharing rows double as a statistical
//! regression (acceptance CI must cover the analytic value), and the
//! policy rows document how reservation redistributes denials from
//! capacity to policy.

use xbar_admission::{EngineConfig, PolicySpec};
use xbar_core::{Dims, Model};
use xbar_sim::{replay, ReplayConfig};
use xbar_traffic::{TrafficClass, Workload};

use crate::{par_map, Table};

/// Events per replay (small enough for CI, large enough for stable CIs).
pub const EVENTS: u64 = 120_000;

/// RNG seed shared by every policy run (same stream, different gate).
pub const SEED: u64 = 4242;

/// The replayed switch: rectangular 6×8, a valuable Poisson class and a
/// cheap peaky (Pascal) class — the mix where policies differ most.
pub fn model() -> Model {
    let w = Workload::new()
        .with(TrafficClass::poisson(0.15).with_weight(1.0))
        .with(TrafficClass::bpp(0.1, 0.05, 1.0).with_weight(0.1));
    Model::new(Dims::new(6, 8), w).expect("valid model")
}

/// The policies compared.
pub fn policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::CompleteSharing,
        PolicySpec::TrunkReservation(vec![0, 2]),
        PolicySpec::ShadowPrice { reserve: 2 },
    ]
}

/// One (policy, class) row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Rendered policy spec.
    pub policy: String,
    /// Class index.
    pub class: usize,
    /// Arrivals offered to the class.
    pub offered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Capacity denials (ports/tuple busy).
    pub denied_capacity: u64,
    /// Policy denials (reservation threshold).
    pub denied_policy: u64,
    /// Batch-means acceptance (point estimate).
    pub acceptance: f64,
    /// 99% CI half-width of the acceptance estimate.
    pub half_width_99: f64,
    /// Analytic complete-sharing call acceptance (the anchor's value).
    pub analytic_acceptance: f64,
}

/// Replay every policy over the same stream and flatten to rows.
pub fn rows(events: u64, seed: u64) -> Vec<Row> {
    let model = model();
    let per_policy = par_map(policies(), |policy| {
        let rep = replay(
            &model,
            &ReplayConfig {
                events,
                seed,
                batches: 20,
                engine: EngineConfig {
                    policy: policy.clone(),
                    ..EngineConfig::default()
                },
            },
        )
        .expect("replay succeeds");
        (policy, rep)
    });
    let mut out = Vec::new();
    for (policy, rep) in per_policy {
        for (class, c) in rep.classes.iter().enumerate() {
            out.push(Row {
                policy: policy.to_string(),
                class,
                offered: c.offered,
                admitted: c.admitted,
                denied_capacity: c.denied_capacity,
                denied_policy: c.denied_policy,
                acceptance: c.acceptance.mean,
                half_width_99: c.acceptance.half_width,
                analytic_acceptance: c.analytic_acceptance,
            });
        }
    }
    out
}

/// Reprice batch length the golden repricing replay runs at.
pub const REPRICE_BATCH: u64 = 256;

/// One (mode, class) row of the repricing differential: the same shadow
/// replay with thresholds priced once at anchor time versus re-priced
/// every [`REPRICE_BATCH`] events from the cached gradients. The decision
/// split must be identical — repricing changes *when* thresholds are
/// derived, never what they are for an unchanged model — so the only
/// columns that differ are the reprice counters.
#[derive(Clone, Debug)]
pub struct RepriceRow {
    /// `anchor-once` or `reprice:<batch>`.
    pub mode: String,
    /// Class index.
    pub class: usize,
    /// Arrivals offered to the class.
    pub offered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Capacity denials.
    pub denied_capacity: u64,
    /// Policy denials.
    pub denied_policy: u64,
    /// Repricing passes the engine ran.
    pub reprice_batches: u64,
    /// Passes that changed the threshold vector.
    pub reprice_updates: u64,
}

/// Replay the shadow policy with and without per-batch repricing over
/// the same stream and flatten to rows.
pub fn reprice_rows(events: u64, seed: u64) -> Vec<RepriceRow> {
    let model = model();
    let modes = vec![
        ("anchor-once".to_string(), None),
        (format!("reprice:{REPRICE_BATCH}"), Some(REPRICE_BATCH)),
    ];
    let per_mode = par_map(modes, |(mode, reprice_batch)| {
        let rep = replay(
            &model,
            &ReplayConfig {
                events,
                seed,
                batches: 20,
                engine: EngineConfig {
                    policy: PolicySpec::ShadowPrice { reserve: 2 },
                    reprice_batch,
                    ..EngineConfig::default()
                },
            },
        )
        .expect("replay succeeds");
        (mode, rep)
    });
    let mut out = Vec::new();
    for (mode, rep) in per_mode {
        for (class, c) in rep.classes.iter().enumerate() {
            out.push(RepriceRow {
                mode: mode.clone(),
                class,
                offered: c.offered,
                admitted: c.admitted,
                denied_capacity: c.denied_capacity,
                denied_policy: c.denied_policy,
                reprice_batches: rep.reprice_batches,
                reprice_updates: rep.reprice_updates,
            });
        }
    }
    out
}

/// Render the repricing differential as a table.
pub fn reprice_table(rows: &[RepriceRow]) -> Table {
    let mut t = Table::new([
        "mode",
        "class",
        "offered",
        "admitted",
        "denied_capacity",
        "denied_policy",
        "reprice_batches",
        "reprice_updates",
    ]);
    for r in rows {
        t.push([
            r.mode.clone(),
            r.class.to_string(),
            r.offered.to_string(),
            r.admitted.to_string(),
            r.denied_capacity.to_string(),
            r.denied_policy.to_string(),
            r.reprice_batches.to_string(),
            r.reprice_updates.to_string(),
        ]);
    }
    t
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "policy",
        "class",
        "offered",
        "admitted",
        "denied_capacity",
        "denied_policy",
        "acceptance",
        "half_width_99",
        "analytic_acceptance",
    ]);
    for r in rows {
        t.push([
            // CSV cells cannot carry commas; `trunk:0,2` → `trunk:0+2`.
            r.policy.replace(',', "+"),
            r.class.to_string(),
            r.offered.to_string(),
            r.admitted.to_string(),
            r.denied_capacity.to_string(),
            r.denied_policy.to_string(),
            format!("{:.6e}", r.acceptance),
            format!("{:.6e}", r.half_width_99),
            format!("{:.6e}", r.analytic_acceptance),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_sharing_rows_cover_the_analytic_acceptance() {
        let rows = rows(EVENTS, SEED);
        let cs: Vec<&Row> = rows
            .iter()
            .filter(|r| r.policy == "complete-sharing")
            .collect();
        assert_eq!(cs.len(), 2);
        for r in cs {
            assert_eq!(r.denied_policy, 0);
            assert!(
                (r.acceptance - r.analytic_acceptance).abs() <= r.half_width_99 + 5e-3,
                "class {}: {} ± {} vs {}",
                r.class,
                r.acceptance,
                r.half_width_99,
                r.analytic_acceptance
            );
        }
    }

    #[test]
    fn reservation_shifts_denials_from_capacity_to_policy() {
        let rows = rows(EVENTS, SEED);
        let find = |policy: &str, class: usize| -> &Row {
            rows.iter()
                .find(|r| r.policy == policy && r.class == class)
                .expect("row present")
        };
        // The trunk run throttles class 1 by policy…
        assert!(find("trunk:0,2", 1).denied_policy > 0);
        // …which protects class 0: it accepts at least as much as under CS.
        assert!(find("trunk:0,2", 0).acceptance >= find("complete-sharing", 0).acceptance - 1e-3);
        // The shadow policy resolves to the same thresholds on this mix
        // (class 1's revenue gradient is negative), so its split matches
        // the explicit trunk run exactly — same stream, same gate.
        for class in 0..2 {
            assert_eq!(
                find("shadow:reserve=2", class).admitted,
                find("trunk:0,2", class).admitted
            );
        }
    }

    #[test]
    fn repricing_changes_counters_but_not_one_decision() {
        let rows = reprice_rows(30_000, 7);
        assert_eq!(rows.len(), 4);
        let (plain, repriced) = rows.split_at(2);
        for (p, r) in plain.iter().zip(repriced) {
            assert_eq!(p.class, r.class);
            assert_eq!(p.offered, r.offered);
            assert_eq!(p.admitted, r.admitted);
            assert_eq!(p.denied_capacity, r.denied_capacity);
            assert_eq!(p.denied_policy, r.denied_policy);
        }
        assert!(plain.iter().all(|p| p.reprice_batches == 0));
        assert!(repriced.iter().all(|r| r.reprice_batches > 0));
        assert!(repriced.iter().all(|r| r.reprice_updates == 0));
    }

    #[test]
    fn replicated_complete_sharing_covers_the_analytic_acceptance() {
        // PR 10 harness path: the same CS regression as above, but from
        // independent replications merged across streams instead of batch
        // means over one long path. `rows()` itself stays on the single
        // fixed-seed replay so `tests/golden/replay.csv` stays
        // byte-identical.
        use xbar_sim::{run_replications, Confidence, RepConfig};
        let merged = run_replications(
            &model(),
            &ReplayConfig {
                events: 25_000,
                seed: 0, // overridden per replication by the harness
                batches: 10,
                engine: EngineConfig::default(),
            },
            &RepConfig {
                replications: 4,
                master_seed: SEED,
                confidence: Confidence::P99,
            },
        )
        .expect("replay succeeds");
        assert_eq!(merged.replications, 4);
        for (class, c) in merged.classes.iter().enumerate() {
            assert_eq!(c.denied_policy, 0, "CS never denies by policy");
            assert_eq!(c.offered, c.admitted + c.denied_capacity);
            assert!(
                (c.acceptance.mean - c.analytic_acceptance).abs() <= c.acceptance.half_width + 5e-3,
                "class {class}: {} ± {} vs {}",
                c.acceptance.mean,
                c.acceptance.half_width,
                c.analytic_acceptance
            );
        }
    }

    #[test]
    fn rows_are_deterministic() {
        let a = rows(30_000, 7);
        let b = rows(30_000, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.offered, y.offered);
        }
    }
}

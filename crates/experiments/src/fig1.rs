//! **Figure 1** — blocking probability vs. switch size for *smooth*
//! (Bernoulli) arrival traffic, bounded above by the Poisson case.
//!
//! Paper parameters (§7): one class, `a = 1`, `α̃ = .0024`, `μ = 1`,
//! `β̃ ∈ {0, …, −4·10⁻⁶}` with `α̃/β̃` a negative integer so the source
//! population is integral (600 sources at `β̃ = −4·10⁻⁶`), and
//! `S ≥ max(N1,N2) = 128`. The `β̃ = 0` (Poisson) curve is the upper
//! bound; smooth traffic lies below it, by ≈0.1% of the blocking at
//! `N = 128` for the strongest smoothing.

use xbar_core::{solve, Algorithm, Dims, FleetSweep, Model};
use xbar_traffic::{TildeClass, Workload};

use crate::Table;

/// `α̃` used throughout Figures 1–3 (chosen by the paper to put blocking
/// near the 0.5% operating point).
pub const ALPHA_TILDE: f64 = 0.0024;

/// The `β̃` grid: Poisson plus three smoothing strengths (source
/// populations 2400, 1200, 600).
pub const BETA_TILDES: [f64; 4] = [0.0, -1.0e-6, -2.0e-6, -4.0e-6];

/// Largest switch size plotted.
pub const MAX_N: u32 = 128;

/// One point of the figure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Row {
    /// Square switch size `N`.
    pub n: u32,
    /// Aggregated smoothing parameter `β̃ ≤ 0`.
    pub beta_tilde: f64,
    /// Blocking probability `1 − B_r`.
    pub blocking: f64,
}

/// The model for one `(N, β̃)` cell at `α̃ = ALPHA_TILDE`.
pub fn model_at(n: u32, beta_tilde: f64) -> Model {
    let workload = Workload::from_tilde(&[TildeClass::bpp(ALPHA_TILDE, beta_tilde, 1.0)], n);
    Model::new(Dims::square(n), workload).expect("valid Fig 1 model")
}

/// Compute the blocking for one `(N, β̃)` cell at `α̃ = ALPHA_TILDE`.
pub fn blocking_at(n: u32, beta_tilde: f64) -> f64 {
    solve(&model_at(n, beta_tilde), Algorithm::Auto)
        .expect("solvable")
        .blocking(0)
}

/// All points: every `N ∈ 1..=128` for each `β̃`. The four series share
/// everything but class 0's smoothing, so the whole figure is one
/// [`FleetSweep`] precompute (every size solved as one batch, sharded
/// over the worker pool) plus four `O(N)` recombinations per size (the
/// `β̃ = 0` base reuses the cached ray outright) instead of four full
/// lattice solves per size; the recombinations fan out over
/// [`crate::par_map`]. Matches the per-size [`xbar_core::SweepSolver`]
/// path bit for bit.
pub fn rows() -> Vec<Row> {
    xbar_obs::time("fig1.rows", || {
        let per_n: Vec<Vec<f64>> = xbar_obs::time("solve", || {
            let models: Vec<Model> = (1..=MAX_N).map(|n| model_at(n, 0.0)).collect();
            let fleet = FleetSweep::new(&models, Algorithm::Auto).expect("solvable");
            crate::par_map((1..=MAX_N).collect(), |n| {
                let i = (n - 1) as usize;
                BETA_TILDES
                    .iter()
                    .map(|&b| {
                        let class = model_at(n, b).workload().classes()[0].clone();
                        fleet
                            .solve_with_class(i, 0, class)
                            .expect("solvable")
                            .blocking(0)
                    })
                    .collect()
            })
        });
        BETA_TILDES
            .iter()
            .enumerate()
            .flat_map(|(bi, &beta_tilde)| {
                per_n.iter().zip(1..=MAX_N).map(move |(vals, n)| Row {
                    n,
                    beta_tilde,
                    blocking: vals[bi],
                })
            })
            .collect()
    })
}

/// Render rows as a table (one line per `(N, β̃)`).
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["N", "beta_tilde", "blocking"]);
    for r in rows {
        t.push([
            r.n.to_string(),
            format!("{:e}", r.beta_tilde),
            format!("{:.8}", r.blocking),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par_map;

    fn grid() -> Vec<Row> {
        // Sparse grid for test speed.
        let cells: Vec<(u32, f64)> = BETA_TILDES
            .iter()
            .flat_map(|&b| [1u32, 2, 8, 32, 128].map(move |n| (n, b)))
            .collect();
        par_map(cells, |(n, beta_tilde)| Row {
            n,
            beta_tilde,
            blocking: blocking_at(n, beta_tilde),
        })
    }

    #[test]
    fn poisson_is_an_upper_bound_for_smooth_traffic() {
        // The headline claim of Figure 1.
        let rows = grid();
        for &n in &[1u32, 2, 8, 32, 128] {
            let at = |b: f64| {
                rows.iter()
                    .find(|r| r.n == n && r.beta_tilde == b)
                    .unwrap()
                    .blocking
            };
            let poisson = at(0.0);
            for &b in &BETA_TILDES[1..] {
                assert!(
                    at(b) <= poisson + 1e-15,
                    "N={n} beta={b}: {} > poisson {poisson}",
                    at(b)
                );
            }
            // And stronger smoothing blocks (weakly) less.
            assert!(at(-4.0e-6) <= at(-1.0e-6) + 1e-15);
        }
    }

    #[test]
    fn operating_point_is_about_half_a_percent() {
        // §7: parameters "drive the non-blocking probability to ≈99.5%".
        let b = blocking_at(128, 0.0);
        assert!((0.002..0.008).contains(&b), "{b}");
    }

    #[test]
    fn blocking_rises_with_n_toward_asymptote() {
        let b1 = blocking_at(1, 0.0);
        let b16 = blocking_at(16, 0.0);
        let b128 = blocking_at(128, 0.0);
        assert!(b1 < b16 && b16 < b128, "{b1} {b16} {b128}");
        // The N = 1 value is exactly ρ̃/(1 + ρ̃).
        let want = ALPHA_TILDE / (1.0 + ALPHA_TILDE);
        assert!((b1 - want).abs() < 1e-12);
    }

    #[test]
    fn smoothing_effect_magnitude_matches_paper_note() {
        // §7: at N = 128 the gap between β̃ = 0 and β̃ = −4e−6 is "about
        // 0.1%" — read as a tenth of a percent *of the blocking level*
        // (absolute gaps that size would erase the whole curve).
        let gap = blocking_at(128, 0.0) - blocking_at(128, -4.0e-6);
        assert!(gap > 0.0);
        assert!(gap < 0.001, "{gap}");
    }

    #[test]
    fn full_rows_cover_the_grid() {
        let rows = rows();
        assert_eq!(rows.len(), BETA_TILDES.len() * MAX_N as usize);
        let t = table(&rows);
        assert_eq!(t.len(), rows.len());
    }
}

//! **Figure 4 + Table 1** — multi-rate traffic: `a = 2` requests block far
//! more than `a = 1` requests at the same total offered load.
//!
//! Table 1 (as printed) gives the aggregated loads for total load
//! `τ = .0048`:
//!
//! * `ρ̃1 = τ/(2N)` for the `a = 1` class — note the paper's *text* says
//!   `ρ̃_r = τ/C(N1, a_r)`, which would be `τ/N`; the printed table has an
//!   extra factor 2 for this class. We reproduce the printed values and
//!   check both against the stated formula (see tests);
//! * `ρ̃2 = τ/C(N, 2)` for the `a = 2` class — matching the text formula.
//!
//! Each class is analysed on its own switch (the paper: "considering each
//! traffic type separately").

use xbar_core::{solve, Algorithm, Dims, Model, SweepSolver};
use xbar_numeric::binomial;
use xbar_traffic::{TildeClass, Workload};

use crate::Table;

/// Total load `τ` (paper §7).
pub const TAU: f64 = 0.0048;

/// The switch sizes of Table 1.
pub const NS: [u32; 5] = [4, 8, 16, 32, 64];

/// One Table 1 row with its Figure 4 blocking values.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Switch size.
    pub n: u32,
    /// Printed `ρ̃1 = τ/(2N)`.
    pub rho1_tilde: f64,
    /// Printed `ρ̃2 = τ/C(N,2)`.
    pub rho2_tilde: f64,
    /// Blocking of the `a = 1` class alone.
    pub blocking_a1: f64,
    /// Blocking of the `a = 2` class alone.
    pub blocking_a2: f64,
}

/// The printed Table 1 loads for a given `N`.
pub fn table1_loads(n: u32) -> (f64, f64) {
    (TAU / (2.0 * n as f64), TAU / binomial(n as u64, 2))
}

/// The model of a single class with bandwidth `a` and aggregated load
/// `ρ̃` on an `N × N` switch.
pub fn model_single_class(n: u32, a: u32, rho_tilde: f64) -> Model {
    let tilde = TildeClass::poisson(rho_tilde).with_bandwidth(a);
    Model::new(Dims::square(n), Workload::from_tilde(&[tilde], n)).expect("valid Fig 4 model")
}

/// Blocking of a single class with bandwidth `a` and aggregated load
/// `ρ̃` on an `N × N` switch.
pub fn blocking_single_class(n: u32, a: u32, rho_tilde: f64) -> f64 {
    solve(&model_single_class(n, a, rho_tilde), Algorithm::Auto)
        .expect("solvable")
        .blocking(0)
}

/// All rows. The two per-size curves differ only in class 0 (its
/// bandwidth *and* load), so each size is one [`SweepSolver`] precompute
/// at `a = 1` plus a bandwidth-changing recombination for `a = 2`; sizes
/// fan out over [`crate::par_map`].
pub fn rows() -> Vec<Row> {
    xbar_obs::time("fig4.rows", rows_inner)
}

fn rows_inner() -> Vec<Row> {
    let loads: Vec<(u32, f64, f64)> = NS
        .iter()
        .map(|&n| {
            let (rho1, rho2) = table1_loads(n);
            (n, rho1, rho2)
        })
        .collect();
    xbar_obs::time("solve", || {
        crate::par_map(loads, |(n, rho1, rho2)| {
            let sweep = SweepSolver::new(&model_single_class(n, 1, rho1), Algorithm::Auto)
                .expect("solvable");
            let wide = model_single_class(n, 2, rho2).workload().classes()[0].clone();
            Row {
                n,
                rho1_tilde: rho1,
                rho2_tilde: rho2,
                blocking_a1: sweep.solve_base().expect("solvable").blocking(0),
                blocking_a2: sweep
                    .solve_with_class(0, wide)
                    .expect("solvable")
                    .blocking(0),
            }
        })
    })
}

/// Table 1 as printed (loads only).
pub fn table1(rows: &[Row]) -> Table {
    let mut t = Table::new(["N1", "rho1_tilde", "rho2_tilde"]);
    for r in rows {
        t.push([
            r.n.to_string(),
            format!("{:.7}", r.rho1_tilde),
            format!("{:.8}", r.rho2_tilde),
        ]);
    }
    t
}

/// Figure 4: the two blocking curves.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["N", "blocking_a1", "blocking_a2", "ratio"]);
    for r in rows {
        t.push([
            r.n.to_string(),
            format!("{:.8}", r.blocking_a1),
            format!("{:.8}", r.blocking_a2),
            format!("{:.2}", r.blocking_a2 / r.blocking_a1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_match_printed_table1() {
        // Paper Table 1, all five rows, both columns.
        let printed = [
            (4u32, 0.000600, 0.000800),
            (8, 0.000300, 0.000171),
            (16, 0.000150, 0.0000400),
            (32, 0.0000750, 0.00000967),
            (64, 0.0000375, 0.00000238),
        ];
        for (n, p1, p2) in printed {
            let (r1, r2) = table1_loads(n);
            assert!((r1 - p1).abs() < 5e-7, "N={n}: rho1 {r1} vs printed {p1}");
            assert!(
                (r2 - p2).abs() < 5e-8 * (1.0 + p2 / 1e-6),
                "N={n}: rho2 {r2} vs printed {p2}"
            );
        }
    }

    #[test]
    fn text_formula_disagrees_with_table_for_a1() {
        // Documents the paper-internal inconsistency: the text formula
        // τ/C(N,1) = τ/N is exactly twice the printed ρ̃1.
        let (r1, _) = table1_loads(8);
        let text = TAU / 8.0;
        assert!((text - 2.0 * r1).abs() < 1e-12);
    }

    #[test]
    fn wide_requests_block_significantly_more() {
        // The headline claim of Figure 4.
        for row in rows() {
            assert!(
                row.blocking_a2 > row.blocking_a1,
                "N={}: {} !> {}",
                row.n,
                row.blocking_a2,
                row.blocking_a1
            );
        }
    }

    #[test]
    fn tables_render() {
        let rows = rows();
        assert_eq!(table1(&rows).len(), NS.len());
        assert_eq!(table(&rows).len(), NS.len());
    }
}

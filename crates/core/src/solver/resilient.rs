//! Fault-tolerant solve pipeline: backend escalation plus cross-algorithm
//! self-verification.
//!
//! The paper's algorithms trade range for speed: plain-`f64` Algorithm 1 is
//! fastest but underflows beyond `N ≈ 32–64`, the §6 dynamically-scaled
//! variant reaches further, and the extended-range and MVA backends are
//! robust at any size. [`solve_resilient`] encodes that trade-off as an
//! *escalation chain*: it tries each backend in order, records every
//! failure (underflow, non-finite measure, out-of-range probability) in a
//! [`SolveReport`], and stops at the first backend whose measures pass the
//! numeric guards.
//!
//! Passing the guards proves the numbers are *plausible*, not *right* — a
//! scaled lattice can lose precision and still land in `[0, 1]`. So the
//! winner is then **cross-checked** against an algorithm from a different
//! family (occupancy convolution for enumerable sizes, MVA otherwise): two
//! independent recursions agreeing to a tight relative tolerance is strong
//! evidence neither is corrupt. Disagreement is a first-class error,
//! [`SolveError::CrossCheckFailed`], carrying both answers so the caller
//! can inspect which measures diverged.

use std::fmt;
use std::sync::Arc;

use xbar_numeric::guard::{relative_gap, GuardError};

use super::cache::solve_cached;
use super::{Algorithm, Solution, SolveError};
use crate::measures::SwitchMeasures;
use crate::model::Model;

/// Configuration for [`solve_resilient`].
#[derive(Clone, Debug, PartialEq)]
pub struct ResilientConfig {
    /// Backends to try, in order. Defaults to fastest-first:
    /// `Alg1F64 → Alg1Scaled → Alg1Ext → Mva`.
    pub chain: Vec<Algorithm>,
    /// Whether to verify the winner against an independent algorithm.
    pub cross_check: bool,
    /// Maximum admissible [`relative_gap`] between winner and checker on
    /// any compared measure.
    pub cross_check_tol: f64,
    /// Largest `max(N1, N2)` for which the occupancy-convolution backend
    /// (Algorithm 3) is used as the checker; larger switches use MVA.
    pub enumerable_limit: u32,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            chain: vec![
                Algorithm::Alg1F64,
                Algorithm::Alg1Scaled,
                Algorithm::Alg1Ext,
                Algorithm::Mva,
            ],
            cross_check: true,
            cross_check_tol: 1e-9,
            enumerable_limit: 64,
        }
    }
}

impl ResilientConfig {
    /// The default chain and tolerances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the escalation chain.
    pub fn with_chain(mut self, chain: Vec<Algorithm>) -> Self {
        self.chain = chain;
        self
    }

    /// Enable or disable the cross-check stage.
    pub fn with_cross_check(mut self, on: bool) -> Self {
        self.cross_check = on;
        self
    }

    /// Set the cross-check tolerance.
    pub fn with_cross_check_tol(mut self, tol: f64) -> Self {
        self.cross_check_tol = tol;
        self
    }
}

/// Why one backend in the chain failed.
#[derive(Clone, Debug, PartialEq)]
pub enum FailureCause {
    /// The lattice under- or overflowed (unhealthy cells).
    Underflow,
    /// A computed measure failed the numeric guards (`NaN`/∞ or an
    /// out-of-range probability); the payload names the quantity.
    Guard(GuardError),
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::Underflow => write!(f, "under/overflow"),
            FailureCause::Guard(e) => write!(f, "{e}"),
        }
    }
}

/// One backend's outcome within the escalation chain.
#[derive(Clone, Debug, PartialEq)]
pub struct Attempt {
    /// Which backend ran.
    pub algorithm: Algorithm,
    /// `None` if it succeeded (always the last attempt), otherwise why it
    /// failed.
    pub failure: Option<FailureCause>,
}

/// Result of comparing the winner against the independent checker.
#[derive(Clone, Debug, PartialEq)]
pub struct CrossCheck {
    /// The independent algorithm used for verification.
    pub checker: Algorithm,
    /// The tolerance the comparison ran with.
    pub tol: f64,
    /// What the comparison found.
    pub outcome: CrossCheckOutcome,
}

/// Outcome of the cross-check stage.
#[derive(Clone, Debug, PartialEq)]
pub enum CrossCheckOutcome {
    /// Winner and checker agree on every compared measure.
    Agreed {
        /// Worst [`relative_gap`] observed across all compared measures.
        max_rel_gap: f64,
    },
    /// Winner and checker disagree beyond tolerance (the pipeline also
    /// returns [`SolveError::CrossCheckFailed`] in this case).
    Disagreed {
        /// Worst [`relative_gap`] observed across all compared measures.
        max_rel_gap: f64,
    },
    /// The checker itself failed to produce guard-clean measures, so the
    /// winner stands unverified.
    CheckerFailed(FailureCause),
}

/// Full record of a resilient solve: every backend attempted with its
/// failure cause, the winner, and the cross-check verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveReport {
    /// Backends tried, in order; the last entry is the winner iff
    /// `winner.is_some()`.
    pub attempts: Vec<Attempt>,
    /// The backend whose solution was accepted, if any.
    pub winner: Option<Algorithm>,
    /// Cross-check record (`None` when disabled or when no backend won).
    pub cross_check: Option<CrossCheck>,
}

impl SolveReport {
    /// One-line human-readable account of the pipeline run, e.g.
    /// `alg1-f64: under/overflow -> alg1-scaled: ok; cross-check alg2-mva:
    /// agreed (max rel gap 3.1e-13 <= 1.0e-9)`.
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.attempts.len());
        for a in &self.attempts {
            match &a.failure {
                None => parts.push(format!("{}: ok", a.algorithm)),
                Some(cause) => parts.push(format!("{}: {cause}", a.algorithm)),
            }
        }
        let mut s = parts.join(" -> ");
        match &self.cross_check {
            None => {}
            Some(c) => {
                let verdict = match &c.outcome {
                    CrossCheckOutcome::Agreed { max_rel_gap } => {
                        format!("agreed (max rel gap {max_rel_gap:.1e} <= {:.1e})", c.tol)
                    }
                    CrossCheckOutcome::Disagreed { max_rel_gap } => {
                        format!("DISAGREED (max rel gap {max_rel_gap:.1e} > {:.1e})", c.tol)
                    }
                    CrossCheckOutcome::CheckerFailed(cause) => {
                        format!("checker failed ({cause})")
                    }
                };
                s.push_str(&format!("; cross-check {}: {verdict}", c.checker));
            }
        }
        s
    }
}

impl fmt::Display for SolveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

/// Payload of [`SolveError::CrossCheckFailed`]: both answers plus the full
/// pipeline report.
#[derive(Clone, Debug, PartialEq)]
pub struct CrossCheckFailure {
    /// The backend whose solution was being verified.
    pub winner: Algorithm,
    /// The independent algorithm it was verified against.
    pub checker: Algorithm,
    /// The winner's measures.
    pub winner_measures: SwitchMeasures,
    /// The checker's measures.
    pub checker_measures: SwitchMeasures,
    /// Worst [`relative_gap`] across all compared measures.
    pub max_rel_gap: f64,
    /// The tolerance that was exceeded.
    pub tol: f64,
    /// The full pipeline report (attempts + cross-check record).
    pub report: SolveReport,
}

impl fmt::Display for CrossCheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cross-check failed: {} and {} disagree (max rel gap {:.3e} > tol {:.1e})",
            self.winner, self.checker, self.max_rel_gap, self.tol
        )
    }
}

/// A [`Solution`] together with the [`SolveReport`] describing how it was
/// obtained and verified.
pub struct ResilientSolution {
    /// The accepted solution (from the first backend to pass the guards),
    /// shared with the process-wide [`super::cache`] — repeated resilient
    /// solves of one model (e.g. forward-difference gradients) reuse the
    /// finished lattice instead of re-running the escalation's winner.
    pub solution: Arc<Solution>,
    /// The pipeline record.
    pub report: SolveReport,
}

impl fmt::Debug for ResilientSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `Solution` holds a solved lattice and is deliberately opaque;
        // show the pipeline trace and the measures instead.
        f.debug_struct("ResilientSolution")
            .field("report", &self.report)
            .field("measures", self.solution.measures())
            .finish()
    }
}

/// Broad algorithm family, used to pick a checker *independent* of the
/// winner: all three Algorithm-1 backends share one recursion, so agreeing
/// with each other proves little.
fn family(alg: Algorithm) -> u8 {
    match alg {
        Algorithm::Auto | Algorithm::Alg1F64 | Algorithm::Alg1Scaled | Algorithm::Alg1Ext => 1,
        Algorithm::Mva => 2,
        Algorithm::Convolution => 3,
    }
}

fn pick_checker(winner: Algorithm, max_n: u32, config: &ResilientConfig) -> Algorithm {
    let preferred = if max_n <= config.enumerable_limit {
        Algorithm::Convolution
    } else {
        Algorithm::Mva
    };
    if family(preferred) != family(winner) {
        return preferred;
    }
    // The winner is already from the preferred family (e.g. the chain was
    // MVA-first); fall back to the next independent one.
    if max_n <= config.enumerable_limit && family(winner) != family(Algorithm::Convolution) {
        Algorithm::Convolution
    } else if family(winner) != family(Algorithm::Mva) {
        Algorithm::Mva
    } else {
        Algorithm::Alg1Ext
    }
}

/// Worst [`relative_gap`] between two measure sets, over every per-class
/// probability/concurrency/throughput plus revenue and total throughput.
fn max_measure_gap(a: &SwitchMeasures, b: &SwitchMeasures) -> f64 {
    let mut worst: f64 = 0.0;
    for (ca, cb) in a.classes.iter().zip(&b.classes) {
        worst = worst
            .max(relative_gap(ca.nonblocking, cb.nonblocking))
            .max(relative_gap(ca.concurrency, cb.concurrency))
            .max(relative_gap(ca.throughput, cb.throughput))
            .max(relative_gap(ca.call_acceptance, cb.call_acceptance));
    }
    worst
        .max(relative_gap(a.revenue, b.revenue))
        .max(relative_gap(a.total_throughput, b.total_throughput))
}

fn cause_of(err: SolveError) -> Result<FailureCause, SolveError> {
    match err {
        SolveError::Underflow(_) => Ok(FailureCause::Underflow),
        SolveError::Guard { source, .. } => Ok(FailureCause::Guard(source)),
        // Model errors (and pipeline-level errors, which plain `solve`
        // never returns) are not backend failures: escalation cannot fix
        // them, so they abort the pipeline.
        other => Err(other),
    }
}

/// Solve `model` through the escalation chain in `config`, then cross-check
/// the winner against an independent algorithm.
///
/// Every attempted backend and its failure cause is recorded in the
/// returned [`SolveReport`] (also embedded in the error cases):
///
/// * all backends fail → [`SolveError::Exhausted`];
/// * winner and checker disagree beyond `config.cross_check_tol` →
///   [`SolveError::CrossCheckFailed`] carrying both sets of measures;
/// * the model itself is invalid → [`SolveError::Model`] immediately (no
///   backend can fix a bad model).
pub fn solve_resilient(
    model: &Model,
    config: &ResilientConfig,
) -> Result<ResilientSolution, SolveError> {
    let mut attempts = Vec::with_capacity(config.chain.len());
    let mut won: Option<(Algorithm, Arc<Solution>)> = None;
    for &alg in &config.chain {
        // Per-attempt span (the format! only runs with obs on).
        let result = if xbar_obs::enabled() {
            xbar_obs::time(&format!("solver.attempt.{alg}"), || {
                solve_cached(model, alg)
            })
        } else {
            solve_cached(model, alg)
        };
        xbar_obs::inc("solver.attempts");
        match result {
            Ok(sol) => {
                attempts.push(Attempt {
                    algorithm: alg,
                    failure: None,
                });
                won = Some((alg, sol));
                break;
            }
            Err(e) => {
                let cause = cause_of(e)?;
                xbar_obs::inc("solver.escalations");
                xbar_obs::inc(match cause {
                    FailureCause::Underflow => "solver.failure.underflow",
                    FailureCause::Guard(_) => "solver.failure.guard",
                });
                attempts.push(Attempt {
                    algorithm: alg,
                    failure: Some(cause),
                });
            }
        }
    }

    let Some((winner_alg, solution)) = won else {
        xbar_obs::inc("solver.exhausted");
        return Err(SolveError::Exhausted(SolveReport {
            attempts,
            winner: None,
            cross_check: None,
        }));
    };

    let mut report = SolveReport {
        attempts,
        winner: Some(winner_alg),
        cross_check: None,
    };

    if config.cross_check {
        let checker = pick_checker(winner_alg, model.dims().max_n(), config);
        let tol = config.cross_check_tol;
        match solve_cached(model, checker) {
            Err(e) => {
                let cause = cause_of(e)?;
                xbar_obs::inc("solver.cross_check.checker_failed");
                report.cross_check = Some(CrossCheck {
                    checker,
                    tol,
                    outcome: CrossCheckOutcome::CheckerFailed(cause),
                });
            }
            Ok(check_sol) => {
                let gap = max_measure_gap(solution.measures(), check_sol.measures());
                xbar_obs::record("solver.cross_check.gap", gap);
                if gap <= tol {
                    xbar_obs::inc("solver.cross_check.agreed");
                    report.cross_check = Some(CrossCheck {
                        checker,
                        tol,
                        outcome: CrossCheckOutcome::Agreed { max_rel_gap: gap },
                    });
                } else {
                    xbar_obs::inc("solver.cross_check.disagreed");
                    report.cross_check = Some(CrossCheck {
                        checker,
                        tol,
                        outcome: CrossCheckOutcome::Disagreed { max_rel_gap: gap },
                    });
                    return Err(SolveError::CrossCheckFailed(Box::new(CrossCheckFailure {
                        winner: winner_alg,
                        checker,
                        winner_measures: solution.measures().clone(),
                        checker_measures: check_sol.measures().clone(),
                        max_rel_gap: gap,
                        tol,
                        report,
                    })));
                }
            }
        }
    }

    Ok(ResilientSolution { solution, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dims;
    use xbar_traffic::{TrafficClass, Workload};

    fn big_poisson(n: u32) -> Model {
        let w = Workload::new().with(TrafficClass::poisson(1e-5));
        Model::new(Dims::square(n), w).expect("valid model")
    }

    #[test]
    fn small_switch_wins_first_try_and_cross_checks() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3))
            .with(TrafficClass::bpp(0.2, 0.08, 1.0));
        let m = Model::new(Dims::square(8), w).expect("valid model");
        let r = solve_resilient(&m, &ResilientConfig::default()).expect("solves");
        assert_eq!(r.report.winner, Some(Algorithm::Alg1F64));
        assert_eq!(r.report.attempts.len(), 1);
        assert!(r.report.attempts[0].failure.is_none());
        let check = r.report.cross_check.as_ref().expect("cross-checked");
        // 8 <= enumerable_limit -> convolution checker.
        assert_eq!(check.checker, Algorithm::Convolution);
        assert!(matches!(check.outcome, CrossCheckOutcome::Agreed { .. }));
    }

    #[test]
    fn underflow_at_n200_escalates_and_cross_checks_vs_mva() {
        // The ISSUE's acceptance scenario: plain f64 underflows at N = 200,
        // the pipeline must escalate, and the winner must agree with MVA to
        // 1e-9.
        let m = big_poisson(200);
        let r = solve_resilient(&m, &ResilientConfig::default()).expect("escalates");
        assert_eq!(
            r.report.attempts[0],
            Attempt {
                algorithm: Algorithm::Alg1F64,
                failure: Some(FailureCause::Underflow),
            }
        );
        let winner = r.report.winner.expect("has winner");
        assert_ne!(winner, Algorithm::Alg1F64);
        let check = r.report.cross_check.as_ref().expect("cross-checked");
        assert_eq!(check.checker, Algorithm::Mva);
        assert_eq!(check.tol, 1e-9);
        match check.outcome {
            CrossCheckOutcome::Agreed { max_rel_gap } => assert!(max_rel_gap <= 1e-9),
            ref other => panic!("expected agreement, got {other:?}"),
        }
        assert!(r.solution.blocking(0).is_finite());
    }

    #[test]
    fn exhausted_chain_reports_every_cause() {
        let m = big_poisson(200);
        // A chain of only the fixed-precision backend must exhaust.
        let cfg = ResilientConfig::default().with_chain(vec![Algorithm::Alg1F64]);
        match solve_resilient(&m, &cfg) {
            Err(SolveError::Exhausted(report)) => {
                assert_eq!(report.winner, None);
                assert_eq!(report.attempts.len(), 1);
                assert_eq!(report.attempts[0].failure, Some(FailureCause::Underflow));
                assert!(report.summary().contains("alg1-f64"));
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn checker_is_independent_of_winner_family() {
        let cfg = ResilientConfig::default();
        // Alg1-family winner: convolution when enumerable, MVA beyond.
        assert_eq!(
            pick_checker(Algorithm::Alg1F64, 8, &cfg),
            Algorithm::Convolution
        );
        assert_eq!(pick_checker(Algorithm::Alg1Ext, 200, &cfg), Algorithm::Mva);
        // MVA winner must not be checked against itself.
        assert_eq!(
            pick_checker(Algorithm::Mva, 8, &cfg),
            Algorithm::Convolution
        );
        assert_eq!(pick_checker(Algorithm::Mva, 200, &cfg), Algorithm::Alg1Ext);
        // Convolution winner gets MVA.
        assert_eq!(
            pick_checker(Algorithm::Convolution, 8, &cfg),
            Algorithm::Mva
        );
    }

    #[test]
    fn impossible_tolerance_fails_cross_check_with_both_answers() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3))
            .with(TrafficClass::bpp(0.2, 0.08, 1.0));
        let m = Model::new(Dims::square(12), w).expect("valid model");
        // No two floating-point backends agree to 1e-18.
        let cfg = ResilientConfig::default().with_cross_check_tol(1e-18);
        match solve_resilient(&m, &cfg) {
            Err(SolveError::CrossCheckFailed(fail)) => {
                assert_eq!(fail.winner, Algorithm::Alg1F64);
                assert_eq!(fail.checker, Algorithm::Convolution);
                assert!(fail.max_rel_gap > 1e-18);
                assert_eq!(fail.winner_measures.classes.len(), 2);
                assert_eq!(fail.checker_measures.classes.len(), 2);
                assert!(matches!(
                    fail.report.cross_check.as_ref().map(|c| &c.outcome),
                    Some(CrossCheckOutcome::Disagreed { .. })
                ));
                // And both answers are still sane probabilities.
                assert!(fail.winner_measures.validate().is_ok());
                assert!(fail.checker_measures.validate().is_ok());
            }
            other => panic!("expected CrossCheckFailed, got {other:?}"),
        }
    }

    #[test]
    fn cross_check_can_be_disabled() {
        let m = big_poisson(48);
        let cfg = ResilientConfig::default().with_cross_check(false);
        let r = solve_resilient(&m, &cfg).expect("solves");
        assert!(r.report.cross_check.is_none());
    }

    #[test]
    fn model_errors_abort_instead_of_escalating() {
        // Bandwidth exceeding the switch is a modelling error; trying more
        // backends cannot help, so the pipeline must return it directly.
        let w = Workload::new().with(TrafficClass::poisson(0.1).with_bandwidth(9));
        let err = Model::new(Dims::square(4), w).expect_err("invalid model");
        // Reproduce through a perturbation path instead: build valid, then
        // perturb into invalid territory is not expressible here, so just
        // assert the constructor error type matches what the pipeline
        // forwards.
        assert!(matches!(
            SolveError::from(err.clone()),
            SolveError::Model(_)
        ));
    }

    #[test]
    fn summary_reads_like_a_pipeline_trace() {
        let m = big_poisson(200);
        let r = solve_resilient(&m, &ResilientConfig::default()).expect("solves");
        let s = r.report.summary();
        assert!(s.contains("alg1-f64"), "{s}");
        assert!(s.contains("->"), "{s}");
        assert!(s.contains("cross-check alg2-mva: agreed"), "{s}");
    }
}

//! Memoizing solve engine: a keyed LRU of finished [`Solution`]s plus a
//! work-stealing batch front-end.
//!
//! Algorithm 1 is the hot path behind every figure, sweep, and resilient
//! escalation, and many callers re-solve the *same* model: forward-difference
//! gradients solve the base point twice, `solve_resilient` cross-checks
//! re-enter `solve`, and experiment drivers anchor several series on one
//! shared configuration. [`SolveCache`] memoizes by a canonicalised model
//! fingerprint so those repeats cost a hash lookup instead of an
//! `O(N1·N2·R)` sweep; [`solve_batch`] fans a slice of models out over a
//! [`crossbeam::queue::SegQueue`] work pool (work-stealing, so unbalanced
//! sweeps with large-`N` tails no longer serialise on the slowest chunk).
//!
//! # Cache-key canonicalisation
//!
//! Two models must share a cache entry iff a solve cannot tell them apart.
//! The fingerprint therefore covers the *requested* algorithm (so an
//! [`Algorithm::Auto`] solution, whose [`Solution::algorithm`] reports
//! `Auto`, is never returned for an explicit `Alg1F64` request even when
//! auto would resolve to the same backend), the dims, and every class's
//! `(α, β, μ, a, w)` tuple in workload order. Floats are compared by bit
//! pattern with `-0.0` normalised to `+0.0` — the one bit-level distinction
//! IEEE arithmetic cannot observe here — so no tolerance is involved:
//! models differing in the last ulp are (correctly) distinct entries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use super::{solve, Algorithm, Solution, SolveError};
use crate::model::Model;

/// Canonical fingerprint of one `(Model, Algorithm)` solve request.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    algorithm: Algorithm,
    n1: u32,
    n2: u32,
    /// Per class: `[α, β, μ, weight]` as canonical bit patterns plus the
    /// bandwidth, flattened in workload order.
    classes: Vec<u64>,
}

/// `f64` → canonical bit pattern (`-0.0` folds onto `+0.0`).
fn canon_bits(x: f64) -> u64 {
    if x == 0.0 {
        0u64
    } else {
        x.to_bits()
    }
}

fn fingerprint(model: &Model, algorithm: Algorithm) -> Key {
    let dims = model.dims();
    let classes = model.workload().classes();
    let mut flat = Vec::with_capacity(classes.len() * 5);
    let mut canonicalised = 0u64;
    for c in classes {
        for x in [c.alpha, c.beta, c.mu, c.weight] {
            if x == 0.0 && x.is_sign_negative() {
                canonicalised += 1;
            }
            flat.push(canon_bits(x));
        }
        flat.push(c.bandwidth as u64);
    }
    if canonicalised > 0 {
        xbar_obs::add("cache.canonicalised", canonicalised);
    }
    Key {
        algorithm,
        n1: dims.n1,
        n2: dims.n2,
        classes: flat,
    }
}

/// Hit/miss counters of a [`SolveCache`] (monotonic since construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that ran a fresh solve.
    pub misses: u64,
}

/// A bounded, thread-safe LRU of finished solutions keyed by the
/// canonicalised model fingerprint (see the module docs).
///
/// Entries are `Arc<Solution>`, so a hit is a pointer clone — callers on
/// different threads share one lattice. Failed solves are *not* cached:
/// errors are cheap to reproduce and callers typically escalate to a
/// different backend immediately anyway.
///
/// The store is a mutexed most-recently-used-first vector rather than a
/// hash map: capacities are small (tens of entries — each large lattice is
/// megabytes), so a linear scan of inline keys beats hashing, and eviction
/// is `pop()`. Solves run *outside* the lock; concurrent misses on the same
/// key may both solve, and the loser's entry is simply dropped.
pub struct SolveCache {
    capacity: usize,
    /// MRU first.
    entries: Mutex<Vec<(Key, Arc<Solution>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveCache {
    /// An empty cache holding at most `capacity` solutions (`capacity` is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        SolveCache {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Serve `solve(model, algorithm)` from the cache, running (and
    /// memoizing) a fresh solve on miss.
    pub fn get_or_solve(
        &self,
        model: &Model,
        algorithm: Algorithm,
    ) -> Result<Arc<Solution>, SolveError> {
        let key = fingerprint(model, algorithm);
        {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
                let hit = entries.remove(pos);
                let sol = Arc::clone(&hit.1);
                entries.insert(0, hit);
                self.hits.fetch_add(1, Ordering::Relaxed);
                xbar_obs::inc("cache.hits");
                return Ok(sol);
            }
        }
        // Miss: solve without holding the lock (a solve can take seconds at
        // N = 512; serialising misses would defeat solve_batch entirely).
        self.misses.fetch_add(1, Ordering::Relaxed);
        xbar_obs::inc("cache.misses");
        let sol = Arc::new(solve(model, algorithm)?);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.iter().any(|(k, _)| *k == key) {
            xbar_obs::inc("cache.insert_races");
        } else {
            entries.insert(0, (key, Arc::clone(&sol)));
            let evicted = entries.len().saturating_sub(self.capacity);
            if evicted > 0 {
                entries.truncate(self.capacity);
                xbar_obs::add("cache.evictions", evicted as u64);
            }
        }
        Ok(sol)
    }

    /// Number of cached solutions.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` iff the cache holds no solutions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached solution (counters keep running).
    pub fn clear(&self) {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Solve every model in `models` as one fleet batch, returning
    /// results in input order.
    ///
    /// Models with identical canonical fingerprints are deduplicated
    /// up front — one solve, one shared `Arc` (and one shared error:
    /// [`SolveError`] is `Clone`). The unique models are sharded across
    /// the persistent worker pool with work stealing, each inner solve
    /// pinned to one thread; a fleet of one (or a one-thread
    /// configuration) runs inline with the single model keeping its own
    /// wavefront parallelism, so batching adds no overhead to the
    /// single-model path.
    pub fn solve_fleet(
        &self,
        models: &[Model],
        algorithm: Algorithm,
    ) -> Vec<Result<Arc<Solution>, SolveError>> {
        xbar_obs::inc("fleet.solves");
        xbar_obs::record("fleet.batch_size", models.len() as f64);
        if models.is_empty() {
            return Vec::new();
        }
        if models.len() == 1 {
            return vec![self.get_or_solve(&models[0], algorithm)];
        }

        // Dedupe by fingerprint: `uniq` holds the first index per
        // distinct key, `slot_of[i]` the uniq position serving model i.
        let keys: Vec<Key> = models.iter().map(|m| fingerprint(m, algorithm)).collect();
        let mut first_of: HashMap<&Key, usize> = HashMap::with_capacity(models.len());
        let mut uniq: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(models.len());
        for key in &keys {
            let next = uniq.len();
            let slot = *first_of.entry(key).or_insert(next);
            if slot == next {
                uniq.push(slot_of.len());
            }
            slot_of.push(slot);
        }
        xbar_obs::add("fleet.deduped", (models.len() - uniq.len()) as u64);

        let solved = crate::fleet::shard_map(uniq.len(), |u| {
            self.get_or_solve(&models[uniq[u]], algorithm)
        });
        slot_of.into_iter().map(|s| solved[s].clone()).collect()
    }
}

/// Capacity of the process-wide cache behind [`solve_cached`]. Sized for
/// sweep working sets (escalation chains, gradients, repeated anchors)
/// while bounding worst-case memory: a `513 × 513` extended-range lattice
/// is ~4 MB, so the ceiling is a few hundred MB of solutions even if every
/// entry is maximal.
pub const GLOBAL_CACHE_CAPACITY: usize = 64;

/// The process-wide [`SolveCache`] used by [`solve_cached`],
/// [`solve_batch`], and the resilient pipeline.
pub fn global_cache() -> &'static SolveCache {
    static GLOBAL: OnceLock<SolveCache> = OnceLock::new();
    GLOBAL.get_or_init(|| SolveCache::new(GLOBAL_CACHE_CAPACITY))
}

/// [`solve`], memoized through the process-wide cache. Semantically
/// identical to `solve` (same measures, same `Solution::algorithm`); the
/// only observable difference is sharing: repeated calls return the same
/// `Arc`.
pub fn solve_cached(model: &Model, algorithm: Algorithm) -> Result<Arc<Solution>, SolveError> {
    global_cache().get_or_solve(model, algorithm)
}

/// Solve every model in `models`, fanning out over the persistent
/// worker pool with work stealing, and return the results in input
/// order. Since PR 7 this is [`SolveCache::solve_fleet`] on the
/// process-wide cache: duplicate models are deduplicated up front, the
/// unique misses are stolen off a shared queue by persistent pool
/// workers (each inner solve pinned to one thread — with whole models
/// to hand out, across-model parallelism strictly dominates nested
/// wavefront parallelism), and solves are memoized across batches.
pub fn solve_batch(
    models: &[Model],
    algorithm: Algorithm,
) -> Vec<Result<Arc<Solution>, SolveError>> {
    global_cache().solve_fleet(models, algorithm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dims;
    use xbar_traffic::{TrafficClass, Workload};

    fn mixed_model(n1: u32, n2: u32) -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3))
            .with(TrafficClass::bpp(0.2, 0.08, 1.0));
        Model::new(Dims::new(n1, n2), w).unwrap()
    }

    #[test]
    fn hit_returns_same_arc_and_identical_measures() {
        let cache = SolveCache::new(8);
        let m = mixed_model(6, 6);
        let a = cache.get_or_solve(&m, Algorithm::Auto).unwrap();
        let b = cache.get_or_solve(&m, Algorithm::Auto).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.measures(), b.measures());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // An equal-but-distinct Model value hits too (value keying).
        let m2 = mixed_model(6, 6);
        let c = cache.get_or_solve(&m2, Algorithm::Auto).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn requested_algorithm_is_part_of_the_key() {
        let cache = SolveCache::new(8);
        let m = mixed_model(6, 6);
        // Auto resolves to Alg1F64 at this size, but the two requests must
        // stay distinct entries so Solution::algorithm() is preserved.
        let auto = cache.get_or_solve(&m, Algorithm::Auto).unwrap();
        let f64_ = cache.get_or_solve(&m, Algorithm::Alg1F64).unwrap();
        assert!(!Arc::ptr_eq(&auto, &f64_));
        assert_eq!(auto.algorithm(), Algorithm::Auto);
        assert_eq!(f64_.algorithm(), Algorithm::Alg1F64);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_models_are_distinct_entries() {
        let cache = SolveCache::new(8);
        let a = cache
            .get_or_solve(&mixed_model(6, 6), Algorithm::Auto)
            .unwrap();
        let b = cache
            .get_or_solve(&mixed_model(6, 5), Algorithm::Auto)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = SolveCache::new(2);
        let m1 = mixed_model(4, 4);
        let m2 = mixed_model(5, 5);
        let m3 = mixed_model(6, 6);
        cache.get_or_solve(&m1, Algorithm::Auto).unwrap();
        cache.get_or_solve(&m2, Algorithm::Auto).unwrap();
        // Touch m1 so m2 is now least recently used.
        cache.get_or_solve(&m1, Algorithm::Auto).unwrap();
        cache.get_or_solve(&m3, Algorithm::Auto).unwrap();
        assert_eq!(cache.len(), 2);
        let before = cache.stats();
        cache.get_or_solve(&m1, Algorithm::Auto).unwrap();
        assert_eq!(cache.stats().hits, before.hits + 1, "m1 was evicted");
        cache.get_or_solve(&m2, Algorithm::Auto).unwrap();
        assert_eq!(cache.stats().misses, before.misses + 1, "m2 survived");
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SolveCache::new(8);
        let w = Workload::new().with(TrafficClass::poisson(1e-5));
        let big = Model::new(Dims::square(200), w).unwrap();
        for _ in 0..2 {
            assert!(matches!(
                cache.get_or_solve(&big, Algorithm::Alg1F64),
                Err(SolveError::Underflow(_))
            ));
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn negative_zero_canonicalises() {
        // β = -0.0 and β = 0.0 describe the same (Poisson) class.
        assert_eq!(canon_bits(-0.0), canon_bits(0.0));
        assert_ne!(canon_bits(1.0), canon_bits(-1.0));
    }

    #[test]
    fn batch_matches_individual_solves_in_order() {
        let models: Vec<Model> = (3..11).map(|n| mixed_model(n, n + 1)).collect();
        let batch = solve_batch(&models, Algorithm::Auto);
        assert_eq!(batch.len(), models.len());
        for (m, r) in models.iter().zip(&batch) {
            let sol = r.as_ref().expect("solves");
            assert_eq!(sol.model(), m);
            let direct = solve(m, Algorithm::Auto).unwrap();
            assert_eq!(sol.measures(), direct.measures());
        }
    }

    #[test]
    fn batch_reports_per_model_errors_in_place() {
        let w = Workload::new().with(TrafficClass::poisson(1e-5));
        let big = Model::new(Dims::square(200), w).unwrap();
        let models = vec![mixed_model(5, 5), big, mixed_model(6, 6)];
        let batch = solve_batch(&models, Algorithm::Alg1F64);
        assert!(batch[0].is_ok());
        assert!(matches!(batch[1], Err(SolveError::Underflow(_))));
        assert!(batch[2].is_ok());
    }

    #[test]
    fn batch_deduplicates_repeated_models_via_cache() {
        let m = mixed_model(7, 7);
        let models = vec![m.clone(), m.clone(), m];
        let batch = solve_batch(&models, Algorithm::Auto);
        let a = batch[0].as_ref().unwrap();
        let b = batch[2].as_ref().unwrap();
        // All three served from one cached solve (possibly racing on the
        // first fill, but at least the later ones share).
        assert_eq!(a.measures(), b.measures());
    }
}

//! Thread-count plumbing for the parallel solve paths (the wavefront
//! lattice sweep in [`crate::alg1`] and [`crate::solver::solve_batch`]).
//!
//! Resolution order for the effective thread count:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by the
//!    batch work pool to keep its per-model solves single-threaded, and by
//!    tests to force the parallel path on small lattices);
//! 2. the process-wide setting from [`set_threads`] (the CLI's
//!    `--threads N` lands here; `0` means "auto");
//! 3. the `XBAR_THREADS` environment variable (how CI exercises both code
//!    paths without touching flags);
//! 4. `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide configured thread count; `0` = auto.
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Thread-local override; `0` = no override.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Set the process-wide solver thread count. `0` restores auto detection
/// (`available_parallelism`, or `XBAR_THREADS` when set).
pub fn set_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// The process-wide setting last passed to [`set_threads`] (`0` = auto).
pub fn configured_threads() -> usize {
    CONFIGURED.load(Ordering::Relaxed)
}

/// Resolve the thread count the parallel paths should use right now, per
/// the module-level precedence. Always at least 1.
pub fn effective_threads() -> usize {
    let tls = OVERRIDE.with(Cell::get);
    if tls != 0 {
        return tls;
    }
    let configured = configured_threads();
    if configured != 0 {
        return configured;
    }
    if let Ok(var) = std::env::var("XBAR_THREADS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n != 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` with the effective thread count pinned to `n` on this thread
/// (restored on exit, panic included). `n = 0` clears any override.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(n);
        Restore(prev)
    });
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = effective_threads();
        let inner = with_threads(3, effective_threads);
        assert_eq!(inner, 3);
        assert_eq!(effective_threads(), outer);
        // Nested overrides unwind correctly.
        let (a, b) = with_threads(2, || {
            (effective_threads(), with_threads(5, effective_threads))
        });
        assert_eq!((a, b), (2, 5));
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = OVERRIDE.with(Cell::get);
        let result = std::panic::catch_unwind(|| with_threads(7, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(OVERRIDE.with(Cell::get), before);
    }

    #[test]
    fn effective_is_at_least_one() {
        assert!(effective_threads() >= 1);
    }
}

//! Thread-count plumbing and the persistent worker pool for the parallel
//! solve paths (the wavefront lattice sweep in [`crate::alg1`], fleet
//! sharding in [`crate::fleet`], and [`crate::solver::solve_batch`]).
//!
//! Resolution order for the effective thread count:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by the
//!    batch work pool to keep its per-model solves single-threaded, and by
//!    tests to force the parallel path on small lattices);
//! 2. the process-wide setting from [`set_threads`] (the CLI's
//!    `--threads N` lands here; `0` means "auto");
//! 3. the `XBAR_THREADS` environment variable (how CI exercises both code
//!    paths without touching flags);
//! 4. `std::thread::available_parallelism()`.
//!
//! [`run_scoped`] replaces the per-solve `crossbeam::thread::scope` spawn
//! the wavefront sweep used through PR 6: workers are spawned once, parked
//! on channels, and reused across solves, so a fleet of thousands of
//! anchor solves pays thread start-up once instead of per call.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Process-wide configured thread count; `0` = auto.
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Thread-local override; `0` = no override.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Set the process-wide solver thread count. `0` restores auto detection
/// (`available_parallelism`, or `XBAR_THREADS` when set).
pub fn set_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// The process-wide setting last passed to [`set_threads`] (`0` = auto).
pub fn configured_threads() -> usize {
    CONFIGURED.load(Ordering::Relaxed)
}

/// Resolve the thread count the parallel paths should use right now, per
/// the module-level precedence. Always at least 1.
pub fn effective_threads() -> usize {
    let tls = OVERRIDE.with(Cell::get);
    if tls != 0 {
        return tls;
    }
    let configured = configured_threads();
    if configured != 0 {
        return configured;
    }
    if let Ok(var) = std::env::var("XBAR_THREADS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n != 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` with the effective thread count pinned to `n` on this thread
/// (restored on exit, panic included). `n = 0` clears any override.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = OVERRIDE.with(|c| {
        let prev = c.get();
        c.set(n);
        Restore(prev)
    });
    f()
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// A unit of work for one pool worker: a lifetime-erased pointer to the
/// caller's closure, the worker index to run it as, and the completion
/// latch to count down when done (panic included).
struct Job {
    /// Borrow of the caller's closure. Valid until the latch it counts
    /// down reaches zero — [`run_scoped`] does not return (or unwind)
    /// before that.
    f: *const (dyn Fn(usize) + Sync),
    worker: usize,
    latch: Arc<Latch>,
}

// SAFETY: the pointee is `Sync` (shared-reference calls from any thread
// are fine) and the `run_scoped` latch protocol keeps it alive for the
// job's whole lifetime, so shipping the pointer to a worker is sound.
unsafe impl Send for Job {}

/// Countdown latch with a sticky panic flag.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *left > 0 {
            left = self.done.wait(left).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Idle-worker free list. Each entry is the sending half of a parked
/// worker's job channel; checking a sender out gives exclusive use of
/// that worker until it is returned.
static IDLE: OnceLock<Mutex<Vec<Sender<Job>>>> = OnceLock::new();

/// Total workers ever spawned (observability + reuse tests).
static SPAWNED: AtomicUsize = AtomicUsize::new(0);

fn idle_list() -> &'static Mutex<Vec<Sender<Job>>> {
    IDLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Workers ever spawned by the pool. Stable across repeated
/// [`run_scoped`] calls at the same width — that is the whole point.
pub fn pool_spawned() -> usize {
    SPAWNED.load(Ordering::Relaxed)
}

fn worker_loop(jobs: Receiver<Job>) {
    while let Ok(job) = jobs.recv() {
        // SAFETY: `run_scoped` keeps the closure alive until this job's
        // latch fires; we count down strictly after the call returns.
        let f = unsafe { &*job.f };
        if std::panic::catch_unwind(AssertUnwindSafe(|| f(job.worker))).is_err() {
            job.latch.panicked.store(true, Ordering::Release);
        }
        job.latch.count_down();
    }
}

fn spawn_worker() -> Sender<Job> {
    let (tx, rx) = channel();
    SPAWNED.fetch_add(1, Ordering::Relaxed);
    std::thread::Builder::new()
        .name("xbar-pool".into())
        .spawn(move || worker_loop(rx))
        .expect("spawn xbar pool worker");
    tx
}

/// Run `f(w)` for every worker index `w in 0..threads`, `f(0)` on the
/// calling thread and the rest on persistent pool workers, and return
/// once all have finished. Panics (after all workers finish) if any
/// invocation panicked.
///
/// The pool spawns lazily and reuses parked workers across calls, so
/// repeated solves — a figure grid, a fleet batch, a re-anchor storm —
/// pay thread start-up once per process, not once per solve. Nested
/// calls are fine: a worker that itself calls `run_scoped` checks out
/// (or spawns) further workers rather than waiting on itself.
pub fn run_scoped(threads: usize, f: impl Fn(usize) + Sync) {
    if threads <= 1 {
        f(0);
        return;
    }
    let extra = threads - 1;
    let mut senders = {
        let mut idle = idle_list().lock().unwrap_or_else(|e| e.into_inner());
        let take = extra.min(idle.len());
        let at = idle.len() - take;
        idle.split_off(at)
    };
    while senders.len() < extra {
        senders.push(spawn_worker());
    }
    let latch = Arc::new(Latch::new(extra));

    /// Waits for the borrowed workers and returns their senders to the
    /// free list even if `f(0)` unwinds on the caller — the workers
    /// borrow the caller's stack, so unwinding past them would be UB.
    struct Checkout {
        senders: Vec<Sender<Job>>,
        latch: Arc<Latch>,
    }
    impl Drop for Checkout {
        fn drop(&mut self) {
            self.latch.wait();
            let mut idle = idle_list().lock().unwrap_or_else(|e| e.into_inner());
            idle.append(&mut self.senders);
        }
    }
    let mut guard = Checkout {
        senders,
        latch: Arc::clone(&latch),
    };

    let local: *const (dyn Fn(usize) + Sync + '_) = &f;
    // SAFETY: lifetime erasure only — the Checkout guard above waits for
    // every job's latch before this frame can unwind, so no worker ever
    // dereferences the pointer after `f` is gone.
    let erased: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<_, *const (dyn Fn(usize) + Sync + 'static)>(local) };
    for i in 0..extra {
        let mut job = Job {
            f: erased,
            worker: i + 1,
            latch: Arc::clone(&latch),
        };
        // A send only fails if that worker's thread died; replace it and
        // retry so barrier-style closures always get `threads` live
        // participants.
        while let Err(returned) = guard.senders[i].send(job) {
            guard.senders[i] = spawn_worker();
            job = returned.0;
        }
    }
    f(0);
    drop(guard);
    if latch.panicked.load(Ordering::Acquire) {
        panic!("wavefront worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = effective_threads();
        let inner = with_threads(3, effective_threads);
        assert_eq!(inner, 3);
        assert_eq!(effective_threads(), outer);
        // Nested overrides unwind correctly.
        let (a, b) = with_threads(2, || {
            (effective_threads(), with_threads(5, effective_threads))
        });
        assert_eq!((a, b), (2, 5));
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = OVERRIDE.with(Cell::get);
        let result = std::panic::catch_unwind(|| with_threads(7, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(OVERRIDE.with(Cell::get), before);
    }

    #[test]
    fn effective_is_at_least_one() {
        assert!(effective_threads() >= 1);
    }

    #[test]
    fn run_scoped_runs_every_worker_once() {
        use std::sync::atomic::AtomicU64;
        for threads in [1usize, 2, 4, 7] {
            let hits = AtomicU64::new(0);
            run_scoped(threads, |w| {
                assert!(w < threads);
                hits.fetch_add(1 << (8 * w), Ordering::Relaxed);
            });
            let hits = hits.load(Ordering::Relaxed);
            for w in 0..threads {
                assert_eq!((hits >> (8 * w)) & 0xff, 1, "threads={threads} w={w}");
            }
        }
    }

    #[test]
    fn run_scoped_reuses_pool_workers() {
        run_scoped(4, |_| {});
        let spawned = pool_spawned();
        for _ in 0..32 {
            run_scoped(4, |_| {});
        }
        // Other tests run concurrently and may check workers out, so
        // allow a little growth — but nothing like 32 × 3 fresh spawns.
        assert!(
            pool_spawned() <= spawned + 8,
            "pool respawned per call: {} -> {}",
            spawned,
            pool_spawned()
        );
    }

    #[test]
    fn run_scoped_supports_barriers() {
        use std::sync::Barrier;
        let barrier = Barrier::new(4);
        let stage = std::sync::atomic::AtomicUsize::new(0);
        run_scoped(4, |_| {
            stage.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            assert_eq!(stage.load(Ordering::SeqCst), 4);
            barrier.wait();
            stage.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(stage.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn run_scoped_propagates_worker_panic() {
        let result = std::panic::catch_unwind(|| {
            run_scoped(3, |w| {
                if w == 2 {
                    panic!("worker blew up");
                }
            });
        });
        assert!(result.is_err());
        // The pool is still serviceable afterwards.
        run_scoped(3, |_| {});
    }

    #[test]
    fn run_scoped_nests() {
        use std::sync::atomic::AtomicU64;
        let total = AtomicU64::new(0);
        run_scoped(2, |_| {
            run_scoped(2, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4);
    }
}

//! Fleet solving: batch many heterogeneous [`Model`]s — per-tenant
//! geometries and class mixes — through one call, sharded across the
//! persistent worker pool with work stealing.
//!
//! Two batched surfaces:
//!
//! * [`SolveCache::solve_fleet`](crate::SolveCache::solve_fleet) (and
//!   the [`solve_fleet`] free function over the process-wide cache) —
//!   batched *anchor* solves: deduplicate identical models up front,
//!   shard the misses over [`crate::parallel::run_scoped`] workers that
//!   steal whole models from a shared queue, and return results in
//!   input order. This is what the serve daemon's coalesced re-anchors
//!   and the CLI `xbar fleet` command call.
//! * [`FleetSweep`] — batched *sweep* precomputes: every member's full
//!   and leave-one-out recombination rays live in one flat
//!   structure-of-arrays `f64` arena (members that escalate to the
//!   extended-range backend keep an owned [`SweepSolver`] instead),
//!   so multi-cell figure drivers hold one allocation for a whole
//!   curve family and per-point recombinations run the
//!   [`crate::simd`] kernels over contiguous arena slices.
//!
//! Sharding pins each member's inner solve to one thread
//! ([`crate::parallel::with_threads`]): with whole models to hand out,
//! across-model parallelism strictly dominates nested wavefront
//! parallelism. A fleet of one skips the pool (and the pinning)
//! entirely, so single-model latency is unchanged.

use std::sync::{Arc, Mutex};

use crossbeam::queue::SegQueue;
use xbar_traffic::{TrafficClass, Workload};

use crate::model::Model;
use crate::parallel;
use crate::solver::cache::global_cache;
use crate::solver::{Algorithm, Solution, SolveError};
use crate::sweep::{install_class, Ray, RayRepr, Repr, SweepSolution, SweepSolver};

/// Run `f(i)` for every `i in 0..n` across the persistent pool with
/// work stealing and return the results in index order.
///
/// With more than one effective worker, each item's inner solve is
/// pinned to one thread; with one worker the items run inline *without*
/// pinning, so a single large item keeps its own wavefront parallelism.
pub(crate) fn shard_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = parallel::effective_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let queue = SegQueue::new();
    for i in 0..n {
        queue.push(i);
    }
    // Enough to amortise the queue lock, small enough that the tail
    // stays balanced across workers.
    let batch = (n / (threads * 4)).clamp(1, 16);
    let mut slots: Vec<Mutex<Option<T>>> = Vec::new();
    slots.resize_with(n, || Mutex::new(None));

    // Pool workers are long-lived threads, so the caller's scoped obs
    // registry (if any) must be re-entered by hand.
    let obs_scope = xbar_obs::current_scope();
    parallel::run_scoped(threads, |_w| {
        let _obs = obs_scope.enter();
        loop {
            let taken = queue.pop_batch(batch);
            if taken.is_empty() {
                break;
            }
            for i in taken {
                let r = parallel::with_threads(1, || f(i));
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("shard_map drained the queue but left a slot empty")
        })
        .collect()
}

/// Batched [`solve_cached`](crate::solve_cached): solve every model in
/// `models` as one fleet through the process-wide cache. See
/// [`SolveCache::solve_fleet`](crate::SolveCache::solve_fleet).
pub fn solve_fleet(
    models: &[Model],
    algorithm: Algorithm,
) -> Vec<Result<Arc<Solution>, SolveError>> {
    global_cache().solve_fleet(models, algorithm)
}

/// Build one owned [`SweepSolver`] precompute per model, sharded across
/// the persistent worker pool with work stealing (results in input
/// order, one `Result` per model).
///
/// This is the warm path for per-anchor repricing solvers and
/// [`crate::SweepGrid`] batch builds: the `O(R²·C²)` precomputes
/// amortise across the pool exactly like [`FleetSweep::new`], but each
/// result stays an independent solver instead of packing into the
/// shared arena. Counted as `fleet.sweep_warm` (one increment per
/// model).
pub fn sweep_many(models: &[Model], algorithm: Algorithm) -> Vec<Result<SweepSolver, SolveError>> {
    xbar_obs::add("fleet.sweep_warm", models.len() as u64);
    shard_map(models.len(), |i| SweepSolver::new(&models[i], algorithm))
}

// ---------------------------------------------------------------------------
// FleetSweep
// ---------------------------------------------------------------------------

/// Arena range of one ray: `arena[start..end]`.
type Span = (usize, usize);

enum MemberRepr {
    /// Scaled-`f64` member: rays live in the shared fleet arena.
    Scaled {
        ln_c: f64,
        full: Span,
        loo: Vec<Span>,
    },
    /// Extended-range member (escalated or requested): owns its solver.
    Ext(Box<SweepSolver>),
}

struct Member {
    model: Model,
    /// Effective backend (`Alg1Scaled` or `Alg1Ext`).
    algorithm: Algorithm,
    repr: MemberRepr,
}

/// A fleet of [`SweepSolver`] precomputes over one structure-of-arrays
/// coefficient arena.
///
/// Construction shards the per-member `O(R²·C²)` ray builds across the
/// persistent pool; afterwards every scaled member's full and
/// leave-one-out rays are contiguous `f64` spans of a single flat
/// buffer, and per-point solves ([`FleetSweep::solve_with_class`])
/// recombine them with the [`crate::simd`] kernels. Results are
/// bit-for-bit identical to a per-model [`SweepSolver`] under the same
/// kernel mode — the arena changes where rays live, not what they hold.
///
/// ```
/// use xbar_core::{Algorithm, Dims, FleetSweep, Model};
/// use xbar_traffic::{TrafficClass, Workload};
///
/// let models: Vec<Model> = (4..8)
///     .map(|n| {
///         let w = Workload::new().with(TrafficClass::poisson(0.1 * n as f64));
///         Model::new(Dims::square(n), w).unwrap()
///     })
///     .collect();
/// let fleet = FleetSweep::new(&models, Algorithm::Auto).unwrap();
/// for i in 0..fleet.len() {
///     assert!(fleet.solve_base(i).unwrap().blocking(0) < 1.0);
/// }
/// ```
pub struct FleetSweep {
    arena: Vec<f64>,
    members: Vec<Member>,
}

impl FleetSweep {
    /// Precompute every member's leave-one-out rays (sharded over the
    /// pool) and pack the scaled ones into the shared arena. Fails on
    /// the first member whose precompute fails; backend policy per
    /// member is exactly [`SweepSolver::new`]'s.
    pub fn new(models: &[Model], algorithm: Algorithm) -> Result<Self, SolveError> {
        xbar_obs::inc("fleet.sweeps");
        xbar_obs::record("fleet.sweep_size", models.len() as f64);
        let solvers = shard_map(models.len(), |i| SweepSolver::new(&models[i], algorithm));
        let mut arena = Vec::new();
        let mut members = Vec::with_capacity(models.len());
        let push = |arena: &mut Vec<f64>, vals: Vec<f64>| -> Span {
            let start = arena.len();
            arena.extend_from_slice(&vals);
            (start, arena.len())
        };
        for solver in solvers {
            let (model, algorithm, repr) = solver?.into_parts();
            let repr = match repr {
                Repr::Scaled { full, loo } => MemberRepr::Scaled {
                    ln_c: full.ln_c,
                    full: push(&mut arena, full.vals),
                    loo: loo.into_iter().map(|l| push(&mut arena, l)).collect(),
                },
                ext => MemberRepr::Ext(Box::new(SweepSolver::from_parts(
                    model.clone(),
                    algorithm,
                    ext,
                ))),
            };
            members.push(Member {
                model,
                algorithm,
                repr,
            });
        }
        Ok(FleetSweep { arena, members })
    }

    /// Number of member models.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` iff the fleet has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member `i`'s base model.
    pub fn model(&self, i: usize) -> &Model {
        &self.members[i].model
    }

    /// Member `i`'s effective backend (`Alg1Scaled` or `Alg1Ext`).
    pub fn algorithm(&self, i: usize) -> Algorithm {
        self.members[i].algorithm
    }

    /// Solve member `i`'s base model from its cached full ray.
    pub fn solve_base(&self, i: usize) -> Result<SweepSolution, SolveError> {
        let member = &self.members[i];
        match &member.repr {
            MemberRepr::Ext(solver) => solver.solve_base(),
            MemberRepr::Scaled { ln_c, full, .. } => {
                xbar_obs::inc("sweep.reuse");
                let ray = Ray {
                    dims: member.model.dims(),
                    ln_c: *ln_c,
                    vals: self.arena[full.0..full.1].to_vec(),
                };
                SweepSolution::from_ray(
                    member.model.clone(),
                    member.algorithm,
                    RayRepr::Scaled(ray),
                )
            }
        }
    }

    /// Replace member `i`'s class `r` with `class` and solve by one
    /// `O(C²/a)` recombination against the member's leave-one-out span
    /// of the shared arena. Semantics match
    /// [`SweepSolver::solve_with_class`] bit for bit.
    pub fn solve_with_class(
        &self,
        i: usize,
        r: usize,
        class: TrafficClass,
    ) -> Result<SweepSolution, SolveError> {
        let member = &self.members[i];
        match &member.repr {
            MemberRepr::Ext(solver) => solver.solve_with_class(r, class),
            MemberRepr::Scaled { .. } => {
                let mut classes = member.model.workload().classes().to_vec();
                classes[r] = class;
                let model = Model::new(member.model.dims(), Workload::from_classes(classes))?;
                self.solve_scaled_edited(i, r, model)
            }
        }
    }

    /// Sweep member `i`'s class `r` offered load (`ρ_r = rho`), like
    /// [`SweepSolver::solve_with_rho`].
    pub fn solve_with_rho(
        &self,
        i: usize,
        r: usize,
        rho: f64,
    ) -> Result<SweepSolution, SolveError> {
        let member = &self.members[i];
        match &member.repr {
            MemberRepr::Ext(solver) => solver.solve_with_rho(r, rho),
            MemberRepr::Scaled { .. } => {
                let model = member
                    .model
                    .with_rho(r, rho)
                    .expect("with_rho never fails for an in-range class");
                self.solve_scaled_edited(i, r, model)
            }
        }
    }

    /// One recombination solve for a scaled member: reuse the full ray
    /// for weight-only edits, otherwise install the edited class on the
    /// leave-one-out arena span.
    fn solve_scaled_edited(
        &self,
        i: usize,
        r: usize,
        model: Model,
    ) -> Result<SweepSolution, SolveError> {
        let member = &self.members[i];
        let MemberRepr::Scaled { ln_c, full, loo } = &member.repr else {
            unreachable!("solve_scaled_edited called on an extended-range member");
        };
        let class = &model.workload().classes()[r];
        let base = &member.model.workload().classes()[r];
        let same_lattice = class.alpha == base.alpha
            && class.beta == base.beta
            && class.mu == base.mu
            && class.bandwidth == base.bandwidth;
        let ray = if same_lattice {
            xbar_obs::inc("sweep.reuse");
            Ray {
                dims: member.model.dims(),
                ln_c: *ln_c,
                vals: self.arena[full.0..full.1].to_vec(),
            }
        } else {
            xbar_obs::inc("sweep.recombine");
            let span = loo[r];
            let vals = xbar_obs::time("sweep.recombine", || {
                install_class(
                    &self.arena[span.0..span.1],
                    class.bandwidth as usize,
                    class.rho(),
                    class.beta / class.mu,
                    *ln_c,
                )
            });
            let ray = Ray {
                dims: member.model.dims(),
                ln_c: *ln_c,
                vals,
            };
            if !ray.vals.iter().all(|v| v.is_finite() && *v > 0.0) {
                return Err(SolveError::Underflow(Algorithm::Alg1Scaled));
            }
            ray
        };
        SweepSolution::from_ray(model, member.algorithm, RayRepr::Scaled(ray))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Dims;
    use crate::solver::SolveCache;
    use crate::{solve, SweepSolver};

    fn member_model(n: u32, rho: f64) -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(rho))
            .with(TrafficClass::bpp(rho / 2.0, 0.05, 1.0));
        Model::new(Dims::square(n), w).unwrap()
    }

    fn heterogeneous_fleet() -> Vec<Model> {
        (0..12)
            .map(|i| member_model(4 + (i % 5) as u32 * 3, 0.05 + 0.02 * i as f64))
            .collect()
    }

    #[test]
    fn solve_fleet_matches_independent_solves() {
        let models = heterogeneous_fleet();
        let cache = SolveCache::new(models.len());
        let fleet = cache.solve_fleet(&models, Algorithm::Auto);
        assert_eq!(fleet.len(), models.len());
        for (m, got) in models.iter().zip(&fleet) {
            let got = got.as_ref().unwrap();
            let solo = solve(m, Algorithm::Auto).unwrap();
            for r in 0..m.workload().classes().len() {
                assert_eq!(got.blocking(r).to_bits(), solo.blocking(r).to_bits());
            }
        }
    }

    #[test]
    fn solve_fleet_dedupes_identical_models() {
        let m = member_model(6, 0.1);
        let models = vec![m.clone(), m.clone(), m];
        let cache = SolveCache::new(4);
        let fleet = cache.solve_fleet(&models, Algorithm::Auto);
        let first = fleet[0].as_ref().unwrap();
        for other in &fleet[1..] {
            assert!(Arc::ptr_eq(first, other.as_ref().unwrap()));
        }
        // One unique model → one cached solve.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn solve_fleet_keeps_per_model_errors_in_order() {
        let good = member_model(5, 0.1);
        // An f64 solve at N = 256 underflows — a per-member error.
        let big = Model::new(
            Dims::square(256),
            Workload::new().with(TrafficClass::poisson(0.1)),
        )
        .unwrap();
        let models = vec![good.clone(), big, good];
        let cache = SolveCache::new(4);
        let fleet = cache.solve_fleet(&models, Algorithm::Alg1F64);
        assert!(fleet[0].is_ok());
        assert!(matches!(fleet[1], Err(SolveError::Underflow(_))));
        assert!(fleet[2].is_ok());
    }

    #[test]
    fn solve_fleet_of_one_and_empty() {
        let cache = SolveCache::new(4);
        assert!(cache.solve_fleet(&[], Algorithm::Auto).is_empty());
        let m = member_model(6, 0.1);
        let one = cache.solve_fleet(std::slice::from_ref(&m), Algorithm::Auto);
        assert_eq!(one.len(), 1);
        assert!(one[0].is_ok());
    }

    #[test]
    fn fleet_sweep_matches_per_model_sweep_solvers_bitwise() {
        let models = heterogeneous_fleet();
        let fleet = FleetSweep::new(&models, Algorithm::Auto).unwrap();
        for (i, m) in models.iter().enumerate() {
            let solo = SweepSolver::new(m, Algorithm::Auto).unwrap();
            assert_eq!(fleet.algorithm(i), solo.algorithm());
            let a = fleet.solve_base(i).unwrap();
            let b = solo.solve_base().unwrap();
            assert_eq!(a.blocking(0).to_bits(), b.blocking(0).to_bits());
            // An edited point: recombination from the shared arena.
            let edited = TrafficClass::bpp(0.09, 0.03, 1.0);
            let a = fleet.solve_with_class(i, 1, edited.clone()).unwrap();
            let b = solo.solve_with_class(1, edited).unwrap();
            for r in 0..2 {
                assert_eq!(a.blocking(r).to_bits(), b.blocking(r).to_bits());
                assert_eq!(a.concurrency(r).to_bits(), b.concurrency(r).to_bits());
            }
            let a = fleet.solve_with_rho(i, 0, 0.17).unwrap();
            let b = solo.solve_with_rho(0, 0.17).unwrap();
            assert_eq!(a.blocking(0).to_bits(), b.blocking(0).to_bits());
        }
    }

    #[test]
    fn fleet_sweep_carries_ext_members() {
        // N = 256 escalates past scaled f64 under Auto.
        let big = Model::new(
            Dims::square(256),
            Workload::new().with(TrafficClass::poisson(0.4)),
        )
        .unwrap();
        let small = member_model(6, 0.1);
        let fleet = FleetSweep::new(&[small, big.clone()], Algorithm::Auto).unwrap();
        assert_eq!(fleet.algorithm(0), Algorithm::Alg1Scaled);
        assert_eq!(fleet.algorithm(1), Algorithm::Alg1Ext);
        let solo = SweepSolver::new(&big, Algorithm::Auto).unwrap();
        assert_eq!(
            fleet.solve_base(1).unwrap().blocking(0).to_bits(),
            solo.solve_base().unwrap().blocking(0).to_bits()
        );
    }

    #[test]
    fn sweep_many_matches_solo_solvers_in_order() {
        let models = heterogeneous_fleet();
        let many = sweep_many(&models, Algorithm::Auto);
        assert_eq!(many.len(), models.len());
        for (m, got) in models.iter().zip(many) {
            let got = got.unwrap();
            let solo = SweepSolver::new(m, Algorithm::Auto).unwrap();
            assert_eq!(got.algorithm(), solo.algorithm());
            assert_eq!(
                got.solve_base().unwrap().blocking(0).to_bits(),
                solo.solve_base().unwrap().blocking(0).to_bits()
            );
        }
    }

    #[test]
    fn shard_map_is_ordered_and_complete() {
        for n in [0usize, 1, 7, 33] {
            let out = shard_map(n, |i| i * i);
            assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>());
        }
    }
}

//! **Algorithm 1** of the paper: the `O(N1·N2·R)` lattice recursion on the
//! normalised constant `Q(N) = G(N)/(N1!·N2!)` (paper eq. 8–10), with the
//! auxiliary `V`-recursion (eq. 9) folding the geometric tail of each bursty
//! class into constant work per lattice point.
//!
//! Sweeping the lattice and applying the `i = 1` recurrence (and the
//! `i = 2` recurrence along the `n1 = 0` column):
//!
//! ```text
//! Q(n1, n2) = [ Q(n1−1, n2)
//!             + Σ_{r∈R1} a_r·ρ_r·Q(n1−a_r, n2−a_r)
//!             + Σ_{r∈R2} a_r·ρ_r·V_r(n1, n2) ] / n1
//! V_r(n1, n2) = Q(n1−a_r, n2−a_r) + (β_r/μ_r)·V_r(n1−a_r, n2−a_r)
//! ```
//!
//! with `Q(0,0) = 1` and `Q ≡ 0` at any negative coordinate.
//!
//! # Wavefront parallelism
//!
//! Every term on the right-hand side reads a cell with strictly smaller
//! coordinate sum: `Q(n1−1, n2)` and `Q(n1, n2−1)` sit on anti-diagonal
//! `d − 1` and the `(n1−a_r, n2−a_r)` terms on `d − 2a_r`, where
//! `d = n1 + n2`. Cells sharing an anti-diagonal are therefore mutually
//! independent, so the recursion admits an exact *wavefront* schedule:
//! sweep `d` from 0 to `N1 + N2`, computing each diagonal's cells in
//! parallel. [`QLattice::solve`] (all backends) runs this schedule on the
//! persistent worker pool ([`crate::parallel::run_scoped`]) with one
//! barrier per diagonal; per-cell arithmetic is shared with the sequential
//! path (one kernel), so the parallel result is **bit-for-bit identical**
//! to the serial one. Short diagonals (below [`PAR_MIN_DIAG_LEN`]) are
//! computed by a single worker, and automatic solves cap the thread count
//! so each worker owns at least [`PAR_MIN_DIM`] cells of the longest
//! diagonal — see [`crate::parallel`] for how the count is chosen.
//!
//! # Numeric backends
//!
//! `Q(n1, n2) ≈ G/(n1!·n2!)` underflows `f64` well before the paper's
//! largest evaluation size even though all the performance measures —
//! ratios of nearby `Q` values — are perfectly tame. Three backends are
//! provided:
//!
//! * [`QLattice<f64>`] — plain doubles; fastest; valid while no cell
//!   underflows. The solver's `Auto` mode uses it in the paper's
//!   "Algorithm 1 for `N ≤ 32`" regime.
//! * [`QLattice<ExtFloat>`] — extended-range floats; works at any size the
//!   lattice fits in memory; the reference fast backend.
//! * [`ScaledQLattice`] — the paper's §6 *dynamic scaling*, realised as a
//!   deterministic geometric schedule `Q̂(n) = Q(n)·c^(n1+n2)` with
//!   `ln c = ln(max(N1,N2)) − 1`. A single *reactive* scalar `ω` (scaling
//!   every stored cell when one nears underflow, as §6 literally suggests)
//!   cannot work at `N = 256`: the spread between `Q(0,0) = 1` and
//!   `Q(256,256) ≈ 10^-1014` exceeds the `f64` exponent range on its own.
//!   The geometric schedule keeps the whole lattice in range for every size
//!   the paper evaluates (by Stirling, the residual
//!   `ln Q̂ ≈ −2·n·(ln n − ln N_max)` peaks near `2N/e`, about `e^±190` at
//!   `N = 256`), at the cost of one extra multiply per term — the
//!   "constant factor" §6 mentions. Ratios of `Q̂` cells recover ratios of
//!   `Q` exactly, so the measures are unaffected, which is §6's point.

use std::marker::PhantomData;
use std::sync::Barrier;
use std::time::Instant;

use xbar_numeric::ExtFloat;

use crate::model::{Dims, Model};
use crate::parallel;

/// Minimum cells of the longest anti-diagonal (`min(N1, N2) + 1` cells)
/// each worker must own before the automatic thread-count resolution adds
/// it to the wavefront: `auto threads = min(effective, width / 96)`.
/// Below one quantum per extra worker the per-diagonal barrier costs more
/// than the cells it buys (BENCH_6 measured 4 threads 1.7× slower than
/// serial at `N = 128`). An explicit [`QLattice::solve_with_threads`]
/// call bypasses this gate.
pub const PAR_MIN_DIM: usize = 96;

/// Anti-diagonals shorter than this are computed by one worker inside the
/// parallel sweep (the triangular corners of the lattice), avoiding
/// splitting a handful of cells across threads.
pub const PAR_MIN_DIAG_LEN: usize = 16;

/// Scalar arithmetic needed by the `Q`-recursion.
pub trait QScalar: Copy {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `self + other`.
    fn add(self, other: Self) -> Self;
    /// `self · x` for an `f64` coefficient.
    fn scale(self, x: f64) -> Self;
    /// `self / den` as an `f64` (the form every measure takes).
    fn ratio_to(self, den: Self) -> f64;
    /// `true` iff the value is exactly zero (used by health checks).
    fn is_zero(self) -> bool;
}

impl QScalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn scale(self, x: f64) -> Self {
        self * x
    }
    fn ratio_to(self, den: Self) -> f64 {
        self / den
    }
    fn is_zero(self) -> bool {
        self == 0.0
    }
}

impl QScalar for ExtFloat {
    fn zero() -> Self {
        ExtFloat::ZERO
    }
    fn one() -> Self {
        ExtFloat::ONE
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
    fn scale(self, x: f64) -> Self {
        self * x
    }
    fn ratio_to(self, den: Self) -> f64 {
        self.ratio(den)
    }
    fn is_zero(self) -> bool {
        ExtFloat::is_zero(self)
    }
}

/// Access to ratios `Q(num)/Q(den)` of normalisation constants — the
/// interface through which every performance measure reads a solved lattice
/// (Algorithm 1 in any backend, or Algorithm 2's ratio form).
pub trait QRatio {
    /// The largest dims this lattice was solved for.
    fn dims(&self) -> Dims;

    /// `Q(num)/Q(den)`. A negative coordinate in `num` means `Q(num) = 0`
    /// so the ratio is 0. `den` must be a valid lattice point.
    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64;
}

// ---------------------------------------------------------------------------
// Wavefront engine (shared by all three backends)
// ---------------------------------------------------------------------------

/// Raw shared view of one row-major lattice buffer, letting wavefront
/// workers write disjoint cells of the current anti-diagonal while reading
/// completed cells from earlier diagonals.
///
/// All access goes through raw pointers (no `&`/`&mut` aliasing to prove),
/// so soundness rests entirely on the sweep discipline documented on
/// [`CellKernel::cell`].
struct Cells<'a, S> {
    ptr: *mut S,
    cols: usize,
    _buffer: PhantomData<&'a mut [S]>,
}

// Safety: the wavefront schedule guarantees data-race freedom (disjoint
// writes within a diagonal, reads only of cells completed before the last
// barrier), so sharing the view across worker threads is sound.
unsafe impl<S: Send> Send for Cells<'_, S> {}
unsafe impl<S: Send> Sync for Cells<'_, S> {}

impl<'a, S: QScalar> Cells<'a, S> {
    fn new(buffer: &'a mut [S], cols: usize) -> Self {
        Cells {
            ptr: buffer.as_mut_ptr(),
            cols,
            _buffer: PhantomData,
        }
    }

    /// Read `(i1, i2)`; zero outside the non-negative quadrant.
    ///
    /// # Safety
    /// `(i1, i2)` must lie inside the allocated lattice whenever both are
    /// non-negative, and the cell must not be concurrently written.
    #[inline(always)]
    unsafe fn get(&self, i1: i64, i2: i64) -> S {
        if i1 < 0 || i2 < 0 {
            S::zero()
        } else {
            *self.ptr.add(i1 as usize * self.cols + i2 as usize)
        }
    }

    /// Write `(i1, i2)`.
    ///
    /// # Safety
    /// `(i1, i2)` must be in range and owned exclusively by the caller for
    /// the duration of the current diagonal.
    #[inline(always)]
    unsafe fn set(&self, i1: i64, i2: i64, value: S) {
        *self.ptr.add(i1 as usize * self.cols + i2 as usize) = value;
    }
}

/// Raw shared view of the `V`-recursion storage: one flat buffer holding
/// `lanes` row-major lattices back to back (lane `j` is bursty class
/// `j`'s `V` lattice). A single allocation instead of a `Vec` of buffers
/// lets [`LatticeArena`] reuse it across solves with zero steady-state
/// allocation; the same wavefront discipline as [`Cells`] makes the raw
/// pointer sharing sound.
struct VCells<'a, S> {
    ptr: *mut S,
    cols: usize,
    /// Cells per lane (`(N1+1)·(N2+1)`).
    stride: usize,
    _buffer: PhantomData<&'a mut [S]>,
}

// Safety: as for `Cells` — the wavefront schedule guarantees data-race
// freedom across worker threads.
unsafe impl<S: Send> Send for VCells<'_, S> {}
unsafe impl<S: Send> Sync for VCells<'_, S> {}

impl<'a, S: QScalar> VCells<'a, S> {
    fn new(buffer: &'a mut [S], cols: usize, stride: usize) -> Self {
        VCells {
            ptr: buffer.as_mut_ptr(),
            cols,
            stride,
            _buffer: PhantomData,
        }
    }

    /// Read lane `lane` at `(i1, i2)`; zero outside the non-negative
    /// quadrant.
    ///
    /// # Safety
    /// As [`Cells::get`], and `lane` must be within the buffer's lanes.
    #[inline(always)]
    unsafe fn get(&self, lane: usize, i1: i64, i2: i64) -> S {
        if i1 < 0 || i2 < 0 {
            S::zero()
        } else {
            *self
                .ptr
                .add(lane * self.stride + i1 as usize * self.cols + i2 as usize)
        }
    }

    /// Write lane `lane` at `(i1, i2)`.
    ///
    /// # Safety
    /// As [`Cells::set`], and `lane` must be within the buffer's lanes.
    #[inline(always)]
    unsafe fn set(&self, lane: usize, i1: i64, i2: i64, value: S) {
        *self
            .ptr
            .add(lane * self.stride + i1 as usize * self.cols + i2 as usize) = value;
    }
}

/// The per-cell recurrence of one backend: computes `V_r(i1, i2)` for every
/// bursty class and `Q(i1, i2)`, and stores them. Exactly one invocation
/// owns a cell, in both the serial and the parallel schedule, so serial and
/// parallel lattices are bit-for-bit identical.
trait CellKernel<S: QScalar>: Sync {
    /// # Safety
    /// The caller must guarantee exclusive access to cell `(i1, i2)` of `q`
    /// and every `v` lane, and that every cell with smaller coordinate
    /// sum `i1 + i2` is complete and no longer being written.
    unsafe fn cell(&self, q: &Cells<'_, S>, v: &VCells<'_, S>, i1: i64, i2: i64);
}

/// Run a kernel over the whole lattice. `threads <= 1` sweeps row-major
/// (cache-friendly; the dependency structure admits any order that computes
/// smaller coordinate sums first, and row-major does). `threads > 1` runs
/// the anti-diagonal wavefront with one barrier per diagonal.
///
/// `v` is the flat `V`-recursion storage: one lane of `(n1+1)·(n2+1)`
/// cells per bursty class, back to back.
fn sweep<S, K>(n1: usize, n2: usize, q: &mut [S], v: &mut [S], kernel: &K, threads: usize)
where
    S: QScalar + Send,
    K: CellKernel<S>,
{
    let cols = n2 + 1;
    let q_cells = Cells::new(q, cols);
    let v_cells = VCells::new(v, cols, (n1 + 1) * cols);

    let threads = threads.max(1).min(n1.min(n2) + 1);
    let cells = ((n1 + 1) * (n2 + 1)) as u64;
    if threads <= 1 {
        xbar_obs::inc("alg1.sweep.serial");
        xbar_obs::add("alg1.cells", cells);
        for i1 in 0..=n1 as i64 {
            for i2 in 0..=n2 as i64 {
                // Safety: single-threaded; cells with smaller coordinate
                // sums precede (i1, i2) in row-major order.
                unsafe { kernel.cell(&q_cells, &v_cells, i1, i2) };
            }
        }
        return;
    }

    xbar_obs::inc("alg1.sweep.parallel");
    xbar_obs::add("alg1.cells", cells);
    // Workers run on fresh threads, so the spawner's scoped registry (if
    // any) must be re-installed by hand; the same flag gates the
    // per-diagonal clock reads so a disabled run never touches Instant.
    let obs_scope = xbar_obs::current_scope();
    let record_diag = xbar_obs::enabled();
    let barrier = Barrier::new(threads);
    let last_diag = (n1 + n2) as i64;
    parallel::run_scoped(threads, |w| {
        let _obs = obs_scope.enter();
        for d in 0..=last_diag {
            // Worker 0 times each diagonal (the wavefront's unit of
            // work); barrier-to-barrier, so it includes the
            // stragglers this worker waited on.
            let t0 = if record_diag && w == 0 {
                Some(Instant::now())
            } else {
                None
            };
            // The diagonal's i1 range: i2 = d − i1 must fit [0, n2].
            let lo = (d - n2 as i64).max(0);
            let hi = (n1 as i64).min(d);
            let len = (hi - lo + 1) as usize;
            if len < PAR_MIN_DIAG_LEN {
                if w == 0 {
                    for i1 in lo..=hi {
                        // Safety: worker 0 alone owns the whole
                        // diagonal; earlier diagonals completed
                        // before the previous barrier.
                        unsafe { kernel.cell(&q_cells, &v_cells, i1, d - i1) };
                    }
                }
            } else {
                let chunk = len.div_ceil(threads) as i64;
                let start = lo + w as i64 * chunk;
                let end = (start + chunk - 1).min(hi);
                for i1 in start..=end {
                    // Safety: workers own disjoint i1 ranges of the
                    // current diagonal; reads target older
                    // diagonals, sequenced by the barrier below.
                    unsafe { kernel.cell(&q_cells, &v_cells, i1, d - i1) };
                }
            }
            barrier.wait();
            if let Some(t0) = t0 {
                xbar_obs::record_duration("alg1.diag_ns", t0.elapsed());
            }
        }
    });
}

/// Resolve the thread count for an automatic (non-explicit) solve: the
/// configured count, capped so every worker owns at least
/// [`PAR_MIN_DIM`] cells of the longest anti-diagonal (`min(N1,N2)+1`
/// cells). Below one full quantum the sweep stays serial — BENCH_6
/// showed the barrier overhead costing 4 threads 1.7× *more* wall time
/// than 1 thread at `N = 128`; per-worker diagonal width, not lattice
/// size alone, is what must clear the barrier cost.
fn auto_threads(dims: Dims) -> usize {
    let width = dims.min_n() as usize + 1;
    parallel::effective_threads()
        .min(width / PAR_MIN_DIM)
        .max(1)
}

// ---------------------------------------------------------------------------
// Plain backend (f64 / ExtFloat)
// ---------------------------------------------------------------------------

/// Structure-of-arrays coefficient table for the plain recurrence, hoisted
/// out of the sweep: per Poisson class `a_r` and `a_r·ρ_r`, per bursty
/// class additionally `β_r/μ_r`.
struct PlainCoeffs {
    poisson_a: Vec<i64>,
    poisson_a_rho: Vec<f64>,
    bursty_a: Vec<i64>,
    bursty_a_rho: Vec<f64>,
    bursty_beta_over_mu: Vec<f64>,
}

impl PlainCoeffs {
    fn new() -> Self {
        PlainCoeffs {
            poisson_a: Vec::new(),
            poisson_a_rho: Vec::new(),
            bursty_a: Vec::new(),
            bursty_a_rho: Vec::new(),
            bursty_beta_over_mu: Vec::new(),
        }
    }

    /// Recompute the table for `model` in place (clear + push: free of
    /// allocation once the vectors have grown to the workload size).
    fn fill(&mut self, model: &Model) {
        self.poisson_a.clear();
        self.poisson_a_rho.clear();
        self.bursty_a.clear();
        self.bursty_a_rho.clear();
        self.bursty_beta_over_mu.clear();
        for c in model.workload().classes() {
            let a = c.bandwidth as i64;
            let a_rho = a as f64 * c.rho();
            if c.is_poisson() {
                self.poisson_a.push(a);
                self.poisson_a_rho.push(a_rho);
            } else {
                self.bursty_a.push(a);
                self.bursty_a_rho.push(a_rho);
                self.bursty_beta_over_mu.push(c.beta / c.mu);
            }
        }
    }

    fn of(model: &Model) -> Self {
        let mut co = Self::new();
        co.fill(model);
        co
    }
}

struct PlainKernel<'c> {
    co: &'c PlainCoeffs,
}

impl<S: QScalar + Send> CellKernel<S> for PlainKernel<'_> {
    #[inline(always)]
    unsafe fn cell(&self, q: &Cells<'_, S>, v: &VCells<'_, S>, i1: i64, i2: i64) {
        let co = self.co;
        // V_r(i1, i2) first — it only reads strictly smaller points.
        for (j, (&a, &beta_over_mu)) in co.bursty_a.iter().zip(&co.bursty_beta_over_mu).enumerate()
        {
            let val = q
                .get(i1 - a, i2 - a)
                .add(v.get(j, i1 - a, i2 - a).scale(beta_over_mu));
            v.set(j, i1, i2, val);
        }
        if i1 == 0 && i2 == 0 {
            return; // Q(0,0) = 1 is seeded before the sweep.
        }
        // The i = 1 recurrence when possible, i = 2 on the n1 = 0 column
        // (both derive from paper eq. 8; a consistency test below checks
        // they agree).
        let (prev, divisor) = if i1 >= 1 {
            (q.get(i1 - 1, i2), i1 as f64)
        } else {
            (q.get(i1, i2 - 1), i2 as f64)
        };
        let mut acc = prev;
        for (&a, &a_rho) in co.poisson_a.iter().zip(&co.poisson_a_rho) {
            acc = acc.add(q.get(i1 - a, i2 - a).scale(a_rho));
        }
        for (j, &a_rho) in co.bursty_a_rho.iter().enumerate() {
            acc = acc.add(v.get(j, i1, i2).scale(a_rho));
        }
        q.set(i1, i2, acc.scale(1.0 / divisor));
    }
}

/// Solved `Q` lattice over `[0..=N1] × [0..=N2]` in scalar type `S`.
#[derive(Clone, Debug)]
pub struct QLattice<S> {
    dims: Dims,
    /// Row-major `(N1+1) × (N2+1)`.
    q: Vec<S>,
}

impl<S: QScalar + Send> QLattice<S> {
    /// Run Algorithm 1 for `model`, choosing the thread count
    /// automatically (see [`crate::parallel`]; small lattices stay serial).
    pub fn solve(model: &Model) -> Self {
        Self::solve_with_threads(model, auto_threads(model.dims()))
    }

    /// Run Algorithm 1 with an explicit thread count (`<= 1` forces the
    /// sequential sweep; `> 1` forces the wavefront even below the
    /// automatic size gate — the result is bit-for-bit identical).
    pub fn solve_with_threads(model: &Model, threads: usize) -> Self {
        let dims = model.dims();
        let (n1, n2) = (dims.n1 as usize, dims.n2 as usize);
        let co = PlainCoeffs::of(model);
        let cells = (n1 + 1) * (n2 + 1);
        let mut q = vec![S::zero(); cells];
        // One V lane per bursty class, in one flat buffer.
        let mut v = vec![S::zero(); cells * co.bursty_a.len()];
        q[0] = S::one();
        sweep(n1, n2, &mut q, &mut v, &PlainKernel { co: &co }, threads);
        QLattice { dims, q }
    }
}

impl<S: QScalar> QLattice<S> {
    /// Raw `Q(i1, i2)` (zero outside the non-negative quadrant).
    pub fn q(&self, i1: i64, i2: i64) -> S {
        if i1 < 0 || i2 < 0 {
            S::zero()
        } else {
            assert!(
                i1 <= self.dims.n1 as i64 && i2 <= self.dims.n2 as i64,
                "Q({i1},{i2}) outside solved lattice {}",
                self.dims
            );
            self.q[i1 as usize * (self.dims.n2 as usize + 1) + i2 as usize]
        }
    }

    /// `true` iff every lattice cell is a usable (nonzero) value — the
    /// plain-`f64` backend loses cells to underflow on large switches, and
    /// the solver uses this to detect that.
    pub fn is_healthy(&self) -> bool {
        !self.q.iter().any(|x| x.is_zero())
    }
}

impl<S: QScalar> QRatio for QLattice<S> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        if num.0 < 0 || num.1 < 0 {
            return 0.0;
        }
        self.q(num.0, num.1).ratio_to(self.q(den.0, den.1))
    }
}

// ---------------------------------------------------------------------------
// Scaled backend
// ---------------------------------------------------------------------------

/// Structure-of-arrays coefficient table for the scaled recurrence, in
/// original class order (the scaled accumulation interleaves Poisson and
/// bursty terms exactly as the workload lists them). `v_slot[r]` is the
/// bursty class's `V`-lattice index, or `usize::MAX` for Poisson classes.
struct ScaledCoeffs {
    a: Vec<i64>,
    a_rho: Vec<f64>,
    c2a: Vec<f64>,
    beta_over_mu: Vec<f64>,
    v_slot: Vec<usize>,
    n_bursty: usize,
    /// The per-coordinate scale `c` itself.
    c: f64,
}

impl ScaledCoeffs {
    fn new() -> Self {
        ScaledCoeffs {
            a: Vec::new(),
            a_rho: Vec::new(),
            c2a: Vec::new(),
            beta_over_mu: Vec::new(),
            v_slot: Vec::new(),
            n_bursty: 0,
            c: 1.0,
        }
    }

    /// Recompute the table for `model` in place (allocation-free at
    /// steady state, as [`PlainCoeffs::fill`]).
    fn fill(&mut self, model: &Model, ln_c: f64) {
        self.a.clear();
        self.a_rho.clear();
        self.c2a.clear();
        self.beta_over_mu.clear();
        self.v_slot.clear();
        self.n_bursty = 0;
        self.c = ln_c.exp();
        for cl in model.workload().classes() {
            let a = cl.bandwidth as i64;
            self.a.push(a);
            self.a_rho.push(a as f64 * cl.rho());
            self.c2a.push((2.0 * a as f64 * ln_c).exp());
            self.beta_over_mu.push(cl.beta / cl.mu);
            if cl.is_poisson() {
                self.v_slot.push(usize::MAX);
            } else {
                self.v_slot.push(self.n_bursty);
                self.n_bursty += 1;
            }
        }
    }

    fn of(model: &Model, ln_c: f64) -> Self {
        let mut co = Self::new();
        co.fill(model, ln_c);
        co
    }
}

struct ScaledKernel<'c> {
    co: &'c ScaledCoeffs,
}

impl CellKernel<f64> for ScaledKernel<'_> {
    #[inline(always)]
    unsafe fn cell(&self, q: &Cells<'_, f64>, v: &VCells<'_, f64>, i1: i64, i2: i64) {
        let co = self.co;
        for (((&slot, &a), &c2a), &beta_over_mu) in co
            .v_slot
            .iter()
            .zip(&co.a)
            .zip(&co.c2a)
            .zip(&co.beta_over_mu)
        {
            if slot == usize::MAX {
                continue;
            }
            let val = c2a * (q.get(i1 - a, i2 - a) + beta_over_mu * v.get(slot, i1 - a, i2 - a));
            v.set(slot, i1, i2, val);
        }
        if i1 == 0 && i2 == 0 {
            return;
        }
        let (prev, divisor) = if i1 >= 1 {
            (q.get(i1 - 1, i2) * co.c, i1 as f64)
        } else {
            (q.get(i1, i2 - 1) * co.c, i2 as f64)
        };
        let mut acc = prev;
        for (((&slot, &a), &c2a), &a_rho) in co.v_slot.iter().zip(&co.a).zip(&co.c2a).zip(&co.a_rho)
        {
            if slot == usize::MAX {
                acc += a_rho * c2a * q.get(i1 - a, i2 - a);
            } else {
                acc += a_rho * v.get(slot, i1, i2);
            }
        }
        q.set(i1, i2, acc / divisor);
    }
}

/// Algorithm 1 under the paper's §6 dynamic scaling, realised as the
/// deterministic geometric schedule described in the module docs:
/// each stored cell is `Q̂(n) = Q(n)·c^(n1+n2)`.
///
/// Scaled recurrence (`ĉ2a = c^{2a_r}`):
///
/// ```text
/// V̂_r(n)  = ĉ2a·( Q̂(n−a_rI) + (β_r/μ_r)·V̂_r(n−a_rI) )
/// Q̂(n)    = [ c·Q̂(n−1_1) + Σ_{R1} a_r·ρ_r·ĉ2a·Q̂(n−a_rI)
///                          + Σ_{R2} a_r·ρ_r·V̂_r(n) ] / n1
/// ```
#[derive(Clone, Debug)]
pub struct ScaledQLattice {
    dims: Dims,
    /// `ln c` — the per-coordinate scaling exponent.
    ln_c: f64,
    qhat: Vec<f64>,
}

impl ScaledQLattice {
    /// Run Algorithm 1 with scaling for `model` (automatic thread count,
    /// as [`QLattice::solve`]).
    pub fn solve(model: &Model) -> Self {
        Self::solve_with_threads(model, auto_threads(model.dims()))
    }

    /// Run Algorithm 1 with scaling and an explicit thread count.
    pub fn solve_with_threads(model: &Model, threads: usize) -> Self {
        let dims = model.dims();
        let (n1, n2) = (dims.n1 as usize, dims.n2 as usize);
        // ln c = ln(Nmax) − 1 flattens the factorial decay (Stirling);
        // clamp at 0 so tiny switches are simply unscaled.
        let ln_c = ((dims.max_n() as f64).ln() - 1.0).max(0.0);
        let co = ScaledCoeffs::of(model, ln_c);
        let cells = (n1 + 1) * (n2 + 1);
        let mut qhat = vec![0.0f64; cells];
        let mut v = vec![0.0f64; cells * co.n_bursty];
        qhat[0] = 1.0;
        sweep(
            n1,
            n2,
            &mut qhat,
            &mut v,
            &ScaledKernel { co: &co },
            threads,
        );
        ScaledQLattice { dims, ln_c, qhat }
    }

    /// The scaling exponent `ln c` in use (diagnostic).
    pub fn ln_scale(&self) -> f64 {
        self.ln_c
    }

    fn qhat(&self, i1: i64, i2: i64) -> f64 {
        if i1 < 0 || i2 < 0 {
            0.0
        } else {
            assert!(
                i1 <= self.dims.n1 as i64 && i2 <= self.dims.n2 as i64,
                "Q({i1},{i2}) outside solved lattice {}",
                self.dims
            );
            self.qhat[i1 as usize * (self.dims.n2 as usize + 1) + i2 as usize]
        }
    }

    /// `true` iff no cell under- or overflowed.
    pub fn is_healthy(&self) -> bool {
        self.qhat.iter().all(|x| x.is_finite() && *x > 0.0)
    }
}

impl QRatio for ScaledQLattice {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        if num.0 < 0 || num.1 < 0 {
            return 0.0;
        }
        // Q(num)/Q(den) = Q̂(num)/Q̂(den) · c^{(den1+den2) − (num1+num2)}.
        let shift = (den.0 + den.1 - num.0 - num.1) as f64;
        self.qhat(num.0, num.1) / self.qhat(den.0, den.1) * (shift * self.ln_c).exp()
    }
}

// ---------------------------------------------------------------------------
// Arena-backed solves
// ---------------------------------------------------------------------------

/// Reusable flat storage for repeated Algorithm-1 solves: the `Q` buffer,
/// the `V` lanes and both coefficient tables live in one arena that is
/// cleared and refilled per solve instead of reallocated. After a warm-up
/// solve at the largest dims in play, further solves perform **zero**
/// allocations (asserted by a counting-allocator test in `crates/bench`).
///
/// ```
/// use xbar_core::alg1::LatticeArena;
/// use xbar_core::{Dims, Model};
/// use xbar_traffic::{TrafficClass, Workload};
///
/// let w = Workload::new().with(TrafficClass::bpp(0.1, 0.05, 1.0));
/// let model = Model::new(Dims::square(16), w).unwrap();
/// let mut arena = LatticeArena::<f64>::new();
/// for i in 0..4 {
///     let m = model.with_rho(0, 0.1 + 0.02 * i as f64).unwrap();
///     let lat = arena.solve(&m); // no allocation after the first pass
///     assert!(lat.is_healthy());
/// }
/// ```
pub struct LatticeArena<S> {
    q: Vec<S>,
    v: Vec<S>,
    plain: PlainCoeffs,
    scaled: ScaledCoeffs,
}

impl<S: QScalar + Send> LatticeArena<S> {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        LatticeArena {
            q: Vec::new(),
            v: Vec::new(),
            plain: PlainCoeffs::new(),
            scaled: ScaledCoeffs::new(),
        }
    }

    /// Run Algorithm 1 for `model` in this arena (automatic thread
    /// count, as [`QLattice::solve`]). The returned view borrows the
    /// arena; values are bit-for-bit identical to [`QLattice`]'s.
    pub fn solve(&mut self, model: &Model) -> ArenaLattice<'_, S> {
        self.solve_with_threads(model, auto_threads(model.dims()))
    }

    /// As [`LatticeArena::solve`] with an explicit thread count. Only
    /// `threads <= 1` (the serial sweep) is allocation-free at steady
    /// state — the wavefront spawns scoped worker threads.
    pub fn solve_with_threads(&mut self, model: &Model, threads: usize) -> ArenaLattice<'_, S> {
        let dims = model.dims();
        let (n1, n2) = (dims.n1 as usize, dims.n2 as usize);
        self.plain.fill(model);
        let cells = (n1 + 1) * (n2 + 1);
        self.q.clear();
        self.q.resize(cells, S::zero());
        self.v.clear();
        self.v.resize(cells * self.plain.bursty_a.len(), S::zero());
        self.q[0] = S::one();
        let kernel = PlainKernel { co: &self.plain };
        sweep(n1, n2, &mut self.q, &mut self.v, &kernel, threads);
        ArenaLattice { dims, q: &self.q }
    }
}

impl LatticeArena<f64> {
    /// Run the §6 scaled Algorithm 1 in this arena (automatic thread
    /// count); values are bit-for-bit identical to [`ScaledQLattice`]'s.
    pub fn solve_scaled(&mut self, model: &Model) -> ScaledArenaLattice<'_> {
        self.solve_scaled_with_threads(model, auto_threads(model.dims()))
    }

    /// As [`LatticeArena::solve_scaled`] with an explicit thread count.
    pub fn solve_scaled_with_threads(
        &mut self,
        model: &Model,
        threads: usize,
    ) -> ScaledArenaLattice<'_> {
        let dims = model.dims();
        let (n1, n2) = (dims.n1 as usize, dims.n2 as usize);
        let ln_c = ((dims.max_n() as f64).ln() - 1.0).max(0.0);
        self.scaled.fill(model, ln_c);
        let cells = (n1 + 1) * (n2 + 1);
        self.q.clear();
        self.q.resize(cells, 0.0);
        self.v.clear();
        self.v.resize(cells * self.scaled.n_bursty, 0.0);
        self.q[0] = 1.0;
        let kernel = ScaledKernel { co: &self.scaled };
        sweep(n1, n2, &mut self.q, &mut self.v, &kernel, threads);
        ScaledArenaLattice {
            dims,
            ln_c,
            qhat: &self.q,
        }
    }
}

impl<S: QScalar + Send> Default for LatticeArena<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain-backend lattice borrowed from a [`LatticeArena`] — the same
/// read interface as [`QLattice`], valid until the arena's next solve.
pub struct ArenaLattice<'a, S> {
    dims: Dims,
    q: &'a [S],
}

impl<S: QScalar> ArenaLattice<'_, S> {
    /// Raw `Q(i1, i2)` (zero outside the non-negative quadrant).
    pub fn q(&self, i1: i64, i2: i64) -> S {
        if i1 < 0 || i2 < 0 {
            S::zero()
        } else {
            assert!(
                i1 <= self.dims.n1 as i64 && i2 <= self.dims.n2 as i64,
                "Q({i1},{i2}) outside solved lattice {}",
                self.dims
            );
            self.q[i1 as usize * (self.dims.n2 as usize + 1) + i2 as usize]
        }
    }

    /// As [`QLattice::is_healthy`].
    pub fn is_healthy(&self) -> bool {
        !self.q.iter().any(|x| x.is_zero())
    }
}

impl<S: QScalar> QRatio for ArenaLattice<'_, S> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        if num.0 < 0 || num.1 < 0 {
            return 0.0;
        }
        self.q(num.0, num.1).ratio_to(self.q(den.0, den.1))
    }
}

/// A scaled-backend lattice borrowed from a [`LatticeArena`] — the same
/// read interface as [`ScaledQLattice`], valid until the arena's next
/// solve.
pub struct ScaledArenaLattice<'a> {
    dims: Dims,
    ln_c: f64,
    qhat: &'a [f64],
}

impl ScaledArenaLattice<'_> {
    fn qhat(&self, i1: i64, i2: i64) -> f64 {
        if i1 < 0 || i2 < 0 {
            0.0
        } else {
            assert!(
                i1 <= self.dims.n1 as i64 && i2 <= self.dims.n2 as i64,
                "Q({i1},{i2}) outside solved lattice {}",
                self.dims
            );
            self.qhat[i1 as usize * (self.dims.n2 as usize + 1) + i2 as usize]
        }
    }

    /// As [`ScaledQLattice::is_healthy`].
    pub fn is_healthy(&self) -> bool {
        self.qhat.iter().all(|x| x.is_finite() && *x > 0.0)
    }
}

impl QRatio for ScaledArenaLattice<'_> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn q_ratio(&self, num: (i64, i64), den: (i64, i64)) -> f64 {
        if num.0 < 0 || num.1 < 0 {
            return 0.0;
        }
        let shift = (den.0 + den.1 - num.0 - num.1) as f64;
        self.qhat(num.0, num.1) / self.qhat(den.0, den.1) * (shift * self.ln_c).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::Brute;
    use xbar_traffic::{TrafficClass, Workload};

    fn close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < tol, "{a} vs {b}");
    }

    fn mixed_model(n1: u32, n2: u32) -> Model {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.3))
            .with(TrafficClass::bpp(0.2, 0.08, 1.0))
            .with(TrafficClass::poisson(0.15).with_bandwidth(2))
            .with(TrafficClass::bpp(0.1, 0.05, 2.0).with_bandwidth(2));
        Model::new(Dims::new(n1, n2), w).unwrap()
    }

    #[test]
    fn lattice_matches_brute_force_q_everywhere() {
        let m = mixed_model(6, 5);
        let lat: QLattice<f64> = QLattice::solve(&m);
        let brute = Brute::new(&m);
        for i1 in 0..=6i64 {
            for i2 in 0..=5i64 {
                let expect = brute.q(Dims::new(i1 as u32, i2 as u32)).to_f64();
                close(lat.q(i1, i2), expect, 1e-11);
            }
        }
    }

    #[test]
    fn extfloat_backend_matches_f64_backend() {
        let m = mixed_model(7, 7);
        let a: QLattice<f64> = QLattice::solve(&m);
        let b: QLattice<ExtFloat> = QLattice::solve(&m);
        for i1 in 0..=7i64 {
            for i2 in 0..=7i64 {
                close(a.q(i1, i2), b.q(i1, i2).to_f64(), 1e-12);
            }
        }
    }

    #[test]
    fn scaled_backend_ratios_match_f64_backend() {
        let m = mixed_model(8, 6);
        let plain: QLattice<f64> = QLattice::solve(&m);
        let scaled = ScaledQLattice::solve(&m);
        assert!(scaled.is_healthy());
        let den = (8i64, 6i64);
        for i1 in 0..=8i64 {
            for i2 in 0..=6i64 {
                close(
                    scaled.q_ratio((i1, i2), den),
                    plain.q_ratio((i1, i2), den),
                    1e-9,
                );
            }
        }
    }

    #[test]
    fn f64_backend_underflows_large_switch_but_ext_survives() {
        let w = Workload::new().with(TrafficClass::poisson(0.0012 / 128.0));
        let m = Model::new(Dims::square(128), w).unwrap();
        let plain: QLattice<f64> = QLattice::solve(&m);
        assert!(!plain.is_healthy(), "expected f64 underflow at N=128");
        let ext: QLattice<ExtFloat> = QLattice::solve(&m);
        assert!(ext.is_healthy());
        // Q(127,127)/Q(128,128) is huge but finite.
        let r = ext.q_ratio((127, 127), (128, 128));
        assert!(r.is_finite() && r > 1.0);
    }

    #[test]
    fn scaled_backend_survives_n256() {
        let w = Workload::new()
            .with(TrafficClass::poisson(0.0012 / 256.0))
            .with(TrafficClass::bpp(0.0012 / 256.0, 0.0012 / 256.0, 1.0));
        let m = Model::new(Dims::square(256), w).unwrap();
        let scaled = ScaledQLattice::solve(&m);
        assert!(scaled.is_healthy(), "scaled backend lost cells at N=256");
        let ext: QLattice<ExtFloat> = QLattice::solve(&m);
        let den = (256i64, 256i64);
        // (Ratios to far-away cells like Q(0,0)/Q(256,256) ≈ e^2335 exceed
        // f64 as plain numbers; the measures only ever need nearby cells.)
        for &p in &[(255i64, 255i64), (250, 250), (200, 256), (240, 240)] {
            close(scaled.q_ratio(p, den), ext.q_ratio(p, den), 1e-6);
        }
    }

    #[test]
    fn q_ratio_zero_for_negative_numerator() {
        let m = mixed_model(4, 4);
        let lat: QLattice<f64> = QLattice::solve(&m);
        assert_eq!(lat.q_ratio((-1, 2), (4, 4)), 0.0);
        assert_eq!(lat.q_ratio((2, -2), (4, 4)), 0.0);
    }

    #[test]
    fn boundary_rows_are_inverse_factorials() {
        // Q(0, n) = Q(n, 0) = 1/n! (only the empty state fits) —
        // exercises the i = 2 branch against the i = 1 branch.
        let m = mixed_model(5, 5);
        let lat: QLattice<f64> = QLattice::solve(&m);
        let mut fact = 1.0;
        for n in 0..=5i64 {
            if n > 0 {
                fact *= n as f64;
            }
            close(lat.q(0, n), 1.0 / fact, 1e-13);
            close(lat.q(n, 0), 1.0 / fact, 1e-13);
        }
    }

    #[test]
    fn transpose_symmetry() {
        // Q is symmetric under swapping (N1, N2) when the workload is held
        // in per-set parameters: G(N1,N2) = G(N2,N1) by symmetry of Ψ.
        let m = mixed_model(6, 4);
        let mt = mixed_model(4, 6);
        let a: QLattice<f64> = QLattice::solve(&m);
        let b: QLattice<f64> = QLattice::solve(&mt);
        for i1 in 0..=6i64 {
            for i2 in 0..=4i64 {
                close(a.q(i1, i2), b.q(i2, i1), 1e-12);
            }
        }
    }

    #[test]
    fn parallel_wavefront_is_bit_identical_to_serial() {
        // The tentpole invariant: forcing the wavefront (any thread count)
        // must reproduce the sequential lattice exactly, including on
        // rectangular switches and below the automatic size gate.
        for (n1, n2) in [(9u32, 6u32), (6, 9), (17, 17)] {
            let m = mixed_model(n1, n2);
            let serial: QLattice<f64> = QLattice::solve_with_threads(&m, 1);
            let ext_serial: QLattice<ExtFloat> = QLattice::solve_with_threads(&m, 1);
            let scaled_serial = ScaledQLattice::solve_with_threads(&m, 1);
            for threads in [2usize, 3, 5] {
                let par: QLattice<f64> = QLattice::solve_with_threads(&m, threads);
                let ext_par: QLattice<ExtFloat> = QLattice::solve_with_threads(&m, threads);
                let scaled_par = ScaledQLattice::solve_with_threads(&m, threads);
                for i1 in 0..=n1 as i64 {
                    for i2 in 0..=n2 as i64 {
                        assert_eq!(
                            serial.q(i1, i2).to_bits(),
                            par.q(i1, i2).to_bits(),
                            "f64 cell ({i1},{i2}) differs at {threads} threads"
                        );
                        assert_eq!(
                            ext_serial.q(i1, i2),
                            ext_par.q(i1, i2),
                            "ExtFloat cell ({i1},{i2}) differs at {threads} threads"
                        );
                        assert_eq!(
                            scaled_serial.qhat(i1, i2).to_bits(),
                            scaled_par.qhat(i1, i2).to_bits(),
                            "scaled cell ({i1},{i2}) differs at {threads} threads"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn thread_count_larger_than_diagonal_is_clamped() {
        let m = mixed_model(3, 3);
        let a: QLattice<f64> = QLattice::solve_with_threads(&m, 64);
        let b: QLattice<f64> = QLattice::solve_with_threads(&m, 1);
        for i1 in 0..=3i64 {
            for i2 in 0..=3i64 {
                assert_eq!(a.q(i1, i2).to_bits(), b.q(i1, i2).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside solved lattice")]
    fn out_of_range_access_panics() {
        let m = mixed_model(3, 3);
        let lat: QLattice<f64> = QLattice::solve(&m);
        let _ = lat.q(4, 0);
    }

    #[test]
    fn arena_solves_are_bit_identical_to_fresh_lattices() {
        let mut arena = LatticeArena::<f64>::new();
        // Reuse the same arena across different dims and workloads — the
        // buffers must be fully re-initialised each time.
        for (n1, n2) in [(8u32, 5u32), (5, 8), (12, 12), (3, 3)] {
            let m = mixed_model(n1, n2);
            let fresh: QLattice<f64> = QLattice::solve_with_threads(&m, 1);
            let lat = arena.solve_with_threads(&m, 1);
            for i1 in 0..=n1 as i64 {
                for i2 in 0..=n2 as i64 {
                    assert_eq!(
                        lat.q(i1, i2).to_bits(),
                        fresh.q(i1, i2).to_bits(),
                        "arena cell ({i1},{i2}) differs at {n1}x{n2}"
                    );
                }
            }
            assert_eq!(lat.is_healthy(), fresh.is_healthy());
        }
    }

    #[test]
    fn scaled_arena_solves_are_bit_identical_to_fresh_lattices() {
        let mut arena = LatticeArena::<f64>::new();
        for (n1, n2) in [(9u32, 6u32), (17, 17), (4, 4)] {
            let m = mixed_model(n1, n2);
            let fresh = ScaledQLattice::solve_with_threads(&m, 1);
            let lat = arena.solve_scaled_with_threads(&m, 1);
            for i1 in 0..=n1 as i64 {
                for i2 in 0..=n2 as i64 {
                    assert_eq!(
                        lat.qhat(i1, i2).to_bits(),
                        fresh.qhat(i1, i2).to_bits(),
                        "scaled arena cell ({i1},{i2}) differs at {n1}x{n2}"
                    );
                }
            }
        }
    }

    #[test]
    fn arena_wavefront_matches_serial_arena() {
        let m = mixed_model(11, 7);
        let mut serial = LatticeArena::<ExtFloat>::new();
        let mut par = LatticeArena::<ExtFloat>::new();
        // Two arenas (the borrows would otherwise overlap), same cells.
        let a = serial.solve_with_threads(&m, 1);
        let b = par.solve_with_threads(&m, 4);
        for i1 in 0..=11i64 {
            for i2 in 0..=7i64 {
                assert_eq!(a.q(i1, i2), b.q(i1, i2));
            }
        }
    }

    #[test]
    fn arena_lattice_feeds_measures_like_a_fresh_solve() {
        let m = mixed_model(10, 10);
        let mut arena = LatticeArena::<f64>::new();
        let lat = arena.solve(&m);
        let from_arena = crate::measures::measures(&m, &lat);
        let fresh: QLattice<f64> = QLattice::solve(&m);
        let reference = crate::measures::measures(&m, &fresh);
        for r in 0..4 {
            close(
                from_arena.classes[r].nonblocking,
                reference.classes[r].nonblocking,
                1e-15,
            );
            close(
                from_arena.classes[r].concurrency,
                reference.classes[r].concurrency,
                1e-15,
            );
        }
    }
}
